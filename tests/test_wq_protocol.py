"""Deeper Work Queue protocol tests: sandboxes, backpressure, dispatch."""

import pytest

from repro.analysis.report import ExitCode
from repro.batch.machines import Machine
from repro.desim import Environment
from repro.wq import Foreman, Master, Task, TaskState, Worker

MB = 1_000_000.0
GBIT = 125_000_000.0


def sleep_executor(duration, exit_code=ExitCode.SUCCESS):
    def executor(worker, task):
        yield worker.env.timeout(duration)
        return exit_code, {"cpu": duration}, None

    return executor


def collect(env, master, n):
    results = []

    def collector(env):
        for _ in range(n):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    return results


# ---------------------------------------------------------------- sandboxes
def test_sandbox_reshipped_to_new_worker_after_eviction():
    """Each worker pays the sandbox once; a replacement pays it again."""
    env = Environment()
    master = Master(env, nic_bandwidth=100 * MB)
    master.submit(Task(sleep_executor(500.0), sandbox_bytes=100 * MB))
    m0 = Machine(env, "m0", cores=1, nic_bandwidth=100 * MB)
    w0 = Worker(env, m0, master, cores=1, connect_latency=0.0)
    p0 = env.process(w0.run())

    def evict(env):
        yield env.timeout(100.0)
        p0.interrupt("evicted")

    env.process(evict(env))

    def replacement(env):
        yield env.timeout(150.0)
        m1 = Machine(env, "m1", cores=1, nic_bandwidth=100 * MB)
        w1 = Worker(env, m1, master, cores=1, connect_latency=0.0)
        yield env.process(w1.run())

    env.process(replacement(env))
    results = collect(env, master, 1)
    env.run()
    r = results[0]
    assert r.succeeded
    # The second worker paid the 1-second sandbox transfer again.
    assert r.wq_stage_in == pytest.approx(1.0)
    assert r.task.attempts == 1


def test_different_sandboxes_both_shipped():
    env = Environment()
    master = Master(env, nic_bandwidth=100 * MB)
    master.submit(Task(sleep_executor(5.0), sandbox_bytes=100 * MB, sandbox_id="A"))
    master.submit(Task(sleep_executor(5.0), sandbox_bytes=100 * MB, sandbox_id="B"))
    machine = Machine(env, "m0", cores=1, nic_bandwidth=100 * MB)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    results = collect(env, master, 2)
    env.run()
    # Both tasks paid a full sandbox transfer (different sandbox ids).
    assert all(r.wq_stage_in == pytest.approx(1.0) for r in results)


# ---------------------------------------------------------------- foreman flow
def test_foreman_buffer_backpressure():
    """A full foreman buffer blocks the pump, not the master queue."""
    env = Environment()
    master = Master(env)
    foreman = Foreman(env, master, buffer_depth=2)
    for _ in range(10):
        master.submit(Task(sleep_executor(1000.0), sandbox_bytes=0.0))
    env.run(until=50.0)
    # The pump moved exactly buffer_depth tasks (no worker drains them).
    assert len(foreman.ready.items) == 2
    assert master.ready_count == 10 - 2 - 1  # one more in the pump's hands
    assert foreman.tasks_relayed <= 3


def test_foreman_does_not_lose_tasks_on_drain():
    env = Environment()
    master = Master(env)
    foreman = Foreman(env, master, buffer_depth=4)
    for _ in range(4):
        master.submit(Task(sleep_executor(10.0), sandbox_bytes=0.0))
    machine = Machine(env, "m0", cores=2)
    worker = Worker(env, machine, foreman, cores=2, connect_latency=0.0)
    env.process(worker.run())
    results = collect(env, master, 4)
    env.run()
    assert len(results) == 4
    assert foreman.ready.items == []


# ---------------------------------------------------------------- states
def test_task_state_progression():
    env = Environment()
    master = Master(env)
    task = Task(sleep_executor(10.0))
    assert task.state == TaskState.READY
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    env.process(Worker(env, machine, master, cores=1, connect_latency=0.0).run())
    states = []

    def watcher(env):
        last = None
        while task.state != TaskState.DONE:
            if task.state != last:
                states.append(task.state)
                last = task.state
            yield env.timeout(0.5)
        states.append(task.state)

    env.process(watcher(env))
    results = collect(env, master, 1)
    env.run()
    assert TaskState.RUNNING in states
    assert states[-1] == TaskState.DONE


def test_turnaround_vs_wall_time():
    env = Environment()
    master = Master(env)
    # Two tasks, one core: the second queues for ~first task's duration.
    master.submit(Task(sleep_executor(100.0)))
    master.submit(Task(sleep_executor(100.0)))
    machine = Machine(env, "m0", cores=1)
    env.process(Worker(env, machine, master, cores=1, connect_latency=0.0).run())
    results = collect(env, master, 2)
    env.run()
    second = max(results, key=lambda r: r.finished)
    assert second.turnaround > second.wall_time
    assert second.turnaround >= 200.0


def test_dispatch_latency_applied_by_foreman():
    env = Environment()
    master = Master(env, dispatch_latency=5.0)
    foreman = Foreman(env, master, buffer_depth=2)
    master.submit(Task(sleep_executor(1.0), sandbox_bytes=0.0))
    machine = Machine(env, "m0", cores=1)
    env.process(Worker(env, machine, foreman, cores=1, connect_latency=0.0).run())
    results = collect(env, master, 1)
    env.run()
    # The relay paid the master's dispatch latency.
    assert results[0].finished >= 6.0


# ---------------------------------------------------------------- misc
def test_worker_tasks_done_counter():
    env = Environment()
    master = Master(env)
    for _ in range(5):
        master.submit(Task(sleep_executor(1.0)))
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    collect(env, master, 5)
    env.run()
    assert worker.tasks_done == 5


def test_master_counters_consistent_after_mixed_run():
    env = Environment()
    master = Master(env)
    for i in range(6):
        code = ExitCode.SUCCESS if i % 2 == 0 else ExitCode.APPLICATION_FAILED
        master.submit(Task(sleep_executor(5.0, exit_code=code)))
    machine = Machine(env, "m0", cores=2)
    env.process(Worker(env, machine, master, cores=2, connect_latency=0.0).run())
    results = collect(env, master, 6)
    env.run()
    assert master.tasks_submitted == 6
    assert master.tasks_returned == 6
    assert master.tasks_running == 0
    assert sum(1 for r in results if r.succeeded) == 3


# ---------------------------------------------------------------- multicore
def test_multicore_task_occupies_cores():
    """A 4-core task runs alone on a 4-core worker; 1-core tasks pack."""
    env = Environment()
    master = Master(env)
    big = Task(sleep_executor(100.0), cores=4, sandbox_bytes=0.0)
    smalls = [Task(sleep_executor(100.0), cores=1, sandbox_bytes=0.0) for _ in range(4)]
    master.submit(big)
    for t in smalls:
        master.submit(t)
    machine = Machine(env, "m0", cores=4)
    worker = Worker(env, machine, master, cores=4, connect_latency=0.0)
    env.process(worker.run())
    results = collect(env, master, 5)
    env.run()
    big_result = next(r for r in results if r.task is big)
    small_results = [r for r in results if r.task is not big]
    # The big task ran first, alone (finished at ~100 s).
    assert big_result.finished == pytest.approx(100.0, abs=1.0)
    # The four small tasks then ran concurrently (~200 s).
    for r in small_results:
        assert r.finished == pytest.approx(200.0, abs=1.0)


def test_small_tasks_pack_around_multicore():
    """With 2 free cores left, 1-core tasks run beside a 2-core task."""
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(100.0), cores=2, sandbox_bytes=0.0))
    master.submit(Task(sleep_executor(100.0), cores=1, sandbox_bytes=0.0))
    master.submit(Task(sleep_executor(100.0), cores=1, sandbox_bytes=0.0))
    machine = Machine(env, "m0", cores=4)
    worker = Worker(env, machine, master, cores=4, connect_latency=0.0)
    env.process(worker.run())
    results = collect(env, master, 3)
    env.run()
    # All three fit simultaneously in 4 cores: everyone done at ~100 s.
    for r in results:
        assert r.finished == pytest.approx(100.0, abs=1.0)


def test_oversized_task_waits_for_bigger_worker():
    """A task needing more cores than a worker has is never dispatched
    to it; a big-enough worker eventually takes it."""
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(10.0), cores=8, sandbox_bytes=0.0))
    small = Worker(env, Machine(env, "m0", cores=2), master, cores=2, connect_latency=0.0)
    env.process(small.run())

    def big_worker(env):
        yield env.timeout(50.0)
        w = Worker(env, Machine(env, "m1", cores=8), master, cores=8, connect_latency=0.0)
        yield env.process(w.run())

    env.process(big_worker(env))
    results = collect(env, master, 1)
    env.run()
    assert results[0].succeeded
    assert results[0].started >= 50.0
    assert small.tasks_done == 0


def test_multicore_eviction_requeues():
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(1000.0), cores=3, sandbox_bytes=0.0))
    machine = Machine(env, "m0", cores=4)
    worker = Worker(env, machine, master, cores=4, connect_latency=0.0)
    proc = env.process(worker.run())

    def evictor(env):
        yield env.timeout(100.0)
        proc.interrupt("preempted")

    env.process(evictor(env))

    def replacement(env):
        yield env.timeout(200.0)
        w = Worker(env, Machine(env, "m1", cores=4), master, cores=4, connect_latency=0.0)
        yield env.process(w.run())

    env.process(replacement(env))
    results = collect(env, master, 1)
    env.run()
    assert master.tasks_requeued == 1
    assert results[0].succeeded
    assert results[0].task.cores == 3


def test_free_cores_accounting():
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(50.0), cores=3, sandbox_bytes=0.0))
    machine = Machine(env, "m0", cores=4)
    worker = Worker(env, machine, master, cores=4, connect_latency=0.0)
    env.process(worker.run())
    probes = []

    def prober(env):
        yield env.timeout(10.0)
        probes.append(worker.free_cores)
        yield env.timeout(100.0)
        probes.append(worker.free_cores)

    env.process(prober(env))
    results = collect(env, master, 1)
    env.run()
    assert probes == [1, 4]
