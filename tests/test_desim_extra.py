"""Additional DES kernel corner cases."""

import pytest

from repro.desim import (
    Container,
    Environment,
    Interrupt,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


# ---------------------------------------------------------------- conditions
def test_condition_value_iteration_and_dict():
    env = Environment()
    seen = {}

    def proc(env):
        a = env.timeout(1, value="A")
        b = env.timeout(2, value="B")
        result = yield a & b
        seen["keys"] = list(result.keys())
        seen["values"] = list(result.values())
        seen["dict"] = result.todict()
        seen["eq"] = result == {a: "A", b: "B"}

    env.process(proc(env))
    env.run()
    assert seen["values"] == ["A", "B"]
    assert len(seen["keys"]) == 2
    assert seen["eq"] is True


def test_nested_conditions_flatten_to_leaves():
    env = Environment()
    out = {}

    def proc(env):
        a = env.timeout(1, value=1)
        b = env.timeout(2, value=2)
        c = env.timeout(3, value=3)
        result = yield (a & b) & c
        out["n"] = len(list(result.keys()))
        out["has_all"] = all(e in result for e in (a, b, c))

    env.process(proc(env))
    env.run()
    assert out["n"] == 3
    assert out["has_all"]


def test_any_of_mixed_with_all_of():
    env = Environment()
    out = {}

    def proc(env):
        fast = env.timeout(1, value="fast")
        s1 = env.timeout(10)
        s2 = env.timeout(20)
        result = yield fast | (s1 & s2)
        out["time"] = env.now
        out["fast_in"] = fast in result

    env.process(proc(env))
    env.run(until=100)
    assert out["time"] == 1.0
    assert out["fast_in"]


def test_interrupt_while_waiting_on_all_of():
    env = Environment()
    out = {}

    def victim(env):
        try:
            yield env.timeout(50) & env.timeout(60)
        except Interrupt as i:
            out["interrupted_at"] = env.now
            out["cause"] = i.cause

    def attacker(env, p):
        yield env.timeout(5)
        p.interrupt("stop")

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run(until=100)
    assert out["interrupted_at"] == 5.0
    assert out["cause"] == "stop"


def test_event_trigger_copies_outcome():
    env = Environment()
    out = {}

    def proc(env):
        src = env.timeout(3, value="payload")
        dst = env.event()

        def copy(event):
            dst.trigger(event)

        src.callbacks.append(copy)
        value = yield dst
        out["value"] = value
        out["time"] = env.now

    env.process(proc(env))
    env.run()
    assert out == {"value": "payload", "time": 3.0}


# ---------------------------------------------------------------- resources
def test_priority_resource_fifo_within_priority():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def waiter(env, tag, delay):
        yield env.timeout(delay)
        with res.request(priority=5) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(waiter(env, "first", 1))
    env.process(waiter(env, "second", 2))
    env.run()
    assert order == ["first", "second"]


def test_container_multiple_getters_served_in_order():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    served = []

    def getter(env, tag, amount):
        yield tank.get(amount)
        served.append((tag, env.now))

    def feeder(env):
        for _ in range(3):
            yield env.timeout(10)
            yield tank.put(10)

    env.process(getter(env, "a", 10))
    env.process(getter(env, "b", 10))
    env.process(getter(env, "c", 10))
    env.process(feeder(env))
    env.run()
    assert [s[0] for s in served] == ["a", "b", "c"]
    assert [s[1] for s in served] == [10.0, 20.0, 30.0]


def test_store_put_cancel():
    env = Environment()
    store = Store(env, capacity=1)
    outcomes = []

    def filler(env):
        yield store.put("x")  # fills the store

    def impatient(env):
        put = store.put("y")
        result = yield put | env.timeout(5)
        if put not in result:
            put.cancel()
            outcomes.append("gave-up")

    env.process(filler(env))
    env.process(impatient(env))
    env.run(until=20)
    assert outcomes == ["gave-up"]
    assert store.items == ["x"]
    assert store._put_waiters == []


def test_priority_store_with_tuples():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        yield store.put((3, "low"))
        yield store.put((1, "high"))
        yield store.put((2, "mid"))

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item[1])

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == ["high", "mid", "low"]


def test_resource_queue_survives_cancelled_holder():
    env = Environment()
    res = Resource(env, capacity=1)
    done = []

    def holder(env):
        with res.request() as req:
            yield req
            try:
                yield env.timeout(100)
            except Interrupt:
                pass  # context manager releases on exit

    def waiter(env):
        with res.request() as req:
            yield req
            done.append(env.now)

    p = env.process(holder(env))
    env.process(waiter(env))

    def interrupter(env):
        yield env.timeout(10)
        p.interrupt()

    env.process(interrupter(env))
    env.run()
    assert done == [10.0]


# ---------------------------------------------------------------- environment
def test_run_until_event_that_fails():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        raise ValueError("bad")

    p = env.process(proc(env))
    with pytest.raises(ValueError, match="bad"):
        env.run(until=p)


def test_run_out_of_events_before_until_time():
    env = Environment()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    # The until-event itself is scheduled, so the run reaches t=100.
    env.run(until=100)
    assert env.now == 100.0


def test_active_process_visible_during_execution():
    env = Environment()
    seen = {}

    def proc(env):
        seen["active"] = env.active_process
        yield env.timeout(1)

    p = env.process(proc(env))
    env.run()
    assert seen["active"] is p
    assert env.active_process is None
