"""Tests for the SQLite Lobster DB."""

import pytest

from repro.analysis.report import ExitCode
from repro.core import LobsterDB, TaskletStore
from repro.wq.task import Task, TaskResult


def make_result(task_id_offset=0, exit_code=ExitCode.SUCCESS, finished=100.0, segments=None):
    task = Task(executor=lambda w, t: iter(()), category="analysis")
    return TaskResult(
        task=task,
        exit_code=exit_code,
        worker_id="w0",
        submitted=0.0,
        started=10.0,
        finished=finished,
        segments=segments or {"cpu": 50.0, "io": 20.0},
        wq_stage_in=2.0,
        wq_stage_out=1.0,
    )


def test_workflow_and_tasklet_roundtrip():
    db = LobsterDB()
    store = TaskletStore.from_event_count("mc", 500, 100)
    db.record_workflow("mc", None, store.total)
    db.record_tasklets(store)
    counts = db.tasklet_state_counts("mc")
    assert counts == {"pending": 5}
    claimed = store.claim(2)
    store.mark_done(claimed)
    db.update_tasklets(claimed)
    counts = db.tasklet_state_counts("mc")
    assert counts == {"pending": 3, "done": 2}


def test_record_result_and_segment_totals():
    db = LobsterDB()
    r1 = make_result(segments={"cpu": 50.0, "io": 20.0})
    r2 = make_result(segments={"cpu": 30.0, "setup": 5.0})
    db.record_result("wf", r1, 3)
    db.record_result("wf", r2, 3)
    totals = db.segment_totals()
    assert totals["cpu"] == pytest.approx(80.0)
    assert totals["io"] == pytest.approx(20.0)
    assert totals["setup"] == pytest.approx(5.0)
    assert db.task_count() == 2
    assert db.task_count("wf") == 2
    assert db.task_count("other") == 0


def test_exit_code_counts():
    db = LobsterDB()
    db.record_result("wf", make_result(), 1)
    db.record_result("wf", make_result(exit_code=ExitCode.SETUP_FAILED), 1)
    db.record_result("wf", make_result(exit_code=ExitCode.SETUP_FAILED), 1)
    counts = db.exit_code_counts()
    assert counts[0] == 1
    assert counts[int(ExitCode.SETUP_FAILED)] == 2


def test_segment_histogram():
    db = LobsterDB()
    for cpu in (10.0, 12.0, 25.0):
        db.record_result("wf", make_result(segments={"cpu": cpu}), 1)
    hist = db.segment_histogram("cpu", bin_width=10.0)
    assert (10.0, 2) in hist
    assert (20.0, 1) in hist
    with pytest.raises(ValueError):
        db.segment_histogram("cpu", bin_width=0)


def test_completions_timeline():
    db = LobsterDB()
    db.record_result("wf", make_result(finished=50.0), 1)
    db.record_result("wf", make_result(finished=60.0), 1)
    db.record_result("wf", make_result(finished=150.0, exit_code=ExitCode.EVICTED), 1)
    timeline = db.completions_timeline(bin_width=100.0)
    assert timeline == [(0.0, 2, 0), (100.0, 0, 1)]


def test_lost_time_total():
    db = LobsterDB()
    r = make_result()
    r.task.lost_time = 42.0
    db.record_result("wf", r, 1)
    assert db.lost_time_total() == pytest.approx(42.0)


def test_task_mapping_recorded():
    db = LobsterDB()
    db.record_task_mapping(7, "wf", [1, 2, 3])
    cur = db._conn.execute(
        "SELECT tasklet_id FROM task_tasklets WHERE task_id=7 ORDER BY tasklet_id"
    )
    assert [row[0] for row in cur.fetchall()] == [1, 2, 3]


def test_context_manager_closes():
    with LobsterDB() as db:
        db.record_workflow("x", None, 0)
    with pytest.raises(Exception):
        db.task_count()
