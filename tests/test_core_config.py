"""Tests for Lobster configuration and tasklet bookkeeping."""

import pytest

from repro.analysis import data_processing_code, simulation_code
from repro.core import (
    LobsterConfig,
    TaskletState,
    TaskletStore,
    TaskPayload,
    WorkflowConfig,
)
from repro.dbs import synthetic_dataset


def data_wf(**kw):
    defaults = dict(
        label="data",
        code=data_processing_code(),
        dataset="/P/R/AOD",
    )
    defaults.update(kw)
    return WorkflowConfig(**defaults)


def mc_wf(**kw):
    defaults = dict(label="mc", code=simulation_code(), n_events=10_000)
    defaults.update(kw)
    return WorkflowConfig(**defaults)


# ---------------------------------------------------------------- config
def test_workflow_requires_exactly_one_input():
    with pytest.raises(ValueError):
        WorkflowConfig(label="x", code=simulation_code())
    with pytest.raises(ValueError):
        WorkflowConfig(
            label="x", code=simulation_code(), dataset="/A/B/AOD", n_events=10
        )


def test_workflow_validation():
    with pytest.raises(ValueError):
        data_wf(data_access="ftp")
    with pytest.raises(ValueError):
        data_wf(output_mode="xrootd")
    with pytest.raises(ValueError):
        data_wf(merge_mode="zip")
    with pytest.raises(ValueError):
        data_wf(tasklets_per_task=0)
    with pytest.raises(ValueError):
        data_wf(merge_threshold=0.0)
    with pytest.raises(ValueError):
        data_wf(read_fraction=0.0)
    with pytest.raises(ValueError):
        mc_wf(n_events=0)


def test_workflow_is_simulation_flag():
    assert mc_wf().is_simulation
    assert not data_wf().is_simulation


def test_lobster_config_validation():
    with pytest.raises(ValueError):
        LobsterConfig(workflows=[])
    with pytest.raises(ValueError):
        LobsterConfig(workflows=[mc_wf(), mc_wf()])  # duplicate labels
    with pytest.raises(ValueError):
        LobsterConfig(workflows=[mc_wf()], task_buffer=0)
    with pytest.raises(ValueError):
        LobsterConfig(workflows=[mc_wf()], bad_machine_rate=1.0)


# ---------------------------------------------------------------- tasklets
def test_store_from_event_count():
    store = TaskletStore.from_event_count("mc", 1050, 100)
    assert store.total == 11
    assert sum(t.n_events for t in store) == 1050
    # Last tasklet holds the remainder.
    assert [t.n_events for t in store][-1] == 50


def test_store_from_dataset():
    ds = synthetic_dataset(n_files=4, events_per_file=100, lumis_per_file=10)
    store = TaskletStore.from_dataset("d", ds, lumis_per_tasklet=5)
    assert store.total == 8  # 4 files × 2 tasklets
    t = next(iter(store))
    assert t.n_events == 50
    assert t.lfn is not None
    assert len(t.lumis) == 5


def test_claim_marks_assigned_fifo():
    store = TaskletStore.from_event_count("mc", 500, 100)
    first = store.claim(2)
    assert [t.tasklet_id for t in first] == [1, 2]
    assert all(t.state == TaskletState.ASSIGNED for t in first)
    assert store.pending_count == 3
    rest = store.claim(10)
    assert len(rest) == 3
    assert store.pending_count == 0


def test_mark_done_and_complete():
    store = TaskletStore.from_event_count("mc", 300, 100)
    claimed = store.claim(3)
    store.mark_done(claimed)
    assert store.done_count == 3
    assert store.complete
    assert store.processed_fraction == 1.0


def test_failed_attempts_requeue_until_exhausted():
    store = TaskletStore.from_event_count("mc", 100, 100)
    t = store.claim(1)
    permanent = store.mark_failed_attempt(t, max_retries=2)
    assert permanent == []
    assert store.pending_count == 1
    t = store.claim(1)
    permanent = store.mark_failed_attempt(t, max_retries=2)
    assert len(permanent) == 1
    assert store.failed_count == 1
    assert store.complete


def test_payload_aggregates():
    store = TaskletStore.from_event_count("mc", 300, 100)
    payload = TaskPayload(workflow="mc", tasklets=store.claim(3))
    assert payload.n_events == 300
    assert payload.input_bytes == 0.0
    assert payload.lfns == []


def test_payload_lfns_for_data():
    ds = synthetic_dataset(n_files=2, events_per_file=100, lumis_per_file=10)
    store = TaskletStore.from_dataset("d", ds, lumis_per_tasklet=10)
    payload = TaskPayload(workflow="d", tasklets=store.claim(2))
    assert len(payload.lfns) == 2
    assert payload.input_bytes > 0
