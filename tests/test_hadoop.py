"""Tests for the HDFS model and the mini Map-Reduce engine."""

import pytest

from repro.desim import Environment
from repro.hadoop import HDFS, MapReduceEngine, MapReduceJob, TaskCost

MB = 1_000_000.0


def make_hdfs(env, **kw):
    defaults = dict(n_datanodes=4, replication=2, block_size=64 * MB, seed=1)
    defaults.update(kw)
    return HDFS(env, **defaults)


# ---------------------------------------------------------------- HDFS
def test_hdfs_write_creates_blocks_with_replication():
    env = Environment()
    hdfs = make_hdfs(env)
    out = {}

    def proc(env):
        f = yield from hdfs.write("/data/a", 150 * MB)
        out["f"] = f

    env.process(proc(env))
    env.run()
    f = out["f"]
    assert len(f.blocks) == 3  # 64 + 64 + 22
    assert all(len(b.replicas) == 2 for b in f.blocks)
    assert f.size == pytest.approx(150 * MB)
    assert hdfs.used_bytes == pytest.approx(150 * MB)


def test_hdfs_write_rejects_duplicates():
    env = Environment()
    hdfs = make_hdfs(env)

    def proc(env):
        yield from hdfs.write("/data/a", 10 * MB)
        with pytest.raises(FileExistsError):
            yield from hdfs.write("/data/a", 10 * MB)

    env.process(proc(env))
    env.run()


def test_hdfs_read_returns_elapsed():
    env = Environment()
    hdfs = make_hdfs(env, disk_bandwidth=100 * MB, nic_bandwidth=100 * MB)
    out = {}

    def proc(env):
        yield from hdfs.write("/data/b", 100 * MB)
        t = yield from hdfs.read("/data/b")
        out["t"] = t

    env.process(proc(env))
    env.run()
    assert out["t"] > 0


def test_hdfs_local_read_skips_nic():
    env = Environment()
    hdfs = make_hdfs(
        env,
        n_datanodes=2,
        replication=2,
        disk_bandwidth=100 * MB,
        nic_bandwidth=100 * MB,
    )
    out = {}

    def proc(env):
        yield from hdfs.write("/data/c", 64 * MB, preferred=hdfs.datanodes[0])
        nic_before = sum(dn.nic.bytes_moved for dn in hdfs.datanodes)
        t = yield from hdfs.read("/data/c", local=hdfs.datanodes[0])
        nic_after = sum(dn.nic.bytes_moved for dn in hdfs.datanodes)
        out["t"] = t
        out["nic_delta"] = nic_after - nic_before

    env.process(proc(env))
    env.run()
    # Data-local read: disk only, no NIC traffic.
    assert out["t"] == pytest.approx(64 * MB / (100 * MB))
    assert out["nic_delta"] == pytest.approx(0.0)


def test_hdfs_delete_frees_blocks():
    env = Environment()
    hdfs = make_hdfs(env)

    def proc(env):
        yield from hdfs.write("/data/d", 64 * MB)

    env.process(proc(env))
    env.run()
    stored_before = sum(dn.blocks_stored for dn in hdfs.datanodes)
    assert stored_before == 2
    hdfs.delete("/data/d")
    assert sum(dn.blocks_stored for dn in hdfs.datanodes) == 0
    with pytest.raises(FileNotFoundError):
        hdfs.delete("/data/d")


def test_hdfs_validation():
    env = Environment()
    with pytest.raises(ValueError):
        HDFS(env, n_datanodes=0)
    with pytest.raises(ValueError):
        HDFS(env, n_datanodes=2, replication=3)
    with pytest.raises(ValueError):
        HDFS(env, block_size=0)


def test_hdfs_listdir():
    env = Environment()
    hdfs = make_hdfs(env)

    def proc(env):
        yield from hdfs.write("/out/m1", 1 * MB)
        yield from hdfs.write("/out/m2", 1 * MB)
        yield from hdfs.write("/tmp/x", 1 * MB)

    env.process(proc(env))
    env.run()
    assert [f.name for f in hdfs.listdir("/out/")] == ["/out/m1", "/out/m2"]


# ---------------------------------------------------------------- MapReduce
def test_wordcount_style_job():
    env = Environment()
    hdfs = make_hdfs(env)
    engine = MapReduceEngine(env, hdfs, slots_per_node=2)
    words = ["a b", "b c", "c c"]
    job = MapReduceJob(
        name="wordcount",
        records=words,
        map_fn=lambda line: [(w, 1) for w in line.split()],
        reduce_fn=lambda key, values: sum(values),
        map_cost=lambda line: TaskCost(cpu_seconds=1.0),
        reduce_cost=lambda key, values: TaskCost(cpu_seconds=0.5),
    )
    out = {}

    def proc(env):
        res = yield from engine.run(job)
        out.update(res)

    env.process(proc(env))
    env.run()
    assert out == {"a": 1, "b": 2, "c": 3}
    # Map phase then reduce phase cost time.
    assert env.now >= 1.5


def test_mapreduce_reduce_writes_output_to_hdfs():
    env = Environment()
    hdfs = make_hdfs(env)
    engine = MapReduceEngine(env, hdfs)
    job = MapReduceJob(
        name="merge-like",
        records=[("g1", 10 * MB), ("g1", 20 * MB), ("g2", 5 * MB)],
        map_fn=lambda rec: [(rec[0], rec[1])],
        reduce_fn=lambda key, values: sum(values),
        reduce_cost=lambda key, values: TaskCost(
            read_bytes=sum(values), write_bytes=sum(values)
        ),
        reduce_output=lambda key: f"/merged/{key}",
    )
    out = {}

    def proc(env):
        res = yield from engine.run(job)
        out.update(res)

    env.process(proc(env))
    env.run()
    assert out == {"g1": 30 * MB, "g2": 5 * MB}
    assert hdfs.exists("/merged/g1")
    assert hdfs.stat("/merged/g1").size == pytest.approx(30 * MB)


def test_mapreduce_slots_limit_parallelism():
    env = Environment()
    hdfs = make_hdfs(env, n_datanodes=1, replication=1)
    engine = MapReduceEngine(env, hdfs, slots_per_node=1)
    job = MapReduceJob(
        name="serial",
        records=[1, 2, 3],
        map_fn=lambda r: [("k", r)],
        reduce_fn=lambda key, values: sorted(values),
        map_cost=lambda r: TaskCost(cpu_seconds=10.0),
    )
    done = {}

    def proc(env):
        res = yield from engine.run(job)
        done.update(res)

    env.process(proc(env))
    env.run()
    # Three 10-second maps on one slot: at least 30 s.
    assert env.now >= 30.0
    assert done["k"] == [1, 2, 3]


def test_mapreduce_completion_log():
    env = Environment()
    hdfs = make_hdfs(env)
    engine = MapReduceEngine(env, hdfs)
    job = MapReduceJob(
        name="log",
        records=["x"],
        map_fn=lambda r: [(r, 1)],
        reduce_fn=lambda key, values: len(values),
    )

    def proc(env):
        yield from engine.run(job)

    env.process(proc(env))
    env.run()
    phases = [p for _, p, _ in engine.completions]
    assert phases == ["map", "reduce"]


def test_empty_job():
    env = Environment()
    hdfs = make_hdfs(env)
    engine = MapReduceEngine(env, hdfs)
    job = MapReduceJob(
        name="empty",
        records=[],
        map_fn=lambda r: [],
        reduce_fn=lambda key, values: None,
    )
    out = {"res": None}

    def proc(env):
        out["res"] = yield from engine.run(job)

    env.process(proc(env))
    env.run()
    assert out["res"] == {}


def test_task_cost_validation():
    with pytest.raises(ValueError):
        TaskCost(cpu_seconds=-1)
    with pytest.raises(ValueError):
        MapReduceEngine(Environment(), make_hdfs(Environment()), slots_per_node=0)
