"""Tests for the hot-path event protocol (DESIGN.md §12).

Covers the per-topic :class:`TopicPort` fast path, lazy publication
(``publish_lazy`` / ``emit_lazy``), raw (record-dict) subscriptions,
the never-matches subscription warning, kernel.step compaction counts,
fabric flush-batch consumer equivalence, and the streaming span
builder's parity with the buffered replay.
"""

import json
import warnings

import pytest

from repro.desim import Environment, EventBus, Topics
from repro.desim.bus import BusEvent, make_event
from repro.monitor import metrics_from_events, spans_from_events
from repro.monitor.tracing import SpanStreamBuilder

Topics.register("bench.tick", "bench.other")


# ---------------------------------------------------------------------------
# TopicPort semantics
# ---------------------------------------------------------------------------
def test_port_is_falsy_with_no_observers():
    bus = EventBus()
    port = bus.port("task.done")
    assert not port and not port.on
    # Emitting into a dead port is a cheap no-op.
    port.emit(task_id=1)


def test_port_truthy_with_subscriber_and_delivers():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    port = bus.port("task.done")
    assert port.on
    port.emit(task_id=7)
    assert len(seen) == 1
    assert seen[0].topic == "task.done" and seen[0].fields == {"task_id": 7}


def test_port_truthy_with_ring_only():
    bus = EventBus(ring_size=4)
    port = bus.port("task.done")
    assert port.on
    port.emit(task_id=1)
    assert len(bus.ring) == 1 and bus.ring[0].topic == "task.done"


def test_port_refreshes_on_late_subscribe_and_unsubscribe():
    bus = EventBus()
    port = bus.port("task.done")
    assert not port.on
    seen = []
    sub = bus.subscribe("task.*", seen.append)
    assert port.on
    port.emit(task_id=1)
    sub.cancel()
    assert not port.on
    port.emit(task_id=2)  # dropped
    assert [e.fields["task_id"] for e in seen] == [1]


def test_port_is_shared_per_topic():
    bus = EventBus()
    assert bus.port("task.done") is bus.port("task.done")


def test_port_delivery_order_is_subscription_order():
    """Exact, prefix, and wildcard subscribers interleave by seq."""
    bus = EventBus()
    order = []
    bus.subscribe("task.done", lambda e: order.append("exact1"))
    bus.subscribe("*", lambda e: order.append("wild"))
    bus.subscribe("task.*", lambda e: order.append("prefix"))
    bus.subscribe("task.done", lambda e: order.append("exact2"))
    bus.port("task.done").emit(task_id=1)
    assert order == ["exact1", "wild", "prefix", "exact2"]


def test_port_env_clock_stamping():
    env = Environment()
    seen = []
    env.bus.subscribe("task.done", seen.append)
    port = env.bus.port("task.done")

    def proc(env):
        yield env.timeout(5.0)
        port.emit(task_id=1)

    env.process(proc(env))
    env.run()
    assert seen[0].time == 5.0


def test_port_emit_at_overrides_time():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    bus.port("task.done").emit_at(42.0, task_id=1)
    assert seen[0].time == 42.0


# ---------------------------------------------------------------------------
# raw (record-dict) subscriptions
# ---------------------------------------------------------------------------
def test_raw_subscriber_receives_record_dict():
    env = Environment()
    seen = []
    env.bus.subscribe("task.done", seen.append, raw=True)
    port = env.bus.port("task.done")

    def proc(env):
        yield env.timeout(3.0)
        port.emit(task_id=9, exit_code=0)

    env.process(proc(env))
    env.run()
    assert seen == [{"task_id": 9, "exit_code": 0, "t": 3.0}]


def test_raw_subscription_requires_exact_topic():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.subscribe("task.*", lambda r: None, raw=True)
    with pytest.raises(ValueError):
        bus.subscribe("*", lambda r: None, raw=True)


def test_mixed_raw_and_classic_subscribers_do_not_share_the_dict():
    """The "t" stamp must never leak into a classic event's fields."""
    bus = EventBus()
    raw_seen, classic_seen = [], []
    bus.subscribe("task.done", raw_seen.append, raw=True)
    bus.subscribe("task.done", classic_seen.append)
    bus.port("task.done").emit(task_id=1)
    assert raw_seen[0]["t"] == 0.0 and raw_seen[0]["task_id"] == 1
    assert classic_seen[0].fields == {"task_id": 1}  # no "t" leak
    assert raw_seen[0] is not classic_seen[0].fields


def test_raw_subscriber_via_legacy_publish():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append, raw=True)
    bus.publish("task.done", _time=2.5, task_id=4)
    assert seen == [{"task_id": 4, "t": 2.5}]


def test_raw_only_delivery_materialises_no_event(monkeypatch):
    """With only raw subscribers and no ring, no BusEvent is built."""
    bus = EventBus()
    bus.subscribe("task.done", lambda r: None, raw=True)
    port = bus.port("task.done")

    def boom(*a, **k):  # pragma: no cover - failure path
        raise AssertionError("BusEvent materialised on the raw-only path")

    monkeypatch.setattr(BusEvent, "__new__", boom)
    port.emit(task_id=1)
    bus.publish("task.done", task_id=2)


# ---------------------------------------------------------------------------
# lazy publication
# ---------------------------------------------------------------------------
def test_publish_lazy_never_calls_thunk_when_unmatched():
    bus = EventBus()
    bus.subscribe("cache.*", lambda e: None)
    calls = []
    bus.publish_lazy("task.done", lambda: calls.append(1) or {"task_id": 1})
    assert calls == []


def test_publish_lazy_calls_thunk_once_per_delivery():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    bus.subscribe("task.*", seen.append)
    calls = []
    bus.publish_lazy("task.done", lambda: calls.append(1) or {"task_id": 1})
    assert len(calls) == 1  # one payload, two deliveries
    assert len(seen) == 2
    assert seen[0] is seen[1]  # same event object fans out


def test_publish_lazy_skipped_on_idle_bus():
    bus = EventBus()
    calls = []
    bus.publish_lazy("task.done", lambda: calls.append(1) or {})
    assert calls == []


def test_port_emit_lazy_thunk_semantics():
    bus = EventBus()
    port = bus.port("task.done")
    calls = []
    port.emit_lazy(lambda: calls.append(1) or {"task_id": 1})
    assert calls == []  # dead port: thunk never runs
    seen = []
    bus.subscribe("task.done", seen.append)
    port.emit_lazy(lambda: calls.append(1) or {"task_id": 1})
    assert len(calls) == 1 and seen[0].fields == {"task_id": 1}


def test_eager_and_lazy_publish_produce_identical_jsonl():
    def run(lazy):
        bus = EventBus()
        seen = []
        bus.subscribe("task.done", seen.append)
        for i in range(5):
            if lazy:
                bus.publish_lazy(
                    "task.done",
                    lambda i=i: dict(task_id=i, exit_code=0),
                    _time=float(i),
                )
            else:
                bus.publish("task.done", _time=float(i), task_id=i, exit_code=0)
        return "\n".join(json.dumps(e.as_dict(), sort_keys=False) for e in seen)

    assert run(lazy=False) == run(lazy=True)


# ---------------------------------------------------------------------------
# never-matches subscription warning
# ---------------------------------------------------------------------------
def test_unmatchable_pattern_warns_once():
    bus = EventBus()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        bus.subscribe("tsak.done", lambda e: None)  # typo'd topic
        bus.subscribe("tsak.done", lambda e: None)  # same pattern: no rewarn
    assert len(caught) == 1
    assert issubclass(caught[0].category, RuntimeWarning)
    assert "tsak.done" in str(caught[0].message)


def test_unmatchable_prefix_pattern_warns():
    bus = EventBus()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        bus.subscribe("tsak.*", lambda e: None)
    assert len(caught) == 1


def test_known_topic_patterns_do_not_warn():
    bus = EventBus()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        bus.subscribe(Topics.TASK_DONE, lambda e: None)
        bus.subscribe("task.*", lambda e: None)
        bus.subscribe("*", lambda e: None)
    assert caught == []


def test_registered_ad_hoc_topic_does_not_warn():
    bus = EventBus()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        bus.subscribe("bench.tick", lambda e: None)  # registered at import
    assert caught == []


# ---------------------------------------------------------------------------
# kernel.step compaction
# ---------------------------------------------------------------------------
def test_kernel_step_compaction_counts_cover_every_step():
    env = Environment()
    records = []
    env.bus.subscribe(Topics.KERNEL_STEP, records.append)

    def ticker(env):
        for _ in range(10):
            yield env.timeout(1.0)

    for _ in range(3):
        env.process(ticker(env))
    env.run()
    # Compaction: one event per (time, kind) run, counts summing to the
    # total number of kernel steps (30 timeouts plus process bookkeeping).
    assert sum(e.fields["count"] for e in records) >= 30
    assert all("kind" in e.fields and "queued" in e.fields for e in records)
    # Same-timestamp batching really batched (3 processes per instant).
    assert any(e.fields["count"] > 1 for e in records)


# ---------------------------------------------------------------------------
# fabric flush batches: consumer equivalence
# ---------------------------------------------------------------------------
def _flow_batch_events():
    """A recorded stream with one batched and one single-record flow."""
    batch = make_event(
        10.0,
        Topics.NET_FLOW,
        {
            "count": 2,
            "flows": [
                {"cls": "staging", "nbytes": 100.0, "started": 8.0,
                 "src": "a", "dst": "b", "hops": 2},
                {"cls": "wan", "nbytes": 50.0, "started": 9.0,
                 "src": "b", "dst": "c", "hops": 1},
            ],
        },
    )
    single = make_event(
        12.0,
        Topics.NET_FLOW,
        {"cls": "staging", "nbytes": 7.0, "started": 11.0,
         "src": "a", "dst": "c", "hops": 3},
    )
    return [batch, single]


def test_metrics_from_events_expands_flow_batches():
    metrics = metrics_from_events(e.as_dict() for e in _flow_batch_events())
    flows = metrics.flows
    assert len(flows) == 3
    assert [f.nbytes for f in flows] == [100.0, 50.0, 7.0]
    assert [f.started for f in flows] == [8.0, 9.0, 11.0]
    assert all(f.ok for f in flows)


def test_live_collector_expands_flow_batches_like_replay():
    from repro.monitor.collector import BusCollector

    bus = EventBus()
    collector = BusCollector(bus)
    for e in _flow_batch_events():
        bus.publish(e.topic, _time=e.time, **e.fields)
    replay = metrics_from_events(e.as_dict() for e in _flow_batch_events())
    assert [
        (f.cls, f.nbytes, f.started, f.finished)
        for f in collector.metrics.flows
    ] == [
        (f.cls, f.nbytes, f.started, f.finished)
        for f in replay.flows
    ]


def test_fabric_batch_spans_match_per_flow_spans():
    """A live traced fabric run materialises one span per flow even
    though flush narration is batched."""
    from repro.monitor.tracing import SpanTracer
    from repro.net import Fabric, TrafficClass

    env = Environment()
    tracer = SpanTracer(env)
    fabric = Fabric(env)
    fabric.attach("a.nic", 1e6, node="a")
    fabric.attach("b.nic", 1e6, node="b")

    def go(env):
        root = tracer.unit_root("t:demo")
        span = tracer.start("attempt", parent=root, activate=True)
        flows = [
            fabric.transfer(1e4, src="a", dst="b", cls=TrafficClass.STAGING)
            for _ in range(3)
        ]
        for f in flows:
            yield f
        tracer.end(span)

    env.process(go(env))
    env.run()
    tracer.finalize()
    flow_spans = tracer.finished("net.flow")
    assert len(flow_spans) == 3
    assert tracer.orphans() == []


# ---------------------------------------------------------------------------
# streaming span builder
# ---------------------------------------------------------------------------
def test_span_stream_builder_matches_buffered_replay():
    from repro.monitor.tracing import SpanTracer
    from repro.net import Fabric, TrafficClass

    env = Environment()
    recorded = []
    env.bus.subscribe("*", lambda e: recorded.append(e.as_dict()))
    tracer = SpanTracer(env)
    fabric = Fabric(env)
    fabric.attach("a.nic", 1e6, node="a")
    fabric.attach("b.nic", 1e6, node="b")

    def go(env):
        root = tracer.unit_root("t:demo")
        span = tracer.start("attempt", parent=root, activate=True)
        yield fabric.transfer(1e4, src="a", dst="b", cls=TrafficClass.STAGING)
        tracer.end(span)

    env.process(go(env))
    env.run()
    tracer.finalize()

    # Buffered replay (thin wrapper) vs explicit streaming feed.
    buffered = spans_from_events(recorded)
    builder = SpanStreamBuilder()
    for ev in recorded:
        builder.feed(ev)
    streamed = builder.result()
    assert [
        (s.span_id, s.trace_id, s.parent_id, s.name, s.start, s.end, s.status)
        for s in streamed
    ] == [
        (s.span_id, s.trace_id, s.parent_id, s.name, s.start, s.end, s.status)
        for s in buffered
    ]
    # The builder retains spans, not raw events, and closes what it saw.
    assert builder.open_count == 0
    live = [
        (s.span_id, s.name, s.start, s.end)
        for s in sorted(tracer.spans, key=lambda s: s.span_id)
    ]
    assert [
        (s.span_id, s.name, s.start, s.end)
        for s in sorted(streamed, key=lambda s: s.span_id)
    ] == live


# ---------------------------------------------------------------------------
# port / raw emit accounting (bus.published / bus.delivered / bus.stats)
# ---------------------------------------------------------------------------
def test_port_emits_count_as_published_and_delivered():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    port = bus.port("task.done")
    for i in range(5):
        port.emit(task_id=i)
    assert len(seen) == 5
    assert bus.published == 5
    assert bus.delivered == 5


def test_port_fanout_multiplies_delivered():
    bus = EventBus()
    bus.subscribe("task.done", lambda e: None)
    bus.subscribe("task.*", lambda e: None)
    port = bus.port("task.done")
    port.emit(task_id=1)
    port.emit(task_id=2)
    assert bus.published == 2
    assert bus.delivered == 4  # two subscribers each


def test_raw_only_emits_are_counted():
    bus = EventBus()
    records = []
    bus.subscribe("net.flow", records.append, raw=True)
    port = bus.port("net.flow")
    port.emit(nbytes=10.0)
    port.emit(nbytes=20.0)
    assert len(records) == 2
    assert bus.published == 2
    assert bus.delivered == 2


def test_mixed_raw_and_classic_fanout_accounting():
    bus = EventBus()
    bus.subscribe("net.flow", lambda e: None)
    bus.subscribe("net.flow", lambda r: None, raw=True)
    port = bus.port("net.flow")
    port.emit(nbytes=1.0)
    assert bus.published == 1
    assert bus.delivered == 2


def test_dead_port_emits_stay_uncounted():
    """The zero-subscriber fast path must remain accounting-free."""
    bus = EventBus()
    port = bus.port("task.done")
    for i in range(100):
        port.emit(task_id=i)
    assert bus.published == 0 and bus.delivered == 0


def test_port_counts_survive_refresh_flush():
    """Tallies flushed on a subscription change must not be lost, and
    pre-flush emits keep their pre-change fan-out."""
    bus = EventBus()
    bus.subscribe("task.done", lambda e: None)
    port = bus.port("task.done")
    port.emit(task_id=1)  # fan-out 1
    bus.subscribe("task.*", lambda e: None)  # triggers port refresh
    port.emit(task_id=2)  # fan-out 2
    assert bus.published == 2
    assert bus.delivered == 3  # 1*1 + 1*2


def test_emit_at_is_counted():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    port = bus.port("task.done")
    port.emit_at(42.0, task_id=1)
    assert seen[0].time == 42.0
    assert bus.published == 1 and bus.delivered == 1


def test_legacy_publish_and_port_emit_share_counters():
    bus = EventBus()
    bus.subscribe("task.done", lambda e: None)
    port = bus.port("task.done")
    bus.publish("task.done", task_id=1)
    port.emit(task_id=2)
    assert bus.published == 2
    assert bus.delivered == 2


def test_bus_stats_snapshot():
    bus = EventBus(ring_size=4)
    bus.subscribe("task.done", lambda e: None)
    bus.subscribe("net.flow", lambda r: None, raw=True)
    port = bus.port("task.done")
    port.emit(task_id=1)
    bus.publish("net.flow", nbytes=5.0)
    s = bus.stats()
    assert s["published"] == 2
    assert s["delivered"] == 2
    assert s["subscriptions"] == 2
    assert s["ports"] == 1
    assert s["ring"] == 2
    # The snapshot is a plain dict (JSON-serialisable telemetry).
    json.dumps(s)


def test_lazy_emit_is_counted_when_delivered():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", seen.append)
    port = bus.port("task.done")
    port.emit_lazy(lambda: {"task_id": 9})
    assert len(seen) == 1
    assert bus.published == 1 and bus.delivered == 1
