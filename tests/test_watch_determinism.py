"""Alert-stream determinism (ISSUE 10 satellite: live ≡ replay ≡ N jobs).

The watch engine is a pure fold of the event stream: a live
:class:`~repro.monitor.RunWatcher` and an offline
:func:`~repro.monitor.alerts_from_events` replay of the same recording
must serialise to *byte-identical* alert streams; a sweep over DES
scenarios must report identical ``alerts_raised`` metrics under
``jobs=1`` and ``jobs=N``; and because the watcher subscribes to the
environment's bus (which ``warm_restart`` reuses), its engine keeps
accumulating across a master crash + warm restart.
"""

import json

import pytest

from repro.desim import Environment
from repro.desim.bus import MemorySink
from repro.monitor import RunWatcher, SpanTracer, alerts_from_events
from repro.scenarios import (
    execute_prepared,
    prepare_chaos,
    warm_restart,
)
from repro.sweep import Axis, SweepSpec, Variant, run_sweep
from repro.testing import reset_id_counters


@pytest.fixture(scope="module")
def chaos_recording():
    """Chaos run with a live watcher and a full event recording."""
    reset_id_counters()
    env = Environment()
    sink = MemorySink()
    env.bus.attach(sink)
    SpanTracer(env)
    watcher = RunWatcher(env.bus)
    prepared = prepare_chaos(files=60, machines=12, cores=4, seed=5, env=env)
    execute_prepared(prepared, settle=300.0)
    return [e.as_dict() for e in sink.events], watcher.engine


def test_live_and_replay_alert_streams_are_byte_identical(chaos_recording):
    events, live_engine = chaos_recording
    assert live_engine.alerts, "fixture run raised no alerts to compare"
    replay = alerts_from_events(events)
    assert json.dumps(live_engine.alerts, sort_keys=True) == json.dumps(
        replay.alerts, sort_keys=True
    )


def test_replay_is_idempotent(chaos_recording):
    events, _ = chaos_recording
    a = alerts_from_events(events).alerts
    b = alerts_from_events(events).alerts
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def test_recorded_alert_events_match_engine_output(chaos_recording):
    """The bus recording contains exactly the engine's emissions —
    same alerts at the same times, in the same order."""
    events, live_engine = chaos_recording
    recorded = [e for e in events if e["topic"].startswith("alert.")]
    assert len(recorded) == len(live_engine.alerts)
    for rec, emitted in zip(recorded, live_engine.alerts):
        assert rec["topic"] == emitted["topic"]
        assert rec["t"] == emitted["t"]
        assert rec["alert"] == emitted["alert"]
        assert rec["level"] == emitted["level"]
        assert rec.get("evidence") == emitted.get("evidence")


def test_alert_events_are_time_ordered(chaos_recording):
    events, _ = chaos_recording
    times = [e["t"] for e in events]
    assert times == sorted(times), (
        "publishing alerts at the triggering event's time must keep the "
        "recorded stream monotone"
    )


def chaos_spec() -> SweepSpec:
    return SweepSpec(
        name="watch-parity",
        scenario="chaos",
        seed=5,
        base={"files": 12, "machines": 6, "cores": 2},
        axes=[
            Axis("seed", (Variant("s5", {"seed": 5}),
                          Variant("s6", {"seed": 6}))),
        ],
    )


def test_sweep_jobs_do_not_change_alert_metrics():
    p1 = run_sweep(chaos_spec(), jobs=1)
    p2 = run_sweep(chaos_spec(), jobs=2)
    rows1 = {r["run_id"]: r["metrics"] for r in p1["runs"]}
    rows2 = {r["run_id"]: r["metrics"] for r in p2["runs"]}
    assert rows1 == rows2
    for metrics in rows1.values():
        assert "alerts_raised" in metrics
        assert "alerts_cleared" in metrics


def test_watcher_survives_warm_restart():
    reset_id_counters()
    env = Environment()
    watcher = RunWatcher(env.bus)
    prepared = prepare_chaos(
        env=env, files=12, machines=6, cores=2, seed=1,
        master_crash_at=1500.0,
    )
    execute_prepared(prepared, settle=60.0)
    assert prepared.run.crashed
    seen_at_crash = watcher.engine.events_seen
    windows_at_crash = watcher.engine.windows_closed

    resumed = warm_restart(prepared)
    execute_prepared(resumed, settle=300.0)
    assert resumed.run.finished_at is not None
    # Same env, same bus, same watcher: the engine kept folding.
    assert watcher.engine.events_seen > seen_at_crash
    assert watcher.engine.windows_closed > windows_at_crash
    # Post-restart, the exact metrics of the resumed run see any alerts
    # the (still-attached) watcher publishes from here on.
    assert resumed.run.metrics.n_alerts_raised <= len(
        watcher.engine.alerts_raised()
    )
