"""Edge cases for the monitor's statistics helpers.

Percentile and summary helpers must stay total: empty inputs yield NaN
(never a numpy IndexError), and a single sample is its own percentile
for every q.
"""

import math

import numpy as np
import pytest

from repro.monitor import RunMetrics, all_segment_stats, percentile, summarize
from repro.monitor.stats import segment_stats


# ---------------------------------------------------------------- percentile
def test_percentile_empty_is_nan():
    assert math.isnan(percentile([], 50))
    assert math.isnan(percentile((), 99))


def test_percentile_single_sample_is_that_sample():
    for q in (0, 1, 50, 90, 99, 100):
        assert percentile([42.0], q) == 42.0


def test_percentile_matches_numpy_on_real_data():
    samples = [5.0, 1.0, 9.0, 3.0]
    assert percentile(samples, 50) == float(np.percentile(samples, 50))


# ---------------------------------------------------------------- summarize
def test_summarize_empty_is_degenerate_not_none():
    s = summarize("setup", [])
    assert s.segment == "setup"
    assert s.n == 0
    for value in (s.mean, s.p50, s.p90, s.p99, s.max):
        assert math.isnan(value)
    assert math.isnan(s.tail_ratio)
    # Degenerate summaries still render without raising.
    assert "setup" in s.row()


def test_summarize_single_sample():
    s = summarize("cpu", [120.0])
    assert s.n == 1
    assert s.mean == s.p50 == s.p90 == s.p99 == s.max == 120.0
    assert s.tail_ratio == 1.0


def test_summarize_tail_ratio_zero_cases():
    # All-zero samples: no tail at all.
    assert summarize("io", [0.0, 0.0]).tail_ratio == 1.0
    # Median zero but a nonzero tail: infinite ratio.
    s = summarize("io", [0.0] * 99 + [50.0])
    assert s.tail_ratio == float("inf")


def test_summarize_percentile_ordering():
    s = summarize("cpu", list(range(1, 101)))
    assert s.p50 <= s.p90 <= s.p99 <= s.max
    assert s.tail_ratio == pytest.approx(s.p99 / s.p50)


# ------------------------------------------------- metrics-level helpers
def test_segment_stats_absent_segment_is_none():
    assert segment_stats(RunMetrics(), "setup") is None


def test_all_segment_stats_empty_metrics():
    assert all_segment_stats(RunMetrics()) == {}


# ------------------------------------------------------------ histogram_ascii
def test_histogram_ascii_drops_non_finite_samples():
    """NaN/inf samples used to propagate into np.histogram's range
    computation and crash; they must be dropped and reported instead."""
    from repro.monitor import histogram_ascii

    out = histogram_ascii([1.0, float("nan"), 2.0, float("inf"), 3.0,
                           float("-inf")])
    assert "dropped 3 non-finite samples" in out.splitlines()[0]
    # The finite samples still bin normally below the header.
    assert "|" in out.splitlines()[-1]


def test_histogram_ascii_single_non_finite_sample_is_singular():
    from repro.monitor import histogram_ascii

    out = histogram_ascii([1.0, 2.0, float("nan")])
    assert "dropped 1 non-finite sample" in out
    assert "samples" not in out  # singular form


def test_histogram_ascii_all_non_finite_is_header_only():
    from repro.monitor import histogram_ascii

    out = histogram_ascii([float("nan"), float("inf")])
    assert out == "(dropped 2 non-finite samples)"


def test_histogram_ascii_finite_input_has_no_drop_header():
    from repro.monitor import histogram_ascii

    out = histogram_ascii([1.0, 2.0, 3.0, 4.0])
    assert "dropped" not in out
    assert out  # non-empty histogram
