"""The acceptance criterion for the bus refactor: ``repro.monitor`` is a
pure *subscriber*.  It may depend on the simulation substrate (``desim``)
and the analysis vocabulary, but must not import from the scheduler
(``wq``), the batch system (``batch``), software delivery (``cvmfs``),
or storage (``storage``) — the bus event stream is the entire contract.
"""

import ast
import pathlib
import sys


MONITOR_DIR = (
    pathlib.Path(__file__).resolve().parent.parent / "src" / "repro" / "monitor"
)
FORBIDDEN = ("wq", "batch", "cvmfs", "storage")


def _imported_repro_modules(path: pathlib.Path):
    """Yield (lineno, module) for every repro-internal import in *path*."""
    tree = ast.parse(path.read_text(), filename=str(path))
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.level > 0:
                # Relative import: level 1 is repro.monitor itself, level
                # 2 reaches into sibling subpackages of repro.
                if node.level >= 2 and node.module:
                    yield node.lineno, node.module
            elif node.module and node.module.startswith("repro."):
                yield node.lineno, node.module[len("repro."):]
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro."):
                    yield node.lineno, alias.name[len("repro."):]


def test_monitor_sources_import_no_substrate_layer():
    offenders = []
    for path in sorted(MONITOR_DIR.glob("*.py")):
        for lineno, module in _imported_repro_modules(path):
            top = module.split(".")[0]
            if top in FORBIDDEN:
                offenders.append(f"{path.name}:{lineno} imports repro.{module}")
    assert not offenders, "monitor/ must only subscribe, not import:\n" + "\n".join(
        offenders
    )


def test_monitor_importable_without_substrate_layers():
    """repro.monitor's real dependency graph must not reach the
    scheduler/batch/cvmfs/storage packages.

    The top-level ``repro`` package eagerly imports every subpackage, so
    the subprocess stubs it (keeping only ``__path__``) and imports
    ``repro.monitor`` directly — loading exactly what monitor itself
    depends on, transitively.
    """
    import subprocess

    code = (
        "import sys, types\n"
        f"root = {str(MONITOR_DIR.parent)!r}\n"
        "pkg = types.ModuleType('repro')\n"
        "pkg.__path__ = [root]\n"
        "sys.modules['repro'] = pkg\n"
        "import repro.monitor\n"
        "bad = [m for m in sys.modules if m.startswith("
        "('repro.wq', 'repro.batch', 'repro.cvmfs', 'repro.storage'))]\n"
        "assert not bad, bad\n"
        "print('ok')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(MONITOR_DIR.parent.parent)},
    )
    assert proc.returncode == 0, proc.stderr
    assert "ok" in proc.stdout


def test_collector_feeds_metrics_from_bus_events():
    """End-to-end inversion check: publishing the scheduler's topics onto
    a bare bus (no scheduler imported) populates RunMetrics."""
    from repro.desim import EventBus, Topics
    from repro.monitor import BusCollector

    bus = EventBus()
    collector = BusCollector(bus)
    bus.publish(Topics.TASK_START, _time=1.0, running=1)
    bus.publish(
        Topics.TASK_RESULT,
        _time=9.0,
        workflow="wf",
        task_id=1,
        category="analysis",
        exit_code=0,
        submitted=0.0,
        started=1.0,
        finished=9.0,
        segments={"cpu": 7.0, "setup": 1.0},
        wq_stage_in=0.5,
        wq_stage_out=0.25,
        lost_time=0.0,
        output_bytes=1e6,
    )
    bus.publish(Topics.TASK_DONE, _time=9.0, task_id=1, ok=True, running=0)
    bus.publish(Topics.EVICTION, _time=10.0, slot="slot0")

    m = collector.metrics
    assert m.n_tasks == 1 and m.n_succeeded() == 1
    assert m.records[0].segments["cpu"] == 7.0
    assert list(zip(m.running.times, m.running.values)) == [(1.0, 1.0), (9.0, 0.0)]
    assert m.evictions_seen == 1

    collector.close()
    bus.publish(Topics.EVICTION, _time=11.0, slot="slot1")
    assert m.evictions_seen == 1  # detached


def test_collector_workflow_filter():
    from repro.desim import EventBus, Topics
    from repro.monitor import BusCollector

    bus = EventBus()
    mine = BusCollector(bus, workflows=["wf-a"])
    fields = dict(
        category="analysis",
        exit_code=0,
        submitted=0.0,
        started=0.0,
        finished=1.0,
        segments={},
        wq_stage_in=0.0,
        wq_stage_out=0.0,
        lost_time=0.0,
        output_bytes=0.0,
    )
    bus.publish(Topics.TASK_RESULT, _time=1.0, workflow="wf-a", task_id=1, **fields)
    bus.publish(Topics.TASK_RESULT, _time=1.0, workflow="wf-b", task_id=2, **fields)
    assert [r.task_id for r in mine.metrics.records] == [1]


def test_metrics_from_events_round_trips_jsonl(tmp_path):
    """Record events through a JsonlSink, reload, rebuild metrics."""
    from repro.desim import EventBus, Topics
    from repro.monitor import JsonlSink, load_events, metrics_from_events

    path = tmp_path / "events.jsonl"
    bus = EventBus()
    with JsonlSink(str(path)) as sink:
        bus.attach(sink)
        bus.publish(Topics.TASK_START, _time=1.0, running=1)
        bus.publish(
            Topics.TASK_RESULT,
            _time=5.0,
            workflow="wf",
            task_id=4,
            category="analysis",
            exit_code=0,
            submitted=0.0,
            started=1.0,
            finished=5.0,
            segments={"cpu": 3.0},
            wq_stage_in=0.0,
            wq_stage_out=0.0,
            lost_time=0.0,
            output_bytes=0.0,
        )
    events = load_events(str(path))
    assert sink.count == len(events) == 2
    m = metrics_from_events(events)
    assert m.n_tasks == 1
    assert m.records[0].task_id == 4
    assert m.records[0].segments == {"cpu": 3.0}
    assert len(m.running) == 1


def test_two_filtered_collectors_one_bus_split_attributed_events():
    """Two runs share one bus; each filtered collector must see only its
    own evictions, exhaustions, fallbacks, integrity events, and
    duplicates — not just its own task results.  Unattributed (legacy)
    events reach both."""
    from repro.desim import EventBus, Topics
    from repro.monitor import BusCollector

    bus = EventBus()
    a = BusCollector(bus, workflows=["wf-a"])
    b = BusCollector(bus, workflows=["wf-b"])

    # Single-label producers stamp ``workflow=``.
    bus.publish(Topics.TASK_EXHAUSTED, _time=1.0, workflow="wf-a", task_id=1)
    bus.publish(Topics.TASK_DUPLICATE, _time=2.0, workflow="wf-b", task_id=2)
    bus.publish(Topics.RECOVERY_FALLBACK, _time=3.0, workflow="wf-a",
                kind="stream")
    bus.publish(Topics.INTEGRITY_CORRUPT, _time=4.0, workflow="wf-b",
                lfn="/store/x.root")
    # Pool-level producers stamp ``workflows=`` (a label list).
    bus.publish(Topics.EVICTION, _time=5.0, workflows=["wf-a"], slot="s0")
    bus.publish(Topics.EVICTION, _time=6.0, workflows=["wf-b"], slot="s1")
    bus.publish(Topics.EVICTION, _time=7.0, workflows=["wf-a", "wf-b"],
                slot="shared")
    # Unattributed events must reach both collectors (back-compat).
    bus.publish(Topics.EVICTION, _time=8.0, slot="legacy")
    bus.publish(Topics.TASK_EXHAUSTED, _time=9.0, task_id=9)

    assert a.metrics.tasks_exhausted == 2  # wf-a + unattributed
    assert b.metrics.tasks_exhausted == 1  # unattributed only
    assert len(a.metrics.duplicates_dropped) == 0
    assert len(b.metrics.duplicates_dropped) == 1
    assert len(a.metrics.stream_fallbacks) == 1
    assert len(b.metrics.stream_fallbacks) == 0
    assert len(a.metrics.integrity_corrupt) == 0
    assert len(b.metrics.integrity_corrupt) == 1
    assert a.metrics.evictions_seen == 3  # s0 + shared + legacy
    assert b.metrics.evictions_seen == 3  # s1 + shared + legacy


def test_pool_evictions_are_workflow_attributed_end_to_end():
    """CondorPool(workflows=...) stamps its eviction events so a filtered
    collector on a shared bus no longer overcounts foreign evictions."""
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.desim import Environment, Interrupt, Topics
    from repro.distributions import ConstantHazardEviction
    from repro.monitor import BusCollector

    HOUR = 3600.0
    env = Environment()
    machines = MachinePool.homogeneous(env, 2, cores=8)
    pool = CondorPool(
        env,
        machines,
        eviction=ConstantHazardEviction(0.9, bin_width=HOUR),
        seed=3,
        workflows=["wf-a"],
    )
    mine = BusCollector(env.bus, workflows=["wf-a"])
    other = BusCollector(env.bus, workflows=["wf-z"])
    seen = []
    env.bus.subscribe(Topics.EVICTION, lambda ev: seen.append(ev.fields))

    def factory(slot):
        def run():
            try:
                yield slot.pool.env.timeout(10 * HOUR)
            except Interrupt:
                pass

        return run()

    pool.submit(GlideinRequest(n_workers=2, start_interval=0.0), factory)
    env.run(until=40 * HOUR)

    assert pool.total_evictions >= 2
    assert seen and all(f.get("workflows") == ["wf-a"] for f in seen)
    assert mine.metrics.evictions_seen == pool.total_evictions
    assert other.metrics.evictions_seen == 0
