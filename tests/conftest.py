"""Shared fixtures for the test suite.

CI runs the suite under a small seed matrix (``REPRO_TEST_SEED`` in
{0, 1, 2}); tests exercising stochastic paths take the ``test_seed``
fixture so the matrix actually varies their draws while a plain local
``pytest`` run stays at seed 0.  Seed resolution lives in
:func:`repro.testing.resolve_test_seed`, shared with
``benchmarks/conftest.py`` and the sweep engine.
"""

import pytest

from repro.testing import resolve_test_seed

TEST_SEED = resolve_test_seed()


@pytest.fixture
def test_seed() -> int:
    """The seed for this CI matrix leg (0 outside the matrix)."""
    return TEST_SEED
