"""Reproducibility: identical seeds produce identical simulations.

Whole-cluster determinism is the property that makes the figure
benchmarks trustworthy: nothing in the stack may depend on wall-clock,
hash randomisation, or process-global counters.
"""


from repro import reset_id_counters
from repro.analysis import data_processing_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    LobsterConfig,
    LobsterRun,
    MergeMode,
    Services,
    WorkflowConfig,
)
from repro.dbs import DBS, synthetic_dataset
from repro.desim import Environment
from repro.distributions import WeibullEviction


def run_once(events_path=None):
    env = Environment()
    if events_path is not None:
        from repro.monitor import JsonlSink

        sink = JsonlSink(events_path)
        env.bus.attach(sink)
    dbs = DBS()
    ds = synthetic_dataset(n_files=20, events_per_file=5_000, lumis_per_file=20, seed=7)
    dbs.register(ds)
    services = Services.default(env, dbs=dbs, seed=7)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="data",
                code=data_processing_code(),
                dataset=ds.name,
                lumis_per_tasklet=5,
                tasklets_per_task=2,
                merge_mode=MergeMode.INTERLEAVED,
                merge_target_bytes=2e8,
                max_retries=50,
            )
        ],
        cores_per_worker=4,
        seed=7,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 5, cores=4)
    pool = CondorPool(env, machines, eviction=WeibullEviction(), seed=7)
    pool.submit(
        GlideinRequest(n_workers=5, cores_per_worker=4, start_interval=1.0),
        run.worker_payload,
    )
    summary = env.run(until=run.process)
    pool.drain()
    if events_path is not None:
        sink.close()
    return env, run, summary


def fingerprint(env, run, summary):
    """Everything that must be identical across replays (ids excluded:
    Task/Worker counters are process-global and differ between runs in
    the same interpreter, but carry no dynamics)."""
    records = sorted(
        (r.workflow, r.category, r.exit_code, round(r.started, 6),
         round(r.finished, 6), round(r.wq_stage_in, 6))
        for r in run.metrics.records
    )
    return (
        round(env.now, 6),
        summary["tasks_succeeded"],
        summary["tasks_failed"],
        summary["tasks_requeued"],
        round(summary["overall_efficiency"], 9),
        summary["workflows"]["data"]["merged_files"],
        records,
    )


def test_full_run_is_deterministic():
    a = fingerprint(*run_once())
    b = fingerprint(*run_once())
    assert a == b


def test_event_stream_is_byte_identical(tmp_path):
    """Same seed → byte-identical JSONL bus event stream.

    The id counters are process-global, so they are rewound before each
    run; with that done even the cosmetic labels (task ids, worker and
    slot names) must replay exactly."""
    path_a = tmp_path / "a.jsonl"
    path_b = tmp_path / "b.jsonl"
    reset_id_counters()
    run_once(events_path=str(path_a))
    reset_id_counters()
    run_once(events_path=str(path_b))
    raw_a = path_a.read_bytes()
    raw_b = path_b.read_bytes()
    assert len(raw_a) > 0
    assert raw_a == raw_b


def test_different_seed_differs():
    env1, run1, s1 = run_once()

    # Same everything but the pool seed: evictions land differently.
    env = Environment()
    dbs = DBS()
    ds = synthetic_dataset(n_files=20, events_per_file=5_000, lumis_per_file=20, seed=7)
    dbs.register(ds)
    services = Services.default(env, dbs=dbs, seed=7)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="data",
                code=data_processing_code(),
                dataset=ds.name,
                lumis_per_tasklet=5,
                tasklets_per_task=2,
                merge_mode=MergeMode.INTERLEAVED,
                merge_target_bytes=2e8,
                max_retries=50,
            )
        ],
        cores_per_worker=4,
        seed=7,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 5, cores=4)
    pool = CondorPool(env, machines, eviction=WeibullEviction(), seed=99)
    pool.submit(
        GlideinRequest(n_workers=5, cores_per_worker=4, start_interval=1.0),
        run.worker_payload,
    )
    env.run(until=run.process)
    pool.drain()
    assert round(env.now, 6) != round(env1.now, 6)
