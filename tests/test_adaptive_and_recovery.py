"""Tests for the §8 adaptive task sizer and §3 scheduler crash recovery."""

import pytest

from repro.analysis import simulation_code
from repro.analysis.report import ExitCode
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    AdaptiveTaskSizer,
    LobsterConfig,
    LobsterDB,
    LobsterRun,
    MergeMode,
    Services,
    TaskletStore,
    WorkflowConfig,
)
from repro.desim import Environment
from repro.distributions import ConstantHazardEviction, NoEviction
from repro.wq.task import Task, TaskResult

HOUR = 3600.0


def make_result(cpu=3000.0, wall=3600.0, lost=0.0, finished=1000.0):
    task = Task(executor=lambda w, t: iter(()), category="analysis")
    task.lost_time = lost
    return TaskResult(
        task=task,
        exit_code=ExitCode.SUCCESS,
        worker_id="w",
        submitted=0.0,
        started=finished - wall,
        finished=finished,
        segments={"cpu": cpu},
    )


# ------------------------------------------------------------------ sizer unit
def test_sizer_validation():
    with pytest.raises(ValueError):
        AdaptiveTaskSizer(initial_size=0)
    with pytest.raises(ValueError):
        AdaptiveTaskSizer(initial_size=5, min_size=6)
    with pytest.raises(ValueError):
        AdaptiveTaskSizer(initial_size=5, window=0)
    with pytest.raises(ValueError):
        AdaptiveTaskSizer(initial_size=5, shrink_factor=1.0)
    with pytest.raises(ValueError):
        AdaptiveTaskSizer(initial_size=5, grow_factor=1.0)


def test_sizer_no_decision_before_window_fills():
    sizer = AdaptiveTaskSizer(initial_size=6, window=10)
    for _ in range(9):
        assert sizer.observe(make_result(lost=10000.0)) is None
    assert sizer.size == 6


def test_sizer_shrinks_on_lost_runtime():
    sizer = AdaptiveTaskSizer(initial_size=8, window=10, lost_threshold=0.15)
    decision = None
    for _ in range(10):
        decision = sizer.observe(make_result(lost=2000.0, wall=3600.0))
    assert decision is not None
    assert decision.reason == "shrink:lost-runtime"
    assert sizer.size == 4
    assert decision.lost_fraction > 0.15


def test_sizer_grows_on_overhead():
    # CPU is only half the wall time and nothing is lost → tasks too small.
    sizer = AdaptiveTaskSizer(initial_size=4, window=10, overhead_threshold=0.35)
    decision = None
    for _ in range(10):
        decision = sizer.observe(make_result(cpu=1800.0, wall=3600.0, lost=0.0))
    assert decision is not None
    assert decision.reason == "grow:overhead"
    assert sizer.size == 6


def test_sizer_healthy_window_holds_steady():
    sizer = AdaptiveTaskSizer(initial_size=6, window=10)
    for _ in range(30):
        sizer.observe(make_result(cpu=3400.0, wall=3600.0, lost=0.0))
    assert sizer.size == 6
    assert sizer.decisions == []


def test_sizer_respects_bounds():
    sizer = AdaptiveTaskSizer(initial_size=2, min_size=2, window=5)
    for _ in range(20):
        sizer.observe(make_result(lost=1e6))
    assert sizer.size == 2  # cannot shrink below min

    sizer = AdaptiveTaskSizer(initial_size=60, max_size=60, window=5)
    for _ in range(20):
        sizer.observe(make_result(cpu=100.0, wall=3600.0))
    assert sizer.size == 60  # cannot grow above max


def test_sizer_hysteresis_one_decision_per_window():
    sizer = AdaptiveTaskSizer(initial_size=32, window=10)
    for _ in range(25):
        sizer.observe(make_result(lost=1e5))
    # 25 observations with window 10 → at most 2 decisions.
    assert len(sizer.decisions) <= 2


# ------------------------------------------------------------------ integrated
def test_adaptive_run_shrinks_under_heavy_eviction():
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(cpu_per_event=2.0, intrinsic_failure_rate=0.0),
        n_events=400_000,
        events_per_tasklet=250,
        tasklets_per_task=24,  # deliberately oversized (~3.3 h tasks)
        merge_mode=MergeMode.NONE,
        max_retries=1000,
    )
    cfg = LobsterConfig(
        workflows=[wf],
        cores_per_worker=4,
        adaptive_task_size=True,
        adaptive_window=20,
        bad_machine_rate=0.0,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 10, cores=4)
    # Harsh pool: mean survival well under the initial task length.
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.6), seed=8)
    pool.submit(
        GlideinRequest(n_workers=10, cores_per_worker=4, start_interval=1.0),
        run.worker_payload,
    )
    env.run(until=run.process)
    pool.drain()
    sizer = run.workflows["mc"].sizer
    assert sizer is not None
    # The controller acted, and only ever downward under these conditions.
    assert sizer.size < 24
    assert all(d.new_size < d.old_size for d in sizer.decisions)
    # The run still completed everything.
    assert run.workflows["mc"].tasklets.complete


# ------------------------------------------------------------------ recovery
def run_partial_then_crash(db):
    """Run a workload for a while, then 'crash' (stop consuming)."""
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=80_000,
        events_per_tasklet=500,
        tasklets_per_task=4,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    run = LobsterRun(env, cfg, services, db=db)
    run.start()
    machines = MachinePool.homogeneous(env, 5, cores=4)
    pool = CondorPool(env, machines, eviction=NoEviction(), seed=9)
    pool.submit(
        GlideinRequest(n_workers=5, cores_per_worker=4, start_interval=0.5),
        run.worker_payload,
    )
    # Crash mid-run: stop the world well before completion (the first
    # wave of ~20 tasks has finished, the second is in flight).
    env.run(until=0.85 * HOUR)
    return run


def test_crash_recovery_resumes_from_db():
    db = LobsterDB()  # shared "disk" surviving the crash
    crashed = run_partial_then_crash(db)
    done_before = crashed.workflows["mc"].tasklets.done_count
    assert 0 < done_before < crashed.workflows["mc"].tasklets.total

    # Reboot: a fresh environment and a fresh LobsterRun over the same DB.
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=80_000,
        events_per_tasklet=500,
        tasklets_per_task=4,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    run = LobsterRun(env, cfg, services, db=db, recover=True)
    run.start()
    machines = MachinePool.homogeneous(env, 5, cores=4)
    pool = CondorPool(env, machines, eviction=NoEviction(), seed=10)
    pool.submit(
        GlideinRequest(n_workers=5, cores_per_worker=4, start_interval=0.5),
        run.worker_payload,
    )
    summary = env.run(until=run.process)
    pool.drain()

    store = run.workflows["mc"].tasklets
    assert store.complete
    assert store.done_count == store.total
    # Recovery did not redo finished work: the resumed run processed only
    # the remainder (tasks of 4 tasklets each).
    redone = 4 * run.metrics.n_succeeded("analysis")
    assert redone == store.total - done_before


def test_recovery_requeues_assigned_tasklets():
    store = TaskletStore.from_event_count("wf", 50, 10)
    claimed = store.claim(3)
    store.mark_done(claimed[:1])
    db = LobsterDB()
    db.record_tasklets(store)
    restored = TaskletStore.restore("wf", db.load_tasklets("wf"))
    assert restored.total == 5
    assert restored.done_count == 1
    # The two in-flight (assigned) tasklets went back to pending.
    assert restored.pending_count == 4


def test_recovery_without_prior_state_builds_fresh():
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=2_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    run = LobsterRun(env, cfg, services, recover=True)  # empty DB
    run.start()
    machines = MachinePool.homogeneous(env, 2, cores=4)
    pool = CondorPool(env, machines, seed=11)
    pool.submit(GlideinRequest(n_workers=2, cores_per_worker=4), run.worker_payload)
    env.run(until=run.process)
    pool.drain()
    assert run.workflows["mc"].tasklets.complete
