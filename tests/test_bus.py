"""Unit tests for the structured event bus (`repro.desim.bus`)."""

import pytest

from repro.desim import Environment, EventBus, MemorySink, Topics
from repro.desim.bus import _matches


# ---------------------------------------------------------------------------
# pattern matching
# ---------------------------------------------------------------------------
def test_pattern_matching():
    assert _matches("*", "task.done")
    assert _matches("task.done", "task.done")
    assert _matches("task.*", "task.done")
    assert _matches("task.*", "task.requeue")
    assert not _matches("task.*", "cache.miss")
    assert not _matches("task.done", "task.dispatch")
    # Prefix patterns require the dot boundary in the pattern itself.
    assert not _matches("task", "task.done")


def test_empty_pattern_rejected():
    bus = EventBus()
    with pytest.raises(ValueError):
        bus.subscribe("", lambda e: None)


# ---------------------------------------------------------------------------
# idle / active semantics
# ---------------------------------------------------------------------------
def test_idle_bus_is_falsy_and_counts_nothing():
    bus = EventBus()
    assert not bus
    bus.publish("task.done", task_id=1)
    assert bus.published == 0 and bus.delivered == 0


def test_subscription_activates_and_cancel_deactivates():
    bus = EventBus()
    sub = bus.subscribe("task.*", lambda e: None)
    assert bus
    sub.cancel()
    assert not bus
    # Double-cancel is harmless.
    sub.cancel()


def test_publish_with_unmatched_topic_is_not_delivered():
    bus = EventBus()
    seen = []
    bus.subscribe("cache.*", seen.append)
    bus.publish("task.done", task_id=1)
    bus.publish("cache.miss", cache="c0")
    assert [e.topic for e in seen] == ["cache.miss"]
    # The unmatched publish is not even counted as published.
    assert bus.published == 1


# ---------------------------------------------------------------------------
# filtering and delivery
# ---------------------------------------------------------------------------
def test_subscription_filtering_and_order():
    bus = EventBus()
    order = []
    bus.subscribe("*", lambda e: order.append(("star", e.topic)))
    bus.subscribe("task.done", lambda e: order.append(("exact", e.topic)))
    bus.publish("task.done", _time=1.0, task_id=7)
    assert order == [("star", "task.done"), ("exact", "task.done")]
    assert bus.delivered == 2


def test_event_fields_and_as_dict_order():
    bus = EventBus()
    sink = MemorySink()
    bus.attach(sink)
    bus.publish("task.done", _time=2.5, task_id=3, ok=True)
    (event,) = sink.events
    assert event.time == 2.5
    assert event.fields == {"task_id": 3, "ok": True}
    assert list(event.as_dict()) == ["t", "topic", "task_id", "ok"]


def test_environment_clock_stamps_events():
    env = Environment()
    sink = MemorySink()
    env.bus.attach(sink, pattern="task.*")
    env.process(_pub_after(env, 5.0))
    env.run()
    assert sink.events[0].time == 5.0


def _pub_after(env, delay):
    yield env.timeout(delay)
    env.bus.publish(Topics.TASK_DONE, task_id=1)


def test_cache_invalidation_on_subscription_change():
    bus = EventBus()
    first, second = [], []
    bus.subscribe("task.done", first.append)
    bus.publish("task.done", _time=0.0, n=1)  # caches the callback tuple
    bus.subscribe("task.*", second.append)
    bus.publish("task.done", _time=0.0, n=2)
    assert len(first) == 2 and len(second) == 1


# ---------------------------------------------------------------------------
# late-subscriber cache staleness (regression suite)
#
# The per-topic callback cache must be invalidated on every subscription
# change; a stale cache would silently drop events for subscribers added
# after the first publish on a topic.  These tests pin down the correct
# behavior for each subscription shape.
# ---------------------------------------------------------------------------
def test_late_exact_subscriber_sees_subsequent_events():
    bus = EventBus()
    early, late = [], []
    bus.subscribe("task.done", early.append)
    for _ in range(3):
        bus.publish("task.done", _time=0.0)  # topic cache now warm
    bus.subscribe("task.done", late.append)
    bus.publish("task.done", _time=1.0)
    assert len(early) == 4
    assert len(late) == 1  # not starved by the pre-warmed cache


def test_late_prefix_subscriber_sees_subsequent_events():
    bus = EventBus()
    early, late = [], []
    bus.subscribe("task.done", early.append)
    bus.publish("task.done", _time=0.0)
    bus.subscribe("task.*", late.append)
    bus.publish("task.done", _time=1.0)
    bus.publish("task.requeue", _time=2.0)
    assert len(early) == 2
    assert [e.topic for e in late] == ["task.done", "task.requeue"]


def test_late_wildcard_subscriber_sees_all_warm_topics():
    bus = EventBus()
    seen = []
    bus.subscribe("task.done", lambda e: None)
    bus.subscribe("cache.miss", lambda e: None)
    bus.publish("task.done", _time=0.0)  # warm both topic caches
    bus.publish("cache.miss", _time=0.0)
    bus.subscribe("*", seen.append)
    bus.publish("task.done", _time=1.0)
    bus.publish("cache.miss", _time=1.0)
    assert [e.topic for e in seen] == ["task.done", "cache.miss"]


def test_resubscribe_after_cancel_is_delivered():
    bus = EventBus()
    seen = []
    sub = bus.subscribe("task.done", seen.append)
    bus.publish("task.done", _time=0.0)
    sub.cancel()
    bus.publish("task.done", _time=1.0)  # cancelled: not delivered
    bus.subscribe("task.done", seen.append)
    bus.publish("task.done", _time=2.0)
    assert [e.time for e in seen] == [0.0, 2.0]


def test_subscribe_from_inside_handler_sees_next_publish():
    bus = EventBus()
    late = []
    subscribed = []

    def handler(event):
        if not subscribed:
            subscribed.append(bus.subscribe("task.done", late.append))

    bus.subscribe("task.done", handler)
    bus.publish("task.done", _time=0.0)  # subscribes `late` mid-delivery
    bus.publish("task.done", _time=1.0)
    assert [e.time for e in late] == [1.0]  # live for the next event


# ---------------------------------------------------------------------------
# ring buffer retention
# ---------------------------------------------------------------------------
def test_ring_buffer_is_bounded_and_activates_bus():
    bus = EventBus(ring_size=3)
    assert bus  # ring alone makes the bus active
    for i in range(10):
        bus.publish("task.done", _time=float(i), n=i)
    assert [e.fields["n"] for e in bus.ring] == [7, 8, 9]
    assert bus.published == 10


def test_ring_size_must_be_non_negative():
    with pytest.raises(ValueError):
        EventBus(ring_size=-1)


def test_wants_vs_has_subscribers():
    bus = EventBus(ring_size=4)
    assert bus.wants("anything")  # the ring sees everything
    assert not bus.has_subscribers("anything")
    bus.subscribe("task.*", lambda e: None)
    assert bus.has_subscribers("task.done")
    assert not bus.has_subscribers("cache.miss")


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------
def test_memory_sink_helpers():
    bus = EventBus()
    sink = MemorySink()
    bus.attach(sink)
    bus.publish("task.done", _time=0.0, n=1)
    bus.publish("cache.miss", _time=0.0, n=2)
    assert sink.topics() == ["task.done", "cache.miss"]
    assert len(sink.of("cache.miss")) == 1
    assert len(sink) == 2
    sink.clear()
    assert len(sink) == 0


def test_attach_object_with_on_event():
    class Sink:
        def __init__(self):
            self.n = 0

        def on_event(self, event):
            self.n += 1

    bus = EventBus()
    sink = Sink()
    bus.attach(sink, pattern="task.*")
    bus.publish("task.done", _time=0.0)
    bus.publish("cache.miss", _time=0.0)
    assert sink.n == 1


# ---------------------------------------------------------------------------
# kernel.step integration
# ---------------------------------------------------------------------------
def test_kernel_step_events_only_when_subscribed():
    env = Environment()
    # No subscriber: the kernel publishes nothing.
    env.process(_ticks(env, 3))
    env.run()
    assert env.bus.published == 0

    env2 = Environment()
    sink = MemorySink()
    env2.bus.subscribe(Topics.KERNEL_STEP, sink)
    env2.process(_ticks(env2, 3))
    env2.run()
    steps = sink.of(Topics.KERNEL_STEP)
    assert len(steps) >= 3
    assert all("kind" in e.fields and "queued" in e.fields for e in steps)


def _ticks(env, n):
    for _ in range(n):
        yield env.timeout(1.0)


def test_kernel_instrumentation_flag_follows_subscription():
    env = Environment()
    assert not env._instrumented
    sub = env.bus.subscribe(Topics.KERNEL_STEP, lambda e: None)
    assert env._instrumented
    sub.cancel()
    assert not env._instrumented


def test_non_kernel_subscription_keeps_fast_path():
    env = Environment()
    env.bus.subscribe("task.*", lambda e: None)
    assert not env._instrumented  # hot loop untouched by domain topics
