"""Extra coverage: Lobster DB queries against a real run, CLI variants."""

import io

import pytest

from repro.analysis import simulation_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.cli import main
from repro.core import LobsterConfig, LobsterRun, MergeMode, Services, WorkflowConfig
from repro.desim import Environment
from repro.distributions import ConstantHazardEviction


def completed_run():
    env = Environment()
    services = Services.default(env)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="mc",
                code=simulation_code(intrinsic_failure_rate=0.05),
                n_events=20_000,
                events_per_tasklet=500,
                tasklets_per_task=4,
                merge_mode=MergeMode.NONE,
                max_retries=20,
            )
        ],
        cores_per_worker=4,
        bad_machine_rate=0.0,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 4, cores=4)
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.2), seed=23)
    pool.submit(
        GlideinRequest(n_workers=4, cores_per_worker=4, start_interval=0.5),
        run.worker_payload,
    )
    env.run(until=run.process)
    pool.drain()
    return env, run


def test_db_reflects_live_run():
    env, run = completed_run()
    db = run.db
    # Task counts match the metrics stream.
    assert db.task_count() == run.metrics.n_tasks
    # Exit-code census matches.
    counts = db.exit_code_counts()
    assert counts.get(0, 0) == run.metrics.n_succeeded()
    failures = sum(v for k, v in counts.items() if k != 0)
    assert failures == run.metrics.n_failed()
    # Segment totals line up with the breakdown's CPU bucket.
    totals = db.segment_totals()
    cpu_from_records = sum(
        r.segments.get("cpu", 0.0) for r in run.metrics.records
    )
    assert totals["cpu"] == pytest.approx(cpu_from_records)
    # Completions timeline covers every recorded task.
    timeline = db.completions_timeline(bin_width=1800.0)
    assert sum(ok + bad for _, ok, bad in timeline) == run.metrics.n_tasks
    # Lost time matches the tasks table.
    assert db.lost_time_total() >= 0.0
    # All tasklets ended in a terminal state, and the DB agrees.
    states = db.tasklet_state_counts("mc")
    assert set(states) <= {"done", "failed"}
    assert sum(states.values()) == 40


def test_db_segment_histogram_covers_all_tasks():
    env, run = completed_run()
    hist = run.db.segment_histogram("cpu", bin_width=600.0)
    assert sum(c for _, c in hist) == sum(
        1 for r in run.metrics.records if "cpu" in r.segments
    )


# ---------------------------------------------------------------- CLI extras
def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_tasksize_weibull_and_none():
    code, text = run_cli(
        ["tasksize", "--tasklets", "400", "--workers", "40", "--eviction", "weibull"]
    )
    assert code == 0 and "optimal:" in text
    code, text = run_cli(
        ["tasksize", "--tasklets", "400", "--workers", "40", "--eviction", "none"]
    )
    assert code == 0
    # Without eviction the longest task length wins.
    assert "optimal: 10.00 h" in text


def test_cli_process_with_outage():
    code, text = run_cli(
        [
            "process",
            "--files", "12",
            "--machines", "2",
            "--cores", "4",
            "--outage-hours", "0.2",
        ]
    )
    assert code == 0
    assert "LOBSTER RUN REPORT" in text


def test_cli_unknown_profile_exits():
    with pytest.raises(SystemExit):
        run_cli(["simulate", "--profile", "no-such-profile"])
