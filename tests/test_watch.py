"""The live run-health engine (``repro.monitor.watch``, DESIGN.md §15).

Two layers: synthetic-event unit tests of the engine's window closure,
hysteresis, dedup, and evidence pooling (no simulation, so thresholds
are exercised precisely), then scenario-level gates — a clean quickstart
must stay alert-silent while the chaos barrage raises the §5 detectors
with evidence span ids that resolve against the causal trace.
"""

import pytest

from repro.desim import Environment
from repro.desim.bus import Topics
from repro.monitor import (
    DEFAULT_DETECTORS,
    DetectorSpec,
    RollupCollector,
    RunWatcher,
    SpanTracer,
    WatchEngine,
    render_report,
)
from repro.monitor.watch import WATCH_TOPICS
from repro.scenarios import execute_prepared, prepare_chaos, prepare_quickstart


# ------------------------------------------------------------------ helpers
def storm_only(**overrides) -> WatchEngine:
    """An engine with just the eviction-storm detector, window=100s."""
    spec = dict(
        id="eviction_storm", severity="warning",
        raise_above=8.0, clear_below=2.0,
        raise_windows=1, clear_windows=1, evidence="eviction",
    )
    spec.update(overrides)
    return WatchEngine(window=100.0, detectors=[DetectorSpec(**spec)])


def feed_evictions(engine: WatchEngine, t0: float, n: int) -> None:
    for i in range(n):
        engine.ingest(Topics.EVICTION, t0 + i * 0.1, {"machine": f"m{i}"})


# ------------------------------------------------------------------ units
def test_windows_close_on_event_time_only():
    eng = WatchEngine(window=100.0)
    eng.ingest(Topics.CACHE_HIT, 0.0, {})
    eng.ingest(Topics.CACHE_HIT, 99.9, {})
    assert eng.windows_closed == 0  # trailing partial never evaluated
    eng.ingest(Topics.CACHE_HIT, 100.0, {})
    assert eng.windows_closed == 1
    eng.ingest(Topics.CACHE_HIT, 350.0, {})  # skips two boundaries
    assert eng.windows_closed == 3


def test_rejects_nonpositive_window():
    with pytest.raises(ValueError):
        WatchEngine(window=0.0)


def test_storm_raises_then_clears_with_hysteresis():
    eng = storm_only()
    feed_evictions(eng, 10.0, 9)
    eng.ingest(Topics.CACHE_HIT, 100.0, {})  # closes window 0
    raised = eng.alerts_raised()
    assert len(raised) == 1
    a = raised[0]
    assert a["alert"] == "eviction_storm-1"
    assert a["detector"] == "eviction_storm"
    assert a["severity"] == "warning"
    assert a["window"] == 0
    assert a["level"] == 9.0
    assert eng.active_alerts() == ["eviction_storm-1"]
    # Still noisy (above clear_below): no clear, no duplicate raise.
    feed_evictions(eng, 110.0, 5)
    eng.ingest(Topics.CACHE_HIT, 200.0, {})
    assert len(eng.alerts) == 1
    # A quiet window clears it.
    eng.ingest(Topics.CACHE_HIT, 300.0, {})
    cleared = eng.alerts_cleared()
    assert len(cleared) == 1
    assert cleared[0]["alert"] == "eviction_storm-1"
    assert eng.active_alerts() == []


def test_realert_gets_a_fresh_sequence_number():
    eng = storm_only()
    feed_evictions(eng, 10.0, 9)
    eng.ingest(Topics.CACHE_HIT, 100.0, {})   # raise -1
    eng.ingest(Topics.CACHE_HIT, 200.0, {})   # clear -1
    feed_evictions(eng, 210.0, 9)
    eng.ingest(Topics.CACHE_HIT, 300.0, {})   # raise -2
    ids = [a["alert"] for a in eng.alerts_raised()]
    assert ids == ["eviction_storm-1", "eviction_storm-2"]


def test_raise_requires_consecutive_windows():
    eng = storm_only(raise_windows=2)
    feed_evictions(eng, 10.0, 9)
    eng.ingest(Topics.CACHE_HIT, 100.0, {})   # 1 hot window: not yet
    assert not eng.alerts
    eng.ingest(Topics.CACHE_HIT, 200.0, {})   # quiet window resets streak
    feed_evictions(eng, 210.0, 9)
    eng.ingest(Topics.CACHE_HIT, 300.0, {})   # hot again: streak = 1
    assert not eng.alerts
    feed_evictions(eng, 310.0, 9)
    eng.ingest(Topics.CACHE_HIT, 400.0, {})   # second consecutive: raise
    assert len(eng.alerts_raised()) == 1


def test_stuck_campaign_needs_sustained_silence_with_work_pending():
    eng = WatchEngine(window=100.0)
    eng.ingest(Topics.TASK_START, 5.0, {"running": 4})
    # Three windows with zero completions while tasks are running.
    for t in (100.0, 200.0, 300.0):
        eng.ingest(Topics.CACHE_HIT, t, {})
    raised = eng.alerts_raised()
    assert [a["detector"] for a in raised] == ["stuck_campaign"]
    assert raised[0]["severity"] == "critical"


def test_completions_keep_stuck_campaign_silent():
    eng = WatchEngine(window=100.0)
    eng.ingest(Topics.TASK_START, 5.0, {"running": 4})
    for w in range(6):
        eng.ingest(Topics.TASK_RESULT, w * 100.0 + 50.0, {"exit_code": 0})
        eng.ingest(Topics.CACHE_HIT, (w + 1) * 100.0, {})
    assert not eng.alerts


def test_quarantine_spike_with_instant_span_evidence():
    eng = WatchEngine(window=100.0)
    eng.ingest(
        Topics.SPAN_START, 40.0,
        {"span": 7, "trace": 3, "name": Topics.INTEGRITY_QUARANTINE},
    )
    eng.ingest(Topics.INTEGRITY_QUARANTINE, 40.0, {"name": "out.root"})
    eng.ingest(Topics.CACHE_HIT, 100.0, {})
    raised = eng.alerts_raised()
    assert [a["detector"] for a in raised] == ["quarantine_spike"]
    evidence = raised[0]["evidence"]
    assert {"trace": 3, "span": 7, "name": Topics.INTEGRITY_QUARANTINE,
            "status": "instant"} in evidence


def test_eviction_evidence_from_attempt_spans():
    eng = storm_only()
    eng.ingest(Topics.SPAN_START, 5.0,
               {"span": 11, "trace": 2, "name": "attempt"})
    eng.ingest(Topics.SPAN_END, 8.0, {"span": 11, "status": "eviction"})
    feed_evictions(eng, 10.0, 9)
    eng.ingest(Topics.CACHE_HIT, 100.0, {})
    evidence = eng.alerts_raised()[0]["evidence"]
    assert {"trace": 2, "span": 11, "name": "attempt",
            "status": "eviction"} in evidence


def test_evidence_pools_are_bounded():
    eng = storm_only()
    for i in range(50):
        eng.ingest(Topics.SPAN_START, 1.0 + i,
                   {"span": i, "trace": 1, "name": "attempt"})
        eng.ingest(Topics.SPAN_END, 2.0 + i, {"span": i, "status": "eviction"})
    feed_evictions(eng, 60.0, 9)
    eng.ingest(Topics.CACHE_HIT, 100.0, {})
    evidence = eng.alerts_raised()[0]["evidence"]
    assert len(evidence) == 5  # bounded deque: most recent five
    assert evidence[-1]["span"] == 49
    assert not eng._span_names  # ended spans are popped


def test_alert_topics_are_not_watch_inputs():
    assert Topics.ALERT_RAISE not in WATCH_TOPICS
    assert Topics.ALERT_CLEAR not in WATCH_TOPICS


def test_default_catalogue_covers_the_section5_heuristics():
    ids = {d.id for d in DEFAULT_DETECTORS}
    assert ids == {
        "throughput_collapse", "eviction_storm", "blacklist_saturation",
        "cache_degradation", "merge_backlog", "stuck_campaign",
        "quarantine_spike",
    }
    for d in DEFAULT_DETECTORS:
        assert d.severity in ("critical", "warning")
        assert d.raise_above > d.clear_below or d.clear_below == 0.0


# ------------------------------------------------------------------ scenarios
@pytest.fixture(scope="module")
def chaos_watch():
    """One chaos run with the full observer stack attached."""
    env = Environment()
    tracer = SpanTracer(env)
    collector = RollupCollector(env.bus)
    watcher = RunWatcher(env.bus)
    prepared = prepare_chaos(files=60, machines=12, cores=4, seed=5, env=env)
    execute_prepared(prepared, settle=300.0)
    tracer.finalize()
    return prepared.run, watcher, collector.rollup, tracer


def test_clean_quickstart_is_alert_silent():
    env = Environment()
    watcher = RunWatcher(env.bus)
    prepared = prepare_quickstart(events=200_000, workers=8, seed=11, env=env)
    execute_prepared(prepared, settle=300.0)
    assert watcher.engine.windows_closed > 0
    assert watcher.engine.alerts == []


def test_chaos_raises_storm_and_blacklist_with_evidence(chaos_watch):
    run, watcher, rollup, tracer = chaos_watch
    raised = watcher.engine.alerts_raised()
    detectors = {a["detector"] for a in raised}
    assert "eviction_storm" in detectors
    assert "blacklist_saturation" in detectors
    known = {(s.trace_id, s.span_id) for s in tracer.spans}
    for a in raised:
        assert a["evidence"], f"{a['alert']} has no evidence"
        for e in a["evidence"]:
            assert (e["trace"], e["span"]) in known


def test_alerts_flow_into_metrics_rollup_and_report(chaos_watch):
    run, watcher, rollup, tracer = chaos_watch
    raised = len(watcher.engine.alerts_raised())
    cleared = len(watcher.engine.alerts_cleared())
    assert raised > 0
    # The collector and the rollup both saw the published alert events.
    assert run.metrics.n_alerts_raised == raised
    assert run.metrics.n_alerts_cleared == cleared
    assert rollup.alerts_raised == raised
    assert rollup.alerts_cleared == cleared
    report = render_report(run)
    assert "live run health (watch alerts)" in report
    assert "RAISE" in report
    assert "evidence:" in report


def test_watcher_samples_bus_stats_per_window(chaos_watch):
    run, watcher, rollup, tracer = chaos_watch
    assert len(watcher.bus_timeline) == watcher.engine.windows_closed
    published = [p for _, p, _ in watcher.bus_timeline]
    assert published == sorted(published)  # monotone counters
    times = [t for t, _, _ in watcher.bus_timeline]
    assert times == sorted(times)


def test_cli_watch_live_then_replay_byte_identical(tmp_path):
    import io

    from repro.cli import main

    def run_cli(argv):
        out = io.StringIO()
        return main(argv, out=out), out.getvalue()

    events = str(tmp_path / "events.jsonl")
    live_json = str(tmp_path / "alerts_live.json")
    replay_json = str(tmp_path / "alerts_replay.json")
    code, text = run_cli([
        "watch", "--scenario", "chaos", "--seed", "5",
        "--param", "files=60", "--param", "machines=12", "--param", "cores=4",
        "--events-out", events, "--alerts-out", live_json,
        "--refresh-every", "1800", "--fail-on-alert",
        "--out", str(tmp_path / "watch.html"),
    ])
    assert code == 1  # chaos raised alerts and --fail-on-alert was set
    assert "ALERT RAISE" in text
    assert "mid-run refreshes" in text
    html = open(tmp_path / "watch.html", encoding="utf-8").read()
    assert "Live run health" in html

    code, text = run_cli([
        "watch", "--replay", events, "--alerts-out", replay_json,
        "--out", str(tmp_path / "watch_replay.html"),
    ])
    assert code == 0
    live_bytes = open(live_json, "rb").read()
    assert live_bytes == open(replay_json, "rb").read()
    assert live_bytes  # non-empty stream


def test_cli_watch_clean_quickstart_exits_zero(tmp_path):
    import io

    from repro.cli import main

    out = io.StringIO()
    code = main([
        "watch", "--scenario", "quickstart",
        "--param", "events=20000", "--param", "workers=4",
        "--fail-on-alert", "--out", str(tmp_path / "q.html"),
    ], out=out)
    assert code == 0
    assert "alerts: 0 raised, 0 cleared" in out.getvalue()


def test_watcher_close_detaches(chaos_watch):
    env = Environment()
    watcher = RunWatcher(env.bus, window=100.0)
    env.bus.publish(Topics.EVICTION, _time=5.0, machine="m0")
    assert watcher.engine.events_seen == 1
    watcher.close()
    env.bus.publish(Topics.EVICTION, _time=6.0, machine="m0")
    assert watcher.engine.events_seen == 1
