"""Second round of property-based tests: masks, HDFS, Chirp, sizer, pool."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import AdaptiveTaskSizer
from repro.dbs import LumiMask, LumiSection
from repro.desim import Environment
from repro.hadoop import HDFS
from repro.storage import ChirpServer

MB = 1_000_000.0


# ------------------------------------------------------------ lumi masks
span = st.tuples(st.integers(1, 500), st.integers(0, 50)).map(
    lambda t: [t[0], t[0] + t[1]]
)
mask_dict = st.dictionaries(st.integers(1, 20), st.lists(span, min_size=1, max_size=5), max_size=5)


@given(a=mask_dict, b=mask_dict)
@settings(max_examples=50, deadline=None)
def test_mask_union_contains_both(a, b):
    ma, mb = LumiMask(a), LumiMask(b)
    u = ma.union(mb)
    probes = [
        LumiSection(run, lumi)
        for run in list(a) + list(b)
        for lumi in (1, 5, 50, 200, 550)
    ]
    for p in probes:
        if p in ma or p in mb:
            assert p in u


@given(a=mask_dict, b=mask_dict)
@settings(max_examples=50, deadline=None)
def test_mask_intersection_is_subset(a, b):
    ma, mb = LumiMask(a), LumiMask(b)
    i = ma.intersect(mb)
    probes = [
        LumiSection(run, lumi)
        for run in set(list(a) + list(b))
        for lumi in (1, 10, 100, 300)
    ]
    for p in probes:
        if p in i:
            assert p in ma and p in mb
        if not (p in ma and p in mb):
            assert p not in i


@given(m=mask_dict)
@settings(max_examples=50, deadline=None)
def test_mask_json_roundtrip_preserves_membership(m):
    mask = LumiMask(m)
    again = LumiMask.from_json(mask.to_json())
    assert again.n_lumis() == mask.n_lumis()
    for run in mask.runs:
        for lumi in (1, 7, 42, 333):
            p = LumiSection(run, lumi)
            assert (p in mask) == (p in again)


@given(m=mask_dict)
@settings(max_examples=30, deadline=None)
def test_mask_union_self_is_identity(m):
    mask = LumiMask(m)
    assert mask.union(mask).n_lumis() == mask.n_lumis()


# ------------------------------------------------------------ HDFS
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=500 * MB), min_size=1, max_size=8),
    block_mb=st.floats(min_value=8.0, max_value=256.0),
)
@settings(max_examples=20, deadline=None)
def test_hdfs_write_conserves_bytes_and_blocks(sizes, block_mb):
    env = Environment()
    hdfs = HDFS(env, n_datanodes=4, replication=2, block_size=block_mb * MB, seed=0)

    def proc(env):
        for i, size in enumerate(sizes):
            f = yield from hdfs.write(f"/f{i}", size)
            expected_blocks = max(1, int(np.ceil(size / (block_mb * MB))))
            assert len(f.blocks) == expected_blocks
            assert f.size == pytest.approx(size)

    env.process(proc(env))
    env.run()
    assert hdfs.used_bytes == pytest.approx(sum(sizes))
    # Replication factor holds for every stored block.
    stored = sum(dn.blocks_stored for dn in hdfs.datanodes)
    total_blocks = sum(max(1, int(np.ceil(s / (block_mb * MB)))) for s in sizes)
    assert stored == 2 * total_blocks


# ------------------------------------------------------------ Chirp
@given(
    sizes=st.lists(st.floats(min_value=1.0, max_value=50 * MB), min_size=1, max_size=12),
    conns=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=20, deadline=None)
def test_chirp_serves_everyone_eventually(sizes, conns):
    env = Environment()
    chirp = ChirpServer(
        env, bandwidth=100 * MB, max_connections=conns,
        accept_latency=0.0, queue_timeout=1e9,
    )
    done = []

    def proc(env, nbytes):
        yield from chirp.put(nbytes)
        done.append(nbytes)

    for s in sizes:
        env.process(proc(env, s))
    env.run()
    assert sorted(done) == sorted(sizes)
    assert chirp.bytes_in == pytest.approx(sum(sizes))
    assert chirp.failures == 0
    # Concurrency bound was respected throughout (spot check: the
    # resource's user list is empty at the end and capacity was conns).
    assert chirp.connections.count == 0
    assert chirp.connections.capacity == conns


# ------------------------------------------------------------ adaptive sizer
result_stream = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=5000.0),  # cpu
        st.floats(min_value=1.0, max_value=10000.0),  # wall
        st.floats(min_value=0.0, max_value=10000.0),  # lost
    ),
    max_size=120,
)


@given(stream=result_stream, initial=st.integers(2, 40), window=st.integers(1, 20))
@settings(max_examples=50, deadline=None)
def test_sizer_stays_within_bounds(stream, initial, window):
    from repro.analysis.report import ExitCode
    from repro.wq.task import Task, TaskResult

    sizer = AdaptiveTaskSizer(
        initial_size=initial, min_size=1, max_size=60, window=window
    )
    for cpu, wall, lost in stream:
        task = Task(executor=lambda w, t: iter(()))
        task.lost_time = lost
        r = TaskResult(
            task=task,
            exit_code=ExitCode.SUCCESS,
            worker_id="w",
            submitted=0.0,
            started=0.0,
            finished=max(wall, cpu),
            segments={"cpu": min(cpu, wall)},
        )
        sizer.observe(r)
        assert 1 <= sizer.size <= 60
    # Decisions never exceed observations/window.
    assert len(sizer.decisions) <= max(1, len(stream) // window)
    # Every decision changed the size in the direction its reason claims.
    for d in sizer.decisions:
        if d.reason.startswith("shrink"):
            assert d.new_size < d.old_size
        else:
            assert d.new_size > d.old_size


# ------------------------------------------------------------ max-min fairness
@given(
    demands=st.lists(
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e5)),
        min_size=1,
        max_size=20,
    ),
    capacity=st.floats(min_value=0.1, max_value=1e6),
)
@settings(max_examples=60, deadline=None)
def test_max_min_no_flow_below_equal_share(demands, capacity):
    """Max-min fairness: nobody gets less than min(cap, equal share)."""
    from repro.desim.bandwidth import allocate_max_min

    rates = allocate_max_min(demands, capacity)
    equal = capacity / len(demands)
    for rate, cap in zip(rates, demands):
        floor = equal if cap is None else min(cap, equal)
        assert rate >= floor * (1 - 1e-9)
