"""Tests for monitoring: time series, records, breakdown, troubleshooting."""

import numpy as np
import pytest

from repro.analysis.report import ExitCode
from repro.monitor import (
    EventLog,
    RunMetrics,
    TimeSeries,
    diagnose,
)
from repro.wq.task import Task, TaskResult


# ---------------------------------------------------------------- TimeSeries
def test_timeseries_append_order_enforced():
    ts = TimeSeries()
    ts.append(1.0, 5)
    with pytest.raises(ValueError):
        ts.append(0.5, 3)


def test_timeseries_at_step_interpolation():
    ts = TimeSeries(samples=[(0.0, 1.0), (10.0, 3.0)])
    assert ts.at(-1) == 0.0
    assert ts.at(0.0) == 1.0
    assert ts.at(5.0) == 1.0
    assert ts.at(10.0) == 3.0
    assert ts.at(100.0) == 3.0


def test_timeseries_binned_mean_time_weighted():
    ts = TimeSeries(samples=[(0.0, 0.0), (5.0, 10.0), (10.0, 10.0)])
    starts, vals = ts.binned(10.0, agg="mean")
    # First bin: 0 for 5 s, 10 for 5 s → mean 5.
    assert vals[0] == pytest.approx(5.0)


def test_timeseries_binned_max_and_last():
    ts = TimeSeries(samples=[(1.0, 2.0), (2.0, 9.0), (3.0, 4.0), (15.0, 1.0)])
    starts, vals = ts.binned(10.0, agg="max")
    assert vals[0] == 9.0
    starts, vals = ts.binned(10.0, agg="last")
    assert vals[0] == 4.0
    assert vals[1] == 1.0


def test_timeseries_binned_validation():
    ts = TimeSeries(samples=[(0.0, 1.0)])
    with pytest.raises(ValueError):
        ts.binned(0)
    with pytest.raises(ValueError):
        ts.binned(10.0, agg="median")


def test_empty_timeseries_binned():
    starts, vals = TimeSeries().binned(10.0)
    assert len(starts) == 0 and len(vals) == 0


# ---------------------------------------------------------------- EventLog
def test_eventlog_counts_per_bin():
    log = EventLog()
    for t in (1.0, 2.0, 11.0):
        log.record(t, "ok")
    log.record(12.0, "failed")
    starts, counts = log.counts(10.0)
    assert list(counts) == [2, 2]
    starts, counts = log.counts(10.0, category="ok")
    assert list(counts) == [2, 1]


def test_eventlog_rate():
    log = EventLog()
    for t in range(10):
        log.record(float(t))
    starts, rate = log.rate(10.0)
    assert rate[0] == pytest.approx(1.0)


# ---------------------------------------------------------------- RunMetrics
def fake_result(
    exit_code=ExitCode.SUCCESS,
    started=0.0,
    finished=100.0,
    segments=None,
    lost_time=0.0,
    category="analysis",
):
    task = Task(executor=lambda w, t: iter(()), category=category)
    task.lost_time = lost_time
    return TaskResult(
        task=task,
        exit_code=exit_code,
        worker_id="w",
        submitted=0.0,
        started=started,
        finished=finished,
        segments=segments or {"cpu": 70.0, "io": 20.0, "setup": 5.0},
        wq_stage_in=3.0,
        wq_stage_out=2.0,
    )


def test_runtime_breakdown_buckets():
    m = RunMetrics()
    m.add_result("wf", fake_result())
    m.add_result(
        "wf",
        fake_result(exit_code=ExitCode.FILE_READ_FAILED, started=0.0, finished=50.0),
    )
    b = m.runtime_breakdown()
    assert b.task_cpu == pytest.approx(70.0)
    assert b.task_io == pytest.approx(20.0)
    assert b.task_failed == pytest.approx(50.0)
    assert b.wq_stage_in == pytest.approx(3.0)
    assert b.wq_stage_out == pytest.approx(2.0)
    fr = b.fractions()
    assert sum(fr.values()) == pytest.approx(1.0)
    rows = b.rows()
    assert rows[0][0] == "Task CPU Time"


def test_breakdown_counts_lost_time_as_failed():
    m = RunMetrics()
    m.add_result("wf", fake_result(lost_time=30.0))
    b = m.runtime_breakdown()
    assert b.task_failed == pytest.approx(30.0)


def test_breakdown_excludes_merge_tasks_by_default():
    m = RunMetrics()
    m.add_result("wf", fake_result(category="merge"))
    b = m.runtime_breakdown()
    assert b.total == 0.0


def test_efficiency_timeline_shape():
    m = RunMetrics()
    m.add_result("wf", fake_result(started=0.0, finished=95.0))
    m.add_result("wf", fake_result(started=100.0, finished=250.0))
    starts, eff = m.efficiency_timeline(100.0)
    assert len(starts) == len(eff)
    # Bin 0 holds the first task: cpu 70 / wall 95.
    assert eff[0] == pytest.approx(70.0 / 95.0)
    assert np.all(eff <= 1.0)


def test_counts_and_overall_efficiency():
    m = RunMetrics()
    m.add_result("wf", fake_result())
    m.add_result("wf", fake_result(exit_code=ExitCode.SETUP_FAILED))
    assert m.n_tasks == 2
    assert m.n_succeeded() == 1
    assert m.n_failed() == 1
    assert 0 < m.overall_efficiency() < 1


def test_segment_timeline():
    m = RunMetrics()
    m.add_result("wf", fake_result(finished=10.0, segments={"setup": 100.0}))
    m.add_result("wf", fake_result(finished=20.0, segments={"setup": 50.0}))
    t, v = m.segment_timeline("setup")
    assert list(t) == [10.0, 20.0]
    assert list(v) == [100.0, 50.0]


def test_failure_codes_timeline():
    m = RunMetrics()
    m.add_result("wf", fake_result(exit_code=ExitCode.SETUP_FAILED, finished=5.0))
    timeline = m.failure_codes_timeline()
    assert timeline == [(5.0, "SETUP_FAILED")]


def test_ingest_running_samples():
    m = RunMetrics()
    m.ingest_running_samples([(0.0, 1), (5.0, 2), (10.0, 1)])
    assert m.running.at(6.0) == 2


# ---------------------------------------------------------------- diagnose
def test_diagnose_clean_run_is_quiet():
    m = RunMetrics()
    m.add_result("wf", fake_result())
    assert diagnose(m) == []


def test_diagnose_high_lost_runtime():
    m = RunMetrics()
    m.add_result("wf", fake_result(lost_time=1000.0))
    ds = diagnose(m)
    assert any(d.symptom == "high-lost-runtime" for d in ds)
    assert any("task size" in d.suggestion for d in ds)


def test_diagnose_slow_setup():
    m = RunMetrics()
    for _ in range(3):
        m.add_result(
            "wf", fake_result(segments={"cpu": 100.0, "setup": 2000.0})
        )
    ds = diagnose(m)
    assert any(d.symptom == "slow-environment-setup" for d in ds)
    assert any("squid" in d.suggestion for d in ds)


def test_diagnose_slow_chirp():
    m = RunMetrics()
    m.add_result(
        "wf",
        fake_result(segments={"cpu": 10.0, "stage_in": 200.0, "stage_out": 200.0}),
    )
    ds = diagnose(m)
    assert any(d.symptom == "slow-stage-in-out" for d in ds)
    assert any("Chirp" in d.suggestion for d in ds)


def test_diagnose_slow_sandbox_stage_in():
    m = RunMetrics()
    r = fake_result()
    r.wq_stage_in = 500.0
    m.add_result("wf", r)
    ds = diagnose(m)
    assert any(d.symptom == "slow-sandbox-stage-in" for d in ds)
    assert any("foremen" in d.suggestion for d in ds)


# ---------------------------------------------------------------- report
def test_ascii_bar_bounds():
    from repro.monitor import ascii_bar

    assert ascii_bar(0.0, 10) == "[" + " " * 10 + "]"
    assert ascii_bar(1.0, 10) == "[" + "#" * 10 + "]"
    assert ascii_bar(5.0, 10) == "[" + "#" * 10 + "]"  # clamped
    assert ascii_bar(-1.0, 10) == "[" + " " * 10 + "]"


def test_ascii_timeline_resamples():
    from repro.monitor import ascii_timeline

    strip = ascii_timeline(range(200), width=50)
    assert len(strip) == 50
    assert ascii_timeline([]) == ""
    assert set(ascii_timeline([0, 0, 0])) == {" "}


def test_render_report_end_to_end():
    from repro.analysis import simulation_code
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.desim import Environment
    from repro.monitor import render_report

    env = Environment()
    services = Services.default(env)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="mc",
                code=simulation_code(intrinsic_failure_rate=0.0),
                n_events=8_000,
                events_per_tasklet=500,
                tasklets_per_task=4,
            )
        ],
        cores_per_worker=4,
        bad_machine_rate=0.0,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 4, cores=4)
    pool = CondorPool(env, machines, seed=1)
    pool.submit(GlideinRequest(n_workers=4, cores_per_worker=4), run.worker_payload)
    env.run(until=run.process)
    pool.drain()

    text = render_report(run)
    assert "LOBSTER RUN REPORT" in text
    assert "runtime breakdown" in text
    assert "mc:" in text
    assert "infrastructure:" in text
    assert "troubleshooting" in text
    assert "frontier hit rate" in text


# ---------------------------------------------------------------- §7 context
def test_contextualize_paper_scale():
    from repro.monitor import contextualize

    statements = contextualize(10_000)
    by_ref = {s.reference: s for s in statements}
    # The paper's claims: more than all US T3s, comparable to FNAL T1
    # and the largest T2, ~1/4 of all US T2s, ~10% of the Global Pool.
    assert by_ref["us_t3_total_cores"].ratio > 1.0
    assert 0.8 < by_ref["us_t1_fnal_cores"].ratio < 1.0
    assert 0.8 < by_ref["us_t2_largest_cores"].ratio < 1.0
    assert 0.2 < by_ref["us_t2_total_cores"].ratio < 0.3
    assert 0.08 < by_ref["global_pool_record_jobs"].ratio < 0.11
    assert all(s.text for s in statements)


def test_contextualize_validation():
    from repro.monitor import contextualize
    import pytest as _pytest

    with _pytest.raises(ValueError):
        contextualize(-1)


def test_output_written_cumulative():
    m = RunMetrics()
    r1 = fake_result(finished=10.0)
    r1.report = None
    m.add_result("wf", fake_result(finished=10.0))
    # fake_result has no report → output_bytes 0; craft records with output.
    from repro.wq.task import Task as _Task, TaskResult as _TR
    from repro.analysis.report import FrameworkReport

    def with_output(finished, nbytes):
        task = _Task(executor=lambda w, t: iter(()), category="analysis")
        return _TR(
            task=task, exit_code=ExitCode.SUCCESS, worker_id="w",
            submitted=0.0, started=0.0, finished=finished,
            segments={"cpu": 1.0},
            report=FrameworkReport(output_bytes=nbytes),
        )

    m.add_result("wf", with_output(20.0, 100.0))
    m.add_result("wf", with_output(40.0, 50.0))
    times, cum = m.output_written()
    assert list(times) == [20.0, 40.0]
    assert list(cum) == [100.0, 150.0]
    starts, vals = m.output_written(bin_width=25.0)
    assert vals[0] == 100.0  # by t=25
    assert vals[-1] == 150.0


def test_output_written_empty():
    m = RunMetrics()
    times, cum = m.output_written()
    assert len(times) == 0 and len(cum) == 0


# ---------------------------------------------------------------- export
def test_export_run_writes_csvs(tmp_path):
    from repro.monitor import export_run, load_task_records

    m = RunMetrics()
    m.add_result("wf", fake_result(started=0.0, finished=95.0))
    m.add_result("wf", fake_result(exit_code=ExitCode.SETUP_FAILED, finished=40.0))
    m.ingest_running_samples([(0.0, 1), (50.0, 2)])
    paths = export_run(m, str(tmp_path), bin_width=50.0)
    assert set(paths) == {"tasks", "segments", "timeline", "breakdown"}
    for p in paths.values():
        assert tmp_path / p.split("/")[-1]

    records = load_task_records(paths["tasks"])
    assert len(records) == 2
    assert records[0].workflow == "wf"
    assert records[0].succeeded != records[1].succeeded

    import csv

    with open(paths["segments"]) as fh:
        seg_rows = list(csv.DictReader(fh))
    assert any(r["segment"] == "cpu" for r in seg_rows)
    with open(paths["breakdown"]) as fh:
        bd = list(csv.DictReader(fh))
    assert any(r["phase"] == "Task CPU Time" for r in bd)
    with open(paths["timeline"]) as fh:
        tl = list(csv.DictReader(fh))
    assert len(tl) >= 1


def test_export_empty_run(tmp_path):
    from repro.monitor import export_run

    paths = export_run(RunMetrics(), str(tmp_path))
    import csv

    with open(paths["timeline"]) as fh:
        assert list(csv.DictReader(fh)) == []


# ---------------------------------------------------------------- samplers
def test_link_sampler_records_series():
    from repro.desim import Environment, FairShareLink
    from repro.monitor import sample_links

    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    sampler = sample_links(env, {"wan": link}, interval=10.0)

    def traffic(env):
        yield link.transfer(500.0)  # 5 s at 100 B/s
        yield env.timeout(30.0)
        yield link.transfer(1000.0)  # 10 s

    env.process(traffic(env))
    env.run(until=60.0)
    sampler.stop()
    flows = sampler.series["wan.flows"]
    thr = sampler.series["wan.throughput"]
    assert len(flows) >= 5
    # Throughput over the first 10 s window: 500 B moved → 50 B/s.
    assert thr.values[0] == pytest.approx(50.0)
    # Total bytes monotone non-decreasing.
    b = sampler.series["wan.bytes"].values
    assert all(x <= y for x, y in zip(b, b[1:]))


def test_link_sampler_validation():
    from repro.desim import Environment
    from repro.monitor import LinkSampler

    env = Environment()
    with pytest.raises(ValueError):
        LinkSampler(env, interval=0)
    sampler = LinkSampler(env, interval=5.0)
    sampler.add_probe("x", lambda: 1.0)
    with pytest.raises(ValueError):
        sampler.add_probe("x", lambda: 2.0)
    sampler.start()
    with pytest.raises(RuntimeError):
        sampler.start()
