"""Evidence-backed diagnosis: every §5 heuristic cites its worst spans.

One pair of tests per heuristic: it fires above its threshold with
evidence spans attached (when spans are supplied), and stays silent
below the threshold.
"""

from repro.analysis.report import ExitCode
from repro.monitor import EvidenceSpan, RunMetrics, diagnose
from repro.monitor.tracing import Span
from repro.wq.task import Task, TaskResult


def fake_result(
    exit_code=ExitCode.SUCCESS,
    started=0.0,
    finished=100.0,
    segments=None,
    lost_time=0.0,
    wq_stage_in=3.0,
):
    task = Task(executor=lambda w, t: iter(()), category="analysis")
    task.lost_time = lost_time
    return TaskResult(
        task=task,
        exit_code=exit_code,
        worker_id="w",
        submitted=0.0,
        started=started,
        finished=finished,
        segments=segments or {"cpu": 70.0, "io": 20.0, "setup": 5.0},
        wq_stage_in=wq_stage_in,
        wq_stage_out=2.0,
    )


def _span(span_id, name, start, end, status="ok", trace="wf:u000001"):
    return Span(span_id, trace, 1, name, start, end=end, status=status)


def _find(findings, symptom):
    matches = [d for d in findings if d.symptom == symptom]
    assert len(matches) == 1, f"{symptom}: {findings}"
    return matches[0]


# ---------------------------------------------------------------------------
# 1. high-lost-runtime → evidence: lost attempt spans
# ---------------------------------------------------------------------------
def test_high_lost_runtime_cites_lost_attempts():
    m = RunMetrics()
    m.add_result("wf", fake_result(lost_time=1000.0))
    spans = [
        _span(2, "attempt", 0.0, 900.0, status="eviction"),
        _span(3, "attempt", 0.0, 400.0, status="fast-abort"),
        _span(4, "attempt", 0.0, 100.0, status="ok"),  # not lost: excluded
    ]
    d = _find(diagnose(m, spans=spans), "high-lost-runtime")
    assert d.metric > d.threshold
    assert [e.span_id for e in d.evidence] == [2, 3]  # largest loss first
    assert all(isinstance(e, EvidenceSpan) for e in d.evidence)
    assert d.evidence[0].seconds == 900.0
    assert d.evidence[0].status == "eviction"
    assert d.evidence[0].trace_id == "wf:u000001"
    # Evidence lands in the rendered diagnosis too.
    assert "trace=wf:u000001" in str(d)


def test_high_lost_runtime_silent_below_threshold():
    m = RunMetrics()
    m.add_result("wf", fake_result(lost_time=1.0))
    assert all(
        d.symptom != "high-lost-runtime" for d in diagnose(m, spans=[])
    )


# ---------------------------------------------------------------------------
# 2. slow-sandbox-stage-in → evidence: wq.stage_in spans
# ---------------------------------------------------------------------------
def test_slow_sandbox_stage_in_cites_wq_stage_in_spans():
    m = RunMetrics()
    m.add_result("wf", fake_result(wq_stage_in=500.0))
    spans = [
        _span(2, "wq.stage_in", 0.0, 480.0),
        _span(3, "wq.stage_in", 0.0, 520.0),
        _span(4, "wrapper.stage_in", 0.0, 999.0),  # wrong name: excluded
    ]
    d = _find(diagnose(m, spans=spans), "slow-sandbox-stage-in")
    assert [e.span_id for e in d.evidence] == [3, 2]
    assert all(e.name == "wq.stage_in" for e in d.evidence)


def test_slow_sandbox_stage_in_silent_below_threshold():
    m = RunMetrics()
    m.add_result("wf", fake_result(wq_stage_in=10.0))
    assert all(
        d.symptom != "slow-sandbox-stage-in" for d in diagnose(m)
    )


# ---------------------------------------------------------------------------
# 3. slow-environment-setup → evidence: wrapper.setup / cvmfs.fill spans
# ---------------------------------------------------------------------------
def test_slow_setup_cites_setup_and_cache_fill_spans():
    m = RunMetrics()
    for _ in range(3):
        m.add_result("wf", fake_result(segments={"cpu": 100.0, "setup": 2000.0}))
    spans = [
        _span(2, "wrapper.setup", 0.0, 1900.0),
        _span(3, "cvmfs.fill", 0.0, 1500.0),
        _span(4, "wrapper.exec", 0.0, 9000.0),  # wrong name: excluded
    ]
    d = _find(diagnose(m, spans=spans), "slow-environment-setup")
    assert [e.name for e in d.evidence] == ["wrapper.setup", "cvmfs.fill"]


def test_slow_setup_silent_below_threshold():
    m = RunMetrics()
    for _ in range(3):
        m.add_result("wf", fake_result(segments={"cpu": 100.0, "setup": 30.0}))
    assert all(
        d.symptom != "slow-environment-setup" for d in diagnose(m)
    )


# ---------------------------------------------------------------------------
# 4. slow-stage-in-out → evidence: wrapper.stage_in / wrapper.stage_out
# ---------------------------------------------------------------------------
def test_slow_chirp_stages_cite_wrapper_stage_spans():
    m = RunMetrics()
    m.add_result(
        "wf",
        fake_result(segments={"cpu": 10.0, "stage_in": 200.0, "stage_out": 200.0}),
    )
    spans = [
        _span(2, "wrapper.stage_in", 0.0, 190.0),
        _span(3, "wrapper.stage_out", 200.0, 410.0),
        _span(4, "wq.stage_in", 0.0, 999.0),  # wrong name: excluded
    ]
    d = _find(diagnose(m, spans=spans), "slow-stage-in-out")
    assert [e.span_id for e in d.evidence] == [3, 2]
    assert {e.name for e in d.evidence} == {
        "wrapper.stage_in", "wrapper.stage_out"
    }


def test_slow_chirp_stages_silent_below_threshold():
    m = RunMetrics()
    m.add_result(
        "wf",
        fake_result(segments={"cpu": 10.0, "stage_in": 5.0, "stage_out": 5.0}),
    )
    assert all(d.symptom != "slow-stage-in-out" for d in diagnose(m))


# ---------------------------------------------------------------------------
# cross-cutting evidence behavior
# ---------------------------------------------------------------------------
def test_untraced_run_fires_with_empty_evidence():
    m = RunMetrics()
    m.add_result("wf", fake_result(lost_time=1000.0))
    d = _find(diagnose(m), "high-lost-runtime")
    assert d.evidence == ()
    assert "evidence" not in str(d)


def test_evidence_capped_at_three_worst():
    m = RunMetrics()
    m.add_result("wf", fake_result(wq_stage_in=500.0))
    spans = [
        _span(i, "wq.stage_in", 0.0, 100.0 * i) for i in range(2, 8)
    ]
    d = _find(diagnose(m, spans=spans), "slow-sandbox-stage-in")
    assert len(d.evidence) == 3
    assert [e.span_id for e in d.evidence] == [7, 6, 5]


def test_open_spans_never_cited():
    m = RunMetrics()
    m.add_result("wf", fake_result(wq_stage_in=500.0))
    open_span = Span(2, "wf:u000001", 1, "wq.stage_in", 0.0)  # end=None
    d = _find(diagnose(m, spans=[open_span]), "slow-sandbox-stage-in")
    assert d.evidence == ()
