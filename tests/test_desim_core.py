"""Tests for the DES kernel: environment, processes, events, interrupts."""

import pytest

from repro.desim import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Interrupt,
    StopProcess,
)


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(42.5).now == 42.5


def test_timeout_advances_clock():
    env = Environment()
    seen = []

    def proc(env):
        yield env.timeout(5)
        seen.append(env.now)
        yield env.timeout(2.5)
        seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == [5.0, 7.5]


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_timeout_carries_value():
    env = Environment()
    result = []

    def proc(env):
        v = yield env.timeout(1, value="payload")
        result.append(v)

    env.process(proc(env))
    env.run()
    assert result == ["payload"]


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(3)
        return "done"

    p = env.process(proc(env))
    env.run()
    assert p.value == "done"
    assert not p.is_alive


def test_process_is_waitable_event():
    env = Environment()

    def child(env):
        yield env.timeout(4)
        return 99

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    p = env.process(parent(env))
    env.run()
    assert p.value == (4.0, 99)


def test_run_until_time_stops_early():
    env = Environment()
    ticks = []

    def clock(env):
        while True:
            yield env.timeout(1)
            ticks.append(env.now)

    env.process(clock(env))
    env.run(until=5)
    assert env.now == 5.0
    assert ticks == [1.0, 2.0, 3.0, 4.0]


def test_run_until_past_time_raises():
    env = Environment()
    env.process(iter([]).__iter__() if False else _noop(env))
    env.run(until=2)
    with pytest.raises(ValueError):
        env.run(until=1)


def test_run_until_now_returns_immediately():
    # simpy semantics: until == now is a no-op, not an error.
    env = Environment()
    env.process(_noop(env))
    assert env.run(until=0) is None
    assert env.now == 0.0
    env.run(until=1)
    assert env.run(until=1) is None
    assert env.now == 1.0
    # The pending timeout-at-1 work was not consumed by the no-op runs.
    env.run()
    assert env.now == 1.0


def _noop(env):
    yield env.timeout(1)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2)
        return "finished"

    p = env.process(proc(env))
    assert env.run(until=p) == "finished"


def test_event_succeed_wakes_waiter():
    env = Environment()
    gate = env.event()
    log = []

    def waiter(env):
        value = yield gate
        log.append((env.now, value))

    def opener(env):
        yield env.timeout(7)
        gate.succeed("open")

    env.process(waiter(env))
    env.process(opener(env))
    env.run()
    assert log == [(7.0, "open")]


def test_event_cannot_trigger_twice():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_failed_event_raises_in_waiter():
    env = Environment()
    gate = env.event()
    caught = []

    def waiter(env):
        try:
            yield gate
        except ValueError as exc:
            caught.append(str(exc))

    def failer(env):
        yield env.timeout(1)
        gate.fail(ValueError("boom"))

    env.process(waiter(env))
    env.process(failer(env))
    env.run()
    assert caught == ["boom"]


def test_unhandled_failure_crashes_simulation():
    env = Environment()

    def failer(env):
        yield env.timeout(1)
        raise RuntimeError("explode")

    env.process(failer(env))
    with pytest.raises(RuntimeError, match="explode"):
        env.run()


def test_interrupt_delivers_cause():
    env = Environment()
    log = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def attacker(env, proc):
        yield env.timeout(3)
        proc.interrupt("eviction")

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert log == [(3.0, "eviction")]


def test_interrupt_self_forbidden():
    env = Environment()
    errors = []

    def proc(env):
        try:
            env.active_process.interrupt()
        except RuntimeError:
            errors.append(True)
        yield env.timeout(0)

    env.process(proc(env))
    env.run()
    assert errors == [True]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_interrupted_process_can_resume_waiting():
    """After an interrupt the process can wait on new events normally."""
    env = Environment()
    trace = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt:
            trace.append(("interrupted", env.now))
        yield env.timeout(5)
        trace.append(("resumed", env.now))

    def attacker(env, proc):
        yield env.timeout(10)
        proc.interrupt()

    p = env.process(victim(env))
    env.process(attacker(env, p))
    env.run()
    assert trace == [("interrupted", 10.0), ("resumed", 15.0)]


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(2, value="a")
        t2 = env.timeout(5, value="b")
        results = yield AllOf(env, [t1, t2])
        times.append(env.now)
        assert results[t1] == "a"
        assert results[t2] == "b"

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(2, value="fast")
        t2 = env.timeout(9, value="slow")
        results = yield AnyOf(env, [t1, t2])
        times.append(env.now)
        assert t1 in results
        assert t2 not in results

    env.process(proc(env))
    env.run()
    assert times == [2.0]


def test_and_or_operators():
    env = Environment()
    done = []

    def proc(env):
        a = env.timeout(1)
        b = env.timeout(2)
        yield a & b
        done.append(env.now)
        c = env.timeout(1)
        d = env.timeout(10)
        yield c | d
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [2.0, 3.0]


def test_empty_all_of_fires_immediately():
    env = Environment()
    fired = []

    def proc(env):
        yield AllOf(env, [])
        fired.append(env.now)

    env.process(proc(env))
    env.run()
    assert fired == [0.0]


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(12)
    assert env.peek() == 12.0


def test_event_ordering_is_fifo_within_same_time():
    env = Environment()
    order = []

    def maker(env, tag):
        yield env.timeout(5)
        order.append(tag)

    for tag in range(6):
        env.process(maker(env, tag))
    env.run()
    assert order == list(range(6))


def test_stop_process_exception_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        raise StopProcess("early")

    p = env.process(proc(env))
    env.run()
    assert p.value == "early"


def test_yielding_non_event_is_an_error():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="non-event"):
        env.run()


def test_nested_process_failure_propagates():
    env = Environment()
    caught = []

    def child(env):
        yield env.timeout(1)
        raise KeyError("inner")

    def parent(env):
        try:
            yield env.process(child(env))
        except KeyError:
            caught.append(env.now)

    env.process(parent(env))
    env.run()
    assert caught == [1.0]


def test_simulate_helper_runs_factories():
    from repro.desim import simulate

    log = []

    def factory(env):
        yield env.timeout(2)
        log.append(env.now)

    env = simulate([factory, factory])
    assert log == [2.0, 2.0]
    assert env.now == 2.0


def test_tracer_counts_events():
    from repro.desim import Tracer

    tracer = Tracer(ring_size=10)
    env = Environment(tracer=tracer)

    def proc(env):
        yield env.timeout(1)
        yield env.timeout(2)

    env.process(proc(env))
    env.run()
    s = tracer.summary()
    assert s["processed"] >= 3  # Initialize + 2 timeouts
    assert s["scheduled"] >= s["processed"]
    assert s["by_type"].get("Timeout", 0) == 2
    assert tracer.max_queue_depth >= 1
    assert len(tracer.ring) >= 3
    assert tracer.top_types(1)[0][1] >= 1


def test_tracer_ring_bounded():
    from repro.desim import Tracer

    tracer = Tracer(ring_size=5)
    env = Environment(tracer=tracer)

    def proc(env):
        for _ in range(20):
            yield env.timeout(1)

    env.process(proc(env))
    env.run()
    assert len(tracer.ring) == 5


def test_tracer_validation():
    from repro.desim import Tracer
    import pytest as _pytest

    with _pytest.raises(ValueError):
        Tracer(ring_size=-1)
