"""Tests for the commercial-cloud provider."""

import pytest

from repro.batch.cloud import CloudProvider
from repro.desim import Environment, Interrupt
from repro.distributions import DeterministicSampler

HOUR = 3600.0


def make_provider(env, **kw):
    defaults = dict(
        instance_cores=4,
        price_per_core_hour=0.10,
        boot_delay=DeterministicSampler(60.0),
        seed=1,
    )
    defaults.update(kw)
    return CloudProvider(env, **defaults)


def finite_payload(duration):
    def factory(instance):
        def run():
            try:
                yield instance.provider.env.timeout(duration)
            except Interrupt:
                pass

        return run()

    return factory


def test_instances_boot_with_delay_and_run_payload():
    env = Environment()
    cloud = make_provider(env)
    cloud.request_instances(3, finite_payload(2 * HOUR))
    env.run()
    assert len(cloud.instances) == 3
    # Sequential boots: 60 s apart.
    launches = [i.launched for i in cloud.instances]
    assert launches == sorted(launches)
    assert launches[0] == pytest.approx(60.0)
    # All terminated after their payloads finished.
    assert cloud.running_instances == 0
    assert all(i.terminated is not None for i in cloud.instances)


def test_billing_core_hours():
    env = Environment()
    cloud = make_provider(env)
    cloud.request_instances(1, finite_payload(2 * HOUR))
    env.run()
    inst = cloud.instances[0]
    assert inst.core_hours() == pytest.approx(4 * 2.0)
    assert cloud.cost() == pytest.approx(0.10 * 8.0)


def test_budget_stops_new_launches():
    env = Environment()
    # Slow boots (30 min apart) so cost accrues between launches; the
    # budget covers about one instance-hour (4 cores * $0.10).
    cloud = make_provider(
        env, budget=0.5, boot_delay=DeterministicSampler(1800.0)
    )
    cloud.request_instances(10, finite_payload(3 * HOUR))
    env.run()
    # Launching stopped once the accrued cost crossed the budget.
    assert len(cloud.instances) < 10


def test_budget_terminates_running_instances():
    env = Environment()
    cloud = make_provider(env, budget=0.5)
    cloud.request_instances(1, finite_payload(100 * HOUR))
    env.run(until=50 * HOUR)
    # The payload was interrupted at a billing-hour boundary, well before
    # its natural 100 h end.
    assert cloud.running_instances == 0
    inst = cloud.instances[0]
    assert inst.terminated < 10 * HOUR
    # The final bill overshoots the budget by at most one billing hour.
    assert cloud.cost() <= 0.5 + 0.10 * 4


def test_drain_stops_launches():
    env = Environment()
    cloud = make_provider(env)
    cloud.request_instances(10, finite_payload(1 * HOUR))

    def stopper(env):
        yield env.timeout(150.0)  # after ~2 boots
        cloud.drain()

    env.process(stopper(env))
    env.run()
    assert 1 <= len(cloud.instances) <= 3


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CloudProvider(env, instance_cores=0)
    with pytest.raises(ValueError):
        CloudProvider(env, price_per_core_hour=-1)
    with pytest.raises(ValueError):
        CloudProvider(env, budget=0)
    cloud = make_provider(env)
    with pytest.raises(ValueError):
        cloud.request_instances(0, finite_payload(1))


def test_cloud_instances_host_lobster_workers():
    """CloudInstance duck-types as a WorkerSlot for run.worker_payload."""
    from repro.analysis import simulation_code
    from repro.core import LobsterConfig, LobsterRun, MergeMode, Services, WorkflowConfig

    env = Environment()
    services = Services.default(env)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="mc",
                code=simulation_code(intrinsic_failure_rate=0.0),
                n_events=8_000,
                events_per_tasklet=500,
                tasklets_per_task=4,
                merge_mode=MergeMode.NONE,
            )
        ],
        cores_per_worker=4,
        bad_machine_rate=0.0,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    cloud = make_provider(env)
    cloud.request_instances(2, run.worker_payload)

    def drainer(env):
        yield run.process
        run.master.drain()
        cloud.drain()

    env.process(drainer(env))
    summary = env.run(until=run.process)
    assert summary["workflows"]["mc"]["tasklets_done"] == 16
    assert cloud.cost() > 0
