"""Tests for eviction models, samplers and RNG streams."""

import numpy as np
import pytest

from repro.distributions import (
    ConstantHazardEviction,
    DeterministicSampler,
    EmpiricalEviction,
    ExponentialSampler,
    LogNormalSampler,
    NoEviction,
    RngStream,
    TruncatedGaussianSampler,
    UniformSampler,
    WeibullEviction,
    binomial_errors,
    eviction_probability_curve,
    spawn_rngs,
)

HOUR = 3600.0


# ------------------------------------------------------------------ RNG
def test_rng_stream_reproducible():
    a = RngStream(42).random(5)
    b = RngStream(42).random(5)
    assert np.allclose(a, b)


def test_rng_stream_children_independent_and_stable():
    root = RngStream(7)
    c1 = root.child("eviction").random(3)
    c2 = RngStream(7).child("eviction").random(3)
    assert np.allclose(c1, c2)
    other = RngStream(7).child("network").random(3)
    assert not np.allclose(c1, other)


def test_spawn_rngs_distinct():
    gens = spawn_rngs(0, 4)
    draws = [g.random() for g in gens]
    assert len(set(draws)) == 4


# ------------------------------------------------------------------ eviction
def test_no_eviction_is_immortal():
    m = NoEviction()
    rng = np.random.default_rng(0)
    assert m.sample_survival(rng) == float("inf")
    assert np.all(np.isinf(m.sample_survival(rng, 10)))
    assert m.hazard(0) == 0.0
    assert m.hazard(1e9) == 0.0


def test_constant_hazard_matches_probability():
    m = ConstantHazardEviction(probability=0.1, bin_width=HOUR)
    # Hazard per hour equals the configured probability at any age.
    assert m.hazard(0) == pytest.approx(0.1)
    assert m.hazard(5 * HOUR) == pytest.approx(0.1)


def test_constant_hazard_survival_mean():
    m = ConstantHazardEviction(probability=0.1, bin_width=HOUR)
    rng = np.random.default_rng(1)
    samples = m.sample_survival(rng, 200_000)
    expected_mean = 1.0 / m.rate
    assert np.mean(samples) == pytest.approx(expected_mean, rel=0.02)


def test_constant_hazard_validates_probability():
    with pytest.raises(ValueError):
        ConstantHazardEviction(probability=0.0)
    with pytest.raises(ValueError):
        ConstantHazardEviction(probability=1.0)
    with pytest.raises(ValueError):
        ConstantHazardEviction(probability=0.5, bin_width=0)


def test_weibull_hazard_decreases_for_shape_below_one():
    m = WeibullEviction(scale=6 * HOUR, shape=0.55)
    h0 = m.hazard(0.5 * HOUR)
    h5 = m.hazard(5 * HOUR)
    h20 = m.hazard(20 * HOUR)
    assert h0 > h5 > h20


def test_weibull_samples_positive():
    m = WeibullEviction()
    rng = np.random.default_rng(2)
    s = m.sample_survival(rng, 1000)
    assert np.all(s >= 0)


def test_empirical_eviction_from_intervals():
    intervals = [1.0, 2.0, 3.0, 4.0, 100.0]
    m = EmpiricalEviction(intervals)
    rng = np.random.default_rng(3)
    s = m.sample_survival(rng, 1000)
    assert s.min() >= 1.0
    assert s.max() <= 100.0


def test_empirical_eviction_hazard():
    # 10 workers: 5 die in the first hour, 5 survive past it.
    intervals = [0.5 * HOUR] * 5 + [10 * HOUR] * 5
    m = EmpiricalEviction(intervals)
    assert m.hazard(0.0, bin_width=HOUR) == pytest.approx(0.5)
    # Given survival past the first hour, nobody dies in the second.
    assert m.hazard(HOUR, bin_width=HOUR) == pytest.approx(0.0)


def test_empirical_eviction_rejects_empty_and_negative():
    with pytest.raises(ValueError):
        EmpiricalEviction([])
    with pytest.raises(ValueError):
        EmpiricalEviction([-1.0])


def test_binomial_errors_basic():
    assert binomial_errors(0, 100) == pytest.approx(0.0)
    assert binomial_errors(100, 100) == pytest.approx(0.0)
    assert binomial_errors(50, 100) == pytest.approx(0.05)
    assert binomial_errors(5, 0) == pytest.approx(0.0)  # empty bin


def test_eviction_probability_curve_shape():
    intervals = [0.5 * HOUR] * 50 + [5.5 * HOUR] * 50
    starts, probs, errs = eviction_probability_curve(intervals, bin_width=HOUR)
    assert starts[0] == 0.0
    assert probs[0] == pytest.approx(0.5)
    # Between hours 1 and 5, nobody is evicted.
    assert np.all(probs[1:5] == 0.0)
    # In hour 5, all the survivors go.
    assert probs[5] == pytest.approx(1.0)
    assert np.all(errs >= 0)


# ------------------------------------------------------------------ samplers
def test_deterministic_sampler():
    s = DeterministicSampler(42.0)
    rng = np.random.default_rng(0)
    assert s.sample(rng) == 42.0
    assert np.all(s.sample(rng, 5) == 42.0)
    assert s.mean() == 42.0


def test_truncated_gaussian_never_negative():
    s = TruncatedGaussianSampler(mu=600.0, sigma=300.0, low=0.0)
    rng = np.random.default_rng(0)
    draws = s.sample(rng, 50_000)
    assert np.all(draws >= 0)
    # Mean is slightly above mu due to truncation.
    assert s.mean() > 600.0
    assert np.mean(draws) == pytest.approx(s.mean(), rel=0.02)


def test_truncated_gaussian_reduces_to_gaussian_far_from_bound():
    s = TruncatedGaussianSampler(mu=1000.0, sigma=10.0, low=0.0)
    assert s.mean() == pytest.approx(1000.0, abs=0.1)


def test_lognormal_mean():
    s = LogNormalSampler(mu=0.0, sigma=0.5)
    rng = np.random.default_rng(1)
    draws = s.sample(rng, 100_000)
    assert np.mean(draws) == pytest.approx(s.mean(), rel=0.02)


def test_exponential_sampler():
    s = ExponentialSampler(mean=30.0)
    rng = np.random.default_rng(2)
    assert np.mean(s.sample(rng, 100_000)) == pytest.approx(30.0, rel=0.02)


def test_uniform_sampler_bounds():
    s = UniformSampler(5.0, 10.0)
    rng = np.random.default_rng(3)
    draws = s.sample(rng, 1000)
    assert draws.min() >= 5.0
    assert draws.max() < 10.0
    assert s.mean() == 7.5


def test_sampler_validation():
    with pytest.raises(ValueError):
        DeterministicSampler(-1)
    with pytest.raises(ValueError):
        TruncatedGaussianSampler(0, 0)
    with pytest.raises(ValueError):
        ExponentialSampler(0)
    with pytest.raises(ValueError):
        UniformSampler(10, 5)


# ------------------------------------------------------------------ diurnal
def test_diurnal_validation():
    from repro.distributions import DiurnalEviction

    with pytest.raises(ValueError):
        DiurnalEviction(day_probability=0.0)
    with pytest.raises(ValueError):
        DiurnalEviction(day_start=10 * HOUR, day_end=5 * HOUR)


def test_diurnal_day_vs_night_survival():
    from repro.distributions import DiurnalEviction

    model = DiurnalEviction(day_probability=0.5, night_probability=0.02)
    rng = np.random.default_rng(0)
    # Workers starting at 9:00 face the busy day immediately; workers
    # starting at 19:00 get a calm night first.
    day_draws = model.sample_survival(rng, 3000, start=9 * HOUR)
    night_draws = model.sample_survival(rng, 3000, start=19 * HOUR)
    assert np.mean(night_draws) > 2 * np.mean(day_draws)


def test_diurnal_hazard_matches_phase():
    from repro.distributions import DiurnalEviction

    model = DiurnalEviction(day_probability=0.4, night_probability=0.05)
    assert model.hazard(9 * HOUR) == pytest.approx(0.4)
    assert model.hazard(2 * HOUR) == pytest.approx(0.05)
    # Next day repeats the pattern.
    assert model.hazard(33 * HOUR) == pytest.approx(0.4)


def test_diurnal_night_start_survives_until_morning():
    from repro.distributions import DiurnalEviction

    # Nights are essentially safe; days are lethal within the hour.
    model = DiurnalEviction(day_probability=0.999, night_probability=0.001)
    rng = np.random.default_rng(1)
    draws = model.sample_survival(rng, 2000, start=18 * HOUR)
    # Most survive the 14-hour night then die quickly after 8:00.
    surviving_night = np.mean(draws > 13 * HOUR)
    assert surviving_night > 0.9
    assert np.mean(draws < 16 * HOUR) > 0.9


def test_diurnal_statistical_consistency():
    """Mean survival starting at day-start matches the analytic phase mix."""
    from repro.distributions import DiurnalEviction

    model = DiurnalEviction(day_probability=0.3, night_probability=0.3)
    # Equal day/night probabilities reduce to a constant hazard model.
    const = ConstantHazardEviction(0.3)
    rng = np.random.default_rng(2)
    a = model.sample_survival(rng, 20_000, start=0.0)
    b = const.sample_survival(np.random.default_rng(2), 20_000)
    assert np.mean(a) == pytest.approx(np.mean(b), rel=0.05)


def test_diurnal_in_condor_pool():
    """The pool passes the worker's start time to the model."""
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.desim import Environment, Interrupt
    from repro.distributions import DiurnalEviction

    env = Environment()
    machines = MachinePool.homogeneous(env, 10, cores=8)
    model = DiurnalEviction(day_probability=0.95, night_probability=0.01)
    pool = CondorPool(env, machines, eviction=model, seed=4)

    def payload(slot):
        def run():
            try:
                yield env.timeout(1e9)
            except Interrupt:
                pass

        return run()

    pool.submit(
        GlideinRequest(n_workers=10, start_interval=0.0, resubmit=False), payload
    )
    # Start at midnight: workers should survive the night (8 h) and be
    # culled during the next working day.
    env.run(until=48 * HOUR)
    durations = pool.trace.durations()
    assert len(durations) == 10
    assert np.median(durations) > 7 * HOUR
    assert np.median(durations) < 18 * HOUR
