"""``Rollup.merge()`` parity: merged partials ≡ single pass, bit for bit.

The merge contract (DESIGN.md §15, ISSUE 10 satellite): splitting one
recorded event stream into N window-aligned sub-streams, rolling each up
independently, and merging must reproduce the single-pass rollup
*bit-for-bit* in every finaliser (``np.array_equal``, not allclose) —
including the finalise-time overflow fold — because each float sub-cell
is owned by exactly one partial (window-major folds; see the module
docstring of ``repro.monitor.rollup``).  Pinned on 2/4/8-way splits of
the same chaos recording, which exercises flows spanning bin boundaries,
failures, blacklisting, and fault narration.
"""

import numpy as np
import pytest

from repro.desim import Environment
from repro.desim.bus import MemorySink
from repro.monitor import Rollup, rollup_from_events, split_events_by_window
from repro.scenarios import execute_prepared, prepare_chaos, prepare_quickstart


@pytest.fixture(scope="module")
def chaos_events():
    env = Environment()
    sink = MemorySink()
    env.bus.attach(sink)
    prepared = prepare_chaos(env=env, files=20, machines=6, cores=4, seed=5)
    execute_prepared(prepared, settle=300.0)
    return [e.as_dict() for e in sink.events]


@pytest.fixture(scope="module")
def quickstart_events():
    env = Environment()
    sink = MemorySink()
    env.bus.attach(sink)
    prepared = prepare_quickstart(env=env, events=20_000, workers=4, seed=11)
    execute_prepared(prepared, settle=300.0)
    return [e.as_dict() for e in sink.events]


def assert_rollups_identical(got: Rollup, want: Rollup) -> None:
    """Every finaliser and scalar, compared for bit equality."""
    # Timelines, bin for bin.
    for name in (
        "efficiency_timeline",
        "output_timeline",
        "running_timeline",
    ):
        for a, b in zip(getattr(got, name)(), getattr(want, name)()):
            assert np.array_equal(a, b), name
    gs, gok, gfail = got.completion_counts()
    ws, wok, wfail = want.completion_counts()
    assert np.array_equal(gs, ws)
    assert np.array_equal(gok, wok)
    assert np.array_equal(gfail, wfail)
    bs, bseries = got.bandwidth_timeline()
    cs, cseries = want.bandwidth_timeline()
    assert np.array_equal(bs, cs)
    assert sorted(bseries) == sorted(cseries)
    for cls in cseries:
        assert np.array_equal(bseries[cls], cseries[cls]), cls
    # Scalars and folded aggregates (== is exact for floats).
    assert got.events_seen == want.events_seen
    assert got.n_tasks == want.n_tasks
    assert got.tasks_by_category == want.tasks_by_category
    assert got.failure_codes == want.failure_codes
    assert got.max_finished == want.max_finished
    assert got.max_flow_finished == want.max_flow_finished
    assert got.n_flows == want.n_flows
    assert got.n_flows_failed == want.n_flows_failed
    assert got.flow_bytes == want.flow_bytes
    assert got.output_bytes == want.output_bytes
    assert got.breakdown.as_dict() == want.breakdown.as_dict()
    assert got.overall_efficiency() == want.overall_efficiency()
    assert got.evictions == want.evictions
    assert got.faults_injected == want.faults_injected
    assert got.faults_cleared == want.faults_cleared
    assert got.tasks_exhausted == want.tasks_exhausted
    assert got.fallbacks == want.fallbacks
    assert got.resumes == want.resumes
    assert got.blacklisted_hosts == want.blacklisted_hosts
    assert list(got.narration) == list(want.narration)
    assert got.integrity_corrupt == want.integrity_corrupt
    assert got.integrity_quarantined == want.integrity_quarantined
    assert got.integrity_commits == want.integrity_commits
    assert got.integrity_orphans == want.integrity_orphans
    assert got.duplicates_dropped == want.duplicates_dropped
    assert got.alerts_raised == want.alerts_raised
    assert got.alerts_cleared == want.alerts_cleared
    assert got._running_last == want._running_last
    assert got.retained_cells() == want.retained_cells()
    # Segment digests: exact counts, totals, extremes, and means.
    assert sorted(got.segments) == sorted(want.segments)
    for seg, digest in want.segments.items():
        g = got.segments[seg]
        assert np.array_equal(g.counts, digest.counts), seg
        assert g.n == digest.n, seg
        assert g.total == digest.total, seg
        assert g.min == digest.min and g.max == digest.max, seg
        assert g.mean == digest.mean, seg


@pytest.mark.parametrize("parts", [2, 4, 8])
def test_merge_parity_chaos(chaos_events, parts):
    single = rollup_from_events(chaos_events)
    assert single.n_tasks > 0 and single.n_flows > 0
    buckets = split_events_by_window(chaos_events, parts)
    assert sum(len(b) for b in buckets) == len(chaos_events)
    partials = [rollup_from_events(b) for b in buckets]
    assert sum(1 for p in partials if p.events_seen) > 1  # a real split
    merged = Rollup.merge(partials)
    assert_rollups_identical(merged, single)


@pytest.mark.parametrize("parts", [2, 4, 8])
def test_merge_parity_quickstart(quickstart_events, parts):
    single = rollup_from_events(quickstart_events)
    merged = Rollup.merge(
        [rollup_from_events(b) for b in split_events_by_window(quickstart_events, parts)]
    )
    assert_rollups_identical(merged, single)


def test_merge_order_of_partials_does_not_matter_for_cells(chaos_events):
    """Disjoint window ownership makes cell contents order-independent;
    only stream-ordered state (narration tail, final running level)
    requires partials in order, so that's how merge is specified."""
    single = rollup_from_events(chaos_events)
    buckets = split_events_by_window(chaos_events, 4)
    partials = [rollup_from_events(b) for b in buckets]
    merged = Rollup.merge(partials)
    assert_rollups_identical(merged, single)


def test_merge_single_partial_is_identity(chaos_events):
    single = rollup_from_events(chaos_events)
    merged = Rollup.merge([rollup_from_events(chaos_events)])
    assert_rollups_identical(merged, single)


def test_merge_rejects_empty_and_mixed_widths():
    with pytest.raises(ValueError):
        Rollup.merge([])
    with pytest.raises(ValueError):
        Rollup.merge([Rollup(1800.0), Rollup(900.0)])


def test_split_empty_stream():
    buckets = split_events_by_window([], 4)
    assert buckets == [[], [], [], []]
    merged = Rollup.merge([rollup_from_events(b) for b in buckets])
    assert merged.events_seen == 0
    assert merged.n_tasks == 0


def test_split_rejects_nonpositive_parts():
    with pytest.raises(ValueError):
        split_events_by_window([], 0)
