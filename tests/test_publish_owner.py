"""Tests for output publication and the owner-workload eviction model."""

import pytest

from repro.batch import (
    CondorPool,
    GlideinRequest,
    MachinePool,
    OwnerWorkload,
)
from repro.core import Publisher
from repro.dbs import DBS
from repro.desim import Environment, Interrupt
from repro.distributions import DeterministicSampler, NoEviction
from repro.storage import StoredFile

HOUR = 3600.0


# ---------------------------------------------------------------- publisher
def test_publish_registers_dataset_with_provenance():
    dbs = DBS()
    pub = Publisher(dbs)
    files = [StoredFile(f"/store/user/wf/merged/m{i}.root", 3.5e9) for i in range(4)]
    record = pub.publish(
        "wf", files, events_per_byte=1 / 5000.0, parent="/Input/Set/AOD"
    )
    assert record.dataset_name == "/wf/lobster-v1/USER"
    assert record.n_files == 4
    assert record.parent == "/Input/Set/AOD"
    assert record.total_bytes == pytest.approx(4 * 3.5e9)
    assert record.total_events == 4 * 700_000
    ds = dbs.dataset("/wf/lobster-v1/USER")
    assert len(ds) == 4
    assert ds.total_events == record.total_events


def test_publish_metadata_cost_and_merge_savings():
    pub = Publisher(DBS())
    # 1000 small files vs 30 merged ones: the paper's motivation.
    assert pub.publication_cost(1000) == 4000
    assert pub.merge_savings(1000, 30) == 4 * 970


def test_publish_validation():
    pub = Publisher(DBS())
    with pytest.raises(ValueError):
        pub.publish("wf", [], events_per_byte=-1)


def test_publish_twice_conflicts():
    dbs = DBS()
    pub = Publisher(dbs)
    files = [StoredFile("/store/user/wf/m0.root", 1e9)]
    pub.publish("wf", files, events_per_byte=0.0)
    with pytest.raises(ValueError):
        pub.publish("wf", files, events_per_byte=0.0)


# ---------------------------------------------------------------- owner workload
def _immortal_payload(log):
    def factory(slot):
        def run():
            try:
                yield slot.pool.env.timeout(1000 * HOUR)
                log.append("finished")
            except Interrupt:
                log.append(("evicted", slot.pool.env.now))

        return run()

    return factory


def test_owner_jobs_preempt_glideins():
    env = Environment()
    machines = MachinePool.homogeneous(env, 4, cores=8)
    pool = CondorPool(env, machines, eviction=NoEviction())
    log = []
    pool.submit(
        GlideinRequest(n_workers=4, cores_per_worker=8, start_interval=0.0),
        _immortal_payload(log),
    )
    owner = OwnerWorkload(
        env,
        pool,
        arrival_rate=1 / HOUR,
        duration=DeterministicSampler(2 * HOUR),
        seed=1,
    )
    env.run(until=20 * HOUR)
    owner.stop()
    evictions = [e for e in log if isinstance(e, tuple)]
    assert len(evictions) >= 3
    assert owner.preemptions >= 3
    assert pool.total_evictions >= 3
    # Owner jobs actually occupied machines.
    assert len(owner.jobs) >= 1
    # The availability trace recorded the evictions for Fig 2-style study.
    assert any(s.reason == "evicted" for s in pool.trace.spans)


def test_owner_workload_idle_pool_no_crash():
    env = Environment()
    machines = MachinePool.homogeneous(env, 2, cores=8)
    pool = CondorPool(env, machines)
    owner = OwnerWorkload(env, pool, arrival_rate=1 / 60.0, seed=2)
    env.run(until=1 * HOUR)
    owner.stop()
    assert owner.preemptions == 0


def test_owner_workload_validation():
    env = Environment()
    machines = MachinePool.homogeneous(env, 1)
    pool = CondorPool(env, machines)
    with pytest.raises(ValueError):
        OwnerWorkload(env, pool, arrival_rate=0.0)


def test_slot_request_eviction_is_idempotent():
    env = Environment()
    machines = MachinePool.homogeneous(env, 1, cores=8)
    pool = CondorPool(env, machines, eviction=NoEviction())
    log = []
    pool.submit(
        GlideinRequest(n_workers=1, cores_per_worker=8, start_interval=0.0, resubmit=False),
        _immortal_payload(log),
    )

    def evict_twice(env):
        yield env.timeout(10.0)
        slot = pool.active_slots[0]
        slot.request_eviction()
        slot.request_eviction()  # second call is a no-op

    env.process(evict_twice(env))
    env.run(until=100.0)
    assert log == [("evicted", 10.0)]
    assert pool.total_evictions == 1
