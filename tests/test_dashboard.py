"""The ops dashboard renderer and its CLI entry points (DESIGN.md §13).

``python -m repro dash`` must render a complete, self-contained HTML
document from both a live scenario run and a replayed JSONL recording,
with every §5 diagnosis evidence link resolving to an anchored span
row.  The renderer itself is also exercised directly on synthetic
rollups so panel presence doesn't depend on scenario runtime.
"""

import io
import re

import pytest

from repro.cli import main
from repro.desim import Environment, EventBus, Topics
from repro.monitor import (
    BusCollector,
    RollupCollector,
    SpanTracer,
    render_dashboard,
    write_dashboard,
)
from repro.scenarios import execute_prepared, prepare_chaos


PANELS = (
    "Task state timeline",
    "Network bandwidth by traffic class",
    "Chaos &amp; recovery",
    "Output integrity &amp; exactly-once",
    "Segment durations (streaming digests)",
    "Telemetry",
)


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


@pytest.fixture(scope="module")
def chaos_artifacts():
    """One small faulty run shared by the rendering tests."""
    env = Environment()
    tracer = SpanTracer(env)
    collector = RollupCollector(env.bus)
    prepared = prepare_chaos(
        files=15, machines=6, cores=4, seed=7,
        bit_rot=1, truncate=1, duplicates=1, env=env,
    )
    execute_prepared(prepared, settle=300.0)
    tracer.finalize()
    return collector.rollup, prepared.run.metrics, list(tracer.spans), env


# -------------------------------------------------------------- renderer
def test_render_is_complete_standalone_html(chaos_artifacts):
    rollup, metrics, spans, env = chaos_artifacts
    html = render_dashboard(
        rollup, metrics=metrics, spans=spans, bus_stats=env.bus.stats(),
        title="chaos <test> run",
    )
    assert html.startswith("<!DOCTYPE html>")
    assert html.rstrip().endswith("</html>")
    for panel in PANELS:
        assert panel in html, panel
    # Title is escaped, not interpolated raw.
    assert "chaos &lt;test&gt; run" in html
    assert "<test>" not in html
    # No external fetches: a single self-contained file.
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html


def test_every_evidence_link_resolves_to_an_anchor(chaos_artifacts):
    rollup, metrics, spans, env = chaos_artifacts
    html = render_dashboard(rollup, metrics=metrics, spans=spans)
    links = re.findall(r'href="#(span-[^"]+)"', html)
    anchors = re.findall(r"id='(span-[^']+)'", html)
    assert links, "faulty run produced no evidence links"
    assert set(links) <= set(anchors)


def test_render_without_metrics_skips_diagnosis_only(chaos_artifacts):
    rollup, _metrics, _spans, _env = chaos_artifacts
    html = render_dashboard(rollup)
    assert "Troubleshooting" not in html
    for panel in ("Task state timeline", "Telemetry"):
        assert panel in html


def test_render_empty_rollup_degenerates_gracefully():
    from repro.monitor import Rollup

    html = render_dashboard(Rollup(), title="empty")
    assert html.startswith("<!DOCTYPE html>")
    assert "Telemetry" in html


def test_write_dashboard_round_trips(tmp_path, chaos_artifacts):
    rollup, metrics, spans, env = chaos_artifacts
    path = str(tmp_path / "dash.html")
    assert write_dashboard(path, rollup, metrics=metrics) == path
    assert open(path, encoding="utf-8").read().startswith("<!DOCTYPE html>")


def test_write_dashboard_is_atomic_under_concurrent_reads(tmp_path, chaos_artifacts):
    """ISSUE 10 satellite: a reader interleaved with periodic re-renders
    must only ever observe complete documents (temp file + os.replace),
    never a torn half-write."""
    import threading

    rollup, metrics, spans, env = chaos_artifacts
    path = str(tmp_path / "live.html")
    write_dashboard(path, rollup, title="seed render")

    torn = []
    stop = threading.Event()

    def reader():
        while not stop.is_set():
            try:
                text = open(path, encoding="utf-8").read()
            except FileNotFoundError:  # pragma: no cover - would be a tear
                torn.append("missing file during replace")
                continue
            if not (text.startswith("<!DOCTYPE html>")
                    and text.rstrip().endswith("</html>")):
                torn.append(f"torn read: {len(text)} bytes")

    t = threading.Thread(target=reader)
    t.start()
    try:
        for i in range(30):
            write_dashboard(path, rollup, metrics=metrics,
                            title=f"refresh {i}", now=float(i * 1800))
    finally:
        stop.set()
        t.join()
    assert torn == []
    assert not list(tmp_path.glob(".dash-*")), "temp files leaked"


def test_write_dashboard_cleans_temp_on_render_failure(tmp_path):
    from repro.monitor import Rollup

    class Boom(Rollup):
        def running_timeline(self, now=None):
            raise RuntimeError("mid-render failure")

    # Render happens before the temp file exists, so the destination is
    # simply never created; a failing *write* cleans its temp file up.
    with pytest.raises(RuntimeError):
        write_dashboard(str(tmp_path / "x.html"), Boom())
    assert not list(tmp_path.glob(".dash-*"))


# -------------------------------------------------------------- CLI: live
def test_cli_dash_live_with_parity(tmp_path):
    out_path = str(tmp_path / "live.html")
    code, text = run_cli([
        "dash", "--scenario", "quickstart",
        "--param", "events=20000", "--param", "workers=4",
        "--check-parity", "--out", out_path,
    ])
    assert code == 0
    assert "parity OK" in text
    assert f"dashboard written to {out_path}" in text
    html = open(out_path, encoding="utf-8").read()
    for panel in PANELS:
        assert panel in html, panel


def test_cli_dash_unknown_scenario_exits_with_catalog():
    with pytest.raises(SystemExit, match="unknown scenario"):
        run_cli(["dash", "--scenario", "nope"])


def test_cli_dash_non_des_scenario_rejected():
    with pytest.raises(SystemExit, match="not a DES run scenario"):
        run_cli(["dash", "--scenario", "tasksize"])


def test_cli_dash_bad_param_rejected():
    with pytest.raises(SystemExit, match="KEY=VALUE"):
        run_cli(["dash", "--param", "events"])


# ------------------------------------------------------------ CLI: replay
def test_cli_dash_replay_matches_live(tmp_path):
    events_path = str(tmp_path / "events.jsonl")
    live_path = str(tmp_path / "live.html")
    replay_path = str(tmp_path / "replay.html")
    code, _ = run_cli([
        "quickstart", "--events", "20000", "--workers", "4",
        "--events-out", events_path, "--dash-out", live_path,
    ])
    assert code == 0
    code, text = run_cli([
        "dash", "--replay", events_path, "--check-parity",
        "--out", replay_path,
    ])
    assert code == 0
    assert "parity OK" in text
    live = open(live_path, encoding="utf-8").read()
    replay = open(replay_path, encoding="utf-8").read()
    for panel in PANELS:
        assert panel in live and panel in replay, panel


def test_cli_dash_replay_missing_file_exits():
    with pytest.raises(SystemExit):
        run_cli(["dash", "--replay", "/nonexistent/events.jsonl"])


# --------------------------------------------------- telemetry truthfulness
def test_telemetry_panel_reports_true_bus_totals():
    """The dashboard's bus figures must include port/raw emits (the
    fast paths legacy counters used to miss)."""
    bus = EventBus()
    BusCollector(bus)  # subscribes the full monitoring topic set
    rollup_collector = RollupCollector(bus)
    port = bus.port(Topics.TASK_START)
    for i in range(5):
        port.emit(running=i)
    stats = bus.stats()
    assert stats["published"] == 5
    assert stats["delivered"] > 0
    html = render_dashboard(rollup_collector.rollup, bus_stats=stats)
    assert f"{stats['published']:,}" in html or str(stats["published"]) in html
