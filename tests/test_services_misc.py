"""Tests for Services wiring and assorted substrate corners."""

import pytest

from repro.core import Services
from repro.dbs import DBS, synthetic_dataset
from repro.desim import Environment, FairShareLink
from repro.storage import OutageWindow, WideAreaNetwork

MB = 1_000_000.0
GBIT = 125_000_000.0


# ---------------------------------------------------------------- Services
def test_default_services_wiring():
    env = Environment()
    s = Services.default(env)
    assert s.repository.cold_volume > 0
    assert len(s.proxies) == 1
    assert s.xrootd.wan is s.wan
    assert s.frontier is not None
    assert s.frontier.proxies is s.proxies
    assert s.hdfs is None and s.mapreduce is None
    assert s.dbs is None


def test_default_services_with_options():
    env = Environment()
    dbs = DBS()
    dbs.register(synthetic_dataset(n_files=1))
    s = Services.default(
        env,
        n_proxies=3,
        wan_bandwidth=1 * GBIT,
        outages=[OutageWindow(10, 20)],
        chirp_connections=7,
        with_hadoop=True,
        dbs=dbs,
    )
    assert len(s.proxies) == 3
    assert s.wan.bandwidth == 1 * GBIT
    assert s.wan.is_out(15)
    assert s.chirp.connections.capacity == 7
    assert s.hdfs is not None and s.mapreduce is not None
    assert s.dbs is not None
    assert len(s.dbs.files(dbs.datasets()[0])) == 1


# ---------------------------------------------------------------- WAN misc
def test_wan_current_outage():
    env = Environment()
    wan = WideAreaNetwork(env, outages=[OutageWindow(5.0, 10.0)])
    assert wan.current_outage() is None

    def proc(env):
        yield env.timeout(7.0)
        w = wan.current_outage()
        assert w is not None and w.start == 5.0

    env.process(proc(env))
    env.run()


# ---------------------------------------------------------------- link misc
def test_link_utilization_tracks_busy_fraction():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)

    def proc(env):
        yield link.transfer(500.0)  # busy 5 s at full rate
        yield env.timeout(5.0)  # idle 5 s

    env.process(proc(env))
    env.run()
    assert link.utilization() == pytest.approx(0.5, abs=0.05)


def test_link_utilization_empty():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    assert link.utilization() == 0.0


# ---------------------------------------------------------------- chirp samples
def test_chirp_queue_samples_recorded():
    from repro.storage import ChirpServer

    env = Environment()
    chirp = ChirpServer(env, bandwidth=10 * MB, max_connections=1, accept_latency=0.0)

    def proc(env):
        yield from chirp.put(10 * MB)

    for _ in range(3):
        env.process(proc(env))
    env.run()
    # One sample per transfer attempt; later arrivals saw a queue.
    assert len(chirp.queue_samples) == 3
    depths = [d for _, d in chirp.queue_samples]
    assert max(depths) >= 1


# ---------------------------------------------------------------- condor occupancy
def test_condor_occupancy_never_exceeds_capacity():
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.distributions import ConstantHazardEviction

    env = Environment()
    machines = MachinePool.homogeneous(env, 3, cores=8)
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.5), seed=4)

    def payload(slot):
        def run():
            from repro.desim import Interrupt

            try:
                yield env.timeout(3600.0)
            except Interrupt:
                pass

        return run()

    pool.submit(GlideinRequest(n_workers=10, cores_per_worker=8, start_interval=0.0), payload)
    env.run(until=20 * 3600.0)
    pool.drain()
    max_active = max(v for _, v in pool.occupancy)
    assert max_active <= 3  # only 3 machines of 8 cores
    # Machines never over-claimed.
    assert all(m.claimed_cores <= m.cores for m in machines)
