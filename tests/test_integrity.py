"""End-to-end output integrity: checksums, the commit ledger, and the
exactly-once guards."""

import pytest

from repro.analysis import simulation_code
from repro.analysis.report import ExitCode
from repro.core import (
    LobsterConfig,
    MergeMode,
    Publisher,
    Services,
    WorkflowConfig,
)
from repro.core.jobit_db import LobsterDB
from repro.core.merge import MergeManager
from repro.dbs import DBS
from repro.desim import Environment, Topics
from repro.faults import BitRot, DuplicateDelivery, TruncatedTransfer
from repro.storage import IntegrityError, StorageElement, StoredFile, compute_checksum
from repro.wq import Master, Task, TaskResult

MB = 1_000_000.0
GB = 1_000_000_000.0


# ------------------------------------------------------------- checksums
def test_compute_checksum_deterministic():
    a = compute_checksum("wf", 3, 0, 1234)
    assert a == compute_checksum("wf", 3, 0, 1234)
    assert len(a) == 8
    assert a != compute_checksum("wf", 3, 1, 1234)  # retry changes it
    assert a != compute_checksum("wf", 4, 0, 1234)  # work unit changes it


def test_se_verify_clean_and_unchecksummed():
    se = StorageElement()
    se.store(StoredFile("/store/a.root", 10 * MB, checksum="deadbeef"))
    se.store(StoredFile("/store/b.root", 10 * MB))  # legacy, no checksum
    assert se.verify("/store/a.root").name == "/store/a.root"
    assert se.verify("/store/b.root").name == "/store/b.root"
    assert se.verifications == 2
    assert se.corruptions_detected == 0


def test_se_bit_rot_detected_and_published():
    env = Environment()
    se = StorageElement(env=env)
    events = []
    env.bus.subscribe(Topics.INTEGRITY_CORRUPT, events.append)
    se.store(StoredFile("/store/a.root", 10 * MB, checksum="deadbeef"))
    se.corrupt("/store/a.root")
    with pytest.raises(IntegrityError) as err:
        se.verify("/store/a.root")
    assert err.value.name == "/store/a.root"
    assert err.value.expected == "deadbeef"
    assert se.corruptions_injected == 1
    assert se.corruptions_detected == 1
    assert len(events) == 1
    assert events[0].fields["name"] == "/store/a.root"
    assert events[0].fields["where"] == "se"


def test_se_truncation_hits_next_checksummed_write():
    se = StorageElement()
    se.arm_truncation(1)
    # Unchecksummed writes are not consumed by the armed truncation.
    se.store(StoredFile("/store/legacy.root", MB))
    se.store(StoredFile("/store/a.root", MB, checksum="cafebabe"))
    se.store(StoredFile("/store/b.root", MB, checksum="cafebabe"))
    assert se.truncations_injected == 1
    with pytest.raises(IntegrityError):
        se.verify("/store/a.root")
    assert se.verify("/store/b.root")  # only one write was truncated


def test_se_corruption_survives_restore_of_same_name():
    se = StorageElement()
    se.store(StoredFile("/store/a.root", MB, checksum="aa"))
    se.corrupt("/store/a.root")
    se.delete("/store/a.root")
    # A re-derived file with the same name starts clean.
    se.store(StoredFile("/store/a.root", MB, checksum="bb"))
    assert se.verify("/store/a.root").checksum == "bb"


# ------------------------------------------------------------- the ledger
def test_ledger_two_phase_commit():
    db = LobsterDB()
    assert db.ledger_begin("/store/x.root", "wf", "analysis", checksum="ab")
    assert db.ledger_state("/store/x.root") == "pending"
    db.ledger_commit("/store/x.root")
    assert db.ledger_state("/store/x.root") == "committed"
    # Commit is idempotent but only promotes pending rows.
    db.ledger_commit("/store/x.root")
    assert db.ledger_state("/store/x.root") == "committed"


def test_ledger_refuses_duplicate_names():
    db = LobsterDB()
    assert db.ledger_begin("/store/x.root", "wf", "analysis")
    # A second producer claiming the same output is a duplicate.
    assert not db.ledger_begin("/store/x.root", "wf", "analysis")
    db.ledger_commit("/store/x.root")
    assert not db.ledger_begin("/store/x.root", "wf", "analysis")


def test_ledger_quarantine_reopens():
    db = LobsterDB()
    db.ledger_begin("/store/x.root", "wf", "merge", task_id=7)
    db.ledger_commit("/store/x.root")
    assert db.ledger_task_id("/store/x.root") == 7
    db.ledger_quarantine("/store/x.root")
    assert db.ledger_state("/store/x.root") == "quarantined"
    # Quarantined names may be re-derived (a retry re-begins them) …
    assert db.ledger_begin("/store/x.root", "wf", "merge")
    assert db.ledger_state("/store/x.root") == "pending"


def test_ledger_mark_merged_and_counts():
    db = LobsterDB()
    for i in range(3):
        db.ledger_begin(f"/store/c{i}.root", "wf", "analysis")
        db.ledger_commit(f"/store/c{i}.root")
    db.ledger_begin("/store/merged.root", "wf", "merge")
    db.ledger_commit("/store/merged.root")
    db.ledger_mark_merged(
        [f"/store/c{i}.root" for i in range(3)], "/store/merged.root"
    )
    counts = db.ledger_counts("wf")
    assert counts == {"committed": 1, "merged": 3}
    assert sorted(db.merge_children_of("/store/merged.root")) == [
        f"/store/c{i}.root" for i in range(3)
    ]


def test_ledger_sweep_orphans_removes_only_pending():
    db = LobsterDB()
    db.ledger_begin("/store/half.root", "wf", "analysis")
    db.ledger_begin("/store/done.root", "wf", "analysis")
    db.ledger_commit("/store/done.root")
    swept = db.ledger_sweep_orphans("wf")
    assert swept == ["/store/half.root"]
    assert db.ledger_state("/store/half.root") is None
    assert db.ledger_state("/store/done.root") == "committed"


def test_merge_group_ids_seedable():
    db = LobsterDB()
    db.record_merge_group(5, "wf", "/store/m5.root", 4, 400 * MB)
    assert db.max_merge_group_id() == 5
    assert LobsterDB().max_merge_group_id() == 0


# ----------------------------------------------- master late-result guard
def _result(task, exit_code=ExitCode.SUCCESS, attempt=None):
    return TaskResult(
        task=task,
        exit_code=exit_code,
        worker_id="w0",
        submitted=0.0,
        started=0.0,
        finished=10.0,
        attempt=attempt,
    )


def _noop_executor(worker, task):
    yield


def test_master_drops_result_for_completed_task():
    env = Environment()
    master = Master(env)
    events = []
    env.bus.subscribe(Topics.TASK_DUPLICATE, events.append)
    task = Task(_noop_executor)
    master.task_started()
    master.task_finished(_result(task))
    assert master.tasks_returned == 1
    # The same result arrives again (an evicted worker's late delivery).
    master.task_finished(_result(task))
    assert master.tasks_returned == 1
    assert master.tasks_duplicate == 1
    assert len(master.results.items) == 1
    assert len(events) == 1 and events[0].fields["source"] == "master"


def test_master_drops_result_from_stale_attempt():
    env = Environment()
    master = Master(env)
    task = Task(_noop_executor)
    task.attempts = 2  # the task was requeued since this attempt ran
    master.task_started()
    master.task_finished(_result(task, attempt=1))
    assert master.tasks_duplicate == 1
    assert master.tasks_returned == 0
    assert task.result is None
    # The current attempt's result is accepted.
    master.task_finished(_result(task, attempt=2))
    assert master.tasks_returned == 1


def test_master_result_taps_see_accepted_results_only():
    env = Environment()
    master = Master(env)
    seen = []
    master.add_result_tap(seen.append)
    task = Task(_noop_executor)
    master.task_started()
    master.task_finished(_result(task))
    master.task_finished(_result(task))  # duplicate, dropped
    assert len(seen) == 1


# --------------------------------------------------- merge-side screening
def _make_manager(db=None):
    env = Environment()
    wf = WorkflowConfig(
        label="wf",
        code=simulation_code(),
        n_events=1000,
        merge_mode=MergeMode.INTERLEAVED,
        merge_target_bytes=1.0 * GB,
        merge_threshold=0.10,
        max_retries=3,
    )
    cfg = LobsterConfig(workflows=[wf])
    services = Services.default(env, seed=3)
    return env, MergeManager(cfg, wf, services, db=db), services


def test_merge_screens_corrupt_inputs_into_quarantine():
    env, mgr, services = _make_manager()
    for i in range(12):
        f = StoredFile(
            f"/store/user/wf/out/f{i:04d}.root", 100 * MB,
            checksum=compute_checksum("wf", i),
        )
        services.se.store(f)
        mgr.add_output(f)
    services.se.corrupt("/store/user/wf/out/f0003.root")
    tasks = mgr.make_tasks(processed_fraction=0.5, final=True)
    assert tasks  # the clean files still merge
    quarantined = mgr.take_quarantined()
    assert [f.name for f in quarantined] == ["/store/user/wf/out/f0003.root"]
    assert all(
        "f0003" not in f.name
        for t in tasks
        for f in t.payload.merge_inputs[0].inputs
    )


def test_merge_screens_uncommitted_inputs():
    db = LobsterDB()
    env, mgr, services = _make_manager(db=db)
    for i in range(2):
        name = f"/store/user/wf/out/f{i:04d}.root"
        f = StoredFile(name, 100 * MB, checksum=compute_checksum("wf", i))
        services.se.store(f)
        mgr.add_output(f)
        db.ledger_begin(name, "wf", "analysis")
    db.ledger_commit("/store/user/wf/out/f0000.root")
    # f0001 is still pending: the merge must not consume it.
    mgr.make_tasks(processed_fraction=1.0, final=True)
    assert [f.name for f in mgr.take_quarantined()] == [
        "/store/user/wf/out/f0001.root"
    ]


def test_merge_duplicate_result_dropped():
    env, mgr, services = _make_manager()
    for i in range(10):
        f = StoredFile(
            f"/store/user/wf/out/f{i:04d}.root", 100 * MB,
            checksum=compute_checksum("wf", i),
        )
        services.se.store(f)
        mgr.add_output(f)
    tasks = mgr.make_tasks(processed_fraction=1.0, final=True)
    assert len(tasks) == 1
    task = tasks[0]
    events = []
    env.bus.subscribe(Topics.TASK_DUPLICATE, events.append)

    class _Done:
        def __init__(self):
            self.task = task
            self.succeeded = True
            self.finished = 100.0
            self.report = None

    assert mgr.on_result(_Done()) is None  # success: nothing to resubmit
    merged = len(mgr.merged_files)
    assert mgr.on_result(_Done()) is None  # replayed result
    assert len(mgr.merged_files) == merged
    assert len(events) == 1 and events[0].fields["source"] == "merge"


# ------------------------------------------------------------- publish gate
def test_publish_refuses_uncommitted_and_corrupt():
    db = LobsterDB()
    se = StorageElement()
    pub = Publisher(DBS())
    f = StoredFile("/store/m.root", 100 * MB, checksum="abcd1234")
    se.store(f)
    db.ledger_begin("/store/m.root", "wf", "merge")
    with pytest.raises(ValueError, match="ledger state 'pending'"):
        pub.publish("wf", [f], 1e-6, verify_with=se, ledger=db)
    db.ledger_commit("/store/m.root")
    se.corrupt("/store/m.root")
    with pytest.raises(IntegrityError):
        pub.publish("wf", [f], 1e-6, verify_with=se, ledger=db)
    assert pub.records == []  # nothing was registered


# --------------------------------------------------- fault plan validation
def test_corruption_fault_validation():
    with pytest.raises(ValueError):
        BitRot(at=-1.0)
    with pytest.raises(ValueError):
        BitRot(at=0.0, count=0)
    with pytest.raises(ValueError):
        BitRot(at=0.0, repeat=2)  # no period
    with pytest.raises(ValueError):
        TruncatedTransfer(at=0.0, count=0)
    with pytest.raises(ValueError):
        DuplicateDelivery(at=0.0, delay=0.0)
    with pytest.raises(ValueError):
        DuplicateDelivery(at=0.0, count=0)
