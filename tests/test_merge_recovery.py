"""Crash recovery of mid-merge state (the output commit ledger at work).

A run is killed after processing completes but while merges are still
in flight, then restarted from the Lobster DB in a fresh process.  The
recovered run must lose no tasklet, rerun none, mint merge-output names
that never collide with ones the dead scheduler committed, and publish
a dataset byte-identical to an uninterrupted run of the same seed.
"""

from repro.analysis import data_processing_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    LobsterConfig,
    LobsterRun,
    MergeMode,
    Publisher,
    Services,
    WorkflowConfig,
)
from repro.core.jobit_db import LobsterDB
from repro.dbs import DBS, synthetic_dataset
from repro.desim import Environment
from repro.testing import reset_id_counters

GBIT = 125_000_000.0
SEED = 5
N_FILES = 16


def _setup(db, recover=False):
    reset_id_counters()  # each (re)start is a fresh scheduler process
    env = Environment()
    dbs = DBS()
    dataset = synthetic_dataset(
        name="/Recovery/Run2015-v1/AOD",
        n_files=N_FILES,
        events_per_file=10_000,
        lumis_per_file=20,
        seed=SEED,
    )
    dbs.register(dataset)
    services = Services.default(env, dbs=dbs, wan_bandwidth=2.0 * GBIT,
                                seed=SEED)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="wf",
                code=data_processing_code(),
                dataset=dataset.name,
                lumis_per_tasklet=10,
                tasklets_per_task=4,
                merge_mode=MergeMode.INTERLEAVED,
                merge_target_bytes=400e6,
            )
        ],
        cores_per_worker=4,
        seed=SEED,
    )
    run = LobsterRun(env, cfg, services, db=db, recover=recover)
    run.start()
    machines = MachinePool.homogeneous(env, 6, cores=4,
                                       fabric=services.fabric)
    pool = CondorPool(env, machines, seed=SEED)
    pool.submit(
        GlideinRequest(n_workers=6, cores_per_worker=4, start_interval=1.0),
        run.worker_payload,
    )
    return env, run, pool, dbs


def _published(run, dbs):
    record = run.publish_workflow("wf", Publisher(dbs))
    dataset = dbs.dataset(record.dataset_name)
    sizes = sorted(f.size_bytes for f in dataset.files)
    return record, sizes


def _run_to_completion(db):
    env, run, pool, dbs = _setup(db)
    env.run(until=run.process)
    pool.drain()
    return _published(run, dbs)


def _crash_mid_merge(db):
    """Drive a run until merges are pending/in flight, then abandon it."""
    env, run, pool, _ = _setup(db)
    w = run.workflows["wf"]
    while not (w.processing_complete and not w.complete):
        assert run.process.is_alive, "run finished before a crash window"
        env.run(until=env.now + 5.0)
    # Simulated kill -9: the env, pool, and in-flight merges vanish;
    # only the Lobster DB (tasklet states + output ledger) survives.
    return w


def test_restart_resumes_merges_without_loss_or_duplication():
    # Baseline: the same seed, never interrupted.
    baseline_record, baseline_sizes = _run_to_completion(LobsterDB())

    db = LobsterDB()
    _crash_mid_merge(db)
    committed_before = {
        name for name, *_ in db.ledger_outputs("wf", "merge")
    }
    done_before = db.tasklet_state_counts("wf").get("done", 0)

    env2, run2, pool2, dbs2 = _setup(db, recover=True)
    summary = env2.run(until=run2.process)
    pool2.drain()
    # Crash-consistency invariants hold at recovered-run shutdown.
    assert run2.check_invariants() == []

    wf = summary["workflows"]["wf"]
    # No tasklet lost …
    assert wf["tasklets_done"] == wf["tasklets"]
    assert done_before == wf["tasklets"], "crash window lost analysis work"
    # … and none ran twice: processing had finished, so the recovered
    # scheduler runs merges only.
    assert run2.metrics.n_succeeded("analysis") == 0
    assert run2.metrics.n_failed("analysis") == 0
    assert run2.metrics.n_succeeded("merge") > 0

    # Fresh merge names never collide with the dead scheduler's commits.
    committed_after = {
        name for name, *_ in db.ledger_outputs("wf", "merge")
    }
    new_names = committed_after - committed_before
    assert committed_before <= committed_after
    assert new_names, "recovered run committed no merges"
    counts = db.ledger_counts("wf")
    assert counts.get("pending", 0) == 0

    # The published dataset is byte-identical to the uninterrupted run.
    record, sizes = _published(run2, dbs2)
    assert record.n_files == baseline_record.n_files
    assert record.total_bytes == baseline_record.total_bytes
    assert record.total_events == baseline_record.total_events
    assert sizes == baseline_sizes


def test_restart_sweeps_pending_orphans():
    db = LobsterDB()
    _crash_mid_merge(db)
    # Fake a half-written output the dead scheduler never committed.
    db.ledger_begin("/store/user/wf/out/task_999999.root", "wf", "analysis")

    env2, run2, pool2, _ = _setup(db, recover=True)
    env2.run(until=run2.process)
    pool2.drain()

    assert db.ledger_state("/store/user/wf/out/task_999999.root") is None
    assert run2.metrics.integrity_orphans
