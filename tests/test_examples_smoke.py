"""Smoke tests: every example script runs to completion.

Examples are the quickstart surface of the library; these tests keep
them from rotting.  Each runs in a subprocess with a generous timeout.
The two heaviest (simulation_run, multi_cluster) are exercised by the
benchmarks/CLI paths instead and excluded here to keep the suite fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "merging_comparison.py",
    "task_size_tuning.py",
    "multi_stage_analysis.py",
    "network_contention.py",
    "chaos_run.py",
    "corruption_run.py",
    "crash_recovery.py",
    "trace_run.py",
    "sweep_ablation.py",
    "dashboard_run.py",
    "watch_run.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_example_list_matches_directory():
    """Every example on disk is either smoke-tested here or known-heavy."""
    heavy = {
        "data_processing_run.py",
        "simulation_run.py",
        "adaptive_opportunistic.py",
        "multi_cluster.py",
        "troubleshooting_drilldown.py",
    }
    on_disk = {f for f in os.listdir(EXAMPLES) if f.endswith(".py")}
    assert on_disk == set(FAST_EXAMPLES) | heavy
