"""Edge-case integration tests for the Lobster run loop."""

import pytest

from repro.analysis import data_processing_code, simulation_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    DataAccess,
    LobsterConfig,
    LobsterRun,
    MergeMode,
    Publisher,
    Services,
    WorkflowConfig,
)
from repro.dbs import DBS, LumiMask, synthetic_dataset
from repro.desim import Environment
from repro.distributions import NoEviction

HOUR = 3600.0
GB = 1_000_000_000.0


def run_to_completion(cfg, services_kw=None, n_machines=4, cores=4, dbs=None, until=None):
    env = Environment()
    services = Services.default(env, dbs=dbs, **(services_kw or {}))
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, n_machines, cores=cores)
    pool = CondorPool(env, machines, eviction=NoEviction(), seed=19)
    pool.submit(
        GlideinRequest(n_workers=n_machines, cores_per_worker=cores, start_interval=0.5),
        run.worker_payload,
    )
    summary = env.run(until=until or run.process)
    pool.drain()
    return env, run, summary


def test_workflow_with_guaranteed_failures_terminates():
    """Every task fails intrinsically; retries exhaust; the run still ends."""
    wf = WorkflowConfig(
        label="doomed",
        code=simulation_code(intrinsic_failure_rate=0.999999),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        max_retries=3,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    d = summary["workflows"]["doomed"]
    assert d["tasklets_failed"] == d["tasklets"] == 8
    assert d["tasklets_done"] == 0
    assert run.workflows["doomed"].complete
    # No outputs were ever produced, so merging had nothing to do.
    assert summary["workflows"]["doomed"]["merged_files"] == 0


def test_wq_data_access_end_to_end():
    dbs = DBS()
    ds = synthetic_dataset(n_files=6, events_per_file=2_000, lumis_per_file=10)
    dbs.register(ds)
    wf = WorkflowConfig(
        label="wq-mode",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset=ds.name,
        lumis_per_tasklet=5,
        tasklets_per_task=2,
        data_access=DataAccess.WQ,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg, dbs=dbs)
    assert summary["workflows"]["wq-mode"]["tasklets_done"] == 12
    # Input moved via Work Queue: master NIC carried real volume,
    # while the federation was never consulted.
    assert run.master.nic.bytes_moved > ds.total_bytes * 0.9
    assert run.services.xrootd.opens == 0


def test_lumi_masked_workflow():
    dbs = DBS()
    full = synthetic_dataset(n_files=4, events_per_file=1_000, lumis_per_file=10)
    run_no = full.runs[0]
    masked = LumiMask({run_no: [[1, 5]]}).filter_dataset(full)
    dbs.register(masked)
    wf = WorkflowConfig(
        label="masked",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset=masked.name,
        lumis_per_tasklet=5,
        tasklets_per_task=1,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg, dbs=dbs)
    m = summary["workflows"]["masked"]
    assert m["tasklets_done"] == m["tasklets"] == 1
    assert sum(t.n_events for t in run.workflows["masked"].tasklets) == 500


def test_publish_after_run():
    wf = WorkflowConfig(
        label="pubmc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=12_000,
        events_per_tasklet=500,
        tasklets_per_task=4,
        merge_mode=MergeMode.INTERLEAVED,
        merge_target_bytes=0.5 * GB,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    merged = run.workflows["pubmc"].merge.merged_files
    assert merged
    dbs = DBS()
    pub = Publisher(dbs)
    record = pub.publish(
        "pubmc",
        merged,
        events_per_byte=1.0 / wf.code.output_bytes_per_event,
        parent=None,
    )
    assert record.n_files == len(merged)
    # Event counts survive the size↔events round trip.
    assert record.total_events == pytest.approx(12_000, rel=0.02)
    assert dbs.dataset(record.dataset_name).total_events == record.total_events


def test_two_independent_workflows_one_fails():
    ok = WorkflowConfig(
        label="ok",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
    )
    doomed = WorkflowConfig(
        label="doomed",
        code=simulation_code(intrinsic_failure_rate=0.999999),
        n_events=2_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        max_retries=2,
    )
    cfg = LobsterConfig(workflows=[ok, doomed], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    assert summary["workflows"]["ok"]["tasklets_done"] == 8
    assert summary["workflows"]["doomed"]["tasklets_failed"] == 4
    # The healthy workflow is unaffected by its sibling's failures.
    assert run.workflows["ok"].tasklets.failed_count == 0


def test_chained_child_of_failed_parent_gets_no_work():
    parent = WorkflowConfig(
        label="p",
        code=simulation_code(intrinsic_failure_rate=0.999999),
        n_events=2_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        max_retries=2,
    )
    child = WorkflowConfig(
        label="c",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        parent="p",
        events_per_tasklet=1_000,
        tasklets_per_task=2,
        data_access=DataAccess.CHIRP,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[parent, child], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    # The parent produced nothing; the child's store is empty but built,
    # and the run terminated cleanly.
    assert summary["workflows"]["p"]["tasklets_failed"] == 4
    assert summary["workflows"]["c"]["tasklets"] == 0
    assert run.workflows["c"].complete


def test_render_report_after_chain(tmp_path):
    from repro.monitor import export_run, render_report

    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    text = render_report(run)
    assert "segment durations" in text
    paths = export_run(run.metrics, str(tmp_path))
    assert all(p for p in paths.values())


def test_workflow_priorities_order_dispatch():
    """Higher-priority workflows are processed first; equals interleave."""
    high = WorkflowConfig(
        label="high",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        priority=10,
    )
    low_a = WorkflowConfig(
        label="low-a",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        priority=0,
    )
    low_b = WorkflowConfig(
        label="low-b",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
        priority=0,
    )
    # A tiny buffer forces prioritised, incremental task creation; one
    # single-core worker serialises execution so ordering is visible.
    cfg = LobsterConfig(
        workflows=[low_a, low_b, high],
        cores_per_worker=1,
        task_buffer=1,
        bad_machine_rate=0.0,
    )
    env = Environment()
    services = Services.default(env)
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 1, cores=1)
    pool = CondorPool(env, machines, eviction=NoEviction(), seed=29)
    pool.submit(
        GlideinRequest(n_workers=1, cores_per_worker=1, start_interval=0.0),
        run.worker_payload,
    )
    env.run(until=run.process)
    pool.drain()

    recs = [r for r in run.metrics.records if r.category == "analysis"]
    # All of the high-priority workflow finished before the low tier's
    # earliest completion (modulo the very first buffered task).
    high_last = max(r.finished for r in recs if r.workflow == "high")
    low_starts = sorted(
        r.started for r in recs if r.workflow != "high"
    )
    later_low = [s for s in low_starts if s > 60.0]  # ignore pre-buffered
    assert all(s >= high_last - 1e6 for s in later_low)  # sanity
    # Stronger: among the first half of completions, 'high' dominates.
    ordered = sorted(recs, key=lambda r: r.finished)
    first_half = ordered[: len(ordered) // 2]
    high_share = sum(1 for r in first_half if r.workflow == "high") / len(first_half)
    assert high_share > 0.6
    # The two low-priority workflows interleave (both appear in the
    # second half's first few completions).
    second_half = ordered[len(ordered) // 2 :]
    labels = {r.workflow for r in second_half[:6]}
    assert {"low-a", "low-b"} <= labels


def test_run_report_and_export_helpers(tmp_path):
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=2_000,
        events_per_tasklet=500,
        tasklets_per_task=2,
        merge_mode=MergeMode.NONE,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, summary = run_to_completion(cfg)
    assert "LOBSTER RUN REPORT" in run.report()
    paths = run.export(str(tmp_path))
    assert set(paths) == {"tasks", "segments", "timeline", "breakdown"}
