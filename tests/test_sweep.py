"""Tests for the declarative sweep engine (``repro.sweep``).

Fast by construction: everything below the spec layer runs against the
instant ``toy`` model scenario, so expansion, hashing, fan-out, failure
isolation, resume, and reduction are exercised without paying for a
discrete-event simulation.
"""

import io
import json
import os

import pytest

from repro.sweep import (
    Axis,
    SweepSpec,
    Variant,
    axis_importance,
    canonical_json,
    compute_deltas,
    content_hash,
    execute_plan,
    load_spec,
    load_sweep,
    run_sweep,
    write_json,
)
from repro.sweep.registry import (
    get_scenario,
    resolve_cache_mode,
    resolve_eviction,
    resolve_outages,
)
from repro.testing import resolve_test_seed


def toy_spec(**kwargs) -> SweepSpec:
    """A 2x2 grid over the instant toy scenario."""
    defaults = dict(
        name="toy",
        scenario="toy",
        seed=3,
        axes=[
            Axis("value", (Variant("v1", {"value": 1.0}),
                           Variant("v2", {"value": 2.0}))),
            Axis("factor", (Variant("f1", {"factor": 1.0}),
                            Variant("f3", {"factor": 3.0}))),
        ],
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


# ---------------------------------------------------------------- expansion
def test_grid_expansion_counts_and_order():
    plans = toy_spec().expand()
    assert len(plans) == 4
    # Axis-major order: first axis varies slowest.
    assert [p.variants for p in plans] == [
        {"value": "v1", "factor": "f1"},
        {"value": "v1", "factor": "f3"},
        {"value": "v2", "factor": "f1"},
        {"value": "v2", "factor": "f3"},
    ]


def test_star_expansion_is_one_at_a_time():
    plans = toy_spec(mode="star").expand()
    # All-baseline plus one run per non-baseline variant.
    assert len(plans) == 3
    assert plans[0].variants == {"value": "v1", "factor": "f1"}
    assert {tuple(p.variants.values()) for p in plans[1:]} == {
        ("v2", "f1"), ("v1", "f3"),
    }


def test_run_ids_are_stable_and_content_addressed():
    a = toy_spec().expand()
    b = toy_spec().expand()
    assert [p.run_id for p in a] == [p.run_id for p in b]
    # Same params under reordered axes -> same content digest.
    flipped = toy_spec(
        axes=[
            Axis("factor", (Variant("f1", {"factor": 1.0}),
                            Variant("f3", {"factor": 3.0}))),
            Axis("value", (Variant("v1", {"value": 1.0}),
                           Variant("v2", {"value": 2.0}))),
        ]
    ).expand()
    assert {p.run_id.rsplit("-", 1)[1] for p in a} == {
        p.run_id.rsplit("-", 1)[1] for p in flipped
    }
    # Changing a parameter changes the digest.
    shifted = toy_spec(base={"sleep_s": 0.0}).expand()
    assert {p.run_id.rsplit("-", 1)[1] for p in a}.isdisjoint(
        p.run_id.rsplit("-", 1)[1] for p in shifted
    )


def test_identical_params_still_get_distinct_run_ids():
    # Two variants with identical params share a content digest but the
    # variant-name label keeps their run IDs distinct.
    plans = toy_spec(
        axes=[
            Axis("a", (Variant("x", {"value": 1.0}),)),
            Axis("b", (Variant("y1", {"value": 1.0}),
                       Variant("y2", {"value": 1.0}))),
        ]
    ).expand()
    assert len({p.run_id for p in plans}) == 2
    assert len({p.run_id.rsplit("-", 1)[1] for p in plans}) == 1


def test_colliding_labels_with_identical_params_are_rejected():
    # Pathological variant names can make two assignments produce the
    # same "+"-joined label AND the same params -> same run id.
    spec = toy_spec(
        axes=[
            Axis("a", (Variant("x"), Variant("x+y"))),
            Axis("b", (Variant("y+z"), Variant("z"))),
        ]
    )
    with pytest.raises(ValueError, match="duplicate run ids"):
        spec.expand()


def test_spec_validation():
    with pytest.raises(ValueError, match="at least one axis"):
        SweepSpec(name="x", scenario="toy", axes=[])
    with pytest.raises(ValueError, match="unknown sweep mode"):
        toy_spec(mode="zigzag")
    with pytest.raises(ValueError, match="duplicate variant names"):
        Axis("a", (Variant("x"), Variant("x")))
    with pytest.raises(ValueError, match="at least one variant"):
        Axis("a", ())


def test_spec_round_trip_and_hash():
    spec = toy_spec(objective="efficiency", timeout_s=7.5)
    clone = SweepSpec.from_dict(json.loads(canonical_json(spec.to_dict())))
    assert clone.to_dict() == spec.to_dict()
    assert clone.spec_hash() == spec.spec_hash()
    assert [p.run_id for p in clone.expand()] == [
        p.run_id for p in spec.expand()
    ]


def test_content_hash_is_order_insensitive():
    assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


# ---------------------------------------------------------------- spec files
def test_load_spec_json(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(toy_spec().to_dict()))
    spec = load_spec(str(path))
    assert [p.run_id for p in spec.expand()] == [
        p.run_id for p in toy_spec().expand()
    ]


def test_load_spec_python(tmp_path):
    path = tmp_path / "spec.py"
    path.write_text(
        "from repro.sweep import Axis, SweepSpec, Variant\n"
        "SPEC = SweepSpec(name='py', scenario='toy', seed=1,\n"
        "                 axes=[Axis('a', (Variant('x', {'value': 1.0}),))])\n"
    )
    assert load_spec(str(path)).name == "py"


def test_load_spec_python_builder(tmp_path):
    path = tmp_path / "spec.py"
    path.write_text(
        "from repro.sweep import Axis, SweepSpec, Variant\n"
        "def build_spec():\n"
        "    return SweepSpec(name='built', scenario='toy', seed=1,\n"
        "                     axes=[Axis('a', (Variant('x'),))])\n"
    )
    assert load_spec(str(path)).name == "built"


def test_load_spec_rejects_other_files(tmp_path):
    empty = tmp_path / "spec.py"
    empty.write_text("x = 1\n")
    with pytest.raises(ValueError, match="no SPEC object"):
        load_spec(str(empty))
    with pytest.raises(ValueError, match="need .json or .py"):
        load_spec("spec.yaml")


# ---------------------------------------------------------------- seeds
def test_resolve_test_seed(monkeypatch):
    monkeypatch.delenv("REPRO_TEST_SEED", raising=False)
    assert resolve_test_seed() == 0
    assert resolve_test_seed(default=9) == 9
    monkeypatch.setenv("REPRO_TEST_SEED", "2")
    assert resolve_test_seed() == 2
    monkeypatch.setenv("REPRO_TEST_SEED", "  ")
    assert resolve_test_seed() == 0
    monkeypatch.setenv("REPRO_TEST_SEED", "two")
    with pytest.raises(ValueError, match="must be an integer"):
        resolve_test_seed()


def test_spec_seed_defaults_to_matrix_seed(monkeypatch):
    monkeypatch.setenv("REPRO_TEST_SEED", "2")
    assert toy_spec(seed=None).resolved_seed() == 2
    assert toy_spec(seed=7).resolved_seed() == 7
    # The seed lands in the run params, hence in the content hash.
    assert toy_spec(seed=None).expand()[0].params["seed"] == 2


# ---------------------------------------------------------------- execution
def test_execute_plan_runs_model_scenario():
    plan = toy_spec().expand()[0]
    row = execute_plan(plan)
    assert row.ok
    assert row.metrics["makespan_s"] == pytest.approx(100.0, abs=1.0)


def test_run_sweep_payload_shape():
    payload = run_sweep(toy_spec())
    assert payload["schema"] == "repro.sweep/1"
    assert payload["n_runs"] == 4 and payload["n_ok"] == 4
    assert payload["baseline"] == toy_spec().baseline_plan().run_id
    assert len(payload["deltas"]) == 4
    assert [a["axis"] for a in payload["importance"]] == ["factor", "value"]
    # Baseline delta row is exactly zero.
    base_row = next(
        d for d in payload["deltas"] if d["run_id"] == payload["baseline"]
    )
    assert base_row["delta"] == 0.0


def test_jobs_do_not_change_results():
    """Satellite 4: --jobs 1 and --jobs 4 agree run-for-run."""
    p1 = run_sweep(toy_spec(), jobs=1)
    p4 = run_sweep(toy_spec(), jobs=4)
    assert [r["run_id"] for r in p1["runs"]] == [
        r["run_id"] for r in p4["runs"]
    ]
    assert [r["metrics"] for r in p1["runs"]] == [
        r["metrics"] for r in p4["runs"]
    ]


def test_explicit_baseline_and_unknown_baseline():
    plans = toy_spec().expand()
    payload = run_sweep(toy_spec(), baseline=plans[3].run_id)
    assert payload["baseline"] == plans[3].run_id
    with pytest.raises(ValueError, match="not a run id"):
        run_sweep(toy_spec(), baseline="nope-123")


def test_jobs_must_be_positive():
    with pytest.raises(ValueError, match="jobs must be"):
        run_sweep(toy_spec(), jobs=0)


# ---------------------------------------------------------------- failure paths
def crashy_spec(**kwargs) -> SweepSpec:
    """One healthy and one failing variant."""
    defaults = dict(
        name="crashy",
        scenario="toy",
        seed=3,
        axes=[
            Axis("health", (Variant("fine", {}),
                            Variant("sick", {"crash": True}))),
            Axis("value", (Variant("v1", {"value": 1.0}),
                           Variant("v2", {"value": 2.0}))),
        ],
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def test_exception_marks_run_failed_without_poisoning_siblings():
    payload = run_sweep(crashy_spec(), jobs=2)
    assert payload["n_ok"] == 2 and payload["n_failed"] == 2
    by_id = {r["run_id"]: r for r in payload["runs"]}
    for r in by_id.values():
        if r["variants"]["health"] == "sick":
            assert r["status"] == "failed"
            assert "injected crash" in r["error"]
        else:
            assert r["status"] == "ok" and r["metrics"]


def test_worker_process_death_is_isolated():
    """A hard os._exit kills the worker, not the sweep."""
    spec = crashy_spec(
        axes=[
            Axis("health", (Variant("fine", {}),
                            Variant("dead", {"hard_exit": True}))),
        ]
    )
    payload = run_sweep(spec, jobs=2)
    by_health = {r["variants"]["health"]: r for r in payload["runs"]}
    assert by_health["fine"]["status"] == "ok"
    assert by_health["dead"]["status"] == "failed"
    assert "exit code 13" in by_health["dead"]["error"]
    assert by_health["fine"]["metrics"]["makespan_s"] > 0


def test_worker_timeout_is_isolated():
    spec = crashy_spec(
        axes=[
            Axis("health", (Variant("fine", {}),
                            Variant("stuck", {"sleep_s": 60.0}))),
        ],
        timeout_s=1.5,
    )
    payload = run_sweep(spec, jobs=2)
    by_health = {r["variants"]["health"]: r for r in payload["runs"]}
    assert by_health["fine"]["status"] == "ok"
    assert by_health["stuck"]["status"] == "failed"
    assert "timed out" in by_health["stuck"]["error"]


def test_resume_skips_completed_runs(tmp_path):
    first = run_sweep(crashy_spec(), jobs=2)
    assert first["n_failed"] == 2
    path = str(tmp_path / "sweep.json")
    write_json(first, path)

    executed = []
    second = run_sweep(
        crashy_spec(), resume=path, progress=lambda row: executed.append(row)
    )
    # The two ok runs come back marked resumed; only failures re-execute.
    resumed = [r for r in second["runs"] if r.get("resumed")]
    assert len(resumed) == 2
    assert all(r["status"] == "ok" for r in resumed)
    fresh = [row for row in executed if not row.resumed]
    assert {row.run_id for row in fresh} == {
        r["run_id"] for r in second["runs"] if not r.get("resumed")
    }
    assert load_sweep(path)["n_runs"] == 4


# ---------------------------------------------------------------- reduction
def synthetic_results():
    spec = toy_spec()
    rows = []
    for plan in spec.expand():
        row = execute_plan(plan)
        rows.append(row)
    return spec, rows


def test_compute_deltas_against_baseline():
    spec, rows = synthetic_results()
    deltas = compute_deltas(rows, "makespan_s", spec.baseline_plan().run_id)
    assert deltas[0]["delta"] == 0.0
    assert all("delta_pct" in d for d in deltas)


def test_axis_importance_ranks_strongest_axis_first():
    spec, rows = synthetic_results()
    ranking = axis_importance(spec, rows)
    # factor spans 1->3 (spread ~300), value spans 1->2 (spread ~200).
    assert ranking[0]["axis"] == "factor"
    assert ranking[0]["spread"] > ranking[1]["spread"] > 0


# ---------------------------------------------------------------- registry
def test_registry_resolvers():
    from repro.cvmfs import CacheMode
    from repro.distributions import (
        ConstantHazardEviction,
        EmpiricalEviction,
        NoEviction,
        WeibullEviction,
    )

    assert resolve_eviction(None) is None
    assert isinstance(resolve_eviction("none"), NoEviction)
    assert isinstance(resolve_eviction("weibull"), WeibullEviction)
    const = resolve_eviction("constant:0.25")
    assert isinstance(const, ConstantHazardEviction)
    assert isinstance(resolve_eviction("empirical:200:1"), EmpiricalEviction)
    with pytest.raises(ValueError, match="unknown eviction"):
        resolve_eviction("bogus")

    assert resolve_cache_mode("alien") is CacheMode.ALIEN
    assert resolve_cache_mode(None) is None
    with pytest.raises(ValueError, match="unknown cache mode"):
        resolve_cache_mode("warm")

    outages = resolve_outages([[10.0, 20.0]])
    assert outages[0].start == 10.0 and outages[0].end == 20.0
    assert resolve_outages(None) is None


def test_unknown_scenario_lists_known_names():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("does-not-exist")


# ---------------------------------------------------------------- CLI
def run_cli(argv):
    from repro.cli import main

    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_sweep_list(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(toy_spec().to_dict()))
    code, text = run_cli(["sweep", str(path), "--list"])
    assert code == 0
    for plan in toy_spec().expand():
        assert plan.run_id in text


def test_cli_sweep_end_to_end(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(toy_spec().to_dict()))
    out_path = tmp_path / "BENCH_sweep.json"
    code, text = run_cli(
        ["sweep", str(path), "--jobs", "2", "--out", str(out_path)]
    )
    assert code == 0
    assert "4/4 runs ok" in text
    assert "axis importance" in text
    payload = load_sweep(str(out_path))
    assert payload["n_ok"] == 4
    assert os.path.getsize(out_path) > 0


def test_cli_sweep_failure_sets_exit_code(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(crashy_spec().to_dict()))
    out_path = tmp_path / "BENCH_sweep.json"
    code, text = run_cli(["sweep", str(path), "--out", str(out_path)])
    assert code == 1
    assert "failed runs:" in text


def test_cli_sweep_missing_spec():
    with pytest.raises(SystemExit):
        run_cli(["sweep", "/does/not/exist.json"])
