"""Tests for the Dataset Bookkeeping System substrate."""

import pytest

from repro.dbs import DBS, DBSClient, Dataset, FileRecord, LumiSection, synthetic_dataset
from repro.dbs.service import DatasetNotFound
from repro.desim import Environment


def make_file(i=0, run=1, n_lumis=5, size=1000, events=100):
    lumis = tuple(LumiSection(run, j + 1 + i * n_lumis) for j in range(n_lumis))
    return FileRecord(f"/store/test/file{i}.root", size, events, lumis)


# ---------------------------------------------------------------- model
def test_lumi_section_ordering_and_validation():
    assert LumiSection(1, 2) < LumiSection(1, 3) < LumiSection(2, 1)
    with pytest.raises(ValueError):
        LumiSection(0, 1)
    with pytest.raises(ValueError):
        LumiSection(1, 0)


def test_file_record_validation():
    with pytest.raises(ValueError):
        FileRecord("store/bad.root", 10, 10, (LumiSection(1, 1),))
    with pytest.raises(ValueError):
        FileRecord("/store/x.root", -1, 10, (LumiSection(1, 1),))
    with pytest.raises(ValueError):
        FileRecord("/store/x.root", 10, 10, ())


def test_file_record_properties():
    f = make_file(n_lumis=4, events=100)
    assert f.events_per_lumi == 25.0
    assert f.runs == (1,)


def test_dataset_name_validation():
    with pytest.raises(ValueError):
        Dataset("not-a-dataset")
    Dataset("/Primary/Processed/AOD")  # valid


def test_dataset_aggregates():
    ds = Dataset("/P/R/AOD", [make_file(0), make_file(1)])
    assert len(ds) == 2
    assert ds.total_events == 200
    assert ds.total_bytes == 2000
    assert len(ds.lumis) == 10


def test_dataset_rejects_duplicate_lfn():
    ds = Dataset("/P/R/AOD", [make_file(0)])
    with pytest.raises(ValueError):
        ds.add_file(make_file(0))


def test_dataset_lookup_by_run_and_lumi():
    ds = Dataset("/P/R/AOD", [make_file(0, run=1), make_file(1, run=2)])
    assert len(ds.files_for_run(1)) == 1
    assert ds.runs == [1, 2]
    wanted = [LumiSection(2, 6)]
    hits = ds.files_for_lumis(wanted)
    assert len(hits) == 1
    assert hits[0].runs == (2,)


# ---------------------------------------------------------------- service
def test_dbs_register_and_query():
    dbs = DBS()
    ds = Dataset("/P/R/AOD", [make_file(0)])
    dbs.register(ds)
    assert "/P/R/AOD" in dbs
    assert dbs.dataset("/P/R/AOD") is ds
    with pytest.raises(ValueError):
        dbs.register(ds)
    with pytest.raises(DatasetNotFound):
        dbs.dataset("/No/Such/THING")


def test_dbs_client_queries():
    dbs = DBS()
    dbs.register(Dataset("/P/R/AOD", [make_file(0), make_file(1)]))
    client = DBSClient(dbs)
    assert len(client.files("/P/R/AOD")) == 2
    assert len(client.lumis("/P/R/AOD")) == 10
    info = client.dataset_info("/P/R/AOD")
    assert info["files"] == 2
    assert client.queries == 3


def test_dbs_client_async_costs_latency():
    env = Environment()
    dbs = DBS()
    dbs.register(Dataset("/P/R/AOD", [make_file(0)]))
    client = DBSClient(dbs, env=env, latency=2.0)
    got = []

    def proc(env):
        files = yield from client.files_async("/P/R/AOD")
        got.append((env.now, len(files)))

    env.process(proc(env))
    env.run()
    assert got == [(2.0, 1)]


# ---------------------------------------------------------------- synthetic
def test_synthetic_dataset_structure():
    ds = synthetic_dataset(n_files=40, events_per_file=1000, lumis_per_file=10, files_per_run=20)
    assert len(ds) == 40
    assert ds.total_events == 40_000
    assert len(ds.runs) == 2
    # Lumi numbers are unique within each run.
    assert len(set(ds.lumis)) == 400


def test_synthetic_dataset_size_jitter_and_reproducibility():
    a = synthetic_dataset(n_files=10, seed=3)
    b = synthetic_dataset(n_files=10, seed=3)
    assert [f.size_bytes for f in a] == [f.size_bytes for f in b]
    c = synthetic_dataset(n_files=10, seed=4)
    assert [f.size_bytes for f in a] != [f.size_bytes for f in c]


def test_synthetic_dataset_no_jitter_exact_sizes():
    ds = synthetic_dataset(n_files=5, events_per_file=100, event_size_bytes=1000, size_jitter=0.0)
    assert all(f.size_bytes == 100_000 for f in ds)


def test_synthetic_dataset_validation():
    with pytest.raises(ValueError):
        synthetic_dataset(n_files=0)
