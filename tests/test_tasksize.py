"""Tests for the Fig 3 task-size Monte-Carlo model."""

import pytest

from repro.core.tasksize import (
    HOUR,
    EfficiencyResult,
    TaskSizeConfig,
    TaskSizeSimulator,
    optimal_task_size,
)
from repro.distributions import (
    ConstantHazardEviction,
    DeterministicSampler,
    NoEviction,
    WeibullEviction,
)


def small_sim(**kwargs) -> TaskSizeSimulator:
    defaults = dict(n_tasklets=5_000, n_workers=400)
    defaults.update(kwargs)
    return TaskSizeSimulator(TaskSizeConfig(**defaults), seed=7)


def test_tasklets_per_task_rounding():
    sim = small_sim()
    # Tasklet mean is ~10.8 min (truncated Gaussian); 1 h ≈ 6 tasklets.
    assert sim.tasklets_per_task(1 * HOUR) in (5, 6)
    assert sim.tasklets_per_task(1.0) == 1  # never below one tasklet


def test_no_eviction_efficiency_increases_with_task_length():
    sim = small_sim()
    effs = [sim.simulate(h * HOUR, NoEviction()).efficiency for h in (0.5, 2, 8)]
    assert effs[0] < effs[1] < effs[2]


def test_no_eviction_efficiency_approaches_one():
    sim = small_sim()
    r = sim.simulate(10 * HOUR, NoEviction())
    assert r.efficiency > 0.9
    assert r.evictions == 0


def test_eviction_creates_a_peak_near_one_hour():
    """Headline result: with eviction, efficiency peaks around 1–2 h at ~70 %."""
    sim = small_sim()
    model = ConstantHazardEviction(probability=0.1)
    results = {h: sim.simulate(h * HOUR, model).efficiency for h in (0.25, 1, 2, 8)}
    peak = max(results, key=results.get)
    assert peak in (1, 2)
    assert 0.6 < results[peak] < 0.8
    # Short tasks drown in overhead; long tasks lose work to eviction.
    assert results[0.25] < results[peak]
    assert results[8] < results[peak]


def test_constant_and_observed_models_agree_roughly():
    """Paper: 'not sensitive to differences between observed and constant'."""
    sim = small_sim()
    c = sim.simulate(1 * HOUR, ConstantHazardEviction(0.1)).efficiency
    w = sim.simulate(1 * HOUR, WeibullEviction()).efficiency
    assert abs(c - w) < 0.15


def test_deterministic_tasklets_exact_accounting():
    """With deterministic times and no eviction the ratio is analytic."""
    cfg = TaskSizeConfig(
        n_tasklets=100,
        n_workers=10,
        tasklet_time=DeterministicSampler(600.0),
        per_worker_overhead=300.0,
        per_task_overhead=1200.0,
    )
    sim = TaskSizeSimulator(cfg, seed=0)
    # Task of 6 tasklets → ceil(100/6) = 17 tasks; work 17*6*600 (padded
    # tasklets beyond 100 are also simulated, matching the paper's
    # "divide into tasks" semantics).
    r = sim.simulate(3600.0, NoEviction())
    n_tasks = 17
    work = n_tasks * 6 * 600.0
    total = work + n_tasks * 1200.0 + 10 * 300.0
    assert r.effective_time == pytest.approx(work)
    assert r.total_time == pytest.approx(total)
    assert r.efficiency == pytest.approx(work / total)
    assert r.tasks_completed == n_tasks


def test_eviction_counts_recorded():
    sim = small_sim()
    r = sim.simulate(4 * HOUR, ConstantHazardEviction(0.3))
    assert r.evictions > 0
    assert r.total_time > r.effective_time


def test_efficiency_bounded():
    sim = small_sim(n_tasklets=500, n_workers=50)
    for h in (0.2, 1, 5):
        for model in (NoEviction(), ConstantHazardEviction(0.1), WeibullEviction()):
            r = sim.simulate(h * HOUR, model)
            assert 0.0 <= r.efficiency <= 1.0


def test_sweep_returns_curves_per_model():
    sim = small_sim(n_tasklets=1000, n_workers=100)
    curves = sim.sweep(
        [HOUR, 2 * HOUR],
        {"none": NoEviction(), "const": ConstantHazardEviction(0.1)},
    )
    assert set(curves) == {"none", "const"}
    assert all(len(v) == 2 for v in curves.values())
    assert all(isinstance(r, EfficiencyResult) for v in curves.values() for r in v)


def test_optimal_task_size_picks_peak():
    sim = small_sim(n_tasklets=2000, n_workers=200)
    best = optimal_task_size(
        sim,
        ConstantHazardEviction(0.1),
        task_lengths=[0.25 * HOUR, HOUR, 8 * HOUR],
    )
    assert best.task_length == HOUR


def test_config_validation():
    with pytest.raises(ValueError):
        TaskSizeConfig(n_tasklets=0)
    with pytest.raises(ValueError):
        TaskSizeConfig(per_task_overhead=-1)


def test_simulation_is_reproducible():
    a = small_sim().simulate(HOUR, ConstantHazardEviction(0.1))
    b = small_sim().simulate(HOUR, ConstantHazardEviction(0.1))
    assert a.efficiency == b.efficiency
    assert a.evictions == b.evictions
