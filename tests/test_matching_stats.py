"""Tests for ClassAd-style matching and segment statistics."""

import pytest

from repro.batch import (
    CondorPool,
    GlideinRequest,
    Machine,
    MachinePool,
    Requirements,
    matches,
)
from repro.desim import Environment, Interrupt
from repro.monitor import (
    RunMetrics,
    all_segment_stats,
    histogram_ascii,
    segment_stats,
)
from repro.monitor.records import TaskRecord


# ---------------------------------------------------------------- matching
def test_requirements_validation():
    with pytest.raises(ValueError):
        Requirements(cores=0)
    with pytest.raises(ValueError):
        Requirements(cores=1, memory_mb=-1)


def test_requirements_coerce_from_int():
    req = Requirements.coerce(4)
    assert req.cores == 4 and req.memory_mb == 0
    assert Requirements.coerce(req) is req


def test_matches_cores_memory_attributes():
    env = Environment()
    m = Machine(env, "n0", cores=8, memory_mb=16_000, attributes={"x86_64", "cvmfs"})
    assert matches(m, Requirements(cores=8))
    assert not matches(m, Requirements(cores=9))
    assert matches(m, Requirements(cores=1, memory_mb=16_000))
    assert not matches(m, Requirements(cores=1, memory_mb=16_001))
    assert matches(m, Requirements(cores=1, attributes={"cvmfs"}))
    assert not matches(m, Requirements(cores=1, attributes={"gpu"}))


def test_machine_memory_claims():
    env = Environment()
    m = Machine(env, "n0", cores=8, memory_mb=10_000)
    m.claim(4, memory_mb=6_000)
    assert m.free_memory_mb == 4_000
    with pytest.raises(ValueError):
        m.claim(1, memory_mb=5_000)
    m.release(4, memory_mb=6_000)
    assert m.free_memory_mb == 10_000


def test_pool_place_respects_attributes():
    env = Environment()
    pool = MachinePool(env)
    pool.add(Machine(env, "plain", cores=8))
    pool.add(Machine(env, "gpu-node", cores=8, attributes={"gpu"}))
    picked = pool.place(Requirements(cores=4, attributes={"gpu"}))
    assert picked is not None and picked.name == "gpu-node"
    assert pool.place(Requirements(cores=4, attributes={"fpga"})) is None


def test_condor_pool_matches_requirements():
    env = Environment()
    pool_machines = MachinePool(env)
    pool_machines.add(Machine(env, "small", cores=4, memory_mb=8_000))
    pool_machines.add(Machine(env, "big", cores=8, memory_mb=64_000))
    pool = CondorPool(env, pool_machines)
    placed = []

    def payload(slot):
        def run():
            placed.append(slot.machine.name)
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass

        return run()

    pool.submit(
        GlideinRequest(
            n_workers=1,
            cores_per_worker=8,
            memory_mb_per_worker=32_000,
            start_interval=0.0,
            resubmit=False,
        ),
        payload,
    )
    env.run()
    assert placed == ["big"]


# ---------------------------------------------------------------- stats
def rec(segments, finished=10.0, category="analysis"):
    return TaskRecord(
        task_id=1,
        workflow="wf",
        category=category,
        exit_code=0,
        submitted=0.0,
        started=0.0,
        finished=finished,
        segments=segments,
        wq_stage_in=0.0,
        wq_stage_out=0.0,
        lost_time=0.0,
        output_bytes=0.0,
    )


def metrics_with(segment_values):
    m = RunMetrics()
    for v in segment_values:
        m.records.append(rec({"setup": v, "cpu": 2 * v}))
    return m


def test_segment_stats_basic():
    m = metrics_with([10.0] * 9 + [100.0])
    s = segment_stats(m, "setup")
    assert s.n == 10
    assert s.mean == pytest.approx(19.0)
    assert s.p50 == pytest.approx(10.0)
    assert s.max == 100.0
    assert s.tail_ratio > 1.0
    assert "setup" in s.row()


def test_segment_stats_missing_segment():
    m = metrics_with([1.0])
    assert segment_stats(m, "does-not-exist") is None


def test_all_segment_stats():
    m = metrics_with([5.0, 15.0])
    stats = all_segment_stats(m)
    assert set(stats) == {"setup", "cpu"}
    assert stats["cpu"].mean == pytest.approx(20.0)


def test_stats_ignore_other_categories():
    m = RunMetrics()
    m.records.append(rec({"setup": 5.0}, category="merge"))
    assert segment_stats(m, "setup") is None
    assert segment_stats(m, "setup", category="merge") is not None


def test_histogram_ascii_renders():
    text = histogram_ascii([1, 1, 2, 3, 10], bins=3, width=10)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "#" in lines[0]
    assert text.count("|") == 6


def test_histogram_ascii_empty_and_validation():
    assert histogram_ascii([]) == ""
    with pytest.raises(ValueError):
        histogram_ascii([1.0], bins=0)
