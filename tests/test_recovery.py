"""Active recovery: retry budgets, backoff, blacklisting, fallback."""

import pytest

from repro.analysis import data_processing_code
from repro.analysis.report import ExitCode
from repro.batch.machines import Machine
from repro.core import DataAccess, LobsterConfig, Services, WorkflowConfig, Wrapper
from repro.desim import Environment, MemorySink, Topics
from repro.wq import Master, RecoveryPolicy, Task, TaskResult, TaskState, Worker


def sleep_executor(duration, exit_code=ExitCode.SUCCESS):
    def executor(worker, task):
        yield worker.env.timeout(duration)
        return exit_code, {"cpu": duration}, None

    return executor


# ---------------------------------------------------------------------------
# RecoveryPolicy itself
# ---------------------------------------------------------------------------

def test_policy_validation():
    with pytest.raises(ValueError):
        RecoveryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_base=-1.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RecoveryPolicy(blacklist_threshold=0.0)
    with pytest.raises(ValueError):
        RecoveryPolicy(blacklist_threshold=1.5)
    with pytest.raises(ValueError):
        RecoveryPolicy(blacklist_min_samples=0)
    with pytest.raises(ValueError):
        RecoveryPolicy(blacklist_duration=0.0)


def test_policy_backoff_progression():
    p = RecoveryPolicy(backoff_base=5.0, backoff_factor=2.0, backoff_cap=30.0)
    assert p.requeue_delay(1) == 5.0
    assert p.requeue_delay(2) == 10.0
    assert p.requeue_delay(3) == 20.0
    assert p.requeue_delay(4) == 30.0  # capped
    assert p.requeue_delay(10) == 30.0
    assert p.requeue_delay(0) == 0.0
    assert RecoveryPolicy(backoff_base=0.0).requeue_delay(3) == 0.0


def test_policy_retry_budget():
    p = RecoveryPolicy(max_attempts=3)
    assert not p.exhausted(2)
    assert p.exhausted(3)
    assert p.exhausted(4)
    assert not RecoveryPolicy(max_attempts=None).exhausted(10_000)


# ---------------------------------------------------------------------------
# Master: cancellation, backoff requeue, exhaustion
# ---------------------------------------------------------------------------

def test_cancel_uses_cancelled_state():
    env = Environment()
    master = Master(env)
    task = Task(sleep_executor(1.0))
    master.submit(task)
    assert master.cancel(task) is True
    assert task.state == TaskState.CANCELLED


def test_requeue_applies_exponential_backoff():
    env = Environment()
    master = Master(
        env,
        recovery=RecoveryPolicy(
            backoff_base=10.0, backoff_factor=2.0, backoff_cap=300.0
        ),
    )
    sink = MemorySink()
    env.bus.attach(sink, Topics.TASK_REQUEUE)
    task = Task(sleep_executor(1.0))
    master.submit(task)
    master.ready.items.remove(task)  # "dispatched"

    master.requeue(task, lost_after=7.0)
    assert task.state == TaskState.LOST
    assert master.ready_count == 0
    env.run(until=9.0)
    assert master.ready_count == 0  # still backing off
    env.run(until=11.0)
    assert master.ready_count == 1  # 10 s backoff elapsed
    assert task.state == TaskState.READY

    # Second loss doubles the delay.
    master.ready.items.remove(task)
    master.requeue(task)
    env.run(until=env.now + 19.0)
    assert master.ready_count == 0
    env.run(until=env.now + 2.0)
    assert master.ready_count == 1

    delays = [e.fields["delay"] for e in sink.events]
    assert delays == [10.0, 20.0]
    assert sink.events[0].fields["lost_after"] == 7.0
    assert sink.events[0].fields["reason"] == "eviction"


def test_retry_budget_exhaustion_fails_task():
    env = Environment()
    master = Master(
        env, recovery=RecoveryPolicy(max_attempts=2, backoff_base=0.0)
    )
    sink = MemorySink()
    env.bus.attach(sink, Topics.TASK_EXHAUSTED)
    task = Task(sleep_executor(1.0))
    master.submit(task)

    master.ready.items.remove(task)
    master.requeue(task, lost_after=50.0)  # attempt 1: requeued
    assert master.tasks_requeued == 1
    assert master.ready_count == 1

    master.ready.items.remove(task)
    master.requeue(task, lost_after=60.0)  # attempt 2: budget spent
    assert master.tasks_requeued == 1  # not requeued again
    assert master.tasks_exhausted == 1
    assert master.ready_count == 0
    assert task.state == TaskState.FAILED

    [event] = sink.events
    assert event.fields["attempts"] == 2
    assert event.fields["lost_time"] == pytest.approx(110.0)

    # The exhausted task surfaces as a normal failed result.
    results = []

    def collector(env):
        results.append((yield master.wait()))

    env.process(collector(env))
    env.run()
    assert len(results) == 1
    assert not results[0].succeeded
    assert results[0].exit_code == ExitCode.EVICTED
    assert results[0].task is task


def test_fast_abort_requeue_carries_backoff():
    """A fast-aborted straggler re-enters the queue after the backoff."""
    env = Environment()
    master = Master(env, recovery=RecoveryPolicy(backoff_base=50.0))
    sink = MemorySink()
    env.bus.attach(sink, Topics.TASK_REQUEUE)
    calls = []

    def recording_executor(worker, task):
        calls.append(env.now)
        yield worker.env.timeout(1000.0 if len(calls) == 1 else 10.0)
        return ExitCode.SUCCESS, {"cpu": 10.0}, None

    master.submit(Task(recording_executor))
    machine = Machine(env, "m0", cores=1)
    env.process(Worker(env, machine, master, cores=1, connect_latency=0.0).run())

    def aborter(env):
        yield env.timeout(100.0)
        for task, (started, abort) in list(master._running_registry.items()):
            abort.succeed()

    env.process(aborter(env))
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    [event] = sink.events
    assert event.fields["reason"] == "fast-abort"
    assert event.fields["delay"] == 50.0
    # Second attempt started only after the 50 s backoff.
    assert len(calls) == 2
    assert calls[1] >= 150.0
    assert results[0].succeeded


# ---------------------------------------------------------------------------
# Host blacklisting
# ---------------------------------------------------------------------------

def _finish(master, host, ok):
    task = Task(sleep_executor(1.0))
    task.submitted = master.env.now
    master.task_started()
    master.task_finished(
        TaskResult(
            task=task,
            exit_code=ExitCode.SUCCESS if ok else ExitCode.EVICTED,
            worker_id="w",
            submitted=0.0,
            started=0.0,
            finished=master.env.now,
        ),
        host=host,
    )


def test_blacklist_engages_at_failure_threshold():
    env = Environment()
    master = Master(
        env,
        recovery=RecoveryPolicy(
            blacklist_threshold=0.5, blacklist_min_samples=4
        ),
    )
    sink = MemorySink()
    env.bus.attach(sink, Topics.HOST_BLACKLIST)
    _finish(master, "good", True)
    for _ in range(3):
        _finish(master, "bad", False)
    assert not master.is_blacklisted("bad")  # below min_samples
    _finish(master, "bad", False)
    assert master.is_blacklisted("bad")
    assert not master.is_blacklisted("good")
    assert master.hosts_blacklisted == 1
    [event] = sink.events
    assert event.fields["host"] == "bad"
    assert event.fields["active"] is True
    assert event.fields["failure_rate"] == 1.0


def test_blacklist_disabled_by_default():
    env = Environment()
    master = Master(env)  # default policy: no blacklisting
    for _ in range(20):
        _finish(master, "bad", False)
    assert not master.is_blacklisted("bad")
    assert master.hosts_blacklisted == 0


def test_blacklist_expires_after_duration():
    env = Environment()
    master = Master(
        env,
        recovery=RecoveryPolicy(
            blacklist_threshold=0.5,
            blacklist_min_samples=2,
            blacklist_duration=100.0,
        ),
    )
    sink = MemorySink()
    env.bus.attach(sink, Topics.HOST_BLACKLIST)
    _finish(master, "bad", False)
    _finish(master, "bad", False)
    assert master.is_blacklisted("bad")
    env.run(until=99.0)
    assert master.is_blacklisted("bad")
    env.run(until=101.0)
    assert not master.is_blacklisted("bad")
    assert [e.fields["active"] for e in sink.events] == [True, False]
    # Fresh slate: one more failure must not instantly re-blacklist.
    _finish(master, "bad", False)
    assert not master.is_blacklisted("bad")


def test_blacklisted_host_receives_no_tasks():
    env = Environment()
    master = Master(
        env,
        recovery=RecoveryPolicy(
            blacklist_threshold=0.5,
            blacklist_min_samples=2,
            blacklist_duration=100.0,
        ),
    )
    master.blacklisted["m0"] = 0.0
    master.submit(Task(sleep_executor(10.0)))
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    env.process(master._unblacklist_later("m0", 100.0))
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run(until=50.0)
    # Blacklisted: the worker's filtered get must not match.
    assert worker.tasks_done == 0
    assert master.ready_count == 1
    env.run()
    # After expiry the same worker picks the task up.
    assert worker.tasks_done == 1
    assert results and results[0].succeeded


# ---------------------------------------------------------------------------
# Streaming -> staging fallback
# ---------------------------------------------------------------------------

def test_wrapper_falls_back_after_threshold_failures():
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(
        label="wf",
        code=data_processing_code(),
        dataset="/d",
        stream_fallback_threshold=3,
    )
    cfg = LobsterConfig(workflows=[wf])
    wrapper = Wrapper(cfg, wf, services)
    sink = MemorySink()
    env.bus.attach(sink, Topics.RECOVERY_FALLBACK)

    wrapper._note_stream_failure(env)
    wrapper._note_stream_failure(env)
    assert not wrapper.fallback_active
    wrapper._note_stream_failure(env)
    assert wrapper.fallback_active
    [event] = sink.events
    assert event.fields["workflow"] == "wf"
    assert event.fields["failures"] == 3
    assert event.fields["frm"] == DataAccess.XROOTD
    assert event.fields["to"] == DataAccess.CHIRP
    # Further failures do not re-announce the fallback.
    wrapper._note_stream_failure(env)
    assert len(sink.events) == 1


def test_wrapper_fallback_disabled_without_threshold():
    env = Environment()
    services = Services.default(env)
    wf = WorkflowConfig(label="wf", code=data_processing_code(), dataset="/d")
    wrapper = Wrapper(LobsterConfig(workflows=[wf]), wf, services)
    for _ in range(10):
        wrapper._note_stream_failure(env)
    assert not wrapper.fallback_active


def test_stream_fallback_threshold_validation():
    with pytest.raises(ValueError):
        WorkflowConfig(
            label="wf",
            code=data_processing_code(),
            dataset="/d",
            stream_fallback_threshold=0,
        )
