"""Tests for the max-min fair-share bandwidth link."""

import pytest

from repro.desim import Environment, FairShareLink, TransferCancelled
from repro.desim.bandwidth import allocate_max_min


# ------------------------------------------------------------ allocation
def test_allocate_equal_split_uncapped():
    assert allocate_max_min([None, None], 100.0) == [50.0, 50.0]


def test_allocate_empty():
    assert allocate_max_min([], 100.0) == []


def test_allocate_capped_flow_releases_spare():
    rates = allocate_max_min([10.0, None], 100.0)
    assert rates == [10.0, 90.0]


def test_allocate_all_capped_below_capacity():
    rates = allocate_max_min([10.0, 20.0], 100.0)
    assert rates == [10.0, 20.0]


def test_allocate_three_way_waterfill():
    # cap 30 flow limited; other two split remaining 90 equally.
    rates = allocate_max_min([30.0, None, None], 120.0)
    assert rates == [30.0, 45.0, 45.0]


def test_allocate_never_exceeds_capacity():
    rates = allocate_max_min([None] * 7, 100.0)
    assert sum(rates) == pytest.approx(100.0)


# ------------------------------------------------------------ link behaviour
def test_single_transfer_duration():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = []

    def proc(env):
        yield link.transfer(1000.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_zero_byte_transfer_completes_immediately():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = []

    def proc(env):
        yield link.transfer(0.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_two_transfers_share_bandwidth():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = {}

    def proc(env, tag, nbytes):
        yield link.transfer(nbytes)
        done[tag] = env.now

    env.process(proc(env, "a", 1000.0))
    env.process(proc(env, "b", 1000.0))
    env.run()
    # Both share 100 B/s: each gets 50 B/s → both finish at t=20.
    assert done["a"] == pytest.approx(20.0)
    assert done["b"] == pytest.approx(20.0)


def test_late_joiner_slows_existing_flow():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = {}

    def early(env):
        yield link.transfer(1000.0)
        done["early"] = env.now

    def late(env):
        yield env.timeout(5)
        yield link.transfer(250.0)
        done["late"] = env.now

    env.process(early(env))
    env.process(late(env))
    env.run()
    # Early: 500 B in first 5 s at 100 B/s, then 50 B/s shared.
    # Late: 250 B at 50 B/s = 5s → finishes at t=10; early's remaining
    # 500-250=250 B... careful: from t=5..10 early moves 250 B (50 B/s),
    # leaving 250 B at full 100 B/s → 2.5 s → t=12.5.
    assert done["late"] == pytest.approx(10.0)
    assert done["early"] == pytest.approx(12.5)


def test_max_rate_caps_flow():
    env = Environment()
    link = FairShareLink(env, capacity=1000.0)
    done = []

    def proc(env):
        yield link.transfer(100.0, max_rate=10.0)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(10.0)]


def test_cancel_mid_transfer():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    outcome = []

    def proc(env):
        t = link.transfer(1000.0)

        def axe(env, t):
            yield env.timeout(3)
            t.cancel()

        env.process(axe(env, t))
        try:
            yield t
        except TransferCancelled:
            outcome.append(("cancelled", env.now))

    env.process(proc(env))
    env.run()
    assert outcome == [("cancelled", 3.0)]
    assert link.active_flows == 0


def test_cancel_frees_bandwidth_for_others():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = {}

    def victim(env):
        t = link.transfer(10000.0)
        try:
            yield t
        except TransferCancelled:
            done["victim"] = env.now

    def killer(env, victim_proc):
        yield env.timeout(10)
        # Find the victim's transfer and cancel it.
        for f in list(link._flows):
            if f.nbytes == 10000.0:
                f.cancel()

    def survivor(env):
        yield link.transfer(1000.0)
        done["survivor"] = env.now

    vp = env.process(victim(env))
    env.process(killer(env, vp))
    env.process(survivor(env))
    env.run()
    # Survivor: 10 s at 50 B/s = 500 B, then 500 B at 100 B/s = 5 s → 15.
    assert done["survivor"] == pytest.approx(15.0)


def test_outage_stalls_transfers():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    done = []

    def proc(env):
        yield link.transfer(1000.0)
        done.append(env.now)

    def outage(env):
        yield env.timeout(5)
        link.set_capacity(0.0)
        yield env.timeout(20)
        link.set_capacity(100.0)

    env.process(proc(env))
    env.process(outage(env))
    env.run()
    # 500 B before outage, 20 s stall, 5 s more → t=30.
    assert done == [pytest.approx(30.0)]


def test_bytes_moved_accounting():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)

    def proc(env):
        yield link.transfer(500.0)
        yield link.transfer(250.0)

    env.process(proc(env))
    env.run()
    assert link.bytes_moved == pytest.approx(750.0)


def test_many_concurrent_flows_complete():
    env = Environment()
    link = FairShareLink(env, capacity=1000.0)
    done = []

    def proc(env, nbytes):
        yield link.transfer(nbytes)
        done.append(env.now)

    for i in range(50):
        env.process(proc(env, 100.0 * (i + 1)))
    env.run()
    assert len(done) == 50
    # Largest flow transfers 5000 B; total = 127500 B at 1000 B/s
    # aggregate → last completion is total/capacity.
    assert max(done) == pytest.approx(127.5)


def test_estimate_duration():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    assert link.estimate_duration(100.0) == pytest.approx(1.0)
    link.transfer(1e9)
    assert link.estimate_duration(100.0) == pytest.approx(2.0)


def test_negative_bytes_rejected():
    env = Environment()
    link = FairShareLink(env, capacity=100.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)
    with pytest.raises(ValueError):
        link.set_capacity(-5.0)
