"""End-to-end causal tracing: span trees, retry links, replay, export.

Covers the ``repro.monitor.tracing`` package at three levels:

* tracer mechanics — ambient context propagation through DES processes,
  auto-closing of abandoned descendants, root lifecycles, orphan checks;
* wq integration — every task attempt becomes a span tree under its
  work-unit root, retries link to the attempt they replace;
* offline parity — ``spans_from_events`` rebuilds the exact span list
  from a bus recording, and the Chrome-trace export is byte-identical
  across two identically seeded runs.
"""

import json

from repro.analysis.report import ExitCode
from repro.batch.machines import Machine
from repro.desim import Environment, MemorySink
from repro.monitor import (
    SpanTracer,
    chrome_trace,
    spans_from_events,
    write_chrome_trace,
)
from repro.monitor.tracing import ROOT_NAMES
from repro.testing import reset_id_counters
from repro.wq import Master, Task, Worker


# ---------------------------------------------------------------------------
# tracer mechanics
# ---------------------------------------------------------------------------
def test_ambient_context_propagates_to_child_processes():
    env = Environment()
    tracer = SpanTracer(env)
    seen = {}

    def child(env):
        seen["ctx"] = tracer.current()
        yield env.timeout(1.0)

    def parent(env):
        span = tracer.start("attempt", parent=tracer.unit_root("wf:u1"),
                            activate=True)
        env.process(child(env))
        yield env.timeout(2.0)
        tracer.end(span)

    env.process(parent(env))
    env.run()
    # The child process inherited the parent's active span context.
    assert seen["ctx"] is not None
    assert seen["ctx"].trace_id == "wf:u1"


def test_end_closes_open_descendants_deepest_first():
    env = Environment()
    tracer = SpanTracer(env)
    root = tracer.unit_root("wf:u1")
    attempt = tracer.start("attempt", parent=root)
    seg = tracer.start("wrapper.exec", parent=attempt)
    flow = tracer.start("net.flow", parent=seg)
    tracer.end(attempt, status="eviction")
    by_name = {s.name: s for s in tracer.spans}
    assert by_name["net.flow"].status == "aborted"
    assert by_name["wrapper.exec"].status == "aborted"
    assert by_name["attempt"].status == "eviction"
    # Children closed before their parent (close order is append order).
    names = [s.name for s in tracer.spans]
    assert names.index("net.flow") < names.index("wrapper.exec")
    assert names.index("wrapper.exec") < names.index("attempt")


def test_finalize_closes_roots_at_last_descendant_end():
    env = Environment()
    tracer = SpanTracer(env)

    def work(env):
        span = tracer.start("attempt", parent=tracer.unit_root("wf:u1"))
        yield env.timeout(50.0)
        tracer.end(span)
        yield env.timeout(200.0)  # dead air after the last span closed

    env.process(work(env))
    env.run()
    assert tracer.finalize() == []
    root = next(s for s in tracer.spans if s.name == "unit")
    assert root.end == 50.0  # root extent, not env.now (250.0)
    # finalize() is idempotent.
    assert tracer.finalize() == []


def test_orphan_detection():
    env = Environment()
    tracer = SpanTracer(env)
    # A span started with no ambient context lands in an anonymous
    # trace with no parent — that's an orphan unless it's a root name.
    stray = tracer.start("wrapper.exec")
    tracer.end(stray)
    orphans = tracer.finalize()
    assert [s.span_id for s in orphans] == [stray.span_id]
    assert all(o.name not in ROOT_NAMES for o in orphans)


def test_tracer_is_exclusive_per_environment():
    env = Environment()
    SpanTracer(env)
    try:
        SpanTracer(env)
    except RuntimeError:
        pass
    else:  # pragma: no cover
        raise AssertionError("second tracer should be rejected")


# ---------------------------------------------------------------------------
# wq integration: attempts, queue waits, retry links
# ---------------------------------------------------------------------------
def _executor(duration, exit_code=ExitCode.SUCCESS):
    def executor(worker, task):
        yield worker.env.timeout(duration)
        return exit_code, {"cpu": duration}, None

    return executor


def test_attempt_span_tree_for_a_simple_task():
    env = Environment()
    tracer = SpanTracer(env)
    master = Master(env)
    task = Task(_executor(60.0))
    task.trace = tracer.unit_root("wf:u000001", workflow="wf").ctx
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    env.process(worker.run())

    def collector(env):
        yield master.wait()
        master.drain()

    env.process(collector(env))
    env.run()
    assert tracer.finalize() == []

    by_name = {}
    for s in tracer.spans:
        by_name.setdefault(s.name, []).append(s)
    (attempt,) = by_name["attempt"]
    (queue_wait,) = by_name["queue.wait"]
    (root,) = by_name["unit"]
    assert attempt.trace_id == "wf:u000001"
    assert attempt.parent_id == root.span_id
    assert queue_wait.parent_id == attempt.span_id
    assert attempt.status == "ok"
    assert attempt.attrs["worker"] == worker.name
    assert attempt.attrs["host"] == "m0"


def test_requeue_produces_linked_sibling_attempts():
    env = Environment()
    tracer = SpanTracer(env)
    master = Master(env)
    task = Task(_executor(60.0))
    task.trace = tracer.unit_root("wf:u000001", workflow="wf").ctx
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    proc = env.process(worker.run())

    def evict_then_finish(env):
        yield env.timeout(10.0)
        proc.interrupt("preempted")  # first attempt dies mid-flight
        # A second worker picks up the requeued attempt.
        machine2 = Machine(env, "m1", cores=1)
        worker2 = Worker(env, machine2, master, cores=1, connect_latency=0.0)
        env.process(worker2.run())
        yield master.wait()
        master.drain()

    env.process(evict_then_finish(env))
    env.run()
    assert tracer.finalize() == []

    attempts = sorted(
        (s for s in tracer.spans if s.name == "attempt"),
        key=lambda s: s.span_id,
    )
    assert len(attempts) == 2
    first, second = attempts
    assert first.status == "eviction"
    assert second.status == "ok"
    # The retry is a linked sibling: same trace, same parent, a link
    # back to the attempt it replaces.
    assert second.trace_id == first.trace_id
    assert second.parent_id == first.parent_id
    assert second.links == (first.span_id,)
    assert second.attrs["attempt"] == 2


# ---------------------------------------------------------------------------
# offline parity: replay and deterministic export
# ---------------------------------------------------------------------------
def _traced_run(seed=11):
    """A tiny traced wq run; returns the tracer.

    Global id counters are rewound first so two calls in one process
    produce byte-identical span streams (span ids themselves are
    per-tracer and need no reset)."""
    reset_id_counters()
    env = Environment()
    sink = MemorySink()
    env.bus.attach(sink)
    tracer = SpanTracer(env)
    master = Master(env)
    for i in range(3):
        task = Task(_executor(30.0 + 10.0 * i))
        task.trace = tracer.unit_root(f"wf:u{i:06d}", workflow="wf").ctx
        master.submit(task)
    machine = Machine(env, "m0", cores=2)
    worker = Worker(env, machine, master, cores=2, connect_latency=0.0)
    env.process(worker.run())

    def collector(env):
        for _ in range(3):
            yield master.wait()
        master.drain()

    env.process(collector(env))
    env.run()
    tracer.finalize()
    return tracer, sink


def test_spans_from_events_matches_live_tracer():
    tracer, sink = _traced_run()
    events = [e.as_dict() for e in sink.events]
    rebuilt = spans_from_events(events)
    assert [s.as_dict() for s in rebuilt] == [s.as_dict() for s in tracer.spans]


def test_chrome_export_is_byte_identical_across_same_seed_runs(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    write_chrome_trace(_traced_run()[0].spans, a)
    write_chrome_trace(_traced_run()[0].spans, b)
    assert a.read_bytes() == b.read_bytes()


def test_chrome_export_shape():
    tracer, _ = _traced_run()
    doc = chrome_trace(tracer.spans)
    events = doc["traceEvents"]
    phases = {e["ph"] for e in events}
    assert "X" in phases and "M" in phases
    complete = [e for e in events if e["ph"] == "X"]
    # Times are microseconds and non-negative durations.
    assert all(e["dur"] >= 0 for e in complete)
    # Valid JSON end to end.
    json.dumps(doc)


def test_tracer_detach_restores_environment():
    env = Environment()
    tracer = SpanTracer(env)
    assert env.spans is tracer
    tracer.close()
    assert env.spans is None
    # A fresh tracer can attach afterwards.
    SpanTracer(env)
