"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import TaskletState, TaskletStore, plan_groups
from repro.core.tasksize import TaskSizeConfig, TaskSizeSimulator
from repro.desim import Environment, FairShareLink
from repro.desim.bandwidth import allocate_max_min
from repro.distributions import (
    ConstantHazardEviction,
    EmpiricalEviction,
    NoEviction,
    binomial_errors,
    eviction_probability_curve,
)
from repro.monitor import TimeSeries
from repro.net import waterfill
from repro.storage import StoredFile


# ------------------------------------------------------------ max-min fairness
caps = st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e6))


@given(demands=st.lists(caps, max_size=30), capacity=st.floats(min_value=0.1, max_value=1e9))
def test_allocation_never_exceeds_capacity(demands, capacity):
    rates = allocate_max_min(demands, capacity)
    assert len(rates) == len(demands)
    assert sum(rates) <= capacity * (1 + 1e-9)
    for rate, cap in zip(rates, demands):
        assert rate >= 0
        if cap is not None:
            assert rate <= cap * (1 + 1e-9)


@given(
    demands=st.lists(st.floats(min_value=0.01, max_value=1e3), min_size=1, max_size=20),
    capacity=st.floats(min_value=0.1, max_value=1e9),
)
def test_allocation_work_conserving(demands, capacity):
    """If total demand exceeds capacity, every drop of capacity is used;
    otherwise every flow gets its full demand."""
    rates = allocate_max_min(list(demands), capacity)
    if sum(demands) <= capacity:
        assert rates == pytest.approx(list(demands))
    else:
        assert sum(rates) == pytest.approx(capacity)


@given(n=st.integers(min_value=1, max_value=50), capacity=st.floats(min_value=1, max_value=1e6))
def test_allocation_uncapped_flows_get_equal_share(n, capacity):
    rates = allocate_max_min([None] * n, capacity)
    assert all(r == pytest.approx(capacity / n) for r in rates)


# ------------------------------------------------- multi-link water-filling
@st.composite
def waterfill_problems(draw):
    """A random tree-free allocation problem: links, routes, rate caps."""
    n_links = draw(st.integers(min_value=1, max_value=6))
    caps = {
        i: draw(st.floats(min_value=0.1, max_value=1e6))
        for i in range(n_links)
    }
    n_flows = draw(st.integers(min_value=0, max_value=12))
    routes = []
    for _ in range(n_flows):
        size = draw(st.integers(min_value=1, max_value=n_links))
        routes.append(tuple(draw(st.permutations(range(n_links)))[:size]))
    max_rates = [
        draw(st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e5)))
        for _ in range(n_flows)
    ]
    return caps, routes, max_rates


@given(problem=waterfill_problems())
def test_waterfill_conserves_capacity_and_caps(problem):
    caps, routes, max_rates = problem
    rates = waterfill(caps, routes, max_rates)
    assert len(rates) == len(routes)
    for rate, cap in zip(rates, max_rates):
        assert rate >= 0.0
        if cap is not None:
            assert rate <= cap * (1 + 1e-6)
    for link, capacity in caps.items():
        load = sum(r for r, route in zip(rates, routes) if link in route)
        assert load <= capacity * (1 + 1e-6)


@given(problem=waterfill_problems())
def test_waterfill_is_max_min_fair(problem):
    """Every flow is either at its own cap or bottlenecked: it crosses a
    saturated link where no sharing flow gets a strictly larger rate."""
    caps, routes, max_rates = problem
    rates = waterfill(caps, routes, max_rates)
    for i, (rate, route, cap) in enumerate(zip(rates, routes, max_rates)):
        if cap is not None and rate >= cap * (1 - 1e-6):
            continue  # pinned by its own cap
        bottlenecked = False
        for link in route:
            load = sum(r for r, rt in zip(rates, routes) if link in rt)
            saturated = load >= caps[link] * (1 - 1e-6)
            biggest = max(
                (r for r, rt in zip(rates, routes) if link in rt),
                default=0.0,
            )
            if saturated and rate >= biggest * (1 - 1e-6):
                bottlenecked = True
                break
        assert bottlenecked, f"flow {i} is neither capped nor bottlenecked"


@given(
    capacity=st.floats(min_value=0.1, max_value=1e6),
    max_rates=st.lists(
        st.one_of(st.none(), st.floats(min_value=0.01, max_value=1e5)),
        min_size=1,
        max_size=15,
    ),
)
def test_waterfill_single_link_matches_allocate_max_min(capacity, max_rates):
    """On one shared link the multi-link allocator reduces exactly to the
    FairShareLink's single-link max-min allocation."""
    rates = waterfill({0: capacity}, [(0,)] * len(max_rates), max_rates)
    reference = allocate_max_min(max_rates, capacity)
    assert rates == pytest.approx(reference, rel=1e-9, abs=1e-12)


@given(
    st.lists(st.floats(min_value=1.0, max_value=1e4), min_size=1, max_size=10),
    st.floats(min_value=10.0, max_value=1e4),
)
@settings(max_examples=25, deadline=None)
def test_fair_share_link_conserves_bytes(sizes, capacity):
    """Every transfer completes and the link moves exactly the bytes offered."""
    env = Environment()
    link = FairShareLink(env, capacity)
    done = []

    def proc(env, nbytes):
        yield link.transfer(nbytes)
        done.append(nbytes)

    for nbytes in sizes:
        env.process(proc(env, nbytes))
    env.run()
    assert sorted(done) == sorted(sizes)
    assert link.bytes_moved == pytest.approx(sum(sizes), rel=1e-6)
    assert link.active_flows == 0
    # The link can never finish faster than capacity allows.
    assert env.now * capacity >= sum(sizes) * (1 - 1e-9)


# ------------------------------------------------------------ eviction models
@given(
    intervals=st.lists(
        st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200
    )
)
def test_empirical_eviction_samples_within_range(intervals):
    model = EmpiricalEviction(intervals)
    rng = np.random.default_rng(0)
    draws = model.sample_survival(rng, 100)
    assert draws.min() >= min(intervals) - 1e-9
    assert draws.max() <= max(intervals) + 1e-9


@given(
    intervals=st.lists(
        st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=100
    ),
    age=st.floats(min_value=0, max_value=1e5),
)
def test_hazard_is_probability(intervals, age):
    model = EmpiricalEviction(intervals)
    h = model.hazard(age)
    assert 0.0 <= h <= 1.0


@given(k=st.integers(min_value=0, max_value=1000), extra=st.integers(min_value=0, max_value=1000))
def test_binomial_errors_bounded(k, extra):
    n = k + extra
    err = binomial_errors(k, n)
    if n > 0:
        # The maximum possible binomial error is 0.5 / sqrt(n).
        assert 0.0 <= err <= 0.5 / np.sqrt(n) + 1e-12
    else:
        assert err == 0.0


@given(
    intervals=st.lists(
        st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=100
    )
)
def test_eviction_curve_probabilities_valid(intervals):
    starts, probs, errs = eviction_probability_curve(intervals, bin_width=3600.0)
    assert np.all((probs >= 0) & (probs <= 1))
    assert np.all(errs >= 0)
    assert len(starts) == len(probs) == len(errs)


# ------------------------------------------------------------ merge planning
file_sizes = st.lists(st.floats(min_value=1.0, max_value=5e9), min_size=0, max_size=100)


@given(sizes=file_sizes, target=st.floats(min_value=1e6, max_value=1e10))
def test_plan_groups_partitions_files(sizes, target):
    files = [StoredFile(f"/store/f{i:05d}", s) for i, s in enumerate(sizes)]
    groups, leftovers = plan_groups(files, target, "wf")
    regrouped = [f.name for g in groups for f in g.inputs] + [f.name for f in leftovers]
    assert sorted(regrouped) == sorted(f.name for f in files)
    # With partial groups allowed, nothing is left over.
    assert leftovers == []


@given(sizes=file_sizes, target=st.floats(min_value=1e6, max_value=1e10))
def test_plan_groups_without_partial_leftover_undersized(sizes, target):
    files = [StoredFile(f"/store/f{i:05d}", s) for i, s in enumerate(sizes)]
    groups, leftovers = plan_groups(files, target, "wf", allow_partial=False)
    # Every emitted group reaches the target.
    for g in groups:
        assert g.total_bytes >= target
    # Leftovers are strictly under one target's worth.
    assert sum(f.size_bytes for f in leftovers) < target
    # Partition property still holds.
    regrouped = [f.name for g in groups for f in g.inputs] + [f.name for f in leftovers]
    assert sorted(regrouped) == sorted(f.name for f in files)


# ------------------------------------------------------------ tasklets
@given(
    n_events=st.integers(min_value=1, max_value=100_000),
    per_tasklet=st.integers(min_value=1, max_value=10_000),
)
def test_event_decomposition_conserves_events(n_events, per_tasklet):
    store = TaskletStore.from_event_count("wf", n_events, per_tasklet)
    assert sum(t.n_events for t in store) == n_events
    assert all(1 <= t.n_events <= per_tasklet for t in store)


@given(
    n=st.integers(min_value=1, max_value=50),
    claims=st.lists(st.integers(min_value=1, max_value=10), max_size=20),
)
def test_claim_never_duplicates_tasklets(n, claims):
    store = TaskletStore.from_event_count("wf", n * 10, 10)
    seen = set()
    for c in claims:
        for t in store.claim(c):
            assert t.tasklet_id not in seen
            seen.add(t.tasklet_id)
            assert t.state == TaskletState.ASSIGNED
    assert len(seen) + store.pending_count == store.total


@given(
    n=st.integers(min_value=1, max_value=30),
    max_retries=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=30, deadline=None)
def test_retry_exhaustion_terminates(n, max_retries):
    """Failing everything forever always reaches a complete store."""
    store = TaskletStore.from_event_count("wf", n * 10, 10)
    for _ in range(max_retries + 1):
        claimed = store.claim(store.total)
        if not claimed:
            break
        store.mark_failed_attempt(claimed, max_retries)
    assert store.complete
    assert store.failed_count == store.total


# ------------------------------------------------------------ time series
monotone_samples = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e4),
        st.floats(min_value=-1e6, max_value=1e6),
    ),
    min_size=1,
    max_size=50,
).map(lambda pts: sorted(pts, key=lambda p: p[0]))


@given(samples=monotone_samples, bin_width=st.floats(min_value=1.0, max_value=1e4))
@settings(max_examples=50, deadline=None)
def test_binned_mean_bounded_by_extremes(samples, bin_width):
    ts = TimeSeries(samples=samples)
    starts, vals = ts.binned(bin_width, agg="mean")
    lo = min(0.0, min(v for _, v in samples))
    hi = max(0.0, max(v for _, v in samples))
    assert np.all(vals >= lo - 1e-6)
    assert np.all(vals <= hi + 1e-6)


@given(samples=monotone_samples, t=st.floats(min_value=-10, max_value=2e4))
def test_at_returns_last_sample_before(samples, t):
    ts = TimeSeries(samples=samples)
    value = ts.at(t)
    earlier = [v for when, v in samples if when <= t]
    assert value == (earlier[-1] if earlier else 0.0)


# ------------------------------------------------------------ task-size model
@given(
    n_tasklets=st.integers(min_value=10, max_value=500),
    n_workers=st.integers(min_value=1, max_value=50),
    task_hours=st.floats(min_value=0.1, max_value=12.0),
    probability=st.floats(min_value=0.01, max_value=0.9),
)
@settings(max_examples=20, deadline=None)
def test_efficiency_is_always_a_ratio(n_tasklets, n_workers, task_hours, probability):
    sim = TaskSizeSimulator(
        TaskSizeConfig(n_tasklets=n_tasklets, n_workers=n_workers, max_retries=50),
        seed=0,
    )
    for model in (NoEviction(), ConstantHazardEviction(probability)):
        r = sim.simulate(task_hours * 3600.0, model)
        assert 0.0 <= r.efficiency <= 1.0
        assert r.effective_time <= r.total_time
        assert r.tasks_completed >= 0
