"""Tests for the Frontier conditions-data service."""

import pytest

from repro.cvmfs import FrontierService, ProxyFarm, SquidProxy, SquidTimeout
from repro.desim import Environment

MB = 1_000_000.0
GBIT = 125_000_000.0


def make_frontier(env, **kw):
    proxy = SquidProxy(env, bandwidth=10 * GBIT, request_rate=1e6, base_latency=0.0)
    defaults = dict(origin_latency=1.0, payload_bytes=50 * MB, iov_runs=100)
    defaults.update(kw)
    return FrontierService(env, proxy, **defaults), proxy


def test_first_fetch_misses_then_hits():
    env = Environment()
    frontier, proxy = make_frontier(env)
    times = []

    def proc(env):
        t1 = yield from frontier.fetch(190_001)
        t2 = yield from frontier.fetch(190_002)  # same IOV
        times.extend([t1, t2])

    env.process(proc(env))
    env.run()
    assert frontier.misses == 1
    assert frontier.hits == 1
    # The miss paid the origin round-trip; the hit did not.
    assert times[0] > times[1]
    assert times[0] - times[1] >= 1.0  # at least the origin latency


def test_iov_boundaries():
    env = Environment()
    frontier, _ = make_frontier(env, iov_runs=100)
    assert frontier.iov_key(100) == frontier.iov_key(199)
    assert frontier.iov_key(199) != frontier.iov_key(200)

    def proc(env):
        yield from frontier.fetch(100)
        yield from frontier.fetch(150)
        yield from frontier.fetch(250)  # new IOV

    env.process(proc(env))
    env.run()
    assert frontier.misses == 2
    assert frontier.hits == 1
    assert frontier.hit_rate == pytest.approx(1 / 3)


def test_many_tasks_one_origin_pull():
    env = Environment()
    frontier, proxy = make_frontier(env)

    def proc(env):
        yield from frontier.fetch(42)

    for _ in range(50):
        env.process(proc(env))
    env.run()
    # Concurrent first fetches may each miss before the cache marks, but
    # sequentially started ones hit; with simultaneous starts all 50 race.
    # At minimum the proxy absorbed all the payload traffic.
    assert proxy.bytes_served == pytest.approx(50 * 50 * MB)
    assert frontier.hits + frontier.misses == 50


def test_proxy_timeout_propagates():
    env = Environment()
    proxy = SquidProxy(env, bandwidth=1 * MB, request_rate=1e6, base_latency=0.0, timeout=2.0)
    frontier = FrontierService(env, proxy, origin_latency=0.0, payload_bytes=100 * MB)
    failures = []

    def proc(env):
        try:
            yield from frontier.fetch(1)
        except SquidTimeout:
            failures.append(env.now)

    env.process(proc(env))
    env.run(until=1000)
    assert len(failures) == 1


def test_validation():
    env = Environment()
    proxy = SquidProxy(env)
    with pytest.raises(ValueError):
        FrontierService(env, proxy, payload_bytes=-1)
    with pytest.raises(ValueError):
        FrontierService(env, proxy, iov_runs=0)


def test_works_with_proxy_farm():
    env = Environment()
    farm = ProxyFarm.deploy(env, 2, base_latency=0.0)
    frontier = FrontierService(env, farm, origin_latency=0.5)
    done = []

    def proc(env):
        t = yield from frontier.fetch(7)
        done.append(t)

    env.process(proc(env))
    env.run()
    assert len(done) == 1
    assert done[0] > 0
