"""Campaign-wide crash consistency (the ``repro.crashtest`` fuzzer).

``test_merge_recovery`` kills the scheduler at one hand-picked point
(mid-merge); these tests kill it *everywhere*.  Every durable DB
transition is a crash point: the harness snapshots the surviving state
(Lobster DB + storage element), warm-restarts a fresh scheduler from the
snapshot, and asserts the resumed campaign converges to the
uninterrupted run's published outputs with clean invariants.

The pinned regression tests at the bottom cover bugs this fuzzer
surfaced: a pool-wide transient permanently blacklisting every host
(wedging the campaign), and a warm restart's glide-ins waiting on the
dead pool's capacity event (never placing on freed machines).
"""

from repro.batch import CondorPool, GlideinRequest, Machine, MachinePool
from repro.core import Publisher
from repro.core.jobit_db import LobsterDB
from repro.crashtest import run_crashtest
from repro.crashtest.harness import _execute, _resume, get_crash_scenario
from repro.crashtest.snapshot import capture_snapshot
from repro.dbs import DBS
from repro.desim import Environment
from repro.scenarios import execute_prepared, prepare_chaos, warm_restart
from repro.sweep import get_scenario
from repro.testing import reset_id_counters
from repro.wq import Master, RecoveryPolicy


# ---------------------------------------------------------------------------
# The fuzzer itself
# ---------------------------------------------------------------------------


def test_exhaustive_micro_crash_points_converge():
    """Every crash point of a two-workflow campaign warm-restarts to the
    same answer, and the donor's invariants hold at every checkpoint."""
    report = run_crashtest(scenario="micro", mode="exhaustive")
    assert report.ok, report.format_report()
    assert report.checkpoints_total > 0
    assert len(report.points) == report.checkpoints_total
    assert report.invariant_violations == 0
    # Multi-workflow recovery: strict byte-identity is asserted at every
    # fully-settled crash point (merge-free scenario).
    assert any(p.strict for p in report.points)


def test_micro_double_crash_converges():
    """Crashing the *recovering* scheduler mid-recovery still converges."""
    report = run_crashtest(
        scenario="micro", mode="sample", samples=6, seed=4, double_crash=True
    )
    assert report.ok, report.format_report()
    assert any(p.double_crashed for p in report.points)


def test_sampled_chaos_converges():
    report = run_crashtest(scenario="chaos", mode="sample", samples=3, seed=1)
    assert report.ok, report.format_report()
    assert len(report.points) == 3


def test_sampled_corruption_converges():
    """Crash points under truncation + bit rot + duplicate delivery (the
    scenario whose seed-2 sampling surfaced the blacklist-wedge bug)."""
    report = run_crashtest(
        scenario="corruption", mode="sample", samples=3, seed=2
    )
    assert report.ok, report.format_report()


def test_crashtest_registered_as_sweep_scenario():
    """`repro.sweep` can grid the fuzzer (the CI crash-matrix path)."""
    spec = get_scenario("crashtest")
    assert spec.kind == "model"
    metrics = spec.build(scenario="micro", mode="sample", samples=2, seed=7)
    assert metrics["points_failed"] == 0
    assert metrics["invariant_violations"] == 0
    assert metrics["converged"] == 1.0
    assert metrics["points_tested"] == 2


# ---------------------------------------------------------------------------
# Determinism of recovery
# ---------------------------------------------------------------------------


def _micro_snapshot(target_seq):
    """Run the micro donor, freezing durable state at *target_seq*."""
    spec = get_crash_scenario("micro")
    reset_id_counters()
    env = Environment()
    db = LobsterDB()
    holder, box = {}, {}

    def listener(seq, op):
        if seq == target_seq and "se" in holder:
            box["snap"] = capture_snapshot(seq, op, db, holder["se"])

    db.add_checkpoint_listener(listener)
    prepared = spec.build(env, db, False, 0)
    holder["se"] = prepared.services.se
    assert _execute(prepared, spec.settle) is None
    return box["snap"], spec


def test_resume_is_deterministic():
    """Two warm restarts from one snapshot end in byte-identical DBs."""
    snap, spec = _micro_snapshot(target_seq=12)
    run_a, _, problem_a = _resume(snap, spec, seed=0)
    run_b, _, problem_b = _resume(snap, spec, seed=0)
    assert problem_a is None and problem_b is None
    assert run_a.db.dump() == run_b.db.dump()
    # The final ledgers agree row for row, so publication must too.
    for label in ("micro0", "micro1"):
        rec_a = run_a.publish_workflow(label, Publisher(DBS()))
        rec_b = run_b.publish_workflow(label, Publisher(DBS()))
        assert rec_a.total_events == rec_b.total_events
        assert rec_a.total_bytes == rec_b.total_bytes


# ---------------------------------------------------------------------------
# Declarative MasterCrash + warm_restart (the CLI flow)
# ---------------------------------------------------------------------------


def test_master_crash_warm_restart_converges():
    params = dict(files=12, machines=6, cores=2, seed=1)

    reset_id_counters()
    baseline = prepare_chaos(env=Environment(), **params)
    execute_prepared(baseline, settle=60.0)
    base = baseline.run.publish_workflow("chaos", Publisher(DBS()))

    reset_id_counters()
    env = Environment()
    prepared = prepare_chaos(env=env, master_crash_at=1500.0, **params)
    execute_prepared(prepared, settle=60.0)
    assert prepared.run.crashed
    assert prepared.run.master.crashed

    resumed = warm_restart(prepared)
    execute_prepared(resumed, settle=300.0)
    assert resumed.run.finished_at is not None
    assert resumed.run.check_invariants() == []
    assert len(resumed.run.metrics.recovery_resumes) == 1

    rec = resumed.run.publish_workflow("chaos", Publisher(DBS()))
    assert rec.total_events == base.total_events


def test_warm_restart_requires_a_crashed_run():
    reset_id_counters()
    prepared = prepare_chaos(env=Environment(), files=4, machines=2, cores=2)
    try:
        warm_restart(prepared)
    except ValueError as exc:
        assert "crashed" in str(exc)
    else:  # pragma: no cover
        raise AssertionError("warm_restart accepted an uncrashed run")


# ---------------------------------------------------------------------------
# Pinned regressions: bugs the fuzzer surfaced
# ---------------------------------------------------------------------------


def _failing_master(env, hosts):
    master = Master(
        env,
        recovery=RecoveryPolicy(
            blacklist_threshold=0.5, blacklist_min_samples=2
        ),
    )
    for host in hosts:
        master._observe_host(host, succeeded=False)
        master._observe_host(host, succeeded=False)
    return master


def test_pool_wide_blacklist_paroles_oldest_host():
    """corruption/seed=2/seq=45: a WAN flap failed every merge stage-in,
    blacklisting all six hosts forever and wedging the resumed campaign.
    When the blacklist condemns every known host, the oldest entry must
    be paroled after a backoff so the pool can recover."""
    env = Environment()
    master = _failing_master(env, ["h0", "h1", "h2"])
    assert set(master.blacklisted) == {"h0", "h1", "h2"}
    assert master.hosts_paroled >= 1
    env.run(until=master.recovery.backoff_cap + 1.0)
    assert "h0" not in master.blacklisted, "oldest entry was never paroled"
    assert master._host_stats.get("h0", [0, 0]) == [0, 0] or (
        "h0" not in master._host_stats
    )


def test_single_black_hole_host_is_still_blacklisted():
    """The parole valve must not weaken the normal case: one bad host
    among healthy ones stays blacklisted (no parole scheduled)."""
    env = Environment()
    master = Master(
        env,
        recovery=RecoveryPolicy(
            blacklist_threshold=0.5, blacklist_min_samples=2
        ),
    )
    master._observe_host("good", succeeded=True)
    master._observe_host("bad", succeeded=False)
    master._observe_host("bad", succeeded=False)
    assert set(master.blacklisted) == {"bad"}
    assert master.hosts_paroled == 0
    env.run(until=master.recovery.backoff_cap + 1.0)
    assert "bad" in master.blacklisted


def test_shared_machinepool_release_wakes_other_pool():
    """chaos/--master-crash-at: the restart wave's glide-ins waited on
    the dead pool's private capacity event and never placed on machines
    the old workers freed.  Release notification lives on the shared
    MachinePool now."""
    env = Environment()
    machines = MachinePool(env)
    machines.add(Machine(env, "only-node", cores=2))

    pool_a = CondorPool(env, machines, seed=0)
    pool_b = CondorPool(env, machines, seed=1)

    def short_payload(slot):
        yield env.timeout(10.0)

    def long_payload(slot):
        yield env.timeout(1000.0)

    pool_a.submit(
        GlideinRequest(n_workers=1, cores_per_worker=2, start_interval=0.0),
        short_payload,
    )
    env.run(until=1.0)
    assert pool_a.active_workers == 1
    pool_b.submit(
        GlideinRequest(n_workers=1, cores_per_worker=2, start_interval=0.0),
        long_payload,
    )
    env.run(until=50.0)
    assert pool_a.active_workers == 0
    assert pool_b.active_workers == 1, (
        "pool B never saw pool A's release of the only machine"
    )


def test_orphan_sweep_scoped_and_global():
    """`ledger_sweep_orphans` must honour its workflow scope: a
    recovering workflow sweeps only its own half-written outputs, while
    the campaign-level sweep (workflow=None) clears every workflow."""
    db = LobsterDB()
    db.record_workflow("wf-a", None, 10)
    db.record_workflow("wf-b", None, 10)
    db.ledger_begin("/store/a/out_1.root", "wf-a", "analysis")
    db.ledger_begin("/store/b/out_1.root", "wf-b", "analysis")

    assert db.ledger_sweep_orphans(workflow="wf-a") == ["/store/a/out_1.root"]
    assert db.ledger_state("/store/a/out_1.root") is None
    assert db.ledger_state("/store/b/out_1.root") == "pending"

    db.ledger_begin("/store/a/out_2.root", "wf-a", "analysis")
    assert len(db.ledger_sweep_orphans()) == 2
    assert db.ledger_state("/store/b/out_1.root") is None
    assert db.check_invariants(se=set()) == []
