"""Tests for software delivery: repository, squid proxies, Parrot caches."""

import pytest

from repro.batch.machines import Machine
from repro.cvmfs import (
    CacheMode,
    CVMFSRepository,
    ParrotCache,
    ProxyFarm,
    SquidProxy,
    SquidTimeout,
)
from repro.desim import Environment

GB = 1_000_000_000.0
MB = 1_000_000.0


def small_repo():
    return CVMFSRepository(cold_volume=1 * GB, cold_requests=1000, hot_volume=10 * MB, hot_requests=50)


def fast_node(env):
    return Machine(env, "n0", cores=8, disk_bandwidth=10 * GB)


# ---------------------------------------------------------------- repository
def test_repository_demand():
    repo = small_repo()
    assert repo.demand(hot=False) == (1000, 1 * GB)
    assert repo.demand(hot=True) == (50, 10 * MB)


def test_repository_validation():
    with pytest.raises(ValueError):
        CVMFSRepository(cold_volume=0)
    with pytest.raises(ValueError):
        CVMFSRepository(hot_volume=10 * GB, cold_volume=1 * GB)


# ---------------------------------------------------------------- squid
def test_squid_fetch_duration_scales_with_volume():
    env = Environment()
    proxy = SquidProxy(env, bandwidth=100 * MB, request_rate=1e9, base_latency=0.0)
    done = {}

    def proc(env, tag, nbytes):
        elapsed = yield from proxy.fetch(1, nbytes)
        done[tag] = elapsed

    env.process(proc(env, "small", 100 * MB))
    env.run()
    assert done["small"] == pytest.approx(1.0)


def test_squid_request_rate_limits():
    env = Environment()
    # Bandwidth huge; request servicing is the bottleneck.
    proxy = SquidProxy(env, bandwidth=1e15, request_rate=100.0, base_latency=0.0)
    done = {}

    def proc(env):
        elapsed = yield from proxy.fetch(1000, 1.0)
        done["t"] = elapsed

    env.process(proc(env))
    env.run()
    assert done["t"] == pytest.approx(10.0)


def test_squid_concurrent_fetches_share_capacity():
    env = Environment()
    proxy = SquidProxy(env, bandwidth=100 * MB, request_rate=1e9, base_latency=0.0)
    done = []

    def proc(env):
        yield from proxy.fetch(1, 100 * MB)
        done.append(env.now)

    env.process(proc(env))
    env.process(proc(env))
    env.run()
    # Two flows share bandwidth → both take ~2 s.
    assert done == [pytest.approx(2.0), pytest.approx(2.0)]


def test_squid_timeout_raises_and_counts():
    env = Environment()
    proxy = SquidProxy(env, bandwidth=1 * MB, request_rate=1e9, base_latency=0.0, timeout=5.0)
    outcome = []

    def proc(env):
        try:
            yield from proxy.fetch(1, 100 * MB)  # needs 100 s > 5 s timeout
        except SquidTimeout:
            outcome.append(env.now)

    env.process(proc(env))
    env.run()
    assert outcome == [pytest.approx(5.0)]
    assert proxy.timeouts == 1
    # The cancelled flow freed the link.
    assert proxy.data_link.active_flows == 0


def test_squid_stats_accumulate():
    env = Environment()
    proxy = SquidProxy(env, bandwidth=100 * MB, request_rate=1000, base_latency=0.0)

    def proc(env):
        yield from proxy.fetch(10, 1 * MB)

    env.process(proc(env))
    env.run()
    assert proxy.fetches == 1
    assert proxy.bytes_served == 1 * MB
    assert proxy.requests_served == 10


def test_proxy_farm_picks_least_loaded():
    env = Environment()
    farm = ProxyFarm.deploy(env, 2, bandwidth=100 * MB, request_rate=1e9, base_latency=0.0)
    done = []

    def proc(env):
        yield from farm.fetch(1, 100 * MB)
        done.append(env.now)

    # Two fetches land on different proxies → no sharing → both ~1 s.
    env.process(proc(env))
    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0), pytest.approx(1.0)]


def test_proxy_farm_requires_proxies():
    with pytest.raises(ValueError):
        ProxyFarm([])


# ---------------------------------------------------------------- parrot cache
def run_setups(mode, n_tasks, repo=None, bandwidth=1 * GB):
    """Run n concurrent setups against one cache; return SetupResults."""
    env = Environment()
    repo = repo or small_repo()
    proxy = SquidProxy(env, bandwidth=bandwidth, request_rate=1e9, base_latency=0.0)
    machine = fast_node(env)
    cache = ParrotCache(env, machine, proxy, mode=mode)
    results = []

    def task(env):
        r = yield from cache.setup(repo)
        results.append(r)

    for _ in range(n_tasks):
        env.process(task(env))
    env.run()
    return cache, results, env


def test_cold_then_hot():
    env = Environment()
    repo = small_repo()
    proxy = SquidProxy(env, bandwidth=1 * GB, request_rate=1e9, base_latency=0.0)
    cache = ParrotCache(env, fast_node(env), proxy, mode=CacheMode.ALIEN)
    results = []

    def sequence(env):
        r1 = yield from cache.setup(repo)
        r2 = yield from cache.setup(repo)
        results.extend([r1, r2])

    env.process(sequence(env))
    env.run()
    assert results[0].cold and not results[1].cold
    assert results[1].elapsed < results[0].elapsed
    assert cache.cold_fills == 1
    assert cache.hot_hits == 1


def test_locked_mode_serialises_setups():
    cache, results, env = run_setups(CacheMode.LOCKED, 4)
    assert sum(r.cold for r in results) == 1
    # Everyone after the first waited for the lock.
    waits = sorted(r.waited_for_lock for r in results)
    assert waits[0] == 0.0
    assert all(w > 0 for w in waits[1:])


def test_alien_mode_single_fill_many_waiters():
    cache, results, env = run_setups(CacheMode.ALIEN, 8)
    assert cache.cold_fills == 1
    assert sum(r.cold for r in results) == 1
    # Waiters waited for the fill, not for a lock.
    waiters = [r for r in results if not r.cold]
    assert all(r.waited_for_fill > 0 for r in waiters)
    assert all(r.waited_for_lock == 0 for r in results)


def test_private_mode_each_cache_pulls_full_volume():
    # Private mode means one cache per instance: emulate 3 instances.
    env = Environment()
    repo = small_repo()
    proxy = SquidProxy(env, bandwidth=1 * GB, request_rate=1e9, base_latency=0.0)
    machine = fast_node(env)
    caches = [ParrotCache(env, machine, proxy, mode=CacheMode.PRIVATE) for _ in range(3)]
    results = []

    def task(env, cache):
        r = yield from cache.setup(repo)
        results.append(r)

    for c in caches:
        env.process(task(env, c))
    env.run()
    assert all(r.cold for r in results)
    assert proxy.bytes_served == pytest.approx(3 * repo.cold_volume)


def test_alien_uses_less_bandwidth_than_private():
    _, alien_results, _ = run_setups(CacheMode.ALIEN, 4)
    env = Environment()
    repo = small_repo()
    proxy = SquidProxy(env, bandwidth=1 * GB, request_rate=1e9, base_latency=0.0)
    machine = fast_node(env)

    results = []

    def task(env):
        cache = ParrotCache(env, machine, proxy, mode=CacheMode.PRIVATE)
        r = yield from cache.setup(repo)
        results.append(r)

    for _ in range(4):
        env.process(task(env))
    env.run()
    private_last = max(r.elapsed for r in results)
    alien_last = max(r.elapsed for r in alien_results)
    # Private pulls 4 GB through the same pipe; alien pulls 1 GB once.
    assert alien_last < private_last


def test_alien_fill_failure_wakes_waiters():
    env = Environment()
    repo = small_repo()
    # Timeout far below the fill time → first filler fails.
    proxy = SquidProxy(env, bandwidth=1 * MB, request_rate=1e9, base_latency=0.0, timeout=5.0)
    cache = ParrotCache(env, fast_node(env), proxy, mode=CacheMode.ALIEN)
    failures = []

    def task(env):
        try:
            yield from cache.setup(repo)
        except SquidTimeout:
            failures.append(env.now)

    for _ in range(3):
        env.process(task(env))
    env.run(until=1000)
    # All three eventually failed (each retried the fill after waking).
    assert len(failures) == 3


def test_cache_invalidate():
    env = Environment()
    repo = small_repo()
    proxy = SquidProxy(env, bandwidth=1 * GB, request_rate=1e9, base_latency=0.0)
    cache = ParrotCache(env, fast_node(env), proxy, mode=CacheMode.ALIEN)

    def seq(env):
        yield from cache.setup(repo)
        assert cache.is_hot(repo)
        cache.invalidate()
        assert not cache.is_hot(repo)
        r = yield from cache.setup(repo)
        assert r.cold

    env.process(seq(env))
    env.run()
    assert cache.cold_fills == 2
