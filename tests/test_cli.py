"""Tests for the command-line interface and the profile catalog."""

import io

import pytest

from repro.analysis.profiles import PROFILES, list_profiles, profile
from repro.cli import build_parser, main


# ---------------------------------------------------------------- profiles
def test_profile_catalog_complete():
    assert {"skim", "ntuple", "rereco", "gensim", "digi-reco-mc"} <= set(PROFILES)
    for name in PROFILES:
        code = profile(name)
        assert code.per_event_cpu.mean() > 0
        assert code.output_bytes_per_event > 0


def test_profile_unknown_raises():
    with pytest.raises(KeyError, match="unknown profile"):
        profile("does-not-exist")


def test_profiles_have_expected_shape():
    # A skim computes far less per event than reconstruction.
    assert profile("skim").per_event_cpu.mean() < profile("rereco").per_event_cpu.mean() / 10
    # GEN-SIM is the CPU heavyweight and needs no real input.
    gensim = profile("gensim")
    assert gensim.input_bytes_per_event == 0.0
    assert gensim.per_event_cpu.mean() > 10
    # Ntupling reduces output by > 10x relative to input.
    nt = profile("ntuple")
    assert nt.output_bytes_per_event * 10 < nt.input_bytes_per_event


def test_list_profiles():
    listing = list_profiles()
    assert "ntuple" in listing
    assert "simulation" in listing["gensim"]


# ---------------------------------------------------------------- CLI
def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_cli_profiles():
    code, text = run_cli(["profiles"])
    assert code == 0
    assert "ntuple" in text
    assert "gensim" in text


def test_cli_tasksize_small():
    code, text = run_cli(
        ["tasksize", "--tasklets", "500", "--workers", "50", "--eviction", "constant"]
    )
    assert code == 0
    assert "optimal:" in text
    assert "efficiency" in text


def test_cli_quickstart_small():
    code, text = run_cli(["quickstart", "--events", "4000", "--workers", "2"])
    assert code == 0
    assert "LOBSTER RUN REPORT" in text
    assert "succeeded" in text


def test_cli_simulate_rejects_data_profile():
    with pytest.raises(SystemExit):
        run_cli(["simulate", "--profile", "ntuple", "--events", "1000"])


def test_cli_process_rejects_mc_profile():
    with pytest.raises(SystemExit):
        run_cli(["process", "--profile", "gensim"])


def test_cli_process_small():
    code, text = run_cli(
        ["process", "--files", "10", "--machines", "2", "--cores", "4"]
    )
    assert code == 0
    assert "LOBSTER RUN REPORT" in text


def test_cli_simulate_small():
    code, text = run_cli(
        ["simulate", "--events", "8000", "--machines", "2", "--cores", "4"]
    )
    assert code == 0
    assert "LOBSTER RUN REPORT" in text
