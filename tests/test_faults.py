"""The fault-injection engine: plans, injectors, determinism."""

import pytest

from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import Services
from repro.cvmfs import SquidTimeout
from repro.desim import Environment, Interrupt, MemorySink, Topics
from repro.faults import (
    BlackHoleHost,
    EvictionBurst,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    SpindleDegradation,
    SquidCrash,
)
from repro.net import Fabric

GBIT = 125_000_000.0


# ---------------------------------------------------------------------------
# Plan declarations
# ---------------------------------------------------------------------------

def test_fault_validation():
    with pytest.raises(ValueError):
        EvictionBurst(at=-1.0)
    with pytest.raises(ValueError):
        EvictionBurst(at=0.0, fraction=0.0)
    with pytest.raises(ValueError):
        EvictionBurst(at=0.0, fraction=1.5)
    with pytest.raises(ValueError):
        BlackHoleHost(at=0.0)  # no machine named
    with pytest.raises(ValueError):
        BlackHoleHost(at=0.0, machine="n0", duration=0.0)
    with pytest.raises(ValueError):
        SquidCrash(at=0.0, duration=0.0)
    with pytest.raises(ValueError):
        SpindleDegradation(at=0.0, factor=1.0)
    with pytest.raises(ValueError):
        LinkFlap(link="wan", at=0.0, duration=0.0)
    with pytest.raises(ValueError):
        LinkFlap(link="wan", at=0.0, duration=60.0, repeat=2)  # no period
    with pytest.raises(ValueError):
        LinkFlap(link="wan", at=0.0, duration=60.0, repeat=2, period=30.0)


def test_plan_rejects_non_faults():
    with pytest.raises(TypeError):
        FaultPlan([object()])


def test_plan_orders_by_time_then_declaration():
    a = SquidCrash(at=100.0)
    b = EvictionBurst(at=50.0)
    c = SpindleDegradation(at=50.0)
    plan = FaultPlan([a, b, c])
    assert len(plan) == 3
    ordered = plan.ordered()
    assert [f for _, f in ordered] == [b, c, a]
    assert [i for i, _ in ordered] == [1, 2, 0]


def test_link_flap_windows():
    flap = LinkFlap(link="wan", at=100.0, duration=60.0, repeat=3, period=200.0)
    assert flap.windows() == [
        (100.0, 160.0),
        (300.0, 360.0),
        (500.0, 560.0),
    ]
    single = LinkFlap(link="wan", at=10.0, duration=5.0)
    assert single.windows() == [(10.0, 15.0)]


# ---------------------------------------------------------------------------
# Injector behaviour against the live substrates
# ---------------------------------------------------------------------------

def _idle_pool(env, n_machines, fabric=None, machines_per_switch=24):
    """A pool whose payloads idle forever and absorb eviction cleanly."""
    machines = MachinePool.homogeneous(
        env,
        n_machines,
        cores=1,
        fabric=fabric,
        machines_per_switch=machines_per_switch,
    )
    pool = CondorPool(env, machines)

    def payload(slot):
        try:
            yield env.timeout(1e12)
        except Interrupt:
            return

    pool.submit(
        GlideinRequest(
            n_workers=n_machines,
            cores_per_worker=1,
            resubmit=False,
            start_interval=0.0,
        ),
        payload,
    )
    return pool


def test_eviction_burst_hits_whole_pool():
    env = Environment()
    pool = _idle_pool(env, 4)
    sink = MemorySink()
    env.bus.attach(sink, "fault.*")
    injector = FaultInjector(
        env, FaultPlan([EvictionBurst(at=100.0)]), pool=pool
    ).start()
    env.run(until=200.0)
    assert pool.total_evictions == 4
    assert injector.injected == 1
    [event] = sink.of(Topics.FAULT_INJECT)
    assert event.fields["kind"] == "eviction-burst"
    assert event.fields["victims"] == 4


def test_eviction_burst_is_rack_correlated():
    env = Environment()
    fabric = Fabric(env)
    # Two machines per rack switch: node00000/1 -> rack000, 2/3 -> rack001.
    pool = _idle_pool(env, 4, fabric=fabric, machines_per_switch=2)
    sink = MemorySink()
    env.bus.attach(sink, "fault.*")
    FaultInjector(
        env, FaultPlan([EvictionBurst(at=100.0, rack="rack000")]), pool=pool
    ).start()
    env.run(until=200.0)
    assert pool.total_evictions == 2
    [event] = sink.of(Topics.FAULT_INJECT)
    assert event.fields["rack"] == "rack000"
    assert event.fields["victims"] == 2
    survivors = {slot.machine.name for slot in pool.active_slots}
    assert survivors == {"node00002", "node00003"}


def test_eviction_burst_fraction_is_seed_deterministic():
    counts = []
    for _ in range(2):
        env = Environment()
        pool = _idle_pool(env, 16)
        FaultInjector(
            env,
            FaultPlan([EvictionBurst(at=10.0, fraction=0.5)], seed=3),
            pool=pool,
        ).start()
        env.run(until=20.0)
        counts.append(pool.total_evictions)
    assert counts[0] == counts[1]
    assert 0 < counts[0] < 16


def test_black_hole_sets_and_clears_flag():
    env = Environment()
    pool = _idle_pool(env, 2)
    sink = MemorySink()
    env.bus.attach(sink, "fault.*")
    FaultInjector(
        env,
        FaultPlan([BlackHoleHost(at=10.0, machine="node00001", duration=50.0)]),
        pool=pool,
    ).start()
    machine = next(m for m in pool.machines if m.name == "node00001")
    assert not machine.black_hole
    env.run(until=20.0)
    assert machine.black_hole
    env.run(until=70.0)
    assert not machine.black_hole
    assert len(sink.of(Topics.FAULT_INJECT)) == 1
    assert len(sink.of(Topics.FAULT_CLEAR)) == 1


def test_black_hole_unknown_machine_is_an_error():
    env = Environment()
    pool = _idle_pool(env, 1)
    FaultInjector(
        env,
        FaultPlan([BlackHoleHost(at=10.0, machine="nonesuch")]),
        pool=pool,
    ).start()
    with pytest.raises(ValueError):
        env.run(until=20.0)


def test_squid_crash_fails_inflight_fetch_and_recovers():
    env = Environment()
    services = Services.default(env)
    proxy = services.proxies.proxies[0]
    saved_capacity = proxy.data_link.capacity
    errors = []

    def client(env):
        # 1.25 TB through a 10 Gbit proxy NIC: ~1000 s, so the crash at
        # t=10 lands mid-flight.
        try:
            yield from proxy.fetch(10, 1.25e12)
        except SquidTimeout as exc:
            errors.append(exc)

    env.process(client(env))
    FaultInjector(
        env,
        FaultPlan([SquidCrash(at=10.0, duration=30.0)]),
        services=services,
    ).start()
    env.run(until=60.0)
    assert len(errors) == 1
    assert proxy.timeouts == 1
    assert proxy.data_link.capacity == saved_capacity  # restored at t=40


def test_spindle_degradation_throttles_and_restores():
    env = Environment()
    services = Services.default(env)
    spindles = services.chirp.spindles
    saved = spindles.capacity
    FaultInjector(
        env,
        FaultPlan([SpindleDegradation(at=10.0, duration=50.0, factor=0.1)]),
        services=services,
    ).start()
    env.run(until=20.0)
    assert spindles.capacity == pytest.approx(saved * 0.1)
    env.run(until=70.0)
    assert spindles.capacity == pytest.approx(saved)


def test_link_flap_outages_and_narration():
    env = Environment()
    services = Services.default(env)
    wan = services.fabric.links["wan"]
    saved = wan.capacity
    sink = MemorySink()
    env.bus.attach(sink, "fault.*")
    injector = FaultInjector(
        env,
        FaultPlan(
            [LinkFlap(link="wan", at=100.0, duration=50.0, repeat=2, period=200.0)]
        ),
        services=services,
    ).start()
    env.run(until=120.0)
    assert wan.capacity == 0.0
    env.run(until=180.0)
    assert wan.capacity == saved
    env.run(until=320.0)
    assert wan.capacity == 0.0
    env.run(until=400.0)
    assert wan.capacity == saved
    assert injector.injected == 2
    assert injector.cleared == 2
    assert len(sink.of(Topics.FAULT_INJECT)) == 2
    assert len(sink.of(Topics.FAULT_CLEAR)) == 2


# ---------------------------------------------------------------------------
# Determinism: same seed + same plan => byte-identical event stream
# ---------------------------------------------------------------------------

def _chaos_run(path, seed):
    from repro.analysis import data_processing_code
    from repro.core import LobsterConfig, LobsterRun, MergeMode, WorkflowConfig
    from repro.dbs import DBS, synthetic_dataset
    from repro.distributions import ConstantHazardEviction
    from repro.monitor import JsonlSink
    from repro.wq import RecoveryPolicy

    env = Environment()
    sink = JsonlSink(path)
    env.bus.attach(sink, "task.*")
    env.bus.attach(sink, "fault.*")
    env.bus.attach(sink, "host.*")
    env.bus.attach(sink, "recovery.*")

    dbs = DBS()
    dataset = synthetic_dataset(
        name="/Det/Chaos-v1/AOD",
        n_files=6,
        events_per_file=2_000,
        lumis_per_file=10,
        seed=seed,
    )
    dbs.register(dataset)
    services = Services.default(env, dbs=dbs, wan_bandwidth=1 * GBIT, seed=seed)
    config = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="det",
                code=data_processing_code(),
                dataset=dataset.name,
                lumis_per_tasklet=5,
                tasklets_per_task=2,
                merge_mode=MergeMode.NONE,
                stream_fallback_threshold=3,
            )
        ],
        cores_per_worker=2,
        recovery=RecoveryPolicy(
            max_attempts=12,
            backoff_base=2.0,
            blacklist_threshold=0.65,
            blacklist_min_samples=6,
        ),
        seed=seed,
    )
    run = LobsterRun(env, config, services)
    run.start()
    machines = MachinePool.homogeneous(env, 4, cores=2, fabric=services.fabric)
    pool = CondorPool(
        env, machines, eviction=ConstantHazardEviction(0.05), seed=seed
    )
    pool.submit(
        GlideinRequest(n_workers=4, cores_per_worker=2, start_interval=1.0),
        run.worker_payload,
    )
    plan = FaultPlan(
        [
            SquidCrash(at=200.0, duration=120.0),
            EvictionBurst(at=600.0, fraction=0.5),
            LinkFlap(link="wan", at=900.0, duration=300.0, fail_after=15.0),
        ],
        seed=seed,
    )
    FaultInjector(env, plan, services=services, pool=pool).start()
    env.run(until=run.process)
    pool.drain()
    sink.close()


def test_chaos_event_stream_is_byte_identical(tmp_path, test_seed):
    from repro import reset_id_counters

    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    reset_id_counters()
    _chaos_run(str(a), test_seed)
    reset_id_counters()
    _chaos_run(str(b), test_seed)
    assert a.read_bytes()
    assert a.read_bytes() == b.read_bytes()
