"""Tests for merge planning and the three merge strategies."""

import pytest

from repro.analysis import simulation_code
from repro.core import (
    LobsterConfig,
    MergeMode,
    Services,
    WorkflowConfig,
    plan_groups,
)
from repro.core.merge import MergeGroup, MergeManager
from repro.desim import Environment
from repro.storage import StoredFile

MB = 1_000_000.0
GB = 1_000_000_000.0


def files(n, size_mb=100.0, prefix="/store/user/wf/out/f"):
    return [StoredFile(f"{prefix}{i:04d}.root", size_mb * MB) for i in range(n)]


def make_manager(merge_mode=MergeMode.INTERLEAVED, target_gb=1.0, with_hadoop=False):
    env = Environment()
    wf = WorkflowConfig(
        label="wf",
        code=simulation_code(),
        n_events=1000,
        merge_mode=merge_mode,
        merge_target_bytes=target_gb * GB,
        merge_threshold=0.10,
        max_retries=3,
    )
    cfg = LobsterConfig(workflows=[wf])
    services = Services.default(env, with_hadoop=with_hadoop)
    return env, MergeManager(cfg, wf, services), services


# ---------------------------------------------------------------- planning
def test_plan_groups_fills_to_target():
    groups, leftovers = plan_groups(files(25, 100.0), 1.0 * GB, "wf")
    assert len(groups) == 3  # 10 + 10 + 5 (partial allowed)
    assert groups[0].total_bytes >= 1.0 * GB
    assert leftovers == []


def test_plan_groups_without_partial_returns_leftovers():
    groups, leftovers = plan_groups(
        files(25, 100.0), 1.0 * GB, "wf", allow_partial=False
    )
    assert len(groups) == 2
    assert len(leftovers) == 5


def test_plan_groups_validation():
    with pytest.raises(ValueError):
        plan_groups([], 0, "wf")
    with pytest.raises(ValueError):
        MergeGroup([], "wf")


def test_plan_groups_empty_input():
    groups, leftovers = plan_groups([], 1.0 * GB, "wf")
    assert groups == [] and leftovers == []


# ---------------------------------------------------------------- manager
def test_interleaved_waits_for_threshold():
    env, mgr, _ = make_manager(MergeMode.INTERLEAVED)
    for f in files(15):
        mgr.add_output(f)
    # Below threshold: nothing yet.
    assert mgr.make_tasks(processed_fraction=0.05, final=False) == []
    # Above threshold: groups are emitted, leftovers retained.
    tasks = mgr.make_tasks(processed_fraction=0.2, final=False)
    assert len(tasks) == 1
    assert len(mgr.unmerged) == 5
    assert all(t.category == "merge" for t in tasks)


def test_sequential_only_merges_at_final():
    env, mgr, _ = make_manager(MergeMode.SEQUENTIAL)
    for f in files(12):
        mgr.add_output(f)
    assert mgr.make_tasks(processed_fraction=1.0, final=False) == []
    tasks = mgr.make_tasks(processed_fraction=1.0, final=True)
    assert len(tasks) == 2  # 10 + 2 (partial at final)
    assert mgr.unmerged == []


def test_none_mode_ignores_outputs():
    env, mgr, _ = make_manager(MergeMode.NONE)
    for f in files(20):
        mgr.add_output(f)
    assert mgr.unmerged == []
    assert mgr.make_tasks(1.0, final=True) == []
    assert mgr.complete


def test_merge_success_publishes_and_cleans(monkeypatch):
    env, mgr, services = make_manager(MergeMode.INTERLEAVED)
    outs = files(10)
    for f in outs:
        services.se.store(f)
        mgr.add_output(f)
    tasks = mgr.make_tasks(0.5, final=False)
    assert len(tasks) == 1
    group = tasks[0].payload.merge_inputs[0]

    class FakeResult:
        succeeded = True
        finished = 123.0
        task = tasks[0]

    retry = mgr.on_result(FakeResult())
    assert retry is None
    assert len(mgr.merged_files) == 1
    merged = mgr.merged_files[0]
    assert services.se.exists(merged.name)
    # Inputs were removed from the SE.
    assert all(not services.se.exists(f.name) for f in group.inputs)
    assert mgr.complete


def test_merge_failure_retries_then_abandons():
    env, mgr, services = make_manager(MergeMode.INTERLEAVED)
    for f in files(10):
        mgr.add_output(f)
    tasks = mgr.make_tasks(0.5, final=False)
    task = tasks[0]

    class FailResult:
        succeeded = False
        finished = 1.0

    FailResult.task = task
    retry1 = mgr.on_result(FailResult())
    assert retry1 is not None

    FailResult.task = retry1
    retry2 = mgr.on_result(FailResult())
    assert retry2 is not None

    FailResult.task = retry2
    retry3 = mgr.on_result(FailResult())  # third failure = max_retries
    assert retry3 is None
    assert len(mgr.abandoned_groups) == 1
    assert mgr.complete


def test_hadoop_merge_runs_mapreduce():
    env, mgr, services = make_manager(MergeMode.HADOOP, with_hadoop=True)
    outs = files(12)
    for f in outs:
        services.se.store(f)
        mgr.add_output(f)
    results = {}

    def proc(env):
        res = yield from mgr.run_hadoop_merge()
        results.update(res)

    env.process(proc(env))
    env.run()
    assert len(results) == 2  # 10 + 2
    assert len(mgr.merged_files) == 2
    # Merged outputs exist in both SE namespace and HDFS.
    for merged in mgr.merged_files:
        assert services.se.exists(merged.name)
        assert services.hdfs.exists(merged.name)
    assert env.now > 0  # the merge took simulated time


def test_hadoop_merge_without_engine_raises():
    env, mgr, services = make_manager(MergeMode.HADOOP, with_hadoop=False)
    mgr.add_output(files(1)[0])

    def proc(env):
        yield from mgr.run_hadoop_merge()

    env.process(proc(env))
    with pytest.raises(RuntimeError):
        env.run()
