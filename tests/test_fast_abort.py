"""Tests for Work Queue's fast-abort straggler mitigation."""

import pytest

from repro.analysis.report import ExitCode
from repro.batch.machines import Machine
from repro.desim import Environment
from repro.wq import Master, Task, Worker

HOUR = 3600.0


def timed_executor(duration):
    def executor(worker, task):
        yield worker.env.timeout(duration)
        return ExitCode.SUCCESS, {"cpu": duration}, None

    return executor


def straggler_executor(normal, slow, slow_worker_name):
    """Tasks run *slow* on one specific worker, *normal* elsewhere."""

    def executor(worker, task):
        duration = slow if worker.name == slow_worker_name else normal
        yield worker.env.timeout(duration)
        return ExitCode.SUCCESS, {"cpu": duration}, None

    return executor


def test_fast_abort_validation():
    env = Environment()
    master = Master(env)
    with pytest.raises(ValueError):
        master.enable_fast_abort(multiplier=1.0)
    with pytest.raises(ValueError):
        master.enable_fast_abort(multiplier=2.0, check_interval=0)
    master.enable_fast_abort(multiplier=3.0)
    with pytest.raises(RuntimeError):
        master.enable_fast_abort(multiplier=3.0)


def test_mean_runtime_tracked():
    env = Environment()
    master = Master(env)
    master.submit(Task(timed_executor(100.0)))
    master.submit(Task(timed_executor(200.0)))
    worker = Worker(env, Machine(env, "m0", cores=1), master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(2):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    # Wall time includes a small sandbox stage-in on the first task.
    assert master.mean_runtime() == pytest.approx(150.0, abs=2.0)


def test_straggler_aborted_and_rescued():
    """A task stuck on a sick worker gets aborted and finishes elsewhere."""
    env = Environment()
    master = Master(env)
    master.enable_fast_abort(multiplier=3.0, check_interval=30.0, min_samples=5)

    sick_worker_name = None
    workers = []
    for i in range(2):
        w = Worker(
            env, Machine(env, f"m{i}", cores=2), master, cores=2,
            connect_latency=0.0, name=f"w{i}",
        )
        workers.append(w)
    sick_worker_name = "w1"

    # 12 normal tasks (100 s) + 1 that takes 100x longer on the sick worker.
    executor = straggler_executor(100.0, 10_000.0, sick_worker_name)
    for _ in range(13):
        master.submit(Task(executor))
    for w in workers:
        env.process(w.run())

    results = []

    def collector(env):
        for _ in range(13):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run(until=50 * HOUR)
    assert len(results) == 13
    assert all(r.succeeded for r in results)
    # At least one straggler was aborted and re-run.
    assert master.tasks_aborted >= 1
    assert master.tasks_requeued >= 1
    # The rescued task's wall time is far below the sick-worker runtime,
    # i.e. the whole workload finished long before 10,000 s + queueing.
    assert max(r.finished for r in results) < 5_000.0


def test_fast_abort_spares_healthy_tasks():
    env = Environment()
    master = Master(env)
    master.enable_fast_abort(multiplier=3.0, check_interval=30.0, min_samples=3)
    for _ in range(8):
        master.submit(Task(timed_executor(100.0)))
    worker = Worker(env, Machine(env, "m0", cores=2), master, cores=2, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(8):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert master.tasks_aborted == 0
    assert master.tasks_requeued == 0
    assert len(results) == 8


def test_no_aborts_without_enough_samples():
    env = Environment()
    master = Master(env)
    master.enable_fast_abort(multiplier=2.0, check_interval=10.0, min_samples=50)
    master.submit(Task(timed_executor(5_000.0)))  # a lone long task
    worker = Worker(env, Machine(env, "m0", cores=1), master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    # With no runtime statistics the monitor never fires.
    assert master.tasks_aborted == 0
    assert results[0].succeeded


def test_lobster_config_enables_fast_abort():
    from repro.analysis import simulation_code
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig

    env = Environment()
    services = Services.default(env)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="mc",
                code=simulation_code(intrinsic_failure_rate=0.0),
                n_events=2_000,
                events_per_tasklet=500,
                tasklets_per_task=2,
            )
        ],
        fast_abort_multiplier=4.0,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    assert run.master.fast_abort_multiplier == 4.0
    with pytest.raises(ValueError):
        LobsterConfig(workflows=cfg.workflows, fast_abort_multiplier=1.0)
