"""Tests for storage: WAN, XrootD federation, Chirp server, SE."""

import pytest

from repro.desim import Environment
from repro.storage import (
    ChirpError,
    ChirpServer,
    OutageWindow,
    StorageElement,
    StoredFile,
    WideAreaNetwork,
    XrootdError,
    XrootdFederation,
)

MB = 1_000_000.0
GBIT = 125_000_000.0


# ---------------------------------------------------------------- WAN
def test_outage_window_validation():
    with pytest.raises(ValueError):
        OutageWindow(10, 10)
    w = OutageWindow(10, 20)
    assert w.covers(10) and w.covers(19.9) and not w.covers(20)


def test_wan_is_out_during_window():
    env = Environment()
    wan = WideAreaNetwork(env, outages=[OutageWindow(100, 200)])
    assert not wan.is_out(50)
    assert wan.is_out(150)
    assert not wan.is_out(250)


def test_wan_rejects_overlapping_outages():
    env = Environment()
    with pytest.raises(ValueError):
        WideAreaNetwork(env, outages=[OutageWindow(0, 100), OutageWindow(50, 150)])


# ---------------------------------------------------------------- XrootD
def test_xrootd_open_and_read():
    env = Environment()
    wan = WideAreaNetwork(env, bandwidth=100 * MB)
    fed = XrootdFederation(env, wan, redirect_latency=2.0)
    log = []

    def proc(env):
        stream = yield from fed.open("/store/data/f.root")
        elapsed = yield from stream.read(100 * MB)
        stream.close()
        log.append((env.now, elapsed))

    env.process(proc(env))
    env.run()
    # 2 s redirect + 1 s read.
    assert log == [(pytest.approx(3.0), pytest.approx(1.0))]
    assert fed.opens == 1
    assert fed.volume_by_site["T3_US_NotreDame"] == 100 * MB


def test_xrootd_open_fails_during_outage():
    env = Environment()
    wan = WideAreaNetwork(env, outages=[OutageWindow(0, 1000)])
    fed = XrootdFederation(env, wan, redirect_latency=1.0, error_latency=10.0)
    errors = []

    def proc(env):
        try:
            yield from fed.open("/store/x.root")
        except XrootdError:
            errors.append(env.now)

    env.process(proc(env))
    env.run(until=2000)
    assert errors == [pytest.approx(11.0)]
    assert fed.errors == 1


def test_xrootd_read_fails_when_outage_begins_midstream():
    env = Environment()
    wan = WideAreaNetwork(
        env, bandwidth=10 * MB, outages=[OutageWindow(5.0, 500.0)]
    )
    fed = XrootdFederation(env, wan, redirect_latency=0.0, error_latency=5.0)
    outcome = []

    def proc(env):
        stream = yield from fed.open("/store/y.root")
        try:
            yield from stream.read(1000 * MB)  # would take 100 s
        except XrootdError:
            outcome.append(env.now)

    env.process(proc(env))
    env.run(until=2000)
    # Outage at t=5, client times out error_latency later.
    assert outcome == [pytest.approx(10.0)]


def test_xrootd_read_unaffected_by_past_outage():
    env = Environment()
    wan = WideAreaNetwork(env, bandwidth=100 * MB, outages=[OutageWindow(1, 2)])
    fed = XrootdFederation(env, wan, redirect_latency=0.0)
    done = []

    def proc(env):
        yield env.timeout(10)
        stream = yield from fed.open("/store/z.root")
        yield from stream.read(100 * MB)
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(11.0)]


def test_xrootd_top_consumers():
    env = Environment()
    wan = WideAreaNetwork(env)
    fed = XrootdFederation(env, wan)
    fed.record_volume("siteA", 100.0)
    fed.record_volume("siteB", 300.0)
    fed.record_volume("siteC", 200.0)
    top = fed.top_consumers(2)
    assert top == [("siteB", 300.0), ("siteC", 200.0)]


def test_xrootd_closed_stream_rejects_read():
    env = Environment()
    wan = WideAreaNetwork(env)
    fed = XrootdFederation(env, wan, redirect_latency=0.0)
    caught = []

    def proc(env):
        stream = yield from fed.open("/store/a.root")
        stream.close()
        try:
            yield from stream.read(10.0)
        except XrootdError:
            caught.append(True)

    env.process(proc(env))
    env.run()
    assert caught == [True]


# ---------------------------------------------------------------- Chirp
def test_chirp_put_duration():
    env = Environment()
    chirp = ChirpServer(env, bandwidth=100 * MB, accept_latency=0.0)
    done = []

    def proc(env):
        elapsed = yield from chirp.put(100 * MB)
        done.append(elapsed)

    env.process(proc(env))
    env.run()
    assert done == [pytest.approx(1.0)]
    assert chirp.bytes_in == 100 * MB
    assert chirp.transfers == 1


def test_chirp_bounded_connections_serialise():
    env = Environment()
    chirp = ChirpServer(
        env, bandwidth=100 * MB, max_connections=1, accept_latency=0.0
    )
    done = []

    def proc(env, tag):
        yield from chirp.put(100 * MB)
        done.append((tag, env.now))

    env.process(proc(env, "a"))
    env.process(proc(env, "b"))
    env.run()
    # One at a time: finish at 1 s and 2 s.
    times = sorted(t for _, t in done)
    assert times == [pytest.approx(1.0), pytest.approx(2.0)]


def test_chirp_queue_timeout_raises():
    env = Environment()
    chirp = ChirpServer(
        env,
        bandwidth=1 * MB,
        max_connections=1,
        accept_latency=0.0,
        queue_timeout=10.0,
    )
    outcome = []

    def hog(env):
        yield from chirp.put(1000 * MB)  # 1000 s

    def victim(env):
        yield env.timeout(1)
        try:
            yield from chirp.put(1 * MB)
        except ChirpError:
            outcome.append(env.now)

    env.process(hog(env))
    env.process(victim(env))
    env.run(until=2000)
    assert outcome == [pytest.approx(11.0)]
    assert chirp.failures == 1


def test_chirp_get_accounts_outbound():
    env = Environment()
    chirp = ChirpServer(env, bandwidth=100 * MB, accept_latency=0.0)

    def proc(env):
        yield from chirp.get(50 * MB)

    env.process(proc(env))
    env.run()
    assert chirp.bytes_out == 50 * MB


def test_chirp_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ChirpServer(env, max_connections=0)
    with pytest.raises(ValueError):
        ChirpServer(env, queue_timeout=0)


# ---------------------------------------------------------------- SE
def test_se_store_stat_delete():
    se = StorageElement()
    f = StoredFile("/store/user/x/out1.root", 1000.0)
    se.store(f)
    assert se.exists(f.name)
    assert se.stat(f.name).size_bytes == 1000.0
    assert se.used_bytes == 1000.0
    se.delete(f.name)
    assert not se.exists(f.name)
    with pytest.raises(FileNotFoundError):
        se.stat(f.name)


def test_se_rejects_duplicates_and_overflow():
    se = StorageElement(capacity_bytes=1500.0)
    se.store(StoredFile("/a", 1000.0))
    with pytest.raises(ValueError):
        se.store(StoredFile("/a", 1.0))
    with pytest.raises(IOError):
        se.store(StoredFile("/b", 1000.0))


def test_se_listdir_prefix():
    se = StorageElement()
    se.store(StoredFile("/store/user/wf1/out1.root", 1.0))
    se.store(StoredFile("/store/user/wf1/out2.root", 1.0))
    se.store(StoredFile("/store/user/wf2/out1.root", 1.0))
    assert len(se.listdir("/store/user/wf1/")) == 2
    assert len(se.listdir()) == 3


def test_stored_file_validation():
    with pytest.raises(ValueError):
        StoredFile("/x", -1.0)
