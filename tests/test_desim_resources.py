"""Tests for Resource, Container, Store primitives."""

import pytest

from repro.desim import (
    Container,
    Environment,
    FilterStore,
    Interrupt,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)


# ---------------------------------------------------------------- Resource
def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    holders = []

    def user(env, tag):
        with res.request() as req:
            yield req
            holders.append((tag, env.now))
            yield env.timeout(10)

    for tag in range(3):
        env.process(user(env, tag))
    env.run()
    # Two enter at t=0, the third only once a slot frees at t=10.
    assert holders == [(0, 0.0), (1, 0.0), (2, 10.0)]


def test_resource_release_via_context_manager():
    env = Environment()
    res = Resource(env, capacity=1)

    def user(env):
        with res.request() as req:
            yield req
            yield env.timeout(1)

    env.process(user(env))
    env.run()
    assert res.count == 0
    assert res.queue == []


def test_resource_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_cancel_removes_from_queue():
    env = Environment()
    res = Resource(env, capacity=1)
    got = []

    def holder(env):
        with res.request() as req:
            yield req
            yield env.timeout(100)

    def impatient(env):
        req = res.request()
        result = yield req | env.timeout(5)
        if req not in result:
            req.cancel()
            got.append("gave-up")

    env.process(holder(env))
    env.process(impatient(env))
    env.run(until=50)
    assert got == ["gave-up"]
    assert len(res.queue) == 0


def test_priority_resource_orders_waiters():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with res.request(priority=0) as req:
            yield req
            yield env.timeout(10)

    def waiter(env, prio, tag):
        yield env.timeout(1)  # ensure holder got it first
        with res.request(priority=prio) as req:
            yield req
            order.append(tag)
            yield env.timeout(1)

    env.process(holder(env))
    env.process(waiter(env, 5, "low"))
    env.process(waiter(env, 1, "high"))
    env.run()
    assert order == ["high", "low"]


def test_preemptive_resource_evicts_lower_priority():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def victim(env):
        with res.request(priority=10) as req:
            yield req
            try:
                yield env.timeout(100)
                log.append("victim-finished")
            except Interrupt as i:
                assert isinstance(i.cause, Preempted)
                log.append(("victim-preempted", env.now))

    def bully(env):
        yield env.timeout(5)
        with res.request(priority=0, preempt=True) as req:
            yield req
            log.append(("bully-running", env.now))
            yield env.timeout(1)

    env.process(victim(env))
    env.process(bully(env))
    env.run()
    assert ("victim-preempted", 5.0) in log
    assert ("bully-running", 5.0) in log
    assert "victim-finished" not in log


def test_preemptive_resource_no_preempt_flag_waits():
    env = Environment()
    res = PreemptiveResource(env, capacity=1)
    log = []

    def victim(env):
        with res.request(priority=10) as req:
            yield req
            yield env.timeout(20)
            log.append("victim-finished")

    def polite(env):
        yield env.timeout(5)
        with res.request(priority=0, preempt=False) as req:
            yield req
            log.append(("polite-running", env.now))

    env.process(victim(env))
    env.process(polite(env))
    env.run()
    assert log == ["victim-finished", ("polite-running", 20.0)]


# ---------------------------------------------------------------- Container
def test_container_put_get():
    env = Environment()
    tank = Container(env, capacity=100, init=10)
    levels = []

    def producer(env):
        yield env.timeout(1)
        yield tank.put(50)
        levels.append(("after-put", tank.level))

    def consumer(env):
        yield tank.get(40)  # must wait for producer
        levels.append(("after-get", tank.level, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("after-get", 20.0, 1.0) in levels


def test_container_blocks_put_over_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    done = []

    def producer(env):
        yield tank.put(5)
        done.append(env.now)

    def consumer(env):
        yield env.timeout(3)
        yield tank.get(5)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert done == [3.0]


def test_container_rejects_bad_amounts():
    env = Environment()
    tank = Container(env, capacity=10)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)


# ---------------------------------------------------------------- Store
def test_store_fifo():
    env = Environment()
    store = Store(env)
    got = []

    def producer(env):
        for item in "abc":
            yield store.put(item)
            yield env.timeout(1)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            got.append((item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert [g[0] for g in got] == ["a", "b", "c"]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("x")
        log.append(("put-x", env.now))
        yield store.put("y")
        log.append(("put-y", env.now))

    def consumer(env):
        yield env.timeout(5)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert ("put-y", 5.0) in log


def test_store_get_blocks_until_item():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((item, env.now))

    def producer(env):
        yield env.timeout(4)
        yield store.put(123)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [(123, 4.0)]


def test_filter_store_selects_matching():
    env = Environment()
    store = FilterStore(env)
    got = []

    def consumer(env):
        item = yield store.get(lambda x: x % 2 == 0)
        got.append(item)

    def producer(env):
        yield store.put(1)
        yield store.put(3)
        yield env.timeout(1)
        yield store.put(4)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert got == [4]
    assert store.items == [1, 3]


def test_priority_store_yields_smallest():
    env = Environment()
    store = PriorityStore(env)
    got = []

    def producer(env):
        for v in [5, 1, 3]:
            yield store.put(v)

    def consumer(env):
        yield env.timeout(1)
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert got == [1, 3, 5]
