"""End-to-end integration tests: full Lobster runs on the simulated cluster."""

import pytest

from repro.analysis import data_processing_code, simulation_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    LobsterConfig,
    LobsterRun,
    MergeMode,
    Services,
    WorkflowConfig,
)
from repro.dbs import DBS, synthetic_dataset
from repro.desim import Environment
from repro.distributions import ConstantHazardEviction, NoEviction
from repro.storage.wan import OutageWindow
from repro.wq import Foreman

HOUR = 3600.0
GB = 1_000_000_000.0


def run_lobster(
    cfg,
    services_kw=None,
    n_machines=10,
    cores=4,
    n_workers=10,
    eviction=None,
    until=200 * HOUR,
    dbs=None,
    foremen=0,
    env=None,
):
    env = env or Environment()
    services = Services.default(env, dbs=dbs, **(services_kw or {}))
    run = LobsterRun(env, cfg, services)
    if foremen:
        run.foremen = [Foreman(env, run.master) for _ in range(foremen)]
    run.start()
    machines = MachinePool.homogeneous(env, n_machines, cores=cores)
    pool = CondorPool(env, machines, eviction=eviction or NoEviction(), seed=3)
    pool.submit(
        GlideinRequest(
            n_workers=n_workers, cores_per_worker=cores, start_interval=1.0
        ),
        run.worker_payload,
    )
    summary = env.run(until=run.process)
    pool.drain()
    return env, run, pool, summary


def mc_config(n_events=10_000, **wf_kw):
    defaults = dict(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=n_events,
        events_per_tasklet=500,
        tasklets_per_task=4,
    )
    defaults.update(wf_kw)
    return LobsterConfig(
        workflows=[WorkflowConfig(**defaults)], cores_per_worker=4,
        bad_machine_rate=0.0,
    )


def test_mc_workflow_completes():
    env, run, pool, summary = run_lobster(mc_config())
    wf = summary["workflows"]["mc"]
    assert wf["tasklets_done"] == wf["tasklets"] == 20
    assert summary["tasks_failed"] == 0
    assert run.finished_at is not None


def test_mc_workflow_produces_merged_outputs():
    cfg = mc_config(merge_target_bytes=0.3 * GB)
    env, run, pool, summary = run_lobster(cfg)
    wf = summary["workflows"]["mc"]
    assert wf["merged_files"] >= 1
    state = run.workflows["mc"]
    # Merged files live in the SE; small outputs were cleaned up.
    for merged in state.merge.merged_files:
        assert run.services.se.exists(merged.name)
    assert state.merge.complete


def test_data_workflow_with_dataset():
    dbs = DBS()
    ds = synthetic_dataset(n_files=10, events_per_file=2000, lumis_per_file=20)
    dbs.register(ds)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset=ds.name,
        lumis_per_tasklet=5,
        tasklets_per_task=4,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, pool, summary = run_lobster(cfg, dbs=dbs)
    assert summary["workflows"]["data"]["tasklets_done"] == 40
    # Data was streamed over the WAN.
    assert run.services.wan.bytes_moved > 0
    assert run.services.xrootd.opens > 0


def test_run_with_evictions_still_completes():
    env, run, pool, summary = run_lobster(
        mc_config(),
        eviction=ConstantHazardEviction(0.5),
    )
    assert summary["workflows"]["mc"]["tasklets_done"] == 20
    # Some tasks were requeued along the way (evictions happened), or the
    # run got lucky — at minimum the trace recorded spans.
    assert len(pool.trace) > 0


def test_run_survives_wan_outage():
    dbs = DBS()
    ds = synthetic_dataset(n_files=8, events_per_file=2000, lumis_per_file=20)
    dbs.register(ds)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(cpu_per_event=0.5, intrinsic_failure_rate=0.0),
        dataset=ds.name,
        lumis_per_tasklet=10,
        tasklets_per_task=2,
        max_retries=50,
    )
    cfg = LobsterConfig(workflows=[wf], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, pool, summary = run_lobster(
        cfg,
        dbs=dbs,
        services_kw={"outages": [OutageWindow(600.0, 1200.0)]},
    )
    assert summary["workflows"]["data"]["tasklets_done"] == 16
    # The outage produced failures that were retried.
    assert summary["tasks_failed"] > 0
    assert run.metrics.n_failed() > 0


def test_sequential_merge_mode():
    cfg = mc_config(merge_mode=MergeMode.SEQUENTIAL, merge_target_bytes=0.3 * GB)
    env, run, pool, summary = run_lobster(cfg)
    wf = summary["workflows"]["mc"]
    assert wf["merged_files"] >= 1
    state = run.workflows["mc"]
    # Sequential: every merge finished after every analysis task.
    analysis_finish = max(
        r.finished for r in run.metrics.records if r.category == "analysis"
    )
    merge_starts = [
        r.started for r in run.metrics.records if r.category == "merge"
    ]
    assert all(s >= analysis_finish for s in merge_starts)


def test_hadoop_merge_mode():
    cfg = mc_config(merge_mode=MergeMode.HADOOP, merge_target_bytes=0.3 * GB)
    env, run, pool, summary = run_lobster(cfg, services_kw={"with_hadoop": True})
    state = run.workflows["mc"]
    assert len(state.merge.merged_files) >= 1
    for merged in state.merge.merged_files:
        assert run.services.hdfs.exists(merged.name)


def test_interleaved_merges_overlap_processing():
    cfg = mc_config(
        n_events=40_000, merge_mode=MergeMode.INTERLEAVED,
        merge_target_bytes=0.2 * GB,
    )
    env, run, pool, summary = run_lobster(cfg, n_machines=5, n_workers=5)
    analysis_finish = max(
        r.finished for r in run.metrics.records if r.category == "analysis"
    )
    merge_starts = [r.started for r in run.metrics.records if r.category == "merge"]
    assert merge_starts, "interleaved mode should have created merge tasks"
    # At least one merge ran before processing completed.
    assert min(merge_starts) < analysis_finish


def test_foremen_relay_workload():
    cfg = mc_config()
    env, run, pool, summary = run_lobster(cfg, foremen=2)
    assert summary["workflows"]["mc"]["tasklets_done"] == 20
    assert sum(f.tasks_relayed for f in run.foremen) >= 5


def test_metrics_and_db_are_populated():
    cfg = mc_config()
    env, run, pool, summary = run_lobster(cfg)
    assert run.metrics.n_tasks == run.db.task_count()
    assert run.db.tasklet_state_counts("mc").get("done") == 20
    totals = run.db.segment_totals()
    assert totals.get("cpu", 0) > 0
    b = run.metrics.runtime_breakdown()
    assert b.task_cpu > 0
    assert 0 < run.metrics.overall_efficiency() <= 1.0


def test_multiple_workflows_share_pool():
    wf1 = WorkflowConfig(
        label="mc1",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4000,
        events_per_tasklet=500,
        tasklets_per_task=2,
    )
    wf2 = WorkflowConfig(
        label="mc2",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=4000,
        events_per_tasklet=500,
        tasklets_per_task=2,
    )
    cfg = LobsterConfig(workflows=[wf1, wf2], cores_per_worker=4, bad_machine_rate=0.0)
    env, run, pool, summary = run_lobster(cfg)
    assert summary["workflows"]["mc1"]["tasklets_done"] == 8
    assert summary["workflows"]["mc2"]["tasklets_done"] == 8


def test_run_cannot_start_twice():
    env = Environment()
    services = Services.default(env)
    run = LobsterRun(env, mc_config(), services)
    run.start()
    with pytest.raises(RuntimeError):
        run.start()
