"""Tests for lumi masks and masked dataset decomposition."""

import pytest

from repro.dbs import LumiMask, LumiSection, synthetic_dataset


def test_mask_membership():
    mask = LumiMask({1: [[1, 10], [20, 30]], 2: [[5, 5]]})
    assert LumiSection(1, 1) in mask
    assert LumiSection(1, 10) in mask
    assert LumiSection(1, 15) not in mask
    assert LumiSection(1, 25) in mask
    assert LumiSection(2, 5) in mask
    assert LumiSection(3, 1) not in mask


def test_mask_merges_overlapping_ranges():
    mask = LumiMask({1: [[1, 10], [8, 15], [16, 20]]})
    assert mask.n_lumis() == 20
    assert LumiSection(1, 12) in mask


def test_mask_validation():
    with pytest.raises(ValueError):
        LumiMask({1: [[5, 2]]})
    with pytest.raises(ValueError):
        LumiMask({1: [[0, 2]]})
    with pytest.raises(ValueError):
        LumiMask({1: [[1, 2, 3]]})


def test_mask_json_roundtrip():
    mask = LumiMask({190001: [[1, 50]], 190002: [[10, 20], [30, 40]]})
    again = LumiMask.from_json(mask.to_json())
    assert again.runs == mask.runs
    assert again.n_lumis() == mask.n_lumis()


def test_mask_from_json_string_keys():
    mask = LumiMask.from_json('{"42": [[1, 3]]}')
    assert LumiSection(42, 2) in mask


def test_mask_from_lumis():
    lumis = [LumiSection(1, 1), LumiSection(1, 2), LumiSection(1, 3), LumiSection(2, 7)]
    mask = LumiMask.from_lumis(lumis)
    assert mask.n_lumis() == 4
    assert mask.select(lumis) == lumis
    assert LumiSection(1, 4) not in mask


def test_mask_union_and_intersect():
    a = LumiMask({1: [[1, 10]]})
    b = LumiMask({1: [[5, 20]], 2: [[1, 2]]})
    u = a.union(b)
    assert u.n_lumis() == 22
    i = a.intersect(b)
    assert i.n_lumis() == 6  # lumis 5..10 of run 1
    assert i.runs == [1]


def test_filter_dataset_prorates_sizes():
    ds = synthetic_dataset(
        n_files=4, events_per_file=1000, lumis_per_file=10, files_per_run=2,
        size_jitter=0.0,
    )
    # Keep only the first half of every file's lumis in the first run.
    run = ds.runs[0]
    mask = LumiMask({run: [[1, 1000]]})
    filtered = mask.filter_dataset(ds)
    assert len(filtered) == 2  # the two files of run 1
    assert filtered.total_events == 2000
    # Half-file selection prorates events and bytes.
    half = LumiMask({run: [[1, 5]]})
    filtered = half.filter_dataset(ds)
    assert len(filtered) == 1  # only the file covering lumis 1-10
    f = filtered.files[0]
    assert f.n_events == 500
    assert len(f.lumis) == 5


def test_filter_dataset_empty_selection():
    ds = synthetic_dataset(n_files=2)
    mask = LumiMask({999999: [[1, 10]]})
    filtered = mask.filter_dataset(ds)
    assert len(filtered) == 0


def test_masked_dataset_feeds_tasklets():
    from repro.core import TaskletStore

    ds = synthetic_dataset(n_files=4, events_per_file=1000, lumis_per_file=10, files_per_run=2)
    run = ds.runs[0]
    mask = LumiMask({run: [[1, 5]]})
    filtered = mask.filter_dataset(ds)
    store = TaskletStore.from_dataset("masked", filtered, lumis_per_tasklet=5)
    assert store.total == 1
    assert next(iter(store)).n_events == 500
