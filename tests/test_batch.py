"""Tests for the opportunistic batch substrate: machines, pool, traces."""

import numpy as np
import pytest

from repro.batch import (
    AvailabilityTrace,
    CondorPool,
    GlideinRequest,
    Machine,
    MachinePool,
    WorkerSpan,
    synthetic_availability_trace,
)
from repro.batch.condor import Eviction
from repro.desim import Environment, Interrupt
from repro.distributions import ConstantHazardEviction, NoEviction

HOUR = 3600.0


# ---------------------------------------------------------------- machines
def test_machine_claim_release():
    env = Environment()
    m = Machine(env, "n0", cores=8)
    m.claim(5)
    assert m.free_cores == 3
    m.release(2)
    assert m.free_cores == 5
    with pytest.raises(ValueError):
        m.claim(6)


def test_machine_pool_place_first_fit():
    env = Environment()
    pool = MachinePool.homogeneous(env, 3, cores=4)
    assert pool.total_cores == 12
    m1 = pool.place(4)
    m1.claim(4)
    m2 = pool.place(4)
    assert m2 is not m1
    assert pool.place(5) is None


def test_machine_validates_cores():
    env = Environment()
    with pytest.raises(ValueError):
        Machine(env, "bad", cores=0)


# ---------------------------------------------------------------- traces
def test_worker_span_duration():
    s = WorkerSpan("w1", 10.0, 25.0)
    assert s.duration == 15.0
    with pytest.raises(ValueError):
        WorkerSpan("w2", 10.0, 5.0)


def test_trace_durations_and_filter():
    t = AvailabilityTrace()
    t.record("a", 0, 100, "evicted")
    t.record("b", 0, 50, "completed")
    assert list(t.durations()) == [100.0, 50.0]
    assert list(t.durations(only_evictions=True)) == [100.0]


def test_trace_merge():
    t1 = AvailabilityTrace([WorkerSpan("a", 0, 10)])
    t2 = AvailabilityTrace([WorkerSpan("b", 0, 20)])
    merged = t1.merge(t2)
    assert len(merged) == 2


def test_synthetic_trace_has_decreasing_hazard():
    trace = synthetic_availability_trace(n_workers=5000, seed=1)
    starts, probs, errs = trace.eviction_curve(bin_width=HOUR, max_time=12 * HOUR)
    # Hazard in the first hour clearly exceeds hazard at 8-10 hours.
    assert probs[0] > probs[8]
    assert np.all(probs >= 0) and np.all(probs <= 1)
    assert np.all(errs >= 0)


def test_synthetic_trace_reproducible():
    a = synthetic_availability_trace(n_workers=100, seed=5)
    b = synthetic_availability_trace(n_workers=100, seed=5)
    assert np.allclose(a.durations(), b.durations())


def test_synthetic_trace_caps_at_walltime():
    trace = synthetic_availability_trace(n_workers=2000, seed=0, walltime=24 * HOUR)
    assert trace.durations().max() <= 24 * HOUR + 1e-6


# ---------------------------------------------------------------- condor pool
def _worker_payload(log):
    def factory(slot):
        def run():
            try:
                yield slot.pool.env.timeout(10 * HOUR)
                log.append(("finished", slot.pool.env.now))
            except Interrupt as i:
                assert isinstance(i.cause, Eviction)
                log.append(("evicted", slot.pool.env.now))

        return run()

    return factory


def test_pool_starts_workers_and_occupancy_rises():
    env = Environment()
    machines = MachinePool.homogeneous(env, 10, cores=8)
    pool = CondorPool(env, machines, eviction=NoEviction())
    log = []
    pool.submit(GlideinRequest(n_workers=5, cores_per_worker=8, start_interval=0.0), _worker_payload(log))
    env.run(until=1 * HOUR)
    assert pool.active_workers == 5


def test_pool_workers_complete_without_eviction():
    env = Environment()
    machines = MachinePool.homogeneous(env, 5, cores=8)
    pool = CondorPool(env, machines, eviction=NoEviction())
    log = []
    pool.submit(GlideinRequest(n_workers=3, start_interval=0.0), _worker_payload(log))
    env.run()
    assert [e[0] for e in log] == ["finished"] * 3
    assert pool.active_workers == 0
    assert all(s.reason == "completed" for s in pool.trace.spans)


def test_pool_evicts_and_resubmits():
    env = Environment()
    machines = MachinePool.homogeneous(env, 2, cores=8)
    # Aggressive eviction: ~mean 30 min survival.
    pool = CondorPool(
        env, machines, eviction=ConstantHazardEviction(0.9, bin_width=HOUR), seed=3
    )
    log = []
    pool.submit(GlideinRequest(n_workers=2, start_interval=0.0), _worker_payload(log))
    env.run(until=40 * HOUR)
    evictions = [e for e in log if e[0] == "evicted"]
    assert len(evictions) >= 2
    assert pool.total_evictions == len(evictions)
    # Resubmission keeps the pool occupied.
    assert pool.active_workers == 2


def test_pool_eviction_recorded_in_trace():
    env = Environment()
    machines = MachinePool.homogeneous(env, 1, cores=8)
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.9), seed=1)
    log = []
    req = GlideinRequest(n_workers=1, resubmit=False, start_interval=0.0)
    pool.submit(req, _worker_payload(log))
    env.run()
    assert len(pool.trace) == 1
    span = pool.trace.spans[0]
    assert span.reason in ("evicted", "completed")
    assert span.duration > 0


def test_pool_queues_when_machines_full():
    env = Environment()
    machines = MachinePool.homogeneous(env, 1, cores=8)  # room for 1 worker

    done = []

    def quick(slot):
        def run():
            yield slot.pool.env.timeout(100)
            done.append(slot.pool.env.now)

        return run()

    pool = CondorPool(env, machines, eviction=NoEviction())
    pool.submit(GlideinRequest(n_workers=3, start_interval=0.0), quick)
    env.run()
    # Workers run one at a time: completions at 100, 200, 300.
    assert done == [100.0, 200.0, 300.0]


def test_pool_drain_stops_resubmission():
    env = Environment()
    machines = MachinePool.homogeneous(env, 2, cores=8)
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.9), seed=2)
    log = []
    pool.submit(GlideinRequest(n_workers=2, start_interval=0.0), _worker_payload(log))

    def stopper(env):
        yield env.timeout(5 * HOUR)
        pool.drain()

    env.process(stopper(env))
    env.run(until=60 * HOUR)
    assert pool.active_workers == 0


def test_request_validation():
    with pytest.raises(ValueError):
        GlideinRequest(n_workers=0)
    with pytest.raises(ValueError):
        GlideinRequest(n_workers=1, cores_per_worker=0)
    with pytest.raises(ValueError):
        GlideinRequest(n_workers=1, start_interval=-1)


def test_request_cancel_stops_starts():
    env = Environment()
    machines = MachinePool.homogeneous(env, 10, cores=8)
    pool = CondorPool(env, machines, eviction=NoEviction())
    log = []
    req = GlideinRequest(n_workers=100, start_interval=60.0)
    pool.submit(req, _worker_payload(log))

    def canceller(env):
        yield env.timeout(5 * 60.0)
        req.cancel()

    env.process(canceller(env))
    env.run(until=11 * HOUR)
    # Far fewer than 100 workers ever started.
    assert 0 < len(pool.trace.spans) + pool.active_workers < 30


def test_trace_csv_roundtrip(tmp_path):
    trace = synthetic_availability_trace(n_workers=50, seed=3)
    path = str(tmp_path / "trace.csv")
    trace.to_csv(path)
    again = AvailabilityTrace.from_csv(path)
    assert len(again) == 50
    assert np.allclose(sorted(again.durations()), sorted(trace.durations()))
    assert {s.reason for s in again.spans} == {s.reason for s in trace.spans}
