"""Eviction racing the worker's task lifecycle.

The paper's opportunistic pool can evict a worker at *any* point of a
task's life: while Work Queue is still staging inputs in, while outputs
are being staged back, or in the same instant the master decides to
fast-abort the task as a straggler.  Each race must end with the task
requeued exactly once and eventually completed elsewhere.
"""

import pytest

from repro.analysis.report import ExitCode
from repro.batch.machines import Machine
from repro.desim import Environment
from repro.wq import Master, RecoveryPolicy, Task, TaskState, Worker

GB = 1e9


def sleep_executor(duration, exit_code=ExitCode.SUCCESS):
    def executor(worker, task):
        yield worker.env.timeout(duration)
        return exit_code, {"cpu": duration}, None

    return executor


def _run_with_late_worker(env, master, late_at=500.0):
    """A second worker appears at *late_at* and finishes the requeued
    task; returns the collected results."""

    def late_worker(env):
        yield env.timeout(late_at)
        m2 = Machine(env, "m-late", cores=1)
        w2 = Worker(env, m2, master, cores=1, connect_latency=0.0)
        yield env.process(w2.run())

    env.process(late_worker(env))
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    return results


def test_eviction_during_wq_stage_in():
    env = Environment()
    master = Master(env, recovery=RecoveryPolicy(backoff_base=0.0))
    # 12.5 GB over the machine's 1 Gbit NIC: ~100 s of stage-in.
    task = Task(sleep_executor(10.0), wq_input_bytes=12.5 * GB, sandbox_bytes=0.0)
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    proc = env.process(worker.run())

    def evictor(env):
        yield env.timeout(10.0)  # mid stage-in
        proc.interrupt("preempted")

    env.process(evictor(env))
    results = _run_with_late_worker(env, master)

    assert worker.evicted
    assert master.tasks_requeued == 1
    assert task.attempts == 1
    assert task.lost_time == pytest.approx(10.0, abs=0.5)
    assert len(results) == 1 and results[0].succeeded
    # The retry re-paid the full stage-in on the late worker.
    assert results[0].wq_stage_in == pytest.approx(100.0, rel=0.05)


def test_eviction_during_wq_stage_out():
    env = Environment()
    master = Master(env, recovery=RecoveryPolicy(backoff_base=0.0))
    # Quick compute, huge output: the task spends ~100 s in stage-out.
    task = Task(sleep_executor(1.0), wq_output_bytes=12.5 * GB, sandbox_bytes=0.0)
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    proc = env.process(worker.run())

    def evictor(env):
        yield env.timeout(50.0)  # compute done at ~1 s; mid stage-out
        proc.interrupt("preempted")

    env.process(evictor(env))
    results = _run_with_late_worker(env, master)

    assert worker.evicted
    assert worker.tasks_done == 0  # never reported back
    assert master.tasks_requeued == 1
    assert task.attempts == 1
    assert task.lost_time == pytest.approx(50.0, abs=0.5)
    assert len(results) == 1 and results[0].succeeded
    assert results[0].wq_stage_out == pytest.approx(100.0, rel=0.05)


def test_eviction_racing_fast_abort():
    """Abort event and eviction interrupt land in the same instant: the
    task must be requeued exactly once, not twice."""
    env = Environment()
    master = Master(env, recovery=RecoveryPolicy(backoff_base=0.0))
    task = Task(sleep_executor(1000.0))
    master.submit(task)
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    proc = env.process(worker.run())

    def racer(env):
        yield env.timeout(100.0)
        # The master flags the task a straggler …
        for running, (started, abort) in list(master._running_registry.items()):
            abort.succeed()
        # … and the batch system preempts the worker in the same instant.
        proc.interrupt("preempted")

    env.process(racer(env))
    results = _run_with_late_worker(env, master, late_at=200.0)

    assert worker.evicted
    assert master.tasks_requeued == 1
    assert master.tasks_running == 0
    assert task.attempts == 1
    assert len(results) == 1 and results[0].succeeded
    assert results[0].task is task
    assert task.state == TaskState.DONE
