"""Tests for the Work Queue framework: master, foreman, worker."""

import pytest

from repro.analysis.report import ExitCode
from repro.batch.machines import Machine, MachinePool
from repro.batch import CondorPool, GlideinRequest
from repro.desim import Environment
from repro.distributions import ConstantHazardEviction
from repro.wq import Foreman, Master, Task, TaskState, Worker

GBIT = 125_000_000.0
HOUR = 3600.0


def sleep_executor(duration, exit_code=ExitCode.SUCCESS):
    """An executor that burns *duration* seconds of simulated time."""

    def executor(worker, task):
        yield worker.env.timeout(duration)
        return exit_code, {"cpu": duration}, None

    return executor


def run_simple(n_tasks, n_workers=2, cores=2, duration=60.0, until=None, **task_kw):
    env = Environment()
    master = Master(env)
    for _ in range(n_tasks):
        master.submit(Task(sleep_executor(duration), **task_kw))
    for i in range(n_workers):
        machine = Machine(env, f"m{i}", cores=cores)
        worker = Worker(env, machine, master, cores=cores, connect_latency=0.0)
        env.process(worker.run())

    results = []

    def collector(env):
        for _ in range(n_tasks):
            r = yield master.wait()
            results.append(r)
        master.drain()

    env.process(collector(env))
    env.run(until=until)
    return env, master, results


def test_single_task_roundtrip():
    env, master, results = run_simple(1, n_workers=1, cores=1)
    assert len(results) == 1
    r = results[0]
    assert r.succeeded
    assert r.task.state == TaskState.DONE
    assert r.segments["cpu"] == 60.0
    assert r.wall_time >= 60.0
    assert master.tasks_returned == 1


def test_tasks_run_concurrently_across_cores():
    env, master, results = run_simple(4, n_workers=1, cores=4, duration=100.0)
    assert len(results) == 4
    # All four finished at roughly the same time (same worker, 4 cores).
    finishes = [r.finished for r in results]
    assert max(finishes) - min(finishes) < 1.0


def test_more_tasks_than_cores_queue():
    env, master, results = run_simple(4, n_workers=1, cores=2, duration=100.0)
    finishes = sorted(r.finished for r in results)
    # Two waves of two.
    assert finishes[1] < finishes[2]
    assert len(results) == 4


def test_sandbox_transferred_once_per_worker():
    env = Environment()
    master = Master(env, nic_bandwidth=100e6)
    # Sandbox 100 MB: first task pays ~1 s of transfer, second doesn't.
    for _ in range(2):
        master.submit(Task(sleep_executor(10.0), sandbox_bytes=100e6))
    machine = Machine(env, "m0", cores=1, nic_bandwidth=100e6)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(2):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    first, second = sorted(results, key=lambda r: r.finished)
    assert first.wq_stage_in == pytest.approx(1.0)
    assert second.wq_stage_in == 0.0


def test_wq_input_bytes_add_stage_in_time():
    env, master, results = run_simple(
        1, n_workers=1, cores=1, duration=1.0,
        wq_input_bytes=125e6, sandbox_bytes=0.0,
    )
    # Default NICs are 10 Gbit (master) and 1 Gbit (machine):
    # 125 MB over 1 Gbit/s = 1 s (slower hop dominates).
    assert results[0].wq_stage_in == pytest.approx(1.0, rel=0.01)


def test_wq_output_bytes_add_stage_out_time():
    env, master, results = run_simple(
        1, n_workers=1, cores=1, duration=1.0,
        wq_output_bytes=125e6, sandbox_bytes=0.0,
    )
    assert results[0].wq_stage_out == pytest.approx(1.0, rel=0.01)


def test_failed_task_state():
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(5.0, exit_code=ExitCode.APPLICATION_FAILED)))
    machine = Machine(env, "m0", cores=1)
    env.process(Worker(env, machine, master, cores=1, connect_latency=0.0).run())
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert not results[0].succeeded
    assert results[0].task.state == TaskState.FAILED
    # No WQ stage-out for failed tasks.
    assert results[0].wq_stage_out == 0.0


def test_drain_shuts_down_idle_workers():
    env, master, results = run_simple(2, n_workers=2, cores=2, duration=10.0)
    # After drain the simulation ran to completion: no active workers.
    assert master.workers_connected == 0
    assert len(results) == 2


def test_worker_eviction_requeues_running_task():
    env = Environment()
    master = Master(env)
    master.submit(Task(sleep_executor(1000.0)))
    machine = Machine(env, "m0", cores=1)
    worker = Worker(env, machine, master, cores=1, connect_latency=0.0)
    proc = env.process(worker.run())

    def evictor(env):
        yield env.timeout(100.0)
        proc.interrupt("preempted")

    env.process(evictor(env))

    # A second worker appears later and completes the requeued task.
    def late_worker(env):
        yield env.timeout(200.0)
        m2 = Machine(env, "m1", cores=1)
        w2 = Worker(env, m2, master, cores=1, connect_latency=0.0)
        yield env.process(w2.run())

    env.process(late_worker(env))
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert master.tasks_requeued == 1
    assert len(results) == 1
    task = results[0].task
    assert task.attempts == 1
    assert task.lost_time == pytest.approx(100.0)
    assert results[0].succeeded


def test_eviction_while_idle_is_clean():
    env = Environment()
    master = Master(env)
    machine = Machine(env, "m0", cores=2)
    worker = Worker(env, machine, master, cores=2, connect_latency=0.0)
    proc = env.process(worker.run())

    def evictor(env):
        yield env.timeout(50.0)
        proc.interrupt("preempted")

    env.process(evictor(env))
    env.run()
    assert master.tasks_requeued == 0
    assert master.workers_connected == 0
    assert worker.evicted


def test_foreman_relays_tasks():
    env = Environment()
    master = Master(env)
    foreman = Foreman(env, master, buffer_depth=8)
    for _ in range(6):
        master.submit(Task(sleep_executor(30.0), sandbox_bytes=1e6))
    machine = Machine(env, "m0", cores=2)
    worker = Worker(env, machine, foreman, cores=2, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(6):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert len(results) == 6
    assert foreman.tasks_relayed == 6
    assert all(r.succeeded for r in results)


def test_foreman_caches_sandbox():
    env = Environment()
    master = Master(env, nic_bandwidth=100e6)
    foreman = Foreman(env, master, buffer_depth=8)
    for _ in range(3):
        master.submit(Task(sleep_executor(1.0), sandbox_bytes=100e6, sandbox_id="sb"))
    machine = Machine(env, "m0", cores=1, nic_bandwidth=1 * GBIT)
    worker = Worker(env, machine, foreman, cores=1, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(3):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert foreman.has_sandbox("sb")
    assert len(results) == 3


def test_workers_under_condor_with_eviction_complete_workload():
    """End-to-end: condor-pool-managed workers finish despite evictions."""
    env = Environment()
    master = Master(env)
    n_tasks = 30
    for _ in range(n_tasks):
        master.submit(Task(sleep_executor(20 * 60.0)))  # 20-minute tasks
    machines = MachinePool.homogeneous(env, 4, cores=4)
    pool = CondorPool(
        env, machines, eviction=ConstantHazardEviction(0.5), seed=11
    )

    def payload(slot):
        worker = Worker(env, slot.machine, master, cores=4, connect_latency=1.0)
        return worker.run()

    pool.submit(GlideinRequest(n_workers=4, cores_per_worker=4, start_interval=0.0), payload)
    results = []

    def collector(env):
        for _ in range(n_tasks):
            results.append((yield master.wait()))
        master.drain()
        pool.drain()

    env.process(collector(env))
    env.run(until=200 * HOUR)
    assert len(results) == n_tasks
    assert all(r.succeeded for r in results)


def test_task_validation():
    with pytest.raises(ValueError):
        Task(sleep_executor(1.0), sandbox_bytes=-1)
    with pytest.raises(ValueError):
        Worker(Environment(), None, Master(Environment()), cores=0)


def test_foreman_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Foreman(env, Master(env), buffer_depth=0)


def test_worker_crash_requeues_task():
    """An executor bug kills the worker; the task is not lost."""
    env = Environment()
    master = Master(env)
    calls = []

    def flaky_executor(worker, task):
        calls.append(worker.name)
        if len(calls) == 1:
            yield worker.env.timeout(5.0)
            raise RuntimeError("executor bug")
        yield worker.env.timeout(5.0)
        return ExitCode.SUCCESS, {"cpu": 5.0}, None

    master.submit(Task(flaky_executor))
    m1 = Machine(env, "m0", cores=1)
    w1 = Worker(env, m1, master, cores=1, connect_latency=0.0)

    def supervisor(env):
        # The batch system observes the crash (and would record "failed").
        try:
            yield env.process(w1.run())
        except RuntimeError:
            pass

    env.process(supervisor(env))

    def late_worker(env):
        yield env.timeout(60.0)
        w2 = Worker(env, Machine(env, "m1", cores=1), master, cores=1, connect_latency=0.0)
        yield env.process(w2.run())

    env.process(late_worker(env))
    results = []

    def collector(env):
        results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert len(calls) == 2  # ran on both workers
    assert master.tasks_requeued == 1
    assert results[0].succeeded


def test_master_cancel_queued_task():
    env = Environment()
    master = Master(env)
    t1 = Task(sleep_executor(10.0))
    t2 = Task(sleep_executor(10.0))
    master.submit(t1)
    master.submit(t2)
    assert master.cancel(t1) is True
    assert t1.state == "cancelled"
    assert master.ready_count == 1
    # Cancelling twice (or a dispatched task) returns False.
    assert master.cancel(t1) is False


def test_two_level_foreman_hierarchy():
    """Paper: foremen form 'a hierarchy of arbitrary width and depth'."""
    env = Environment()
    master = Master(env)
    top = Foreman(env, master, buffer_depth=8, name="top")
    mid = Foreman(env, top, buffer_depth=4, name="mid")
    assert mid.master is master
    for _ in range(6):
        master.submit(Task(sleep_executor(20.0), sandbox_bytes=1e6))
    machine = Machine(env, "m0", cores=2)
    worker = Worker(env, machine, mid, cores=2, connect_latency=0.0)
    env.process(worker.run())
    results = []

    def collector(env):
        for _ in range(6):
            results.append((yield master.wait()))
        master.drain()

    env.process(collector(env))
    env.run()
    assert len(results) == 6
    assert all(r.succeeded for r in results)
    # Tasks flowed through both ranks.
    assert top.tasks_relayed == 6
    assert mid.tasks_relayed == 6
    # The sandbox was cached at each rank once.
    assert top.has_sandbox("sandbox-v1")
    assert mid.has_sandbox("sandbox-v1")


def test_worker_samples_recorded():
    env, master, results = run_simple(2, n_workers=2, cores=1, duration=5.0)
    assert master.worker_samples
    peak = max(v for _, v in master.worker_samples)
    assert peak == 2
    # Everyone unregistered at drain.
    assert master.worker_samples[-1][1] == 0


def test_core_samples_track_pool_capacity():
    env, master, results = run_simple(2, n_workers=3, cores=4, duration=5.0)
    peak_cores = max(v for _, v in master.core_samples)
    assert peak_cores == 12
    assert master.core_samples[-1][1] == 0
