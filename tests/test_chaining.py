"""Tests for multi-stage workflow chaining (§2: skim → ntuple → ...)."""

import pytest

from repro.analysis import data_processing_code, simulation_code
from repro.batch import CondorPool, GlideinRequest, MachinePool
from repro.core import (
    DataAccess,
    LobsterConfig,
    LobsterRun,
    MergeMode,
    Services,
    WorkflowConfig,
)
from repro.desim import Environment
from repro.distributions import NoEviction

GB = 1_000_000_000.0
HOUR = 3600.0


def run_chain(workflows, dbs=None, n_machines=6, cores=4, with_hadoop=False):
    env = Environment()
    services = Services.default(env, dbs=dbs, with_hadoop=with_hadoop)
    cfg = LobsterConfig(workflows=workflows, cores_per_worker=cores, bad_machine_rate=0.0)
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, n_machines, cores=cores)
    pool = CondorPool(env, machines, eviction=NoEviction(), seed=17)
    pool.submit(
        GlideinRequest(n_workers=n_machines, cores_per_worker=cores, start_interval=0.5),
        run.worker_payload,
    )
    summary = env.run(until=run.process)
    pool.drain()
    return env, run, summary


# ---------------------------------------------------------------- validation
def test_parent_config_validation():
    code = simulation_code()
    with pytest.raises(ValueError):
        WorkflowConfig(label="x", code=code)  # no source
    with pytest.raises(ValueError):
        WorkflowConfig(label="x", code=code, n_events=10, parent="y")
    with pytest.raises(ValueError):
        WorkflowConfig(label="x", code=code, parent="x")  # self-parent
    with pytest.raises(ValueError):
        # Parent must be defined earlier in the list.
        LobsterConfig(
            workflows=[
                WorkflowConfig(label="child", code=code, parent="mother"),
                WorkflowConfig(label="mother", code=code, n_events=10),
            ]
        )


def test_is_chained_flag():
    code = simulation_code()
    wf = WorkflowConfig(label="c", code=code, parent="p")
    assert wf.is_chained and not wf.is_simulation


# ---------------------------------------------------------------- two stages
def two_stage_configs(parent_merge=MergeMode.INTERLEAVED):
    stage1 = WorkflowConfig(
        label="gen",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=24_000,
        events_per_tasklet=500,
        tasklets_per_task=4,
        merge_mode=parent_merge,
        merge_target_bytes=1.0 * GB,
    )
    stage2 = WorkflowConfig(
        label="ntuple",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        parent="gen",
        events_per_tasklet=2_000,
        tasklets_per_task=4,
        data_access=DataAccess.CHIRP,
        merge_mode=MergeMode.NONE,
    )
    return [stage1, stage2]


def test_chained_workflow_completes_both_stages():
    env, run, summary = run_chain(two_stage_configs())
    gen = summary["workflows"]["gen"]
    ntuple = summary["workflows"]["ntuple"]
    assert gen["tasklets_done"] == gen["tasklets"] == 48
    assert ntuple["tasklets"] > 0
    assert ntuple["tasklets_done"] == ntuple["tasklets"]
    assert run.workflows["ntuple"].complete


def test_child_starts_only_after_parent_completes():
    env, run, summary = run_chain(two_stage_configs())
    recs = run.metrics.records
    gen_last_merge = max(
        r.finished for r in recs if r.workflow == "gen"
    )
    child_first_start = min(
        r.started for r in recs if r.workflow == "ntuple"
    )
    assert child_first_start >= gen_last_merge - 1e-6


def test_child_consumes_merged_parent_outputs():
    env, run, summary = run_chain(two_stage_configs())
    merged_names = {f.name for f in run.workflows["gen"].merge.merged_files}
    assert merged_names
    child_lfns = {
        t.lfn for t in run.workflows["ntuple"].tasklets if t.lfn is not None
    }
    assert child_lfns <= merged_names
    # Child events derived from merged volume / parent event size.
    per_event = run.workflows["gen"].config.code.output_bytes_per_event
    total_bytes = sum(
        f.size_bytes for f in run.workflows["gen"].merge.merged_files
    )
    expected_events = int(round(total_bytes / per_event))
    child_events = sum(t.n_events for t in run.workflows["ntuple"].tasklets)
    assert child_events == pytest.approx(expected_events, rel=0.01)


def test_chain_with_unmerged_parent():
    """A merge-less parent feeds its raw outputs to the child."""
    configs = two_stage_configs(parent_merge=MergeMode.NONE)
    env, run, summary = run_chain(configs)
    ntuple = summary["workflows"]["ntuple"]
    assert ntuple["tasklets_done"] == ntuple["tasklets"] > 0
    child_lfns = {
        t.lfn for t in run.workflows["ntuple"].tasklets if t.lfn is not None
    }
    parent_outputs = {f.name for f in run.workflows["gen"].output_files}
    assert child_lfns <= parent_outputs


def test_three_stage_chain():
    code = simulation_code(intrinsic_failure_rate=0.0)
    stage1 = WorkflowConfig(
        label="s1", code=code, n_events=8_000, events_per_tasklet=500,
        tasklets_per_task=4, merge_mode=MergeMode.NONE,
    )
    stage2 = WorkflowConfig(
        label="s2", code=data_processing_code(intrinsic_failure_rate=0.0),
        parent="s1", events_per_tasklet=1_000, tasklets_per_task=2,
        data_access=DataAccess.CHIRP, merge_mode=MergeMode.NONE,
    )
    stage3 = WorkflowConfig(
        label="s3", code=data_processing_code(intrinsic_failure_rate=0.0),
        parent="s2", events_per_tasklet=500, tasklets_per_task=2,
        data_access=DataAccess.CHIRP, merge_mode=MergeMode.NONE,
    )
    env, run, summary = run_chain([stage1, stage2, stage3])
    for label in ("s1", "s2", "s3"):
        wf = summary["workflows"][label]
        assert wf["tasklets_done"] == wf["tasklets"] > 0
    # Stages ran strictly in order.
    recs = run.metrics.records
    end_s1 = max(r.finished for r in recs if r.workflow == "s1")
    start_s2 = min(r.started for r in recs if r.workflow == "s2")
    end_s2 = max(r.finished for r in recs if r.workflow == "s2")
    start_s3 = min(r.started for r in recs if r.workflow == "s3")
    assert start_s2 >= end_s1 - 1e-6
    assert start_s3 >= end_s2 - 1e-6


def test_chained_after_hadoop_merge_parent():
    stage1 = WorkflowConfig(
        label="gen",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=16_000,
        events_per_tasklet=500,
        tasklets_per_task=4,
        merge_mode=MergeMode.HADOOP,
        merge_target_bytes=1.0 * GB,
    )
    stage2 = WorkflowConfig(
        label="ana",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        parent="gen",
        events_per_tasklet=2_000,
        tasklets_per_task=4,
        data_access=DataAccess.CHIRP,
        merge_mode=MergeMode.NONE,
    )
    env, run, summary = run_chain([stage1, stage2], with_hadoop=True)
    assert summary["workflows"]["ana"]["tasklets_done"] > 0
    assert run.workflows["gen"].hadoop_proc is not None
    assert not run.workflows["gen"].hadoop_proc.is_alive
