"""Streaming rollup vs. exact reduction: bit-for-bit parity (DESIGN.md §13).

The :class:`~repro.monitor.Rollup` mirrors every accumulation the exact
:class:`~repro.monitor.RunMetrics` path performs, expression for
expression, so its windowed timelines must be *bit* identical — not
approximately equal — on real runs.  These tests drive both collectors
off the same bus for the quickstart, chaos, and corruption scenarios
and compare bin-for-bin, then pin down the degenerate cases (empty run,
single event) where off-by-one window arithmetic likes to hide.
"""

import numpy as np
import pytest

from repro.desim import Environment, EventBus, Topics
from repro.monitor import (
    BusCollector,
    Rollup,
    RollupCollector,
    rollup_from_events,
    verify_parity,
)
from repro.scenarios import execute_prepared, prepare_chaos, prepare_quickstart


def _run_with_both_collectors(prepare, **kwargs):
    """Execute a scenario with the streaming and exact collectors attached
    to the same bus; returns (rollup, metrics)."""
    env = Environment()
    streaming = RollupCollector(env.bus)
    prepared = prepare(env=env, **kwargs)
    execute_prepared(prepared, settle=300.0)
    return streaming.rollup, prepared.run.metrics


@pytest.fixture(scope="module")
def quickstart_pair():
    return _run_with_both_collectors(
        prepare_quickstart, events=20_000, workers=4, seed=11
    )


@pytest.fixture(scope="module")
def chaos_pair():
    return _run_with_both_collectors(
        prepare_chaos, files=20, machines=6, cores=4, seed=5
    )


@pytest.fixture(scope="module")
def corruption_pair():
    return _run_with_both_collectors(
        prepare_chaos,
        files=20,
        machines=6,
        cores=4,
        seed=9,
        bit_rot=2,
        truncate=2,
        duplicates=2,
    )


# --------------------------------------------------------------- full runs
def test_quickstart_parity(quickstart_pair):
    rollup, metrics = quickstart_pair
    assert metrics.n_tasks > 0  # the run actually ran
    assert verify_parity(rollup, metrics) == []


def test_chaos_parity(chaos_pair):
    rollup, metrics = chaos_pair
    assert metrics.evictions_seen + metrics.n_faults_injected > 0
    assert verify_parity(rollup, metrics) == []


def test_corruption_parity(corruption_pair):
    rollup, metrics = corruption_pair
    assert metrics.has_integrity_data()
    assert len(metrics.duplicates_dropped) > 0
    assert verify_parity(rollup, metrics) == []


def test_efficiency_timeline_bit_identical(quickstart_pair):
    """Spot-check the headline timeline beyond verify_parity: same dtype,
    same edges, same bits."""
    rollup, metrics = quickstart_pair
    r_starts, r_values = rollup.efficiency_timeline()
    m_starts, m_values = metrics.efficiency_timeline(
        bin_width=rollup.bin_width
    )
    assert r_starts.dtype == m_starts.dtype
    assert np.array_equal(r_starts, m_starts)
    assert np.array_equal(r_values, m_values)  # exact, not allclose


def test_bandwidth_timeline_bit_identical_per_class(chaos_pair):
    rollup, metrics = chaos_pair
    assert rollup.flow_bytes  # the run moved data
    r_starts, r_by_class = rollup.bandwidth_timeline()
    m_starts, m_by_class = metrics.bandwidth_timeline(rollup.bin_width)
    assert np.array_equal(r_starts, m_starts)
    assert set(r_by_class) == set(m_by_class)
    for klass in m_by_class:
        assert np.array_equal(r_by_class[klass], m_by_class[klass]), klass


def test_rollup_memory_is_windows_not_events():
    """Piling events into the same windows must not grow the cell
    population — retention is O(occupied windows), never O(events)."""
    def fill(n_tasks):
        bus = EventBus()
        streaming = RollupCollector(bus)
        for task_id in range(n_tasks):
            finished = 100.0 + (task_id % 7)  # all within window 0
            bus.publish(
                Topics.TASK_RESULT,
                _time=finished,
                workflow="wf",
                task_id=task_id,
                category="analysis",
                exit_code=0,
                submitted=0.0,
                started=finished - 50.0,
                finished=finished,
                segments={"cpu": 40.0},
                wq_stage_in=0.0,
                wq_stage_out=0.0,
                lost_time=0.0,
                output_bytes=1e6,
            )
            bus.publish(
                Topics.NET_FLOW,
                _time=finished,
                klass="stage-out",
                nbytes=1e6,
                elapsed=10.0,
                src="w",
                dst="se",
            )
        return streaming.rollup

    sparse, dense = fill(10), fill(500)
    assert dense.events_seen == 50 * sparse.events_seen
    assert dense.retained_cells() == sparse.retained_cells()


# ------------------------------------------------------------- replay twin
def test_replayed_rollup_matches_live(tmp_path, quickstart_pair):
    """rollup_from_events over a JSONL recording == live RollupCollector."""
    from repro.monitor import JsonlSink, load_events

    env = Environment()
    sink = JsonlSink(str(tmp_path / "events.jsonl"))
    env.bus.attach(sink)
    live = RollupCollector(env.bus)
    prepared = prepare_quickstart(events=20_000, workers=4, seed=11, env=env)
    execute_prepared(prepared, settle=300.0)
    sink.close()

    replayed = rollup_from_events(load_events(sink.path))
    assert replayed.events_seen == live.rollup.events_seen
    assert verify_parity(replayed, prepared.run.metrics) == []


def test_rollup_collector_workflow_filter_matches_buscollector():
    """A filtered streaming collector accepts exactly the events its exact
    twin accepts."""
    bus = EventBus()
    exact = BusCollector(bus, workflows=["wf-a"])
    streaming = RollupCollector(bus, workflows=["wf-a"])
    fields = dict(
        category="analysis",
        exit_code=0,
        submitted=0.0,
        started=0.0,
        finished=100.0,
        segments={"cpu": 80.0},
        wq_stage_in=0.0,
        wq_stage_out=0.0,
        lost_time=0.0,
        output_bytes=1e6,
    )
    bus.publish(Topics.TASK_RESULT, _time=100.0, workflow="wf-a", task_id=1,
                **fields)
    bus.publish(Topics.TASK_RESULT, _time=100.0, workflow="wf-b", task_id=2,
                **fields)
    bus.publish(Topics.EVICTION, _time=5.0, workflows=["wf-b"], slot="s")
    assert exact.metrics.n_tasks == streaming.rollup.n_tasks == 1
    assert exact.metrics.evictions_seen == streaming.rollup.evictions == 0
    assert verify_parity(streaming.rollup, exact.metrics) == []


# ------------------------------------------------------------- degenerates
def test_empty_run_parity():
    """No events at all: every timeline is empty/degenerate on both paths
    and parity still holds."""
    from repro.monitor import RunMetrics

    rollup = Rollup()
    metrics = RunMetrics()
    assert verify_parity(rollup, metrics) == []
    starts, values = rollup.efficiency_timeline()
    m_starts, m_values = metrics.efficiency_timeline(bin_width=1800.0)
    assert np.array_equal(starts, m_starts)
    assert np.array_equal(values, m_values)


def test_single_event_parity():
    """One task result: a single occupied window, still bit-identical."""
    bus = EventBus()
    exact = BusCollector(bus)
    streaming = RollupCollector(bus)
    bus.publish(
        Topics.TASK_RESULT,
        _time=90.0,
        workflow="wf",
        task_id=1,
        category="analysis",
        exit_code=0,
        submitted=0.0,
        started=10.0,
        finished=90.0,
        segments={"cpu": 60.0, "setup": 5.0},
        wq_stage_in=2.0,
        wq_stage_out=1.0,
        lost_time=0.0,
        output_bytes=5e6,
    )
    assert streaming.rollup.n_tasks == 1
    assert verify_parity(streaming.rollup, exact.metrics) == []


def test_single_instantaneous_flow_parity():
    """A zero-duration flow lands its full volume in one bin on both
    paths (the rate*overlap spread degenerates to nbytes/bw)."""
    bus = EventBus()
    exact = BusCollector(bus)
    streaming = RollupCollector(bus)
    bus.publish(
        Topics.NET_FLOW,
        _time=42.0,
        klass="stage-out",
        nbytes=1e9,
        elapsed=0.0,
        src="worker",
        dst="se",
    )
    assert streaming.rollup.n_flows == 1
    assert verify_parity(streaming.rollup, exact.metrics) == []


def test_event_at_exact_bin_boundary_parity():
    """A task finishing exactly at a bin edge exercises the final-bin
    clamp (min(int(t/bw), n-1)) that the rollup replays via overflow
    folding."""
    bus = EventBus()
    exact = BusCollector(bus)
    streaming = RollupCollector(bus)
    for task_id, finished in enumerate((1800.0, 3600.0), start=1):
        bus.publish(
            Topics.TASK_RESULT,
            _time=finished,
            workflow="wf",
            task_id=task_id,
            category="analysis",
            exit_code=0,
            submitted=0.0,
            started=finished - 600.0,
            finished=finished,
            segments={"cpu": 500.0},
            wq_stage_in=0.0,
            wq_stage_out=0.0,
            lost_time=0.0,
            output_bytes=0.0,
        )
    assert verify_parity(streaming.rollup, exact.metrics) == []
