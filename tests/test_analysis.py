"""Tests for the HEP application model."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisCode,
    ExitCode,
    FrameworkReport,
    WorkloadKind,
    data_processing_code,
    simulation_code,
)
from repro.distributions import DeterministicSampler


def test_exit_code_families():
    assert ExitCode.SUCCESS.family == "success"
    assert ExitCode.SETUP_FAILED.family == "software-delivery"
    assert ExitCode.FILE_OPEN_FAILED.family == "data-access"
    assert ExitCode.FILE_READ_FAILED.family == "data-access"
    assert ExitCode.STAGE_OUT_FAILED.family == "stage-out"
    assert ExitCode.EVICTED.family == "eviction"


def test_framework_report_success_flag():
    assert FrameworkReport().succeeded
    assert not FrameworkReport(exit_code=ExitCode.APPLICATION_FAILED).succeeded


def test_framework_report_merge_counts():
    a = FrameworkReport(events_read=10, cpu_seconds=5.0, output_bytes=100.0)
    b = FrameworkReport(events_read=20, cpu_seconds=2.5, output_bytes=50.0)
    a.merge_counts(b)
    assert a.events_read == 30
    assert a.cpu_seconds == 7.5
    assert a.output_bytes == 150.0


def test_data_processing_code_profile():
    code = data_processing_code()
    assert code.kind == WorkloadKind.DATA
    # Output at least an order of magnitude smaller than input (§4.2).
    assert code.output_bytes_per_event * 10 <= code.input_bytes_per_event
    assert code.input_bytes(100) == pytest.approx(100 * 100_000)


def test_simulation_code_profile():
    code = simulation_code()
    assert code.kind == WorkloadKind.SIMULATION
    # External input orders of magnitude below data processing.
    data = data_processing_code()
    assert code.input_bytes(1000) < data.input_bytes(1000) / 10
    # But it still needs pile-up overlay.
    assert code.input_bytes(1000) > 0


def test_cpu_time_scales_with_events():
    code = AnalysisCode(
        name="t",
        kind=WorkloadKind.DATA,
        per_event_cpu=DeterministicSampler(0.5),
        input_bytes_per_event=1000,
        output_bytes_per_event=100,
    )
    rng = np.random.default_rng(0)
    assert code.cpu_time(rng, 100) == pytest.approx(50.0)
    assert code.cpu_time(rng, 0) == 0.0


def test_output_bytes():
    code = data_processing_code(event_size=100_000, reduction_factor=20)
    assert code.output_bytes(200) == pytest.approx(200 * 5_000)


def test_draw_failure_rate():
    code = data_processing_code(intrinsic_failure_rate=0.25)
    rng = np.random.default_rng(42)
    fails = sum(code.draw_failure(rng) for _ in range(10_000))
    assert 2200 < fails < 2800


def test_validation():
    with pytest.raises(ValueError):
        AnalysisCode(
            name="bad",
            kind=WorkloadKind.DATA,
            per_event_cpu=DeterministicSampler(1),
            input_bytes_per_event=-1,
            output_bytes_per_event=0,
        )
    with pytest.raises(ValueError):
        AnalysisCode(
            name="bad",
            kind=WorkloadKind.DATA,
            per_event_cpu=DeterministicSampler(1),
            input_bytes_per_event=0,
            output_bytes_per_event=0,
            intrinsic_failure_rate=1.5,
        )
    with pytest.raises(ValueError):
        data_processing_code(reduction_factor=0.5)
