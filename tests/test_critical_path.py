"""Critical-path analysis: the backward sweep and its aggregations."""

from repro.monitor import (
    PathSlice,
    attribute,
    attribute_hosts,
    critical_path,
    format_breakdown,
    work_coverage,
)
from repro.monitor.tracing import Span


def _span(span_id, name, start, end, trace="wf:u1", parent=1, **attrs):
    return Span(span_id, trace, parent, name, start, end=end, status="ok",
                attrs=attrs)


def test_empty_input():
    slices, makespan = critical_path([])
    assert slices == [] and makespan == 0.0
    assert work_coverage(slices, makespan) == 1.0
    assert attribute(slices) == []


def test_prefers_deepest_span_at_each_instant():
    # attempt [0, 100] with exec [10, 90] nested inside: the sweep must
    # attribute the middle to the deeper exec span.
    spans = [
        _span(2, "attempt", 0.0, 100.0),
        _span(3, "wrapper.exec", 10.0, 90.0, parent=2),
    ]
    slices, makespan = critical_path(spans)
    assert makespan == 100.0
    assert [(sl.label, sl.start, sl.end) for sl in slices] == [
        ("attempt", 0.0, 10.0),
        ("wrapper.exec", 10.0, 90.0),
        ("attempt", 90.0, 100.0),
    ]
    assert work_coverage(slices, makespan) == 1.0


def test_gap_becomes_idle_slice():
    spans = [
        _span(2, "attempt", 0.0, 40.0),
        _span(3, "attempt", 60.0, 100.0, trace="wf:u2"),
    ]
    slices, makespan = critical_path(spans)
    assert makespan == 100.0
    idle = [sl for sl in slices if sl.span is None]
    assert [(sl.start, sl.end, sl.label) for sl in idle] == [(40.0, 60.0, "idle")]
    assert work_coverage(slices, makespan) == 0.8


def test_slices_tile_makespan_exactly():
    spans = [
        _span(2, "attempt", 0.0, 50.0),
        _span(3, "wrapper.setup", 5.0, 20.0, parent=2),
        _span(4, "wrapper.exec", 20.0, 45.0, parent=2),
        _span(5, "attempt", 70.0, 90.0, trace="wf:u2"),
    ]
    slices, makespan = critical_path(spans)
    assert slices[0].start == 0.0 and slices[-1].end == 90.0
    for prev, nxt in zip(slices, slices[1:]):
        assert prev.end == nxt.start  # no gaps, no overlaps
    assert abs(sum(sl.duration for sl in slices) - makespan) < 1e-9


def test_roots_and_instants_are_excluded():
    spans = [
        Span(1, "wf:u1", None, "unit", 0.0, end=100.0),  # root: excluded
        _span(2, "attempt", 10.0, 90.0),
        _span(3, "integrity.commit", 90.0, 90.0),  # instant: excluded
    ]
    slices, makespan = critical_path(spans)
    assert makespan == 80.0  # the attempt, not the root
    assert {sl.label for sl in slices} == {"attempt"}


def test_flow_labels_split_by_class():
    spans = [_span(2, "net.flow", 0.0, 30.0, cls="xrootd")]
    slices, _ = critical_path(spans)
    assert slices[0].label == "net.flow:xrootd"


def test_attribute_orders_largest_first():
    slices = [
        PathSlice(0.0, 10.0, "a", None),
        PathSlice(10.0, 40.0, "b", None),
        PathSlice(40.0, 45.0, "a", None),
    ]
    assert attribute(slices) == [("b", 30.0), ("a", 15.0)]


def test_attribute_hosts_uses_span_attrs():
    spans = [
        _span(2, "attempt", 0.0, 60.0, host="node1"),
        _span(3, "net.flow", 60.0, 80.0, dst="chirp0", cls="merge"),
    ]
    slices, _ = critical_path(spans)
    hosts = dict(attribute_hosts(slices))
    assert hosts == {"node1": 60.0, "chirp0": 20.0}


def test_format_breakdown_renders_table():
    spans = [
        _span(2, "attempt", 0.0, 60.0, host="node1"),
        _span(3, "wrapper.exec", 10.0, 50.0, parent=2),
    ]
    slices, makespan = critical_path(spans)
    text = format_breakdown(slices, makespan, top=5)
    assert "critical path over makespan 60.0s" in text
    assert "wrapper.exec" in text
    assert "worst contributors by host/link:" in text
    assert "node1" in text


def test_deterministic_tie_break_on_span_id():
    # Two spans with identical extents: the sweep must pick the same one
    # every time (the higher span id).
    spans = [
        _span(2, "wrapper.exec", 0.0, 50.0),
        _span(3, "net.flow", 0.0, 50.0, cls="cvmfs"),
    ]
    for _ in range(3):
        slices, _ = critical_path(spans)
        assert [sl.label for sl in slices] == ["net.flow:cvmfs"]
