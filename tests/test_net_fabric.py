"""Tests for the shared network fabric (repro.net)."""

import pytest

from repro.core import Services
from repro.desim import Environment, FairShareLink, Topics, TransferCancelled
from repro.monitor import BusCollector
from repro.net import (
    Fabric,
    LinkDown,
    TopologySpec,
    TrafficClass,
    rack_for,
    transfer_on,
    waterfill,
)
from repro.storage.wan import OutageWindow, WideAreaNetwork
from repro.wq.transfer import ship


def drive(env, gen):
    """Run a generator as a process and capture its result or error."""
    out = {}

    def wrapper(env):
        try:
            out["value"] = yield from gen
        except BaseException as exc:  # noqa: BLE001 - recorded for asserts
            out["error"] = exc
        return None

    env.process(wrapper(env))
    return out


# ---------------------------------------------------------------- allocator
def test_waterfill_single_link_equal_share():
    rates = waterfill({"l": 100.0}, [("l",), ("l",)], [None, None])
    assert rates == pytest.approx([50.0, 50.0])


def test_waterfill_respects_caps():
    rates = waterfill({"l": 100.0}, [("l",), ("l",)], [20.0, None])
    assert rates == pytest.approx([20.0, 80.0])


def test_waterfill_multilink_bottleneck():
    # Two flows share a 12-unit trunk; each also crosses its own roomy NIC.
    caps = {"nic1": 10.0, "nic2": 10.0, "trunk": 12.0}
    rates = waterfill(
        caps, [("nic1", "trunk"), ("nic2", "trunk")], [None, None]
    )
    assert rates == pytest.approx([6.0, 6.0])


def test_waterfill_asymmetric_bottlenecks():
    # Flow 1 is pinned by its 2-unit NIC; flow 2 soaks up the slack.
    caps = {"nic1": 2.0, "nic2": 100.0, "trunk": 10.0}
    rates = waterfill(
        caps, [("nic1", "trunk"), ("nic2", "trunk")], [None, None]
    )
    assert rates == pytest.approx([2.0, 8.0])


# ---------------------------------------------------------------- single link
def test_single_link_matches_fair_share_link():
    """A one-link fabric reproduces FairShareLink dynamics exactly."""
    env = Environment()
    reference = FairShareLink(env, 100.0)
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)

    times = {}

    def timed(env, key, transfer):
        yield transfer
        times[key] = env.now

    env.process(timed(env, "ref_a", reference.transfer(100.0)))
    env.process(timed(env, "ref_b", reference.transfer(100.0)))
    env.process(timed(env, "fab_a", link.transfer(100.0)))
    env.process(timed(env, "fab_b", link.transfer(100.0)))
    env.run()
    assert times["ref_a"] == pytest.approx(2.0)
    assert times["fab_a"] == pytest.approx(times["ref_a"])
    assert times["fab_b"] == pytest.approx(times["ref_b"])
    assert link.bytes_moved == pytest.approx(200.0)


def test_late_joiner_reshapes_rates():
    """A flow joining mid-transfer halves the first flow's rate."""
    env = Environment()
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    times = {}

    def first(env):
        yield link.transfer(100.0)
        times["a"] = env.now

    def second(env):
        yield env.timeout(0.5)
        yield link.transfer(100.0)
        times["b"] = env.now

    env.process(first(env))
    env.process(second(env))
    env.run()
    # A: 50 B alone, then 50 B at half rate -> 0.5 + 1.0 = 1.5.
    # B: 50 B at half rate, then 50 B alone -> 1.5 + 0.5 = 2.0.
    assert times["a"] == pytest.approx(1.5)
    assert times["b"] == pytest.approx(2.0)


# ---------------------------------------------------------------- routing
def test_route_walks_the_tree():
    env = Environment()
    fabric = Fabric(env)
    trunk = fabric.attach("trunk", 100.0, node="rack0")
    nic = fabric.attach("nic", 10.0, node="m0", parent="rack0")
    wan = fabric.attach("wan", 5.0, node="world")
    names = [l.name for l in fabric.route("m0", "world")]
    assert names == ["nic", "trunk", "wan"]
    # Same-rack path does not touch the core.
    fabric.attach("nic2", 10.0, node="m1", parent="rack0")
    names = [l.name for l in fabric.route("m0", "m1")]
    assert names == ["nic", "nic2"]
    assert fabric.route("m0", "m0") == ()
    assert trunk is fabric.uplink("rack0")
    assert wan is fabric.uplink("world")
    assert nic is fabric.uplink("m0")


def test_multihop_flow_runs_at_bottleneck_rate():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("trunk", 100.0, node="rack0")
    fabric.attach("nic", 10.0, node="m0", parent="rack0")
    fabric.attach("wan", 5.0, node="world")
    flow = fabric.transfer(50.0, src="m0", dst="world")
    done = drive(env, iter_flow(flow))
    env.run()
    assert env.now == pytest.approx(10.0)  # 50 B at the 5 B/s WAN rate
    assert "error" not in done
    # Every hop carried the bytes.
    for name in ("nic", "trunk", "wan"):
        assert fabric.links[name].bytes_moved == pytest.approx(50.0)


def iter_flow(flow):
    yield flow
    return flow


def test_shared_trunk_gives_max_min_rates():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("trunk", 12.0, node="rack0")
    fabric.attach("nic1", 2.0, node="m1", parent="rack0")
    fabric.attach("nic2", 100.0, node="m2", parent="rack0")
    f1 = fabric.transfer(20.0, src="m1", dst=fabric.root)
    f2 = fabric.transfer(80.0, src="m2", dst=fabric.root)
    env.run()
    # f1 pinned at 2 by its NIC, f2 gets the trunk's remaining 8.
    assert f1.ok and f2.ok
    assert fabric.links["nic1"].bytes_moved == pytest.approx(20.0)
    assert fabric.links["nic2"].bytes_moved == pytest.approx(80.0)
    assert fabric.links["trunk"].bytes_moved == pytest.approx(100.0)


# ---------------------------------------------------------------- accounting
def test_per_class_byte_accounting():
    env = Environment()
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    link.transfer(60.0, cls=TrafficClass.XROOTD)
    link.transfer(40.0, cls=TrafficClass.OUTPUT)
    env.run()
    assert link.bytes_by_class[TrafficClass.XROOTD] == pytest.approx(60.0)
    assert link.bytes_by_class[TrafficClass.OUTPUT] == pytest.approx(40.0)
    assert link.bytes_moved == pytest.approx(100.0)


def test_net_flow_events_feed_bus_collector():
    env = Environment()
    collector = BusCollector(env.bus)
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    link.transfer(60.0, cls=TrafficClass.XROOTD)
    link.transfer(40.0, cls=TrafficClass.OUTPUT)
    env.run()
    m = collector.metrics
    assert len(m.flows) == 2
    totals = m.flow_bytes_by_class()
    assert totals[TrafficClass.XROOTD] == pytest.approx(60.0)
    assert totals[TrafficClass.OUTPUT] == pytest.approx(40.0)
    starts, series = m.bandwidth_timeline(0.5)
    # 100 B/s aggregate over the first second, split by class.
    assert len(starts) >= 2
    assert series[TrafficClass.XROOTD][0] > 0
    total_bytes = sum(arr.sum() * 0.5 for arr in series.values())
    assert total_bytes == pytest.approx(100.0, rel=0.01)


# ---------------------------------------------------------------- outages
def test_outage_fails_every_class_crossing_the_link():
    env = Environment()
    fabric = Fabric(env)
    wan = fabric.attach("wan", 10.0, node="world")
    fabric.attach("nic", 100.0, node="m0")
    wan.schedule_outages([OutageWindow(10.0, 1000.0)], fail_after=30.0)

    errors = {}

    def xfer(env, key, cls, src):
        flow = fabric.transfer(1e6, src=src, dst="world", cls=cls)
        try:
            yield flow
        except LinkDown as exc:
            errors[key] = (env.now, exc)

    env.process(xfer(env, "a", TrafficClass.XROOTD, "m0"))
    env.process(xfer(env, "b", TrafficClass.OUTPUT, "m0"))
    # A flow that avoids the WAN survives.
    survivor = fabric.transfer(500.0, src="m0", dst=fabric.root)
    fails = []
    env.bus.subscribe(Topics.NET_FLOW_FAIL, lambda ev: fails.append(ev))
    env.run(until=2000.0)

    assert set(errors) == {"a", "b"}
    for t, _exc in errors.values():
        assert t == pytest.approx(40.0)  # outage start + fail_after
    assert survivor.ok
    assert {ev.fields["cls"] for ev in fails} == {
        TrafficClass.XROOTD,
        TrafficClass.OUTPUT,
    }
    assert fabric.flows_failed == 2


def test_flow_joining_dead_link_is_killed_after_grace():
    env = Environment()
    fabric = Fabric(env)
    wan = fabric.attach("wan", 10.0, node="world")
    wan.schedule_outages([OutageWindow(0.0, 500.0)], fail_after=30.0)
    errors = {}

    def late(env):
        yield env.timeout(100.0)  # the link's own kill sweep has passed
        try:
            yield fabric.transfer(1e6, src=fabric.root, dst="world")
        except LinkDown:
            errors["t"] = env.now

    env.process(late(env))
    env.run(until=1000.0)
    assert errors["t"] == pytest.approx(130.0)


def test_capacity_restored_after_outage():
    env = Environment()
    fabric = Fabric(env)
    wan = fabric.attach("wan", 10.0, node="world")
    wan.schedule_outages([OutageWindow(5.0, 15.0)], fail_after=None)
    done = {}

    def after(env):
        yield env.timeout(20.0)
        yield wan.transfer(100.0)
        done["t"] = env.now

    env.process(after(env))
    env.run(until=100.0)
    assert not wan.is_down
    assert wan.capacity == pytest.approx(10.0)
    assert done["t"] == pytest.approx(30.0)


# ------------------------------------------------- satellite regression fixes
def test_utilization_window_resets():
    """Satellite: utilization is windowed and resettable (both links)."""
    env = Environment()
    fair = FairShareLink(env, 100.0)
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    fair.transfer(100.0)
    link.transfer(100.0)
    env.run(until=2.0)
    assert fair.utilization() == pytest.approx(0.5)
    assert link.utilization() == pytest.approx(0.5)
    fair.reset_utilization_window()
    link.reset_utilization_window()
    env.run(until=4.0)
    # Nothing moved in the new window.
    assert fair.utilization() == 0.0
    assert link.utilization() == 0.0


def test_estimate_duration_honours_existing_caps():
    """Satellite: estimates respect live flows' max_rate caps."""
    env = Environment()
    fair = FairShareLink(env, 100.0)
    fair.transfer(1e9, max_rate=10.0)
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    link.transfer(1e9, max_rate=10.0)
    env.run(until=1.0)
    # The capped flow leaves 90 B/s for a newcomer, not a naive 50.
    assert fair.estimate_duration(90.0) == pytest.approx(1.0)
    assert link.estimate_duration(90.0) == pytest.approx(1.0)
    # And the newcomer's own cap binds when it is tighter.
    assert fair.estimate_duration(90.0, max_rate=9.0) == pytest.approx(10.0)
    assert link.estimate_duration(90.0, max_rate=9.0) == pytest.approx(10.0)


def test_zero_byte_wan_transfer_publishes_nothing():
    """Satellite: empty transfers emit no phantom LINK_TRANSFER event."""
    env = Environment()
    wan = WideAreaNetwork(env, bandwidth=10.0)
    seen = []
    env.bus.subscribe(Topics.LINK_TRANSFER, lambda ev: seen.append(ev))
    done = drive(env, iter_flow(wan.transfer(0.0)))
    env.run()
    assert "error" not in done
    assert env.now == 0.0
    assert seen == []
    assert wan.bytes_moved == 0.0


# ---------------------------------------------------------------- ship()
def test_ship_uses_one_end_to_end_flow_on_shared_fabric():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("trunk0", 1000.0, node="rack0")
    fabric.attach("trunk1", 1000.0, node="rack1")
    a = fabric.attach("a.nic", 10.0, node="a", parent="rack0")
    b = fabric.attach("b.nic", 40.0, node="b", parent="rack1")
    done = drive(env, ship(a, b, 100.0))
    env.run()
    assert "error" not in done
    assert env.now == pytest.approx(10.0)  # a.nic is the bottleneck
    for name in ("a.nic", "trunk0", "trunk1", "b.nic"):
        assert fabric.links[name].bytes_moved == pytest.approx(100.0)


def test_ship_legacy_pair_of_flat_links():
    env = Environment()
    a = FairShareLink(env, 10.0)
    b = FairShareLink(env, 40.0)
    done = drive(env, ship(a, b, 100.0))
    env.run()
    assert "error" not in done
    assert env.now == pytest.approx(10.0)


def test_transfer_on_dispatches_by_link_type():
    env = Environment()
    fair = FairShareLink(env, 100.0)
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    transfer_on(fair, 50.0, cls=TrafficClass.STAGING)
    transfer_on(link, 50.0, cls=TrafficClass.STAGING)
    env.run()
    assert fair.bytes_moved == pytest.approx(50.0)
    assert link.bytes_by_class[TrafficClass.STAGING] == pytest.approx(50.0)


# ---------------------------------------------------------------- services
def test_services_default_shares_one_fabric():
    env = Environment()
    services = Services.default(env)
    fabric = services.fabric
    assert fabric is not None
    assert services.wan.fabric is fabric
    assert services.chirp.fabric is fabric
    assert services.frontier.fabric is fabric
    for proxy in services.proxies.proxies:
        assert proxy.fabric is fabric
    # The frontier origin sits beyond the WAN uplink.
    route = [l.name for l in fabric.route(fabric.root, "frontier-origin")]
    assert route == ["wan", "frontier-origin"]
    # The SE spindles sit behind the Chirp NIC.
    chirp = services.chirp
    route = [l.name for l in fabric.route(fabric.root, chirp.store_node)]
    assert route[-1].endswith(".spindles")


def test_topology_spec_validation():
    spec = TopologySpec()
    assert spec.machines_per_switch > 0
    with pytest.raises(ValueError):
        TopologySpec(machines_per_switch=0)
    with pytest.raises(ValueError):
        TopologySpec(wan_bandwidth=-1.0)


def test_rack_for_groups_machines_under_switches():
    env = Environment()
    fabric = Fabric(env)
    r0 = rack_for(fabric, 0, machines_per_switch=2)
    r0b = rack_for(fabric, 1, machines_per_switch=2)
    r1 = rack_for(fabric, 2, machines_per_switch=2)
    assert r0 == r0b == "rack000"
    assert r1 == "rack001"
    assert fabric.uplink("rack000").name == "rack000.trunk"


def test_describe_and_utilization_table():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("trunk", 100.0, node="rack0")
    fabric.attach("nic", 10.0, node="m0", parent="rack0")
    fabric.attach("disk", 5.0)  # standalone
    text = fabric.describe()
    assert "campus-core" in text
    assert "rack0" in text and "m0" in text
    assert "standalone links:" in text and "disk" in text
    names = [name for name, _, _ in fabric.utilization_table()]
    assert names == ["trunk", "nic", "disk"]


def test_campus_uplink_saturation_slows_every_class():
    """Many streams crossing the uplink squeeze a stage-out flow too."""
    env = Environment()
    fabric = Fabric(env)
    wan = fabric.attach("wan", 100.0, node="world")
    fabric.attach("trunk", 10_000.0, node="rack0")
    for i in range(10):
        fabric.attach(f"m{i}.nic", 50.0, node=f"m{i}", parent="rack0")
    # 10 streaming flows + 1 output flow share the 100 B/s uplink.
    for i in range(10):
        fabric.transfer(1e9, src=f"m{i}", dst="world", cls=TrafficClass.XROOTD)
    out = fabric.transfer(90.0, src="m0", dst="world", cls=TrafficClass.OUTPUT)
    env.run(until=10.0)
    # Fair share is 100/11 ≈ 9.09 B/s: the output flow took ~9.9 s for
    # 90 B instead of ~1.8 s at its NIC rate.
    assert out.ok
    assert wan.bytes_by_class[TrafficClass.OUTPUT] == pytest.approx(90.0)
    assert wan.utilization() == pytest.approx(1.0, abs=0.01)


# ---------------------------------------------------------------- edge cases
def test_cancel_is_idempotent_and_safe_after_completion():
    env = Environment()
    fabric = Fabric(env)
    link = fabric.attach("l", 100.0)
    flow = link.transfer(50.0)
    env.run()
    assert flow.ok
    flow.cancel()  # no-op after completion
    assert flow.ok

    flow2 = link.transfer(50.0)
    flow2.cancel()
    flow2.cancel()
    env.run()
    assert not flow2.ok
    assert isinstance(flow2.value, TransferCancelled)


def test_duplicate_names_rejected():
    env = Environment()
    fabric = Fabric(env)
    fabric.attach("l", 10.0, node="n")
    with pytest.raises(ValueError):
        fabric.attach("l", 10.0)
    with pytest.raises(ValueError):
        fabric.attach("l2", 10.0, node="n")
    with pytest.raises(ValueError):
        fabric.attach("l3", 10.0, node="n2", parent="missing")
    with pytest.raises(ValueError):
        fabric.transfer(10.0)  # neither route nor endpoints
