"""Tests for the multi-site AAA federation layer (replicas + failover)."""

import pytest

from repro.desim import Environment
from repro.storage import (
    OutageWindow,
    RemoteSite,
    WideAreaNetwork,
    XrootdError,
    XrootdFederation,
)

MB = 1_000_000.0
GBIT = 125_000_000.0


def make_federation(env, site_specs):
    """site_specs: list of (name, bandwidth, outages)."""
    wan = WideAreaNetwork(env, bandwidth=10 * GBIT)
    fed = XrootdFederation(env, wan, redirect_latency=0.0, error_latency=5.0)
    for name, bw, outages in site_specs:
        fed.add_site(RemoteSite(env, name, uplink_bandwidth=bw, outages=outages))
    return fed


def test_redirector_picks_least_loaded_site():
    env = Environment()
    fed = make_federation(
        env, [("siteA", 1 * GBIT, None), ("siteB", 1 * GBIT, None)]
    )
    fed.register_replicas("/store/f.root", ["siteA", "siteB"])
    picked = []

    def reader(env):
        stream = yield from fed.open("/store/f.root")
        picked.append(stream.source.name)
        yield from stream.read(500 * MB)
        stream.close()

    env.process(reader(env))
    env.process(reader(env))
    env.run()
    # With equal load at open time both could pick either, but both reads
    # completed and volumes were accounted at the source sites.
    assert len(picked) == 2
    total_served = sum(s.bytes_served for s in fed.sites.values())
    assert total_served == pytest.approx(1000 * MB)


def test_failover_skips_dead_site():
    env = Environment()
    fed = make_federation(
        env,
        [
            ("dead", 1 * GBIT, [OutageWindow(0.0, 1e9)]),
            ("alive", 1 * GBIT, None),
        ],
    )
    fed.register_replicas("/store/f.root", ["dead", "alive"])
    got = []

    def reader(env):
        stream = yield from fed.open("/store/f.root")
        got.append(stream.source.name)
        yield from stream.read(10 * MB)

    env.process(reader(env))
    env.run()
    assert got == ["alive"]
    assert fed.failovers == 1


def test_all_replicas_dead_raises():
    env = Environment()
    fed = make_federation(
        env, [("dead", 1 * GBIT, [OutageWindow(0.0, 1e9)])]
    )
    fed.register_replicas("/store/f.root", ["dead"])
    errors = []

    def reader(env):
        try:
            yield from fed.open("/store/f.root")
        except XrootdError:
            errors.append(env.now)

    env.process(reader(env))
    env.run()
    assert errors == [pytest.approx(5.0)]
    assert fed.errors == 1


def test_unknown_replica_site_rejected():
    env = Environment()
    fed = make_federation(env, [("siteA", 1 * GBIT, None)])
    with pytest.raises(ValueError):
        fed.register_replicas("/store/f.root", ["nowhere"])
    with pytest.raises(ValueError):
        fed.add_site(RemoteSite(env, "siteA"))


def test_uncatalogued_lfn_uses_any_site():
    env = Environment()
    fed = make_federation(env, [("siteA", 1 * GBIT, None)])
    got = []

    def reader(env):
        stream = yield from fed.open("/store/unknown.root")
        got.append(stream.source.name)

    env.process(reader(env))
    env.run()
    assert got == ["siteA"]


def test_source_uplink_limits_read_rate():
    env = Environment()
    # A skinny source uplink: 10 MB/s, while the campus WAN is huge.
    fed = make_federation(env, [("skinny", 10 * MB, None)])
    done = []

    def reader(env):
        stream = yield from fed.open("/store/f.root")
        elapsed = yield from stream.read(100 * MB)
        done.append(elapsed)

    env.process(reader(env))
    env.run()
    assert done[0] == pytest.approx(10.0)  # bounded by the source


def test_read_fails_when_source_goes_out_before_read():
    env = Environment()
    fed = make_federation(
        env, [("flaky", 1 * GBIT, [OutageWindow(100.0, 1e9)])]
    )
    outcome = []

    def reader(env):
        stream = yield from fed.open("/store/f.root")  # t=0: fine
        yield env.timeout(200.0)  # site dies at t=100
        try:
            yield from stream.read(10 * MB)
        except XrootdError:
            outcome.append(env.now)

    env.process(reader(env))
    env.run()
    assert outcome == [pytest.approx(205.0)]


def test_without_sites_behaves_as_before():
    env = Environment()
    wan = WideAreaNetwork(env, bandwidth=100 * MB)
    fed = XrootdFederation(env, wan, redirect_latency=0.0)
    done = []

    def reader(env):
        stream = yield from fed.open("/store/f.root")
        assert stream.source is None
        elapsed = yield from stream.read(100 * MB)
        done.append(elapsed)

    env.process(reader(env))
    env.run()
    assert done == [pytest.approx(1.0)]
