"""Tests for the instrumented task wrapper."""

import pytest

from repro.analysis import ExitCode, data_processing_code, simulation_code
from repro.batch.machines import Machine
from repro.core import (
    DataAccess,
    LobsterConfig,
    Segment,
    Services,
    TaskPayload,
    TaskletStore,
    WorkflowConfig,
    Wrapper,
)
from repro.cvmfs import CacheMode, ParrotCache
from repro.desim import Environment
from repro.storage.wan import OutageWindow
from repro.wq import Master, Task, Worker

GB = 1_000_000_000.0
MB = 1_000_000.0


def build_stack(env, outages=None, chirp_connections=32, squid_timeout=None):
    services = Services.default(env, outages=outages, chirp_connections=chirp_connections)
    if squid_timeout is not None:
        for p in services.proxies.proxies:
            p.timeout = squid_timeout
    return services


def run_one_task(
    env,
    services,
    workflow,
    payload,
    cfg=None,
    cache_hot=False,
):
    """Run one wrapper invocation on a standalone worker; return result."""
    cfg = cfg or LobsterConfig(workflows=[workflow], bad_machine_rate=0.0)
    master = Master(env)
    machine = Machine(env, "m0", cores=8, disk_bandwidth=10 * GB)
    cache = ParrotCache(env, machine, services.proxies, mode=CacheMode.ALIEN)
    if cache_hot:
        cache._filled[services.repository.name] = True
    worker = Worker(
        env,
        machine,
        master,
        cores=1,
        connect_latency=0.0,
        context={Wrapper.CACHE_KEY: cache},
    )
    wrapper = Wrapper(cfg, workflow, services, seed=5)
    task = Task(executor=wrapper, payload=payload, sandbox_bytes=1 * MB,
                wq_input_bytes=payload.input_bytes if workflow.data_access == DataAccess.WQ else 0.0)
    master.submit(task)
    env.process(worker.run())
    out = {}

    def collector(env):
        out["result"] = yield master.wait()
        master.drain()

    env.process(collector(env))
    env.run()
    return out["result"]


def mc_payload(n_events=1000):
    store = TaskletStore.from_event_count("mc", n_events, n_events)
    return TaskPayload(workflow="mc", tasklets=store.claim(1))


def data_payload(input_mb=100.0, n_events=1000):
    store = TaskletStore("data")
    store.add(n_events=n_events, input_bytes=input_mb * MB, lfn="/store/data/f.root")
    return TaskPayload(workflow="data", tasklets=store.claim(1))


def test_simulation_task_succeeds_with_segments():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="mc", code=simulation_code(intrinsic_failure_rate=0.0), n_events=1000
    )
    result = run_one_task(env, services, wf, mc_payload())
    assert result.exit_code == ExitCode.SUCCESS
    for seg in (Segment.VALIDATE, Segment.SETUP, Segment.CPU, Segment.STAGE_OUT):
        assert seg in result.segments
    assert result.segments[Segment.CPU] > 0
    assert result.report.events_written == 1000
    assert result.report.output_bytes > 0


def test_data_task_streams_via_xrootd():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset="/P/R/AOD",
        data_access=DataAccess.XROOTD,
        read_fraction=0.5,
    )
    result = run_one_task(env, services, wf, data_payload(input_mb=100))
    assert result.succeeded
    assert result.segments[Segment.IO] > 0
    # Streaming read only the read_fraction of input; the campus uplink
    # also carried the one Frontier conditions pull from the origin
    # (50 MB payload), since the origin sits beyond the WAN.
    conditions = services.frontier.payload_bytes
    assert services.wan.bytes_moved == pytest.approx(50 * MB + conditions, rel=0.01)
    assert services.xrootd.opens == 1


def test_data_task_staged_via_chirp_reads_full_input():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset="/P/R/AOD",
        data_access=DataAccess.CHIRP,
    )
    result = run_one_task(env, services, wf, data_payload(input_mb=100))
    assert result.succeeded
    # The whole file came through Chirp.
    assert services.chirp.bytes_out >= 100 * MB
    assert result.segments[Segment.STAGE_IN] > 0


def test_wq_mode_input_moved_by_work_queue():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset="/P/R/AOD",
        data_access=DataAccess.WQ,
    )
    result = run_one_task(env, services, wf, data_payload(input_mb=100))
    assert result.succeeded
    assert result.wq_stage_in > 0
    # Chirp and XrootD were not used for input.
    assert services.xrootd.opens == 0


def test_output_via_wq_sets_task_bytes():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0),
        n_events=1000,
        output_mode=DataAccess.WQ,
    )
    result = run_one_task(env, services, wf, mc_payload())
    assert result.succeeded
    assert result.task.wq_output_bytes > 0
    assert result.wq_stage_out > 0
    assert services.chirp.bytes_in == 0.0


def test_setup_failure_on_squid_timeout():
    env = Environment()
    services = build_stack(env, squid_timeout=0.5)
    # Slow the proxy NIC so the cold fill cannot complete in time.
    for p in services.proxies.proxies:
        p.data_link.set_capacity(1 * MB)
    wf = WorkflowConfig(
        label="mc", code=simulation_code(intrinsic_failure_rate=0.0), n_events=1000
    )
    result = run_one_task(env, services, wf, mc_payload())
    assert result.exit_code == ExitCode.SETUP_FAILED
    assert result.report.annotations["failed_segment"] == Segment.SETUP


def test_open_failure_during_outage():
    env = Environment()
    services = build_stack(env, outages=[OutageWindow(0.0, 100000.0)])
    # Conditions are already at the squids (the origin sits beyond the
    # WAN, so a cold pull would fail in setup before reaching the open).
    services.frontier.warm(1)
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(intrinsic_failure_rate=0.0),
        dataset="/P/R/AOD",
        data_access=DataAccess.XROOTD,
    )
    result = run_one_task(env, services, wf, data_payload())
    assert result.exit_code == ExitCode.FILE_OPEN_FAILED


def test_read_failure_when_outage_begins_mid_task():
    env = Environment()
    # Outage begins shortly after the task starts reading.
    services = build_stack(env, outages=[OutageWindow(200.0, 100000.0)])
    wf = WorkflowConfig(
        label="data",
        code=data_processing_code(cpu_per_event=1.0, intrinsic_failure_rate=0.0),
        dataset="/P/R/AOD",
        data_access=DataAccess.XROOTD,
    )
    result = run_one_task(env, services, wf, data_payload(input_mb=5000, n_events=2000))
    assert result.exit_code == ExitCode.FILE_READ_FAILED
    assert result.segments[Segment.CPU] < 2000.0  # died partway


def test_intrinsic_application_failure():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.999999),  # ~always fails
        n_events=1000,
    )
    result = run_one_task(env, services, wf, mc_payload())
    assert result.exit_code == ExitCode.APPLICATION_FAILED
    assert result.report.annotations["failed_segment"] == Segment.CPU


def test_bad_machine_rejected_by_precheck():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="mc", code=simulation_code(intrinsic_failure_rate=0.0), n_events=1000
    )
    cfg = LobsterConfig(workflows=[wf], bad_machine_rate=0.9999999)
    result = run_one_task(env, services, wf, mc_payload(), cfg=cfg)
    assert result.exit_code == ExitCode.BAD_MACHINE
    # Only the validate segment ran.
    assert Segment.SETUP not in result.segments


def test_stage_out_failure_when_chirp_unavailable():
    env = Environment()
    services = build_stack(env, chirp_connections=1)
    services.chirp.queue_timeout = 1.0
    services.chirp.link.set_capacity(0.001)  # effectively stuck

    # A background hog occupies the single Chirp connection forever.
    def hog(env):
        yield from services.chirp.put(1e12)

    env.process(hog(env))
    # No pile-up overlay so the input phase does not touch Chirp.
    wf = WorkflowConfig(
        label="mc",
        code=simulation_code(intrinsic_failure_rate=0.0, pileup_bytes_per_event=0.0),
        n_events=1000,
    )
    result = run_one_task(env, services, wf, mc_payload())
    assert result.exit_code == ExitCode.STAGE_OUT_FAILED


def test_hot_cache_setup_is_fast():
    env = Environment()
    services = build_stack(env)
    wf = WorkflowConfig(
        label="mc", code=simulation_code(intrinsic_failure_rate=0.0), n_events=1000
    )
    cold = run_one_task(env, services, wf, mc_payload())
    env2 = Environment()
    services2 = build_stack(env2)
    hot = run_one_task(env2, services2, wf, mc_payload(), cache_hot=True)
    assert hot.segments[Segment.SETUP] < cold.segments[Segment.SETUP]
