"""repro — a full reproduction of Lobster (CLUSTER 2015).

Lobster runs data-intensive high-energy-physics workloads on
*non-dedicated* clusters: machines that evict jobs without warning, hold
none of the input data, and have no HEP software installed.  This
package reimplements the complete system described in the paper —
Work Queue execution, CVMFS/Parrot/Squid software delivery, XrootD
streaming, Chirp/HDFS output handling, task-size optimisation, merging
strategies, and §5-style monitoring — on top of a discrete-event
simulation substrate standing in for the 20k-core campus cluster.

Quick start::

    from repro.desim import Environment
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.analysis import simulation_code

    env = Environment()
    services = Services.default(env)
    cfg = LobsterConfig(workflows=[WorkflowConfig(
        label="mc", code=simulation_code(), n_events=100_000)])
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, 50)
    pool = CondorPool(env, machines)
    pool.submit(GlideinRequest(n_workers=50), run.worker_payload)
    env.run(until=run.process)
"""

__version__ = "1.0.0"

from . import (
    analysis,
    batch,
    core,
    cvmfs,
    dbs,
    desim,
    distributions,
    hadoop,
    monitor,
    storage,
    testing,
    wq,
)
from .testing import reset_id_counters

__all__ = [
    "analysis",
    "batch",
    "core",
    "cvmfs",
    "dbs",
    "desim",
    "distributions",
    "hadoop",
    "monitor",
    "storage",
    "testing",
    "wq",
    "reset_id_counters",
    "__version__",
]
