"""Test and replay helpers.

The simulation itself is deterministic: nothing in the stack reads the
wall clock or unseeded randomness.  The one wrinkle for *byte-identical*
replays inside a single interpreter is cosmetic identity: task ids,
worker names, slot ids, and similar labels come from process-global
``itertools.count`` counters, so a second run of the same scenario gets
different labels (with identical dynamics).  :func:`reset_id_counters`
rewinds those counters, making two same-seed runs in one process emit
byte-identical event streams (e.g. through a
:class:`~repro.monitor.export.JsonlSink`).

Only use this between independent simulations — never while an
environment is live, or new objects will collide with existing ids.

Span ids from :class:`~repro.monitor.SpanTracer` are *not* on this
list: the tracer keeps a per-instance counter, so a fresh tracer always
starts at span id 1 and traced replays are reproducible without any
global reset.
"""

from __future__ import annotations

import os
from itertools import count

__all__ = ["reset_id_counters", "resolve_test_seed"]


def resolve_test_seed(default: int = 0) -> int:
    """The seed for this CI matrix leg (``REPRO_TEST_SEED``, else *default*).

    The single source of truth for seed resolution: both conftests
    (``tests/`` and ``benchmarks/``) and the sweep engine
    (:meth:`repro.sweep.SweepSpec.resolved_seed`) call this, so a CI
    matrix leg varies every stochastic surface consistently while a
    plain local run stays at seed 0.
    """
    raw = os.environ.get("REPRO_TEST_SEED", "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_TEST_SEED must be an integer, got {raw!r}"
        ) from None


def reset_id_counters() -> None:
    """Rewind every process-global id/name counter to its initial value."""
    from .batch.cloud import CloudInstance
    from .batch.condor import WorkerSlot
    from .core.merge import MergeGroup
    from .cvmfs.parrot import ParrotCache
    from .cvmfs.squid import SquidProxy
    from .hadoop.hdfs import DataNode
    from .storage.chirp import ChirpServer
    from .wq.foreman import Foreman
    from .wq.task import Task
    from .wq.worker import Worker

    Task._ids = count(1)
    MergeGroup._next_id = 1
    for cls in (
        Worker,
        Foreman,
        WorkerSlot,
        ParrotCache,
        SquidProxy,
        ChirpServer,
        CloudInstance,
        DataNode,
    ):
        cls._ids = count()
