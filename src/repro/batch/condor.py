"""HTCondor-like opportunistic pool with evictions.

Lobster workers are submitted to the batch system of a cluster the user
does not own ("glide-ins").  The batch system starts hundreds to
thousands of them, and evicts them whenever the owner's workload returns
or scheduling policy dictates.  :class:`CondorPool` models this:

* bulk submission with a configurable start ramp (the scheduler cannot
  launch 10k processes in the same instant),
* placement onto :class:`~repro.batch.machines.Machine` cores,
* per-worker survival times drawn from an
  :class:`~repro.distributions.EvictionModel`; on expiry the worker's
  payload process receives an :class:`~repro.desim.Interrupt` whose cause
  is an :class:`Eviction`,
* optional automatic resubmission of evicted workers (the normal mode:
  the batch queue keeps restarting the glide-in until the user removes
  it),
* an :class:`~repro.batch.traces.AvailabilityTrace` of every span, from
  which Fig 2 is derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Callable, Generator, List, Optional, Sequence

import numpy as np

from ..desim import Environment, Topics
from ..distributions import EvictionModel, NoEviction
from .machines import Machine, MachinePool
from .traces import AvailabilityTrace

__all__ = ["Eviction", "GlideinRequest", "WorkerSlot", "CondorPool"]


class Eviction:
    """Interrupt cause delivered to a payload process on eviction."""

    def __init__(self, slot: "WorkerSlot", at: float):
        self.slot = slot
        self.at = at

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Eviction slot={self.slot.slot_id} at={self.at:.0f}>"


@dataclass
class GlideinRequest:
    """A bulk request for workers, as submitted to the batch queue."""

    n_workers: int
    cores_per_worker: int = 8
    #: Memory each worker claims (MB); 0 = don't match on memory.
    memory_mb_per_worker: int = 0
    #: Machine attributes every worker requires (ClassAd-style).
    required_attributes: tuple = ()
    #: Re-start a worker after eviction (batch queue keeps it queued).
    resubmit: bool = True
    #: Mean seconds between consecutive worker starts during ramp-up.
    start_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.n_workers <= 0 or self.cores_per_worker <= 0:
            raise ValueError("n_workers and cores_per_worker must be positive")
        if self.memory_mb_per_worker < 0:
            raise ValueError("memory_mb_per_worker must be non-negative")
        if self.start_interval < 0:
            raise ValueError("start_interval must be non-negative")
        self.cancelled = False

    @property
    def requirements(self):
        from .matching import Requirements

        return Requirements(
            cores=self.cores_per_worker,
            memory_mb=self.memory_mb_per_worker,
            attributes=frozenset(self.required_attributes),
        )

    def cancel(self) -> None:
        """Stop resubmitting (the user condor_rm's the glide-ins)."""
        self.cancelled = True


class WorkerSlot:
    """A live claim of cores on a machine hosting one worker payload."""

    _ids = count()

    def __init__(self, pool: "CondorPool", machine: Machine, cores: int):
        self.slot_id = f"slot{next(self._ids):06d}"
        self.pool = pool
        self.machine = machine
        self.cores = cores
        self.started = pool.env.now
        #: Fired by an external actor (the resource owner) to force
        #: eviction regardless of the survival draw.
        self.evict_event = pool.env.event()
        #: Fired by the pool once the slot's cores have been released.
        self.released = pool.env.event()

    def request_eviction(self) -> None:
        """Owner-side preemption: evict whatever runs in this slot."""
        if not self.evict_event.triggered:
            self.evict_event.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<WorkerSlot {self.slot_id} on {self.machine.name} ({self.cores} cores)>"


PayloadFactory = Callable[[WorkerSlot], Generator]


class CondorPool:
    """The opportunistic batch system hosting Lobster's glide-in workers."""

    def __init__(
        self,
        env: Environment,
        machines: MachinePool,
        eviction: Optional[EvictionModel] = None,
        seed: int = 0,
        trace: Optional[AvailabilityTrace] = None,
        workflows: Optional[Sequence[str]] = None,
    ):
        self.env = env
        self.machines = machines
        self.eviction = eviction or NoEviction()
        #: Workflow labels served by this pool, stamped onto eviction
        #: events so co-hosted runs on one bus can filter each other out
        #: (a pool serves a whole run, so this is a list, not a single
        #: label).  None means unattributed (legacy single-run buses).
        self.workflows: Optional[List[str]] = list(workflows) if workflows else None
        self.rng = np.random.default_rng(seed)
        self.trace = trace if trace is not None else AvailabilityTrace()
        self.active_workers = 0
        self.total_evictions = 0
        #: Slots currently hosting a payload (for owner-workload models).
        self.active_slots: list = []
        self._draining = False
        #: (time, active) samples for pool-occupancy timelines.
        self.occupancy: List[tuple] = []
        # Per-topic fast paths: occupancy fires once per slot start.
        self._p_occupancy = env.bus.port(Topics.POOL_OCCUPANCY)
        self._p_eviction = env.bus.port(Topics.EVICTION)

    # -- submission -----------------------------------------------------------
    def submit(self, request: GlideinRequest, payload_factory: PayloadFactory):
        """Submit a bulk glide-in request; returns the submission process."""
        return self.env.process(
            self._submit_proc(request, payload_factory), name="condor-submit"
        )

    def drain(self) -> None:
        """Stop starting or restarting any workers (end of workload)."""
        self._draining = True

    # -- internals --------------------------------------------------------------
    def _submit_proc(self, request: GlideinRequest, payload_factory: PayloadFactory):
        for i in range(request.n_workers):
            if self._draining or request.cancelled:
                return
            self.env.process(
                self._slot_lifecycle(request, payload_factory),
                name=f"slot-lifecycle-{i}",
            )
            if request.start_interval > 0:
                yield self.env.timeout(
                    self.rng.exponential(request.start_interval)
                )
            else:
                yield self.env.timeout(0)

    def _acquire_machine(self, requirements):
        """Wait until some machine satisfies *requirements*, then claim."""
        while True:
            machine = self.machines.place(requirements)
            if machine is not None:
                machine.claim(requirements.cores, requirements.memory_mb)
                return machine
            # Wait for any release (by any pool sharing these machines),
            # then retry.
            yield self.machines.capacity_changed
        return None  # pragma: no cover

    def _release_machine(self, machine: Machine, cores: int, memory_mb: int = 0) -> None:
        machine.release(cores, memory_mb)
        self.machines.notify_release()

    def _slot_lifecycle(self, request: GlideinRequest, payload_factory: PayloadFactory):
        requirements = request.requirements
        while not (self._draining or request.cancelled):
            machine = yield from self._acquire_machine(requirements)
            slot = WorkerSlot(self, machine, request.cores_per_worker)
            self.active_workers += 1
            self.active_slots.append(slot)
            self.occupancy.append((self.env.now, self.active_workers))
            port = self._p_occupancy
            if port.on:
                port.emit(
                    active=self.active_workers,
                    slot=slot.slot_id,
                    machine=machine.name,
                )

            survival = float(
                self.eviction.sample_survival(self.rng, start=self.env.now)
            )
            payload = self.env.process(
                payload_factory(slot), name=f"payload-{slot.slot_id}"
            )
            reason = "completed"
            waits = [payload, slot.evict_event]
            if survival != float("inf"):
                waits.append(self.env.timeout(survival))

            try:
                outcome = yield self.env.any_of(waits)
            except Exception:
                # Payload crashed before any eviction trigger.
                reason = "failed"
                outcome = None
            if outcome is not None and payload not in outcome:
                # Survival expired or the owner reclaimed the node.
                reason = "evicted"
                self.total_evictions += 1
                port = self._p_eviction
                if port.on:
                    port.emit(
                        slot=slot.slot_id,
                        machine=machine.name,
                        lived=self.env.now - slot.started,
                        total=self.total_evictions,
                        workflows=self.workflows,
                    )
                payload.interrupt(Eviction(slot, self.env.now))
                try:
                    yield payload  # allow cleanup to finish
                except Exception:
                    pass

            self.active_workers -= 1
            self.active_slots.remove(slot)
            self.occupancy.append((self.env.now, self.active_workers))
            self.trace.record(slot.slot_id, slot.started, self.env.now, reason)
            self._release_machine(
                machine, request.cores_per_worker, request.memory_mb_per_worker
            )
            if not slot.released.triggered:
                slot.released.succeed()

            if reason != "evicted" or not request.resubmit:
                return
