"""ClassAd-style requirements matching for worker placement.

HTCondor matches jobs to machines by evaluating job requirements against
machine ClassAds.  The wrapper's very first segment (paper §3: "checks
for basic machine compatibility") exists because opportunistic matching
is imperfect — so the model supports both sides: declarative matching at
placement time, and the wrapper's runtime pre-check for what matching
cannot see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Union

from .machines import Machine

__all__ = ["Requirements", "matches"]


@dataclass(frozen=True)
class Requirements:
    """What a glide-in needs from a machine."""

    cores: int = 1
    memory_mb: int = 0
    #: Machine attributes that must all be present (e.g. "x86_64",
    #: "outbound-network").
    attributes: FrozenSet[str] = frozenset()

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError("cores must be positive")
        if self.memory_mb < 0:
            raise ValueError("memory_mb must be non-negative")
        object.__setattr__(self, "attributes", frozenset(self.attributes))

    @classmethod
    def coerce(cls, value: Union[int, "Requirements"]) -> "Requirements":
        """Accept a bare core count for backward compatibility."""
        if isinstance(value, Requirements):
            return value
        return cls(cores=int(value))


def matches(machine: Machine, req: Requirements) -> bool:
    """Can *machine* host a worker with these requirements right now?"""
    if machine.free_cores < req.cores:
        return False
    if req.memory_mb and machine.free_memory_mb < req.memory_mb:
        return False
    if req.attributes and not req.attributes <= machine.attributes:
        return False
    return True
