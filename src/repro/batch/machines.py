"""Physical machine model for the opportunistic cluster.

A :class:`Machine` is a node with a core count, a local-disk bandwidth
(one shared spindle for all Parrot caches on the node) and a NIC.  The
:class:`MachinePool` groups homogeneous or heterogeneous machines and
hands out placement for glide-in workers.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..desim import Environment
from ..net import Fabric, rack_for

__all__ = ["Machine", "MachinePool"]

GBIT = 125_000_000.0  # bytes/second per Gbit/s
MB = 1_000_000.0


class Machine:
    """A compute node: cores, shared NIC, shared local disk.

    On a shared campus *fabric* the NIC attaches under *switch* (a rack
    node), so all the node's traffic crosses the rack trunk and contends
    with every other protocol on the campus core; without a fabric the
    machine gets a private flat one and behaves as before.
    """

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 8,
        nic_bandwidth: float = 1 * GBIT,
        disk_bandwidth: float = 400 * MB,
        memory_mb: int = 32_000,
        attributes=(),
        fabric: Optional[Fabric] = None,
        switch: Optional[str] = None,
    ):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.env = env
        self.name = name
        self.cores = cores
        self.memory_mb = memory_mb
        #: ClassAd-style machine attributes for requirements matching.
        self.attributes = frozenset(attributes)
        if fabric is None:
            fabric = Fabric(env)
            switch = None
        self.fabric = fabric
        #: All traffic in/out of the node shares the NIC.
        self.nic = fabric.attach(
            f"{name}.nic", nic_bandwidth, node=name, parent=switch
        )
        #: All cache fills and stage-ins on the node share the local disk
        #: (a point resource, not part of any route).
        self.disk = fabric.attach(f"{name}.disk", disk_bandwidth)
        self.claimed_cores = 0
        self.claimed_memory_mb = 0
        #: Misconfigured "black-hole" node: every task run here fast-fails
        #: (the wrapper checks this before starting real work).  Set by
        #: the fault injector; the master's blacklisting is the defence.
        self.black_hole = False

    @property
    def free_cores(self) -> int:
        return self.cores - self.claimed_cores

    @property
    def free_memory_mb(self) -> int:
        return self.memory_mb - self.claimed_memory_mb

    def claim(self, cores: int, memory_mb: int = 0) -> None:
        if cores > self.free_cores:
            raise ValueError(
                f"{self.name}: cannot claim {cores} cores, only {self.free_cores} free"
            )
        if memory_mb > self.free_memory_mb:
            raise ValueError(
                f"{self.name}: cannot claim {memory_mb} MB, "
                f"only {self.free_memory_mb} MB free"
            )
        self.claimed_cores += cores
        self.claimed_memory_mb += memory_mb

    def release(self, cores: int, memory_mb: int = 0) -> None:
        self.claimed_cores = max(0, self.claimed_cores - cores)
        self.claimed_memory_mb = max(0, self.claimed_memory_mb - memory_mb)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Machine {self.name} {self.claimed_cores}/{self.cores} cores claimed>"


class MachinePool:
    """A collection of machines with simple first-fit placement."""

    def __init__(self, env: Environment):
        self.env = env
        self.machines: List[Machine] = []
        # Release notification lives on the *shared* pool, not on any one
        # batch system: after a master crash two CondorPools (the dead
        # wave's and the warm restart's) place onto the same machines,
        # and a release by one must wake the other's pending placements.
        self._capacity_changed = env.event()

    @property
    def capacity_changed(self):
        """Event fired at the next core release; yield it to wait."""
        return self._capacity_changed

    def notify_release(self) -> None:
        """Wake every placement waiter (cores were just released)."""
        ev, self._capacity_changed = self._capacity_changed, self.env.event()
        ev.succeed()

    @classmethod
    def homogeneous(
        cls,
        env: Environment,
        n_machines: int,
        cores: int = 8,
        nic_bandwidth: float = 1 * GBIT,
        disk_bandwidth: float = 400 * MB,
        fabric: Optional[Fabric] = None,
        machines_per_switch: int = 24,
        trunk_bandwidth: float = 40 * GBIT,
    ) -> "MachinePool":
        """*n_machines* identical nodes; with a shared *fabric*, grouped
        under rack switches of *machines_per_switch* nodes whose trunks
        feed the campus core."""
        pool = cls(env)
        for i in range(n_machines):
            switch = None
            if fabric is not None:
                switch = rack_for(
                    fabric, i, machines_per_switch, trunk_bandwidth
                )
            pool.add(
                Machine(
                    env,
                    f"node{i:05d}",
                    cores=cores,
                    nic_bandwidth=nic_bandwidth,
                    disk_bandwidth=disk_bandwidth,
                    fabric=fabric,
                    switch=switch,
                )
            )
        return pool

    def add(self, machine: Machine) -> None:
        self.machines.append(machine)

    @property
    def total_cores(self) -> int:
        return sum(m.cores for m in self.machines)

    @property
    def free_cores(self) -> int:
        return sum(m.free_cores for m in self.machines)

    def place(self, requirements) -> Optional[Machine]:
        """First machine satisfying *requirements* (a core count or a
        :class:`~repro.batch.matching.Requirements`); None if none can."""
        from .matching import Requirements, matches

        req = Requirements.coerce(requirements)
        for machine in self.machines:
            if matches(machine, req):
                return machine
        return None

    def __iter__(self) -> Iterator[Machine]:
        return iter(self.machines)

    def __len__(self) -> int:
        return len(self.machines)
