"""Commercial cloud bursting (paper §2, §7).

The paper counts commercial clouds among the opportunistic resources a
Lobster user can harness, and §7 notes the design "makes it possible to
harvest resources from several clusters, and even commercial clouds,
together".  A :class:`CloudProvider` models the cloud side of that mix:

* instances are provisioned on demand with a boot delay,
* they are *not* evicted — you pay for stability —
* but they bill per core-hour against an optional budget: when the
  budget runs out, no new instances launch and running ones terminate
  at the end of their current billing hour.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Generator, List, Optional

import numpy as np

from ..desim import Environment, Interrupt
from ..distributions import Sampler, TruncatedGaussianSampler
from .machines import Machine

__all__ = ["CloudInstance", "CloudProvider"]

HOUR = 3600.0
GBIT = 125_000_000.0
MB = 1_000_000.0


class CloudInstance:
    """One running VM: a machine plus billing bookkeeping."""

    _ids = count()

    def __init__(self, provider: "CloudProvider", machine: Machine):
        self.instance_id = f"i-{next(self._ids):08d}"
        self.provider = provider
        self.machine = machine
        self.launched = provider.env.now
        self.terminated: Optional[float] = None

    @property
    def running(self) -> bool:
        return self.terminated is None

    def core_hours(self, now: Optional[float] = None) -> float:
        end = self.terminated if self.terminated is not None else (
            now if now is not None else self.provider.env.now
        )
        return self.machine.cores * (end - self.launched) / HOUR

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CloudInstance {self.instance_id} cores={self.machine.cores}>"


class CloudProvider:
    """On-demand, billed, eviction-free capacity."""

    def __init__(
        self,
        env: Environment,
        instance_cores: int = 8,
        price_per_core_hour: float = 0.05,
        budget: Optional[float] = None,
        boot_delay: Optional[Sampler] = None,
        nic_bandwidth: float = 1 * GBIT,
        disk_bandwidth: float = 400 * MB,
        name: str = "cloud",
        seed: int = 0,
    ):
        if instance_cores <= 0:
            raise ValueError("instance_cores must be positive")
        if price_per_core_hour < 0:
            raise ValueError("price must be non-negative")
        if budget is not None and budget <= 0:
            raise ValueError("budget must be positive when given")
        self.env = env
        self.name = name
        self.instance_cores = instance_cores
        self.price_per_core_hour = price_per_core_hour
        self.budget = budget
        self.boot_delay = boot_delay or TruncatedGaussianSampler(120.0, 30.0, low=10.0)
        self.nic_bandwidth = nic_bandwidth
        self.disk_bandwidth = disk_bandwidth
        self.rng = np.random.default_rng(seed)
        self.instances: List[CloudInstance] = []
        self._draining = False

    # -- public API -----------------------------------------------------------
    def request_instances(
        self, n: int, payload_factory: Callable[[CloudInstance], Generator]
    ):
        """Launch *n* instances, each running one payload; returns the process."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.env.process(
            self._launch(n, payload_factory), name=f"{self.name}-launch"
        )

    def drain(self) -> None:
        """Stop launching; instances terminate when their payload ends."""
        self._draining = True

    # -- billing -----------------------------------------------------------------
    def cost(self, now: Optional[float] = None) -> float:
        return self.price_per_core_hour * sum(
            i.core_hours(now) for i in self.instances
        )

    def within_budget(self) -> bool:
        return self.budget is None or self.cost() < self.budget

    @property
    def running_instances(self) -> int:
        return sum(1 for i in self.instances if i.running)

    # -- internals ------------------------------------------------------------------
    def _launch(self, n: int, payload_factory):
        for i in range(n):
            if self._draining or not self.within_budget():
                return
            delay = float(np.atleast_1d(self.boot_delay.sample(self.rng, 1))[0])
            yield self.env.timeout(delay)
            machine = Machine(
                self.env,
                f"{self.name}-vm{len(self.instances):05d}",
                cores=self.instance_cores,
                nic_bandwidth=self.nic_bandwidth,
                disk_bandwidth=self.disk_bandwidth,
            )
            machine.claim(self.instance_cores)
            instance = CloudInstance(self, machine)
            self.instances.append(instance)
            self.env.process(
                self._instance_lifecycle(instance, payload_factory),
                name=f"{self.name}-{instance.instance_id}",
            )

    def _instance_lifecycle(self, instance: CloudInstance, payload_factory):
        payload = self.env.process(
            payload_factory(instance), name=f"payload-{instance.instance_id}"
        )
        budget_watch = self.env.process(
            self._budget_watch(instance, payload), name="budget-watch"
        )
        try:
            yield payload
        except Exception:
            pass
        finally:
            instance.terminated = self.env.now
            instance.machine.release(self.instance_cores)
            if budget_watch.is_alive:
                budget_watch.interrupt()

    def _budget_watch(self, instance: CloudInstance, payload):
        """Terminate the payload at the next billing hour once over budget."""
        if self.budget is None:
            return
        try:
            while True:
                yield self.env.timeout(HOUR)
                if not instance.running:
                    return
                if not self.within_budget() and payload.is_alive:
                    payload.interrupt("cloud-budget-exhausted")
                    return
        except Interrupt:
            return

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CloudProvider {self.name} running={self.running_instances} "
            f"cost=${self.cost():.2f}>"
        )
