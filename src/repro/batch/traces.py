"""Worker availability traces (paper Fig 2).

The paper derives its empirical eviction model from months of Lobster
logs recording when each worker joined and left the pool.  We reproduce
both sides of that pipeline:

* :class:`AvailabilityTrace` — the log itself: (join, leave, reason)
  spans, recorded live by :class:`repro.batch.condor.CondorPool` and
  reducible to availability durations and the Fig 2 hazard curve.
* :func:`synthetic_availability_trace` — a generator standing in for the
  real campus logs we do not have: a mixture of short-lived glide-ins
  (killed quickly when owners reclaim nodes) and a long tail of workers
  that survive until the batch system's max walltime.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..distributions.eviction import eviction_probability_curve

__all__ = ["WorkerSpan", "AvailabilityTrace", "synthetic_availability_trace"]

HOUR = 3600.0


@dataclass(frozen=True)
class WorkerSpan:
    """One worker's availability interval."""

    worker_id: str
    joined: float
    left: float
    reason: str = "evicted"  #: "evicted" | "completed" | "walltime" | "running"

    @property
    def duration(self) -> float:
        return self.left - self.joined

    def __post_init__(self) -> None:
        if self.left < self.joined:
            raise ValueError("left must not precede joined")


class AvailabilityTrace:
    """A log of worker availability spans across one or many runs."""

    def __init__(self, spans: Optional[Sequence[WorkerSpan]] = None):
        self.spans: List[WorkerSpan] = list(spans) if spans else []

    def record(self, worker_id: str, joined: float, left: float, reason: str = "evicted") -> None:
        self.spans.append(WorkerSpan(worker_id, joined, left, reason))

    def durations(self, only_evictions: bool = False) -> np.ndarray:
        """Availability durations in seconds.

        With *only_evictions* the spans that ended for other reasons
        (workload finished, walltime) are excluded, matching the paper's
        focus on involuntary loss.
        """
        spans = self.spans
        if only_evictions:
            spans = [s for s in spans if s.reason == "evicted"]
        return np.asarray([s.duration for s in spans], dtype=float)

    def eviction_curve(
        self, bin_width: float = HOUR, max_time: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fig 2: (bin starts, eviction probability, binomial errors)."""
        return eviction_probability_curve(
            self.durations(), bin_width=bin_width, max_time=max_time
        )

    def merge(self, other: "AvailabilityTrace") -> "AvailabilityTrace":
        """Combine logs from multiple runs (the paper pools months of them)."""
        return AvailabilityTrace(self.spans + other.spans)

    # -- archival (operators pool traces across months of runs) -----------
    def to_csv(self, path: str) -> None:
        with open(path, "w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["worker_id", "joined", "left", "reason"])
            for s in self.spans:
                writer.writerow([s.worker_id, s.joined, s.left, s.reason])

    @classmethod
    def from_csv(cls, path: str) -> "AvailabilityTrace":
        trace = cls()
        with open(path, newline="") as fh:
            for row in csv.DictReader(fh):
                trace.record(
                    row["worker_id"],
                    float(row["joined"]),
                    float(row["left"]),
                    row["reason"],
                )
        return trace

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AvailabilityTrace n={len(self.spans)}>"


def synthetic_availability_trace(
    n_workers: int = 20_000,
    seed: int = 0,
    short_fraction: float = 0.55,
    short_scale: float = 1.2 * HOUR,
    long_scale: float = 9.0 * HOUR,
    walltime: float = 24.0 * HOUR,
) -> AvailabilityTrace:
    """Synthesize a multi-month availability log.

    Mixture model: a *short* population of glide-ins evicted quickly
    (exponential, ``short_scale``) and a *long* population that tends to
    run until preempted much later or hits the batch walltime.  The
    resulting hazard decreases with availability time — young workers are
    the most at risk — which is the qualitative content of the paper's
    Fig 2.
    """
    if not 0 <= short_fraction <= 1:
        raise ValueError("short_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    n_short = int(round(n_workers * short_fraction))
    n_long = n_workers - n_short
    short = rng.exponential(short_scale, n_short)
    long = rng.exponential(long_scale, n_long)
    durations = np.concatenate([short, long])
    reasons = np.where(durations >= walltime, "walltime", "evicted")
    durations = np.minimum(durations, walltime)
    # Spread joins over a few months of operation.
    joins = rng.uniform(0.0, 90 * 24 * HOUR, n_workers)
    trace = AvailabilityTrace()
    order = rng.permutation(n_workers)
    for i in order:
        trace.record(
            f"w{i:06d}", float(joins[i]), float(joins[i] + durations[i]), str(reasons[i])
        )
    return trace
