"""The resource owner's workload (paper §2–3).

Evictions on opportunistic clusters are not an abstract hazard: they
happen because *the owner's jobs come back*.  :class:`OwnerWorkload`
models that explicitly — owner jobs arrive as a Poisson process, each
preempts a randomly chosen glide-in slot, occupies the node's cores for
its own duration, and releases them.  Combined with (or instead of) a
survival-draw :class:`~repro.distributions.EvictionModel`, this produces
workload-driven eviction patterns: bursts when the owner runs campaigns,
calm when the cluster is idle.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..desim import Environment, Topics
from ..distributions import ExponentialSampler, Sampler
from .condor import CondorPool

__all__ = ["OwnerWorkload", "OwnerJob"]


class OwnerJob:
    """One owner job: which machine it took, for how long."""

    def __init__(self, machine_name: str, started: float, duration: float):
        self.machine_name = machine_name
        self.started = started
        self.duration = duration

    @property
    def ends(self) -> float:
        return self.started + self.duration

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<OwnerJob on {self.machine_name} for {self.duration:.0f}s>"


class OwnerWorkload:
    """Poisson arrivals of owner jobs that preempt glide-ins."""

    def __init__(
        self,
        env: Environment,
        pool: CondorPool,
        arrival_rate: float,
        duration: Optional[Sampler] = None,
        seed: int = 0,
    ):
        """*arrival_rate* in jobs per second (e.g. ``2 / 3600`` = two per hour)."""
        if arrival_rate <= 0:
            raise ValueError("arrival_rate must be positive")
        self.env = env
        self.pool = pool
        self.arrival_rate = arrival_rate
        self.duration = duration or ExponentialSampler(2 * 3600.0)
        self.rng = np.random.default_rng(seed)
        self.jobs: List[OwnerJob] = []
        self.preemptions = 0
        self._stopped = False
        self._p_preempt = env.bus.port(Topics.OWNER_PREEMPT)
        self.process = env.process(self._arrivals(), name="owner-workload")

    def stop(self) -> None:
        self._stopped = True

    # -- internals -----------------------------------------------------------
    def _arrivals(self):
        env = self.env
        while not self._stopped:
            yield env.timeout(self.rng.exponential(1.0 / self.arrival_rate))
            if self._stopped:
                return
            slots = self.pool.active_slots
            if not slots:
                continue  # cluster idle from the owner's perspective too
            slot = slots[int(self.rng.integers(0, len(slots)))]
            duration = float(np.atleast_1d(self.duration.sample(self.rng, 1))[0])
            env.process(
                self._run_owner_job(slot, duration),
                name="owner-job",
            )

    def _run_owner_job(self, slot, duration: float):
        env = self.env
        machine = slot.machine
        cores = slot.cores
        self.preemptions += 1
        port = self._p_preempt
        if port.on:
            port.emit(
                slot=slot.slot_id,
                machine=machine.name,
                duration=duration,
            )
        slot.request_eviction()
        # Wait for the batch system to free the slot's cores.
        yield slot.released
        job = OwnerJob(machine.name, env.now, duration)
        self.jobs.append(job)
        try:
            machine.claim(cores)
        except ValueError:
            # A resubmitted glide-in raced us onto the node; the owner's
            # scheduler would simply evict again — next arrival will.
            return
        try:
            yield env.timeout(duration)
        finally:
            self.pool._release_machine(machine, cores)
