"""``repro.batch`` — the non-dedicated cluster substrate.

Models an opportunistic HTCondor-style pool: machines owned by someone
else, glide-in worker jobs submitted in bulk, and evictions driven by a
survival model or by the resource owner's own workload.  Also provides
availability-trace recording and synthesis (paper Fig 2).
"""

from .machines import Machine, MachinePool
from .traces import AvailabilityTrace, WorkerSpan, synthetic_availability_trace
from .condor import CondorPool, Eviction, GlideinRequest, WorkerSlot
from .cloud import CloudInstance, CloudProvider
from .matching import Requirements, matches
from .owner import OwnerJob, OwnerWorkload

__all__ = [
    "Machine",
    "MachinePool",
    "AvailabilityTrace",
    "WorkerSpan",
    "synthetic_availability_trace",
    "CondorPool",
    "Eviction",
    "GlideinRequest",
    "WorkerSlot",
    "OwnerWorkload",
    "OwnerJob",
    "Requirements",
    "matches",
    "CloudProvider",
    "CloudInstance",
]
