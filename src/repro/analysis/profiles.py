"""A catalog of realistic analysis-code profiles.

The paper's two production workloads (data processing and MC) are the
extremes of a spectrum of HEP job profiles that differ in per-event CPU,
input appetite, and output reduction.  This catalog provides documented
presets so examples and benchmarks can exercise the stack with varied,
realistic demand mixes.

Numbers are representative of Run-1/Run-2 CMS workflows on ~2015
hardware (HS06-era cores): a skim barely computes but moves everything;
ntupling computes a little and reduces hard; full reconstruction is
CPU-heavy; GEN-SIM creates events from nothing.
"""

from __future__ import annotations

from typing import Dict, Callable

from ..distributions import TruncatedGaussianSampler
from .code import AnalysisCode, WorkloadKind

__all__ = ["PROFILES", "profile", "list_profiles"]

KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0


def _skim() -> AnalysisCode:
    """Event selection only: trivial CPU, full input, modest reduction."""
    return AnalysisCode(
        name="skim",
        kind=WorkloadKind.DATA,
        per_event_cpu=TruncatedGaussianSampler(0.01, 0.003, low=1e-4),
        input_bytes_per_event=100 * KB,
        output_bytes_per_event=20 * KB,  # keeps 1 event in 5, whole events
        intrinsic_failure_rate=0.001,
    )


def _ntuple() -> AnalysisCode:
    """Ntupling: light CPU, strong reduction (the paper's analysis case)."""
    return AnalysisCode(
        name="ntuple",
        kind=WorkloadKind.DATA,
        per_event_cpu=TruncatedGaussianSampler(0.08, 0.02, low=1e-4),
        input_bytes_per_event=100 * KB,
        output_bytes_per_event=5 * KB,
        intrinsic_failure_rate=0.002,
    )


def _rereco() -> AnalysisCode:
    """Re-reconstruction: heavy CPU over full events, similar-size output."""
    return AnalysisCode(
        name="rereco",
        kind=WorkloadKind.DATA,
        per_event_cpu=TruncatedGaussianSampler(3.0, 0.8, low=0.1),
        input_bytes_per_event=200 * KB,
        output_bytes_per_event=150 * KB,
        intrinsic_failure_rate=0.004,
    )


def _gensim() -> AnalysisCode:
    """GEN-SIM Monte-Carlo: no input beyond pile-up, very heavy CPU."""
    return AnalysisCode(
        name="gensim",
        kind=WorkloadKind.SIMULATION,
        per_event_cpu=TruncatedGaussianSampler(25.0, 8.0, low=1.0),
        input_bytes_per_event=0.0,
        output_bytes_per_event=500 * KB,
        pileup_bytes_per_event=5 * KB,
        intrinsic_failure_rate=0.006,
    )


def _digi_reco_mc() -> AnalysisCode:
    """MC digitisation+reconstruction (the paper's Fig 11 workload class)."""
    return AnalysisCode(
        name="digi-reco-mc",
        kind=WorkloadKind.SIMULATION,
        per_event_cpu=TruncatedGaussianSampler(1.2, 0.3, low=1e-3),
        input_bytes_per_event=0.0,
        output_bytes_per_event=250 * KB,
        pileup_bytes_per_event=2 * KB,
        intrinsic_failure_rate=0.004,
    )


PROFILES: Dict[str, Callable[[], AnalysisCode]] = {
    "skim": _skim,
    "ntuple": _ntuple,
    "rereco": _rereco,
    "gensim": _gensim,
    "digi-reco-mc": _digi_reco_mc,
}


def profile(name: str) -> AnalysisCode:
    """A fresh :class:`AnalysisCode` for the named profile."""
    try:
        return PROFILES[name]()
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None


def list_profiles() -> Dict[str, str]:
    """name → one-line description."""
    return {
        name: factory().name + f" ({factory().kind.value})"
        for name, factory in PROFILES.items()
    }
