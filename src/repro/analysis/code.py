"""The analysis-code cost model.

An :class:`AnalysisCode` captures everything the scheduler and the
wrapper need to know about the user's executable without running real
physics: how much CPU each event costs, how much output it produces, how
much supporting software must be pulled from CVMFS, and how often it
fails for its own (transient) reasons.

Two factory functions provide the paper's workload families:

* :func:`data_processing_code` — reads ~100 kB/event over the WAN,
  reduces it by an order of magnitude (paper §4.2: output is at least
  10× smaller than processed input);
* :func:`simulation_code` — negligible external input except pile-up
  overlay, heavier CPU per event, larger per-event output (it *creates*
  events rather than filtering them).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from ..distributions import Sampler, TruncatedGaussianSampler

__all__ = ["WorkloadKind", "AnalysisCode", "data_processing_code", "simulation_code"]

KB = 1_000.0
MB = 1_000_000.0
GB = 1_000_000_000.0


class WorkloadKind(Enum):
    """The two families the paper runs in production (§6)."""

    DATA = "data-processing"
    SIMULATION = "simulation"


@dataclass
class AnalysisCode:
    """Black-box model of a user analysis executable."""

    name: str
    kind: WorkloadKind
    #: CPU seconds per event (distribution).
    per_event_cpu: Sampler
    #: Bytes read per event from the input source (0 for pure MC).
    input_bytes_per_event: float
    #: Bytes written per event to the output file.
    output_bytes_per_event: float
    #: Probability that a run fails for intrinsic (application) reasons.
    intrinsic_failure_rate: float = 0.002
    #: Total CVMFS software volume a cold cache must pull (paper: ~1.5 GB).
    software_volume: float = 1.5 * GB
    #: Conditions/calibration data pulled via Frontier per task.
    conditions_volume: float = 50 * MB
    #: Pile-up overlay bytes per event (simulation only; the residual
    #: external input the paper mentions for MC).
    pileup_bytes_per_event: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.intrinsic_failure_rate < 1:
            raise ValueError("intrinsic_failure_rate must lie in [0, 1)")
        for attr in (
            "input_bytes_per_event",
            "output_bytes_per_event",
            "software_volume",
            "conditions_volume",
            "pileup_bytes_per_event",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be non-negative")

    # -- draw helpers --------------------------------------------------------
    def cpu_time(self, rng: np.random.Generator, n_events: int) -> float:
        """Total CPU seconds to process *n_events* (sums per-event draws)."""
        if n_events <= 0:
            return 0.0
        # One draw of the mean per-event cost per task keeps draws O(1)
        # while preserving task-to-task variance.
        per_event = float(np.atleast_1d(self.per_event_cpu.sample(rng, 1))[0])
        return per_event * n_events

    def input_bytes(self, n_events: int) -> float:
        return self.input_bytes_per_event * n_events + (
            self.pileup_bytes_per_event * n_events
        )

    def output_bytes(self, n_events: int) -> float:
        return self.output_bytes_per_event * n_events

    def draw_failure(self, rng: np.random.Generator) -> bool:
        """Does this run fail for intrinsic reasons?"""
        return bool(rng.random() < self.intrinsic_failure_rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AnalysisCode {self.name!r} kind={self.kind.value}>"


def data_processing_code(
    name: str = "ttbar-selection",
    cpu_per_event: float = 0.08,
    cpu_sigma: float = 0.02,
    event_size: float = 100 * KB,
    reduction_factor: float = 20.0,
    intrinsic_failure_rate: float = 0.002,
) -> AnalysisCode:
    """A typical data-processing analysis (paper §4.2, Fig 10 run).

    Reads full events over XrootD and writes output at least an order of
    magnitude smaller (*reduction_factor* ≥ 10).
    """
    if reduction_factor < 1:
        raise ValueError("reduction_factor must be >= 1")
    return AnalysisCode(
        name=name,
        kind=WorkloadKind.DATA,
        per_event_cpu=TruncatedGaussianSampler(cpu_per_event, cpu_sigma, low=1e-4),
        input_bytes_per_event=event_size,
        output_bytes_per_event=event_size / reduction_factor,
        intrinsic_failure_rate=intrinsic_failure_rate,
    )


def simulation_code(
    name: str = "mc-generation",
    cpu_per_event: float = 1.2,
    cpu_sigma: float = 0.3,
    output_event_size: float = 250 * KB,
    pileup_bytes_per_event: float = 2 * KB,
    intrinsic_failure_rate: float = 0.004,
) -> AnalysisCode:
    """A Monte-Carlo production job (paper §6, Fig 11 run).

    External input is only the pile-up overlay — orders of magnitude
    below the data-processing case — so 20k concurrent tasks become
    feasible on the same WAN.
    """
    return AnalysisCode(
        name=name,
        kind=WorkloadKind.SIMULATION,
        per_event_cpu=TruncatedGaussianSampler(cpu_per_event, cpu_sigma, low=1e-3),
        input_bytes_per_event=0.0,
        output_bytes_per_event=output_event_size,
        pileup_bytes_per_event=pileup_bytes_per_event,
        intrinsic_failure_rate=intrinsic_failure_rate,
    )
