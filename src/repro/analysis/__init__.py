"""``repro.analysis`` — the HEP application model.

The paper treats the CMS analysis executable (CMSSW) as a black box with
well-characterised phases: read events, burn CPU per event, write a much
smaller output, occasionally fail for transient reasons.  This package
models that black box — the per-event cost distributions, the framework
job report the wrapper parses afterwards, and the two workload families
(data processing vs Monte-Carlo simulation) whose very different I/O
profiles drive Figs 10 and 11.
"""

from .code import AnalysisCode, WorkloadKind, data_processing_code, simulation_code
from .profiles import PROFILES, list_profiles, profile
from .report import ExitCode, FrameworkReport

__all__ = [
    "AnalysisCode",
    "WorkloadKind",
    "data_processing_code",
    "simulation_code",
    "ExitCode",
    "FrameworkReport",
    "PROFILES",
    "profile",
    "list_profiles",
]
