"""Framework job reports and exit codes.

After the application exits, the Lobster wrapper parses the framework
job report to decide success or failure and to attribute time to the
right phase (paper §5).  Exit codes follow the CMS convention of
distinct ranges per failure family so that a timeline of exit codes
(paper Fig 11, bottom panel) separates squid trouble from storage
trouble from application bugs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict

__all__ = ["ExitCode", "FrameworkReport"]


class ExitCode(IntEnum):
    """Task exit codes, one family per failure mode."""

    SUCCESS = 0
    #: Environment / machine incompatibility found by the wrapper pre-check.
    BAD_MACHINE = 130
    #: Software delivery: squid/CVMFS timeout while building the environment.
    SETUP_FAILED = 169
    #: Input staging failed (Chirp / Work Queue transfer error).
    STAGE_IN_FAILED = 179
    #: Generic application failure (CMSSW internal).
    APPLICATION_FAILED = 8001
    #: Could not open remote input file over XrootD.
    FILE_OPEN_FAILED = 8020
    #: Read error mid-stream (WAN hiccup, federation outage).
    FILE_READ_FAILED = 8028
    #: Output stage-out to the storage element failed or timed out.
    STAGE_OUT_FAILED = 10031
    #: Worker was evicted while the task was running.
    EVICTED = 143

    @property
    def family(self) -> str:
        """Coarse grouping used by monitoring dashboards."""
        return {
            ExitCode.SUCCESS: "success",
            ExitCode.BAD_MACHINE: "environment",
            ExitCode.SETUP_FAILED: "software-delivery",
            ExitCode.STAGE_IN_FAILED: "data-access",
            ExitCode.APPLICATION_FAILED: "application",
            ExitCode.FILE_OPEN_FAILED: "data-access",
            ExitCode.FILE_READ_FAILED: "data-access",
            ExitCode.STAGE_OUT_FAILED: "stage-out",
            ExitCode.EVICTED: "eviction",
        }[self]


@dataclass
class FrameworkReport:
    """What the application reports back through the wrapper."""

    exit_code: ExitCode = ExitCode.SUCCESS
    events_read: int = 0
    events_written: int = 0
    cpu_seconds: float = 0.0
    io_seconds: float = 0.0
    output_bytes: float = 0.0
    input_bytes: float = 0.0
    #: Content digest of the output, computed at creation (stage-out);
    #: "" when the run has output verification disabled.
    output_checksum: str = ""
    #: Free-form diagnostics per phase, e.g. {"stream": "xrootd"}.
    annotations: Dict[str, str] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        return self.exit_code == ExitCode.SUCCESS

    def merge_counts(self, other: "FrameworkReport") -> None:
        """Accumulate another report's counters (used by merge tasks)."""
        self.events_read += other.events_read
        self.events_written += other.events_written
        self.cpu_seconds += other.cpu_seconds
        self.io_seconds += other.io_seconds
        self.output_bytes += other.output_bytes
        self.input_bytes += other.input_bytes
