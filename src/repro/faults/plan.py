"""Declarative fault scenarios: what breaks, where, and when.

A :class:`FaultPlan` is a validated, ordered list of fault declarations
— each one a frozen dataclass naming a failure mode the paper's
operators actually fought (§5): rack-correlated eviction bursts,
misconfigured "black-hole" nodes, squid crashes, degraded SE disk
arrays, and flapping network links.  The plan is pure data; the
:class:`~repro.faults.engine.FaultInjector` turns it into DES processes
that drive the existing substrate models.

Determinism contract: a plan carries its own ``seed``, every sampled
decision (e.g. which fraction of slots an eviction burst hits) draws
from a generator keyed ``(seed, fault index)``, and faults fire in
``(at, declaration order)`` — so the same plan against the same run
produces a byte-identical ``fault.*`` event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "EvictionBurst",
    "BlackHoleHost",
    "SquidCrash",
    "SpindleDegradation",
    "LinkFlap",
    "BitRot",
    "TruncatedTransfer",
    "DuplicateDelivery",
    "MasterCrash",
    "FaultPlan",
]


@dataclass(frozen=True)
class EvictionBurst:
    """Owner workload returns: evict glide-in slots, rack-correlated.

    With *rack* set only slots whose machine sits under that rack switch
    (``fabric.parent(machine) == rack``) are hit; otherwise the burst
    sweeps the whole pool.  *fraction* < 1 samples victims from the
    plan's seeded RNG.
    """

    kind = "eviction-burst"

    at: float
    rack: Optional[str] = None
    fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if not (0 < self.fraction <= 1):
            raise ValueError("fraction must lie in (0, 1]")


@dataclass(frozen=True)
class BlackHoleHost:
    """A node goes black-hole: every task started there fast-fails.

    The wrapper sees ``machine.black_hole`` and exits BAD_MACHINE almost
    immediately — the failure signature the paper's §5 drill-down used
    to identify misconfigured nodes.  *duration* ``None`` = the rest of
    the run.
    """

    kind = "black-hole"

    at: float
    machine: str = ""
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if not self.machine:
            raise ValueError("machine name required")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("duration must be positive or None")


@dataclass(frozen=True)
class SquidCrash:
    """One squid proxy dies and restarts *duration* seconds later.

    While down its request and data links carry nothing and in-flight
    fetches fail (surfacing to the wrapper as :class:`SquidTimeout`,
    i.e. a setup failure it already knows how to retry).
    """

    kind = "squid-crash"

    at: float
    duration: float = 600.0
    proxy: int = 0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.proxy < 0:
            raise ValueError("proxy index must be non-negative")


@dataclass(frozen=True)
class SpindleDegradation:
    """The SE disk array behind Chirp slows to *factor* of its capacity
    (a failed disk rebuilding, or a co-tenant hammering the array)."""

    kind = "spindle-degradation"

    at: float
    duration: float = 1_800.0
    factor: float = 0.1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not (0 <= self.factor < 1):
            raise ValueError("factor must lie in [0, 1)")


@dataclass(frozen=True)
class LinkFlap:
    """A named fabric link flaps: *repeat* outages of *duration* seconds
    every *period* seconds, reusing the link-level outage schedule
    (in-flight flows of every class fail after *fail_after* of stall)."""

    kind = "link-flap"

    link: str
    at: float
    duration: float
    repeat: int = 1
    period: Optional[float] = None
    fail_after: float = 30.0

    def __post_init__(self) -> None:
        if not self.link:
            raise ValueError("link name required")
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")
        if self.period is not None and self.period <= self.duration:
            raise ValueError("period must exceed duration")
        if self.repeat > 1 and self.period is None:
            raise ValueError("repeat > 1 requires a period")
        if self.fail_after < 0:
            raise ValueError("fail_after must be non-negative")

    def windows(self) -> List[Tuple[float, float]]:
        """The (start, end) outage intervals this flap produces."""
        period = self.period if self.period is not None else self.duration
        return [
            (self.at + k * period, self.at + k * period + self.duration)
            for k in range(self.repeat)
        ]


@dataclass(frozen=True)
class BitRot:
    """The SE spindle silently flips bytes in committed files at rest.

    At each firing, *count* checksummed files under *prefix* are chosen
    from the plan's seeded RNG and corrupted in place — the namespace
    entry is untouched, only the content digest diverges, so the damage
    surfaces at the next verifying hop (merge stage-in or publish).
    """

    kind = "bit-rot"

    at: float
    count: int = 1
    prefix: str = "/store/"
    repeat: int = 1
    period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.repeat <= 0:
            raise ValueError("repeat must be positive")
        if self.period is not None and self.period <= 0:
            raise ValueError("period must be positive")
        if self.repeat > 1 and self.period is None:
            raise ValueError("repeat > 1 requires a period")


@dataclass(frozen=True)
class TruncatedTransfer:
    """A killed output transfer leaves a partial file that still arrives.

    Arms the storage element so the next *count* checksummed writes
    record truncated content: the namespace entry looks whole, the
    bytes do not match, and the stage-out verification rejects the
    delivery.
    """

    kind = "truncated-transfer"

    at: float
    count: int = 1

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")


@dataclass(frozen=True)
class DuplicateDelivery:
    """An evicted task's output lands after its retry already succeeded.

    From *at* onwards the next *count* successful analysis results are
    captured and re-delivered *delay* seconds later, bypassing the
    master's bookkeeping (a buffered relay re-send) — the output commit
    ledger must deduplicate them.
    """

    kind = "duplicate-delivery"

    at: float
    count: int = 1
    delay: float = 60.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")
        if self.count <= 0:
            raise ValueError("count must be positive")
        if self.delay <= 0:
            raise ValueError("delay must be positive")


@dataclass(frozen=True)
class MasterCrash:
    """The Lobster master itself dies (kill -9 of the scheduler).

    The control loop is interrupted where it stands: the ready queue and
    every in-flight attempt are orphaned, results still in transit are
    dropped, and nothing is flushed — only the SQLite Lobster DB and the
    storage element survive.  The campaign resumes when a fresh
    ``LobsterRun(recover=True)`` is warm-started on the same DB (see
    ``repro.scenarios.warm_restart`` and ``python -m repro chaos
    --master-crash-at``).
    """

    kind = "master-crash"

    at: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("at must be non-negative")


_KINDS = (
    EvictionBurst,
    BlackHoleHost,
    SquidCrash,
    SpindleDegradation,
    LinkFlap,
    BitRot,
    TruncatedTransfer,
    DuplicateDelivery,
    MasterCrash,
)


class FaultPlan:
    """A validated, seeded collection of fault declarations."""

    def __init__(self, faults: Sequence = (), seed: int = 0):
        for f in faults:
            if not isinstance(f, _KINDS):
                raise TypeError(f"not a fault declaration: {f!r}")
        self.faults: List = list(faults)
        self.seed = int(seed)

    def ordered(self) -> List[Tuple[int, object]]:
        """(declaration index, fault) pairs in firing order."""
        return sorted(
            enumerate(self.faults), key=lambda pair: (pair[1].at, pair[0])
        )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f.kind for f in self.faults)
        return f"<FaultPlan seed={self.seed} [{kinds}]>"
