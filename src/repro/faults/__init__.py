"""``repro.faults`` — deterministic fault injection for chaos runs.

Declare *what breaks and when* as a :class:`FaultPlan` of frozen fault
dataclasses, then let a :class:`FaultInjector` drive the failures
through the existing substrate models (batch evictions, squid links,
SE spindles, fabric outage schedules, storage-element content digests)
while publishing ``fault.*`` bus events.  Same seed + same plan ⇒
byte-identical event stream.
"""

from .plan import (
    BitRot,
    BlackHoleHost,
    DuplicateDelivery,
    EvictionBurst,
    FaultPlan,
    LinkFlap,
    MasterCrash,
    SpindleDegradation,
    SquidCrash,
    TruncatedTransfer,
)
from .engine import FaultInjector

__all__ = [
    "BitRot",
    "BlackHoleHost",
    "DuplicateDelivery",
    "EvictionBurst",
    "FaultPlan",
    "FaultInjector",
    "LinkFlap",
    "MasterCrash",
    "SpindleDegradation",
    "SquidCrash",
    "TruncatedTransfer",
]
