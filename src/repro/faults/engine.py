"""The fault injector: DES processes that make a plan happen.

Each declared fault becomes one process driving the *existing*
substrate models — no special failure paths are added to the system
under test.  An eviction burst calls the batch pool's own
``request_eviction``; a squid crash zeroes the proxy's fabric links and
fails their in-flight flows; a link flap installs a link-level outage
schedule exactly as the WAN model does.  The injector's only footprint
is the ``fault.inject`` / ``fault.clear`` bus events it publishes so
the monitoring layer can correlate what broke with what the run did
about it.  When a :class:`~repro.monitor.SpanTracer` is attached, those
same events annotate every task attempt open at injection time
(``attrs["faults"]``), so a trace viewer shows which attempts were in
flight when each fault landed.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

import numpy as np

from ..desim import Environment, Topics
from ..storage.wan import OutageWindow
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Runs a :class:`FaultPlan` against a live simulation.

    *services* is the :class:`~repro.core.services.Services` bundle
    (needed for squid / spindle / link / integrity faults); *pool* the
    :class:`~repro.batch.CondorPool` (needed for eviction bursts and
    black-hole hosts); *master* the WQ :class:`~repro.wq.Master` (needed
    for duplicate deliveries).  Any may be None when the plan never
    touches the corresponding substrate.
    """

    def __init__(
        self,
        env: Environment,
        plan: FaultPlan,
        services=None,
        pool=None,
        master=None,
        run=None,
    ):
        self.env = env
        self.plan = plan
        self.services = services
        self.pool = pool
        self.master = master
        #: The LobsterRun whose control loop a MasterCrash interrupts.
        self.run = run
        self.injected = 0
        self.cleared = 0
        self._procs: List = []
        # Per-topic fast paths: fault narration costs nothing when
        # nobody subscribes to fault.* (and the payload is never built).
        self._inject_port = env.bus.port(Topics.FAULT_INJECT)
        self._clear_port = env.bus.port(Topics.FAULT_CLEAR)

    def start(self) -> "FaultInjector":
        """Spawn one injector process per declared fault; returns self."""
        handlers = {
            "eviction-burst": self._run_eviction_burst,
            "black-hole": self._run_black_hole,
            "squid-crash": self._run_squid_crash,
            "spindle-degradation": self._run_spindle_degradation,
            "link-flap": self._run_link_flap,
            "bit-rot": self._run_bit_rot,
            "truncated-transfer": self._run_truncated_transfer,
            "duplicate-delivery": self._run_duplicate_delivery,
            "master-crash": self._run_master_crash,
        }
        for index, fault in self.plan.ordered():
            self._procs.append(
                self.env.process(
                    handlers[fault.kind](fault, index),
                    name=f"fault{index:03d}-{fault.kind}",
                )
            )
        return self

    # -- plumbing ----------------------------------------------------------
    def _until(self, at: float):
        if at > self.env.now:
            yield self.env.timeout(at - self.env.now)

    def _publish(self, topic: str, fault, index: int, **details) -> None:
        if topic == Topics.FAULT_INJECT:
            self.injected += 1
            port = self._inject_port
        else:
            self.cleared += 1
            port = self._clear_port
        if port.on:
            port.emit(kind=fault.kind, index=index, **details)

    def _rng(self, index: int) -> np.random.Generator:
        return np.random.default_rng((self.plan.seed, index))

    # -- handlers ----------------------------------------------------------
    def _run_eviction_burst(self, fault, index: int):
        if self.pool is None:
            raise ValueError("eviction burst needs a CondorPool")
        yield from self._until(fault.at)
        rng = self._rng(index)
        victims = []
        for slot in list(self.pool.active_slots):
            machine = slot.machine
            if fault.rack is not None:
                fab = machine.fabric
                rack = (
                    fab.parent(machine.name)
                    if fab.has_node(machine.name)
                    else None
                )
                if rack != fault.rack:
                    continue
            if fault.fraction < 1.0 and rng.random() >= fault.fraction:
                continue
            victims.append(slot)
        self._publish(
            Topics.FAULT_INJECT,
            fault,
            index,
            rack=fault.rack,
            victims=len(victims),
        )
        for slot in victims:
            slot.request_eviction()

    def _run_black_hole(self, fault, index: int):
        if self.pool is None:
            raise ValueError("black-hole fault needs a CondorPool")
        yield from self._until(fault.at)
        machine = next(
            (m for m in self.pool.machines if m.name == fault.machine), None
        )
        if machine is None:
            raise ValueError(f"no machine named {fault.machine!r} in the pool")
        machine.black_hole = True
        self._publish(
            Topics.FAULT_INJECT,
            fault,
            index,
            machine=machine.name,
            duration=fault.duration,
        )
        if fault.duration is not None:
            yield self.env.timeout(fault.duration)
            machine.black_hole = False
            self._publish(
                Topics.FAULT_CLEAR, fault, index, machine=machine.name
            )

    def _run_squid_crash(self, fault, index: int):
        if self.services is None:
            raise ValueError("squid crash needs the Services bundle")
        proxies = self.services.proxies.proxies
        if fault.proxy >= len(proxies):
            raise ValueError(f"no proxy with index {fault.proxy}")
        proxy = proxies[fault.proxy]
        yield from self._until(fault.at)
        saved = (proxy.data_link.capacity, proxy.request_link.capacity)
        proxy.data_link.set_capacity(0.0)
        proxy.request_link.set_capacity(0.0)
        failed = proxy.data_link.fail_flows("squid crashed")
        failed += proxy.request_link.fail_flows("squid crashed")
        self._publish(
            Topics.FAULT_INJECT,
            fault,
            index,
            proxy=proxy.name,
            failed_flows=failed,
            duration=fault.duration,
        )
        yield self.env.timeout(fault.duration)
        proxy.data_link.set_capacity(saved[0])
        proxy.request_link.set_capacity(saved[1])
        self._publish(Topics.FAULT_CLEAR, fault, index, proxy=proxy.name)

    def _run_spindle_degradation(self, fault, index: int):
        if self.services is None:
            raise ValueError("spindle degradation needs the Services bundle")
        link = self.services.chirp.spindles
        yield from self._until(fault.at)
        saved = link.capacity
        link.set_capacity(saved * fault.factor)
        self._publish(
            Topics.FAULT_INJECT,
            fault,
            index,
            link=link.name,
            factor=fault.factor,
            duration=fault.duration,
        )
        yield self.env.timeout(fault.duration)
        link.set_capacity(saved)
        self._publish(Topics.FAULT_CLEAR, fault, index, link=link.name)

    def _run_link_flap(self, fault, index: int):
        fabric = None
        if self.services is not None:
            fabric = self.services.fabric
        if fabric is None and self.pool is not None and self.pool.machines.machines:
            fabric = self.pool.machines.machines[0].fabric
        if fabric is None:
            raise ValueError("link flap needs a fabric (via services or pool)")
        link = fabric.links.get(fault.link)
        if link is None:
            raise ValueError(f"no link named {fault.link!r} on the fabric")
        windows = [OutageWindow(s, e) for s, e in fault.windows()]
        # The link model owns the capacity/flow-failure mechanics …
        link.schedule_outages(windows, fail_after=fault.fail_after)
        # … the injector only narrates the fault timeline on the bus.
        for w in windows:
            yield from self._until(w.start)
            self._publish(
                Topics.FAULT_INJECT, fault, index, link=link.name, until=w.end
            )
            yield from self._until(w.end)
            self._publish(Topics.FAULT_CLEAR, fault, index, link=link.name)

    def _run_bit_rot(self, fault, index: int):
        if self.services is None:
            raise ValueError("bit rot needs the Services bundle")
        se = self.services.se
        rng = self._rng(index)
        period = fault.period if fault.period is not None else 0.0
        for k in range(fault.repeat):
            yield from self._until(fault.at + k * period)
            candidates = [
                f.name for f in se.listdir(fault.prefix) if f.checksum
            ]
            n = min(fault.count, len(candidates))
            victims = (
                sorted(rng.choice(candidates, size=n, replace=False))
                if n
                else []
            )
            for i, name in enumerate(victims):
                se.corrupt(name, salt=i)
            self._publish(
                Topics.FAULT_INJECT,
                fault,
                index,
                flipped=len(victims),
                files=",".join(victims),
            )

    def _run_truncated_transfer(self, fault, index: int):
        if self.services is None:
            raise ValueError("truncated transfer needs the Services bundle")
        yield from self._until(fault.at)
        self.services.se.arm_truncation(fault.count)
        self._publish(Topics.FAULT_INJECT, fault, index, count=fault.count)

    def _run_duplicate_delivery(self, fault, index: int):
        if self.master is None:
            raise ValueError("duplicate delivery needs the Master")
        yield from self._until(fault.at)
        master = self.master
        remaining = [fault.count]

        def redeliver(result):
            yield self.env.timeout(fault.delay)
            self._publish(
                Topics.FAULT_INJECT,
                fault,
                index,
                task_id=result.task.task_id,
                delay=fault.delay,
            )
            # A buffered relay re-sends the result straight into the
            # master's outbox, bypassing its late-result guard — only
            # the output commit ledger can catch this one.
            master.results.put(replace(result))

        def tap(result):
            if remaining[0] <= 0:
                return
            if result.task.category != "analysis" or not result.succeeded:
                return
            remaining[0] -= 1
            self.env.process(
                redeliver(result),
                name=f"fault{index:03d}-redeliver{result.task.task_id}",
            )

        master.add_result_tap(tap)

    def _run_master_crash(self, fault, index: int):
        if self.run is None:
            raise ValueError("master crash needs the LobsterRun")
        yield from self._until(fault.at)
        run = self.run
        ready = run.master.ready_count
        running = run.master.tasks_running
        self._publish(
            Topics.FAULT_INJECT,
            fault,
            index,
            ready=ready,
            running=running,
        )
        # kill -9: the control loop dies where it stands (it catches the
        # interrupt only to let the simulated world wind down — nothing
        # is flushed, see LobsterRun._control).
        if run.process is not None and run.process.is_alive:
            run.process.interrupt("master-crash")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultInjector faults={len(self.plan)} "
            f"injected={self.injected} cleared={self.cleared}>"
        )
