"""Command-line interface: ``python -m repro <command>``.

Mirrors the real Lobster's operational entry points on the simulated
substrate:

* ``quickstart`` — a tiny end-to-end MC run with a final report,
* ``simulate``   — a Monte-Carlo production run (Fig 11 conditions),
* ``process``    — a data-processing run over a synthetic dataset
  (Fig 10 conditions, optional WAN outage),
* ``chaos``      — a data run under injected faults (black-hole node,
  WAN flaps, squid crash, eviction burst) with active recovery engaged,
* ``tasksize``   — the §4.1 task-size optimiser,
* ``profiles``   — list the bundled analysis-code profiles,
* ``events``     — replay a recorded JSONL event stream through the
  monitoring heuristics (record one with ``--events-out``),
* ``trace``      — run (or replay) with causal tracing: emit span files,
  attribute the makespan to its critical path, and print an
  evidence-backed diagnosis.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

HOUR = 3600.0
GBIT = 125_000_000.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lobster (CLUSTER 2015) reproduction on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("quickstart", help="tiny end-to-end MC run")
    q.add_argument("--events", type=int, default=50_000)
    q.add_argument("--workers", type=int, default=10)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")

    s = sub.add_parser("simulate", help="Monte-Carlo production run")
    s.add_argument("--events", type=int, default=1_000_000)
    s.add_argument("--machines", type=int, default=50)
    s.add_argument("--cores", type=int, default=8)
    s.add_argument("--profile", default="digi-reco-mc")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")

    p = sub.add_parser("process", help="data-processing run over a synthetic dataset")
    p.add_argument("--files", type=int, default=200)
    p.add_argument("--machines", type=int, default=25)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--profile", default="ntuple")
    p.add_argument("--wan-gbit", type=float, default=0.6)
    p.add_argument("--outage-hours", type=float, default=0.0,
                   help="inject a 1-hour WAN outage starting at this hour (0 = none)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")

    t = sub.add_parser("tasksize", help="run the section-4.1 task-size optimiser")
    t.add_argument("--tasklets", type=int, default=20_000)
    t.add_argument("--workers", type=int, default=1_600)
    t.add_argument("--eviction", choices=("constant", "weibull", "none"),
                   default="constant")
    t.add_argument("--probability", type=float, default=0.1)
    t.add_argument("--seed", type=int, default=0)

    c = sub.add_parser(
        "chaos",
        help="data run under injected faults with active recovery engaged",
    )
    c.add_argument("--files", type=int, default=60)
    c.add_argument("--machines", type=int, default=12)
    c.add_argument("--cores", type=int, default=4)
    c.add_argument("--wan-gbit", type=float, default=1.0)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--bit-rot", type=int, default=0, metavar="N",
                   help="silently corrupt N committed files at rest")
    c.add_argument("--truncate", type=int, default=0, metavar="N",
                   help="truncate the next N output transfers")
    c.add_argument("--duplicates", type=int, default=0, metavar="N",
                   help="re-deliver N successful analysis results")
    c.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")

    sub.add_parser("profiles", help="list bundled analysis profiles")

    topo = sub.add_parser(
        "topology", help="print the network fabric a run would use"
    )
    topo.add_argument("--machines", type=int, default=50)
    topo.add_argument("--cores", type=int, default=8)
    topo.add_argument("--wan-gbit", type=float, default=0.6)
    topo.add_argument("--machines-per-switch", type=int, default=24)

    e = sub.add_parser(
        "events", help="replay a recorded JSONL event stream through monitoring"
    )
    e.add_argument("path", help="JSONL file written by --events-out (or JsonlSink)")
    e.add_argument("--top", type=int, default=10,
                   help="show the N most frequent topics")

    tr = sub.add_parser(
        "trace",
        help="run (or replay) with causal tracing and analyze the span trees",
    )
    tr.add_argument("--events", type=int, default=50_000)
    tr.add_argument("--workers", type=int, default=10)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--replay", default=None, metavar="PATH",
                    help="rebuild spans from a JSONL event recording "
                         "(written by --events-out) instead of running")
    tr.add_argument("--spans-out", default=None, metavar="PATH",
                    help="write one span per line as JSONL")
    tr.add_argument("--chrome-out", default=None, metavar="PATH",
                    help="write a Chrome trace-event / Perfetto JSON file")
    tr.add_argument("--top", type=int, default=5,
                    help="show the N largest critical-path contributors")
    tr.add_argument("--events-out", default=None, metavar="PATH",
                    help="record the traced run's bus events (incl. span "
                         "events) to a JSONL file for later --replay")
    return parser


def _attach_events_sink(env, args):
    """Attach a JSONL sink to the bus when ``--events-out`` was given."""
    if getattr(args, "events_out", None) is None:
        return None
    from repro.monitor import JsonlSink

    try:
        sink = JsonlSink(args.events_out)
    except OSError as exc:
        raise SystemExit(f"cannot write events to {args.events_out}: {exc}") from None
    env.bus.attach(sink)
    return sink


def _finish(env, run, pool, out, sink=None) -> int:
    from repro.monitor import render_report

    env.run(until=run.process)
    pool.drain()
    # Let the drain cascade settle so workers and glide-ins exit cleanly
    # instead of being garbage-collected mid-yield.
    try:
        env.run(until=env.now + 300.0)
    except RuntimeError:
        pass  # queue drained before the settling window elapsed
    out.write(render_report(run) + "\n")
    if sink is not None:
        sink.close()
        out.write(f"recorded {sink.count} events to {sink.path}\n")
    return 0


def cmd_quickstart(args, out) -> int:
    from repro.analysis import simulation_code
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.desim import Environment
    from repro.distributions import ConstantHazardEviction

    env = Environment()
    sink = _attach_events_sink(env, args)
    services = Services.default(env, seed=args.seed)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="quickstart",
                code=simulation_code(),
                n_events=args.events,
                events_per_tasklet=500,
                tasklets_per_task=4,
            )
        ],
        cores_per_worker=4,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(
        env, args.workers, cores=4, fabric=services.fabric
    )
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.1), seed=args.seed)
    pool.submit(
        GlideinRequest(n_workers=args.workers, cores_per_worker=4, start_interval=2.0),
        run.worker_payload,
    )
    return _finish(env, run, pool, out, sink=sink)


def cmd_simulate(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.desim import Environment

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "simulation":
        raise SystemExit(f"profile {args.profile!r} is not a simulation profile")
    env = Environment()
    sink = _attach_events_sink(env, args)
    services = Services.default(env, seed=args.seed)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label=f"mc-{args.profile}",
                code=code,
                n_events=args.events,
                events_per_tasklet=500,
                tasklets_per_task=6,
                max_retries=50,
            )
        ],
        cores_per_worker=args.cores,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(
        env, args.machines, cores=args.cores, fabric=services.fabric
    )
    pool = CondorPool(env, machines, seed=args.seed)
    pool.submit(
        GlideinRequest(
            n_workers=args.machines, cores_per_worker=args.cores, start_interval=0.5
        ),
        run.worker_payload,
    )
    return _finish(env, run, pool, out, sink=sink)


def cmd_process(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import (
        LobsterConfig,
        LobsterRun,
        MergeMode,
        Services,
        WorkflowConfig,
    )
    from repro.dbs import DBS, synthetic_dataset
    from repro.desim import Environment
    from repro.distributions import WeibullEviction
    from repro.storage.wan import OutageWindow

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "data-processing":
        raise SystemExit(f"profile {args.profile!r} is not a data profile")
    env = Environment()
    sink = _attach_events_sink(env, args)
    dbs = DBS()
    ds = synthetic_dataset(n_files=args.files, events_per_file=45_000,
                           lumis_per_file=60, seed=args.seed)
    dbs.register(ds)
    outages = (
        [OutageWindow(args.outage_hours * HOUR, (args.outage_hours + 1) * HOUR)]
        if args.outage_hours > 0
        else None
    )
    services = Services.default(
        env, dbs=dbs, wan_bandwidth=args.wan_gbit * GBIT, outages=outages,
        seed=args.seed,
    )
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label=f"data-{args.profile}",
                code=code,
                dataset=ds.name,
                lumis_per_tasklet=10,
                tasklets_per_task=6,
                merge_mode=MergeMode.INTERLEAVED,
                max_retries=50,
            )
        ],
        cores_per_worker=args.cores,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(
        env, args.machines, cores=args.cores, fabric=services.fabric
    )
    pool = CondorPool(env, machines, eviction=WeibullEviction(), seed=args.seed)
    pool.submit(
        GlideinRequest(
            n_workers=args.machines, cores_per_worker=args.cores, start_interval=2.0
        ),
        run.worker_payload,
    )
    return _finish(env, run, pool, out, sink=sink)


def cmd_chaos(args, out) -> int:
    """A data run that survives a barrage of injected faults.

    The scenario exercises every recovery loop at once: a black-hole
    node (blacklisting), WAN flaps breaking XrootD streams
    (streaming -> staging fallback), a squid crash (setup retries), a
    rack eviction burst (requeue with backoff), and a degraded SE.
    """
    from repro.analysis.profiles import profile
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import (
        LobsterConfig,
        LobsterRun,
        MergeMode,
        Services,
        WorkflowConfig,
    )
    from repro.dbs import DBS, synthetic_dataset
    from repro.desim import Environment
    from repro.distributions import ConstantHazardEviction
    from repro.faults import (
        BitRot,
        BlackHoleHost,
        DuplicateDelivery,
        EvictionBurst,
        FaultInjector,
        FaultPlan,
        LinkFlap,
        SpindleDegradation,
        SquidCrash,
        TruncatedTransfer,
    )
    from repro.wq import RecoveryPolicy

    env = Environment()
    sink = _attach_events_sink(env, args)
    dbs = DBS()
    ds = synthetic_dataset(n_files=args.files, events_per_file=20_000,
                           lumis_per_file=40, seed=args.seed)
    dbs.register(ds)
    services = Services.default(
        env, dbs=dbs, wan_bandwidth=args.wan_gbit * GBIT, seed=args.seed
    )
    # Bit rot targets committed files at rest, so the run needs merges
    # (a later verifying hop) to surface the damage before publication.
    merge_mode = MergeMode.INTERLEAVED if args.bit_rot else MergeMode.NONE
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="chaos",
                code=profile("ntuple"),
                dataset=ds.name,
                lumis_per_tasklet=10,
                tasklets_per_task=4,
                merge_mode=merge_mode,
                max_retries=50,
                stream_fallback_threshold=3,
            )
        ],
        cores_per_worker=args.cores,
        recovery=RecoveryPolicy(
            max_attempts=12,
            backoff_base=2.0,
            blacklist_threshold=0.6,
            blacklist_min_samples=6,
        ),
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(
        env, args.machines, cores=args.cores, fabric=services.fabric
    )
    pool = CondorPool(
        env, machines, eviction=ConstantHazardEviction(0.02), seed=args.seed
    )
    pool.submit(
        GlideinRequest(
            n_workers=args.machines, cores_per_worker=args.cores,
            start_interval=1.0,
        ),
        run.worker_payload,
    )
    faults = [
        SquidCrash(at=600.0, duration=300.0),
        BlackHoleHost(at=900.0, machine="node00001"),
        LinkFlap(link="wan", at=1_800.0, duration=900.0,
                 repeat=2, period=3_600.0, fail_after=15.0),
        EvictionBurst(at=2_700.0, fraction=0.5),
        SpindleDegradation(at=5_400.0, duration=1_200.0, factor=0.2),
    ]
    if args.truncate:
        faults.append(TruncatedTransfer(at=300.0, count=args.truncate))
    if args.bit_rot:
        faults.append(BitRot(at=3_600.0, count=args.bit_rot))
    if args.duplicates:
        faults.append(DuplicateDelivery(at=1_200.0, count=args.duplicates))
    plan = FaultPlan(faults, seed=args.seed)
    FaultInjector(
        env, plan, services=services, pool=pool, master=run.master
    ).start()
    return _finish(env, run, pool, out, sink=sink)


def cmd_tasksize(args, out) -> int:
    from repro.core import TaskSizeConfig, TaskSizeSimulator
    from repro.distributions import (
        ConstantHazardEviction,
        NoEviction,
        WeibullEviction,
    )

    model = {
        "constant": lambda: ConstantHazardEviction(args.probability),
        "weibull": lambda: WeibullEviction(),
        "none": lambda: NoEviction(),
    }[args.eviction]()
    sim = TaskSizeSimulator(
        TaskSizeConfig(n_tasklets=args.tasklets, n_workers=args.workers),
        seed=args.seed,
    )
    out.write(f"eviction model: {model!r}\n")
    out.write("hours  tasklets/task  efficiency\n")
    best = None
    for hours in (0.25, 0.5, 1, 2, 3, 4, 6, 8, 10):
        r = sim.simulate(hours * HOUR, model)
        out.write(f"{hours:5.2f}  {r.tasklets_per_task:13d}  {r.efficiency:10.4f}\n")
        if best is None or r.efficiency > best.efficiency:
            best = r
    out.write(
        f"\noptimal: {best.task_length / HOUR:.2f} h "
        f"({best.tasklets_per_task} tasklets/task) at {best.efficiency:.1%}\n"
    )
    return 0


def cmd_profiles(args, out) -> int:
    from repro.analysis.profiles import PROFILES, profile

    out.write(f"{'name':<14s} {'kind':<16s} {'cpu/evt':>8s} {'in/evt':>9s} {'out/evt':>9s}\n")
    for name in sorted(PROFILES):
        code = profile(name)
        out.write(
            f"{name:<14s} {code.kind.value:<16s} "
            f"{code.per_event_cpu.mean():8.3f} "
            f"{code.input_bytes_per_event / 1e3:8.0f}k "
            f"{code.output_bytes_per_event / 1e3:8.0f}k\n"
        )
    return 0


def cmd_topology(args, out) -> int:
    from repro.batch import MachinePool
    from repro.core import Services
    from repro.desim import Environment

    env = Environment()
    services = Services.default(env, wan_bandwidth=args.wan_gbit * GBIT)
    MachinePool.homogeneous(
        env,
        args.machines,
        cores=args.cores,
        fabric=services.fabric,
        machines_per_switch=args.machines_per_switch,
    )
    out.write(services.fabric.describe() + "\n")
    return 0


def cmd_events(args, out) -> int:
    from collections import Counter

    from repro.monitor import diagnose, load_events, metrics_from_events

    try:
        events = load_events(args.path)
    except OSError as exc:
        raise SystemExit(str(exc)) from None
    except ValueError as exc:  # json.JSONDecodeError is a ValueError
        raise SystemExit(f"{args.path}: not a valid event stream ({exc})") from None
    metrics = metrics_from_events(events)

    out.write(f"{len(events)} events from {args.path}\n")
    counts = Counter(ev.get("topic", "?") for ev in events)
    for topic, n in counts.most_common(args.top):
        out.write(f"  {topic:<18s} {n:8d}\n")
    if len(counts) > args.top:
        out.write(f"  ... and {len(counts) - args.top} more topics\n")

    out.write(
        f"\ntask records: {metrics.n_tasks} "
        f"({metrics.n_succeeded()} ok, {metrics.n_failed()} failed), "
        f"evictions seen: {metrics.evictions_seen}\n"
    )
    if metrics.n_tasks:
        b = metrics.runtime_breakdown()
        out.write(f"overall efficiency: {metrics.overall_efficiency():.1%}\n")
        for label, hours, pct in b.rows():
            out.write(f"  {label:<16s} {hours:9.2f} h  {pct:5.1f}%\n")

    findings = diagnose(metrics)
    if findings:
        out.write("\ntroubleshooting findings:\n")
        for d in findings:
            out.write(
                f"  [{d.symptom}] {d.metric:.3g} > {d.threshold:.3g}: "
                f"{d.suggestion}\n"
            )
    elif metrics.n_tasks:
        out.write("\nno troubleshooting findings — run looks healthy\n")
    return 0


def cmd_trace(args, out) -> int:
    """Produce and analyze span trees, live or from a recording.

    Live mode runs the quickstart scenario with a
    :class:`~repro.monitor.SpanTracer` attached; ``--replay`` instead
    rebuilds the spans from a JSONL event recording (span events are
    part of the bus stream, so any ``--events-out`` file from a traced
    run replays losslessly).
    """
    from repro.monitor import (
        critical_path,
        diagnose,
        format_breakdown,
        spans_from_events,
        work_coverage,
        write_chrome_trace,
        write_spans_jsonl,
    )

    if args.replay is not None:
        from repro.monitor import load_events, metrics_from_events

        try:
            events = load_events(args.replay)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        except ValueError as exc:
            raise SystemExit(
                f"{args.replay}: not a valid event stream ({exc})"
            ) from None
        spans = spans_from_events(events)
        metrics = metrics_from_events(events)
        orphan_count = sum(
            1 for s in spans
            if s.parent_id is None and s.name not in ("unit", "run")
        )
        out.write(f"replayed {len(events)} events from {args.replay}\n")
    else:
        from repro.analysis import simulation_code
        from repro.batch import CondorPool, GlideinRequest, MachinePool
        from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
        from repro.desim import Environment
        from repro.distributions import ConstantHazardEviction
        from repro.monitor import SpanTracer

        env = Environment()
        tracer = SpanTracer(env)
        sink = _attach_events_sink(env, args)
        services = Services.default(env, seed=args.seed)
        cfg = LobsterConfig(
            workflows=[
                WorkflowConfig(
                    label="traced",
                    code=simulation_code(),
                    n_events=args.events,
                    events_per_tasklet=500,
                    tasklets_per_task=4,
                )
            ],
            cores_per_worker=4,
            seed=args.seed,
        )
        run = LobsterRun(env, cfg, services)
        run.start()
        machines = MachinePool.homogeneous(
            env, args.workers, cores=4, fabric=services.fabric
        )
        pool = CondorPool(
            env, machines, eviction=ConstantHazardEviction(0.1), seed=args.seed
        )
        pool.submit(
            GlideinRequest(
                n_workers=args.workers, cores_per_worker=4, start_interval=2.0
            ),
            run.worker_payload,
        )
        env.run(until=run.process)
        pool.drain()
        try:
            env.run(until=env.now + 300.0)
        except RuntimeError:
            pass
        orphan_count = len(tracer.finalize())
        spans = list(tracer.spans)
        metrics = run.metrics
        if sink is not None:
            sink.close()
            out.write(f"recorded {sink.count} events to {sink.path}\n")

    traces = {s.trace_id for s in spans}
    out.write(f"{len(spans)} spans across {len(traces)} traces, "
              f"{orphan_count} orphans\n")
    if args.spans_out is not None:
        n = write_spans_jsonl(spans, args.spans_out)
        out.write(f"wrote {n} spans to {args.spans_out}\n")
    if args.chrome_out is not None:
        n = write_chrome_trace(spans, args.chrome_out)
        out.write(f"wrote {n} trace events to {args.chrome_out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)\n")
    if not spans:
        return 0

    slices, makespan = critical_path(spans)
    if slices:
        out.write("\n" + format_breakdown(slices, makespan, top=args.top) + "\n")
        out.write(
            f"critical path covers {work_coverage(slices, makespan):.1%} "
            f"of the {makespan:.0f}s makespan\n"
        )

    findings = diagnose(metrics, spans=spans)
    if findings:
        out.write("\ntroubleshooting findings (with evidence spans):\n")
        for d in findings:
            out.write(f"  - {d}\n")
    else:
        out.write("\nno troubleshooting findings — run looks healthy\n")
    return 0


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "simulate": cmd_simulate,
    "process": cmd_process,
    "chaos": cmd_chaos,
    "tasksize": cmd_tasksize,
    "profiles": cmd_profiles,
    "topology": cmd_topology,
    "events": cmd_events,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:  # e.g. `python -m repro events run.jsonl | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
