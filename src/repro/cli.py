"""Command-line interface: ``python -m repro <command>``.

Mirrors the real Lobster's operational entry points on the simulated
substrate:

* ``quickstart`` — a tiny end-to-end MC run with a final report,
* ``simulate``   — a Monte-Carlo production run (Fig 11 conditions),
* ``process``    — a data-processing run over a synthetic dataset
  (Fig 10 conditions, optional WAN outage),
* ``chaos``      — a data run under injected faults (black-hole node,
  WAN flaps, squid crash, eviction burst) with active recovery engaged;
  ``--master-crash-at`` additionally kills the Lobster master itself
  and warm-restarts the campaign from its DB,
* ``crashtest``  — the crash-consistency fuzzer: kill the master at
  every (or sampled) durable checkpoint and assert the warm restart
  converges to the uninterrupted run's published outputs,
* ``tasksize``   — the §4.1 task-size optimiser,
* ``profiles``   — list the bundled analysis-code profiles,
* ``events``     — replay a recorded JSONL event stream through the
  monitoring heuristics (record one with ``--events-out``),
* ``trace``      — run (or replay) with causal tracing: emit span files,
  attribute the makespan to its critical path, and print an
  evidence-backed diagnosis,
* ``sweep``      — expand a declarative :class:`~repro.sweep.SweepSpec`
  (JSON or Python file) into its run matrix, execute it across worker
  processes, and write a machine-readable ``BENCH_sweep.json``,
* ``dash``       — render any run (live scenario or JSONL recording)
  into a single static HTML ops dashboard built from streaming,
  bounded-memory rollups (``repro.monitor.rollup``),
* ``watch``      — run (or ``--replay``) with the live run-health
  engine attached: streaming §5 detectors raise typed
  ``alert.raise``/``alert.clear`` events with evidence span ids, the
  dashboard re-renders atomically mid-run, and the alert stream is
  replay-deterministic (``repro.monitor.watch``).

The run scenarios themselves live in :mod:`repro.scenarios` — the same
builders feed the figure benchmarks and the sweep engine, so a CLI run,
a bench row, and a sweep variant with the same parameters produce
identical dynamics.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

HOUR = 3600.0
GBIT = 125_000_000.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lobster (CLUSTER 2015) reproduction on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("quickstart", help="tiny end-to-end MC run")
    q.add_argument("--events", type=int, default=50_000)
    q.add_argument("--workers", type=int, default=10)
    q.add_argument("--seed", type=int, default=0)
    q.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")
    q.add_argument("--dash-out", default=None, metavar="PATH",
                   help="also render the run's HTML ops dashboard")

    s = sub.add_parser("simulate", help="Monte-Carlo production run")
    s.add_argument("--events", type=int, default=1_000_000)
    s.add_argument("--machines", type=int, default=50)
    s.add_argument("--cores", type=int, default=8)
    s.add_argument("--profile", default="digi-reco-mc")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")
    s.add_argument("--dash-out", default=None, metavar="PATH",
                   help="also render the run's HTML ops dashboard")

    p = sub.add_parser("process", help="data-processing run over a synthetic dataset")
    p.add_argument("--files", type=int, default=200)
    p.add_argument("--machines", type=int, default=25)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--profile", default="ntuple")
    p.add_argument("--wan-gbit", type=float, default=0.6)
    p.add_argument("--outage-hours", type=float, default=0.0,
                   help="inject a 1-hour WAN outage starting at this hour (0 = none)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")
    p.add_argument("--dash-out", default=None, metavar="PATH",
                   help="also render the run's HTML ops dashboard")

    t = sub.add_parser("tasksize", help="run the section-4.1 task-size optimiser")
    t.add_argument("--tasklets", type=int, default=20_000)
    t.add_argument("--workers", type=int, default=1_600)
    t.add_argument("--eviction", choices=("constant", "weibull", "none"),
                   default="constant")
    t.add_argument("--probability", type=float, default=0.1)
    t.add_argument("--seed", type=int, default=0)

    c = sub.add_parser(
        "chaos",
        help="data run under injected faults with active recovery engaged",
    )
    c.add_argument("--files", type=int, default=60)
    c.add_argument("--machines", type=int, default=12)
    c.add_argument("--cores", type=int, default=4)
    c.add_argument("--wan-gbit", type=float, default=1.0)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--bit-rot", type=int, default=0, metavar="N",
                   help="silently corrupt N committed files at rest")
    c.add_argument("--truncate", type=int, default=0, metavar="N",
                   help="truncate the next N output transfers")
    c.add_argument("--duplicates", type=int, default=0, metavar="N",
                   help="re-deliver N successful analysis results")
    c.add_argument("--master-crash-at", type=float, default=None,
                   metavar="SECONDS",
                   help="kill the Lobster master at this simulated second "
                        "and warm-restart the campaign from its DB")
    c.add_argument("--events-out", default=None, metavar="PATH",
                   help="record the run's bus events to a JSONL file")
    c.add_argument("--dash-out", default=None, metavar="PATH",
                   help="also render the run's HTML ops dashboard")

    ct = sub.add_parser(
        "crashtest",
        help="crash-consistency fuzz: kill the master at every (or "
             "sampled) DB checkpoint and assert the warm restart "
             "converges to the uninterrupted answer",
    )
    ct.add_argument("--scenario", default="micro", metavar="NAME",
                    help="crash scenario (see --list; default: micro)")
    ct.add_argument("--mode", choices=("exhaustive", "sample"),
                    default="exhaustive",
                    help="crash at every checkpoint, or at --samples "
                         "reservoir-sampled ones")
    ct.add_argument("--samples", type=int, default=10, metavar="N",
                    help="crash points to sample in sample mode")
    ct.add_argument("--seed", type=int, default=0)
    ct.add_argument("--double-crash", action="store_true",
                    help="also crash each resumed campaign at its first "
                         "recovery checkpoint and resume again")
    ct.add_argument("--report-out", default=None, metavar="PATH",
                    help="write the machine-readable JSON report")
    ct.add_argument("--list", action="store_true", dest="list_only",
                    help="list the crash scenarios and exit")

    sub.add_parser("profiles", help="list bundled analysis profiles")

    topo = sub.add_parser(
        "topology", help="print the network fabric a run would use"
    )
    topo.add_argument("--machines", type=int, default=50)
    topo.add_argument("--cores", type=int, default=8)
    topo.add_argument("--wan-gbit", type=float, default=0.6)
    topo.add_argument("--machines-per-switch", type=int, default=24)

    e = sub.add_parser(
        "events", help="replay a recorded JSONL event stream through monitoring"
    )
    e.add_argument("path", help="JSONL file written by --events-out (or JsonlSink)")
    e.add_argument("--top", type=int, default=10,
                   help="show the N most frequent topics")

    tr = sub.add_parser(
        "trace",
        help="run (or replay) with causal tracing and analyze the span trees",
    )
    tr.add_argument("--events", type=int, default=50_000)
    tr.add_argument("--workers", type=int, default=10)
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--replay", default=None, metavar="PATH",
                    help="rebuild spans from a JSONL event recording "
                         "(written by --events-out) instead of running")
    tr.add_argument("--spans-out", default=None, metavar="PATH",
                    help="write one span per line as JSONL")
    tr.add_argument("--chrome-out", default=None, metavar="PATH",
                    help="write a Chrome trace-event / Perfetto JSON file")
    tr.add_argument("--top", type=int, default=5,
                    help="show the N largest critical-path contributors")
    tr.add_argument("--events-out", default=None, metavar="PATH",
                    help="record the traced run's bus events (incl. span "
                         "events) to a JSONL file for later --replay")

    sw = sub.add_parser(
        "sweep",
        help="expand a declarative sweep spec and execute its run matrix",
    )
    sw.add_argument("spec", metavar="SPEC",
                    help="sweep spec: a .json file (SweepSpec.to_dict) or a "
                         ".py file defining SPEC or build_spec()")
    sw.add_argument("--jobs", type=int, default=1, metavar="N",
                    help="worker processes (1 = run in-process)")
    sw.add_argument("--baseline", default=None, metavar="RUN_ID",
                    help="run id to diff variants against "
                         "(default: the all-baseline run)")
    sw.add_argument("--out", default="BENCH_sweep.json", metavar="PATH",
                    help="where to write the sweep payload")
    sw.add_argument("--resume", default=None, metavar="PATH",
                    help="prior sweep payload; completed run ids are reused")
    sw.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                    help="per-run wall-clock timeout (jobs > 1 only)")
    sw.add_argument("--list", action="store_true", dest="list_only",
                    help="print the expanded run matrix and exit")

    d = sub.add_parser(
        "dash",
        help="render a run (live scenario or JSONL recording) as an "
             "HTML ops dashboard",
    )
    d.add_argument("--replay", default=None, metavar="PATH",
                   help="render from a JSONL event recording (written by "
                        "--events-out) instead of running a scenario")
    d.add_argument("--scenario", default="quickstart", metavar="NAME",
                   help="sweep-registry DES scenario to run live "
                        "(default: quickstart)")
    d.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                   help="scenario parameter override (repeatable)")
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--bin-width", type=float, default=1800.0, metavar="SECONDS",
                   help="rollup window width (default: 1800 s)")
    d.add_argument("--out", default="dash.html", metavar="PATH",
                   help="where to write the dashboard HTML")
    d.add_argument("--check-parity", action="store_true",
                   help="verify the streaming rollup bit-for-bit against "
                        "the exact RunMetrics reduction and fail on drift")

    w = sub.add_parser(
        "watch",
        help="watch a run live: streaming §5 detectors, typed alerts, "
             "and periodic atomic dashboard refresh",
    )
    w.add_argument("--replay", default=None, metavar="PATH",
                   help="evaluate the detectors over a JSONL event "
                        "recording (written by --events-out) instead of "
                        "running a scenario; the alert stream is "
                        "byte-identical to the live run that produced it")
    w.add_argument("--scenario", default="quickstart", metavar="NAME",
                   help="sweep-registry DES scenario to run live "
                        "(default: quickstart)")
    w.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                   help="scenario parameter override (repeatable)")
    w.add_argument("--seed", type=int, default=0)
    w.add_argument("--window", type=float, default=1800.0, metavar="SECONDS",
                   help="detector window width (and dashboard bin width)")
    w.add_argument("--refresh-every", type=float, default=None,
                   metavar="SIMSECONDS",
                   help="re-render the dashboard every N simulated seconds "
                        "(quantised to window closes; atomic os.replace)")
    w.add_argument("--out", default="watch.html", metavar="PATH",
                   help="where to write the dashboard HTML")
    w.add_argument("--alerts-out", default=None, metavar="PATH",
                   help="write the alert stream as a JSON array")
    w.add_argument("--events-out", default=None, metavar="PATH",
                   help="also record the full event stream (live mode; "
                        "alert.* events included)")
    w.add_argument("--fail-on-alert", action="store_true",
                   help="exit 1 if any alert was raised")
    return parser


def _attach_events_sink(env, args):
    """Attach a JSONL sink to the bus when ``--events-out`` was given."""
    if getattr(args, "events_out", None) is None:
        return None
    from repro.monitor import JsonlSink

    try:
        sink = JsonlSink(args.events_out)
    except OSError as exc:
        raise SystemExit(f"cannot write events to {args.events_out}: {exc}") from None
    env.bus.attach(sink)
    return sink


def _finish(prepared, out, sink=None, dash_out=None) -> int:
    """Drive a :class:`~repro.scenarios.PreparedRun` and print its report."""
    from repro.monitor import render_report
    from repro.scenarios import execute_prepared

    collector = tracer = None
    if dash_out is not None:
        from repro.monitor import RollupCollector, SpanTracer

        collector = RollupCollector(prepared.env.bus)
        tracer = SpanTracer(prepared.env)
    # The settle window lets workers and glide-ins exit cleanly instead
    # of being garbage-collected mid-yield.
    execute_prepared(prepared, settle=300.0)
    out.write(render_report(prepared.run) + "\n")
    if sink is not None:
        sink.close()
        out.write(f"recorded {sink.count} events to {sink.path}\n")
    if collector is not None:
        from repro.monitor import write_dashboard

        tracer.finalize()
        labels = [wf.label for wf in prepared.run.config.workflows]
        write_dashboard(
            dash_out,
            collector.rollup,
            metrics=prepared.run.metrics,
            spans=list(tracer.spans),
            bus_stats=prepared.env.bus.stats(),
            title=", ".join(labels) or "repro run",
        )
        out.write(f"dashboard written to {dash_out}\n")
    return 0


def cmd_quickstart(args, out) -> int:
    from repro.desim import Environment
    from repro.scenarios import prepare_quickstart

    env = Environment()
    sink = _attach_events_sink(env, args)
    prepared = prepare_quickstart(
        events=args.events, workers=args.workers, seed=args.seed, env=env
    )
    return _finish(prepared, out, sink=sink, dash_out=args.dash_out)


def cmd_simulate(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.desim import Environment
    from repro.scenarios import prepare_simulate

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "simulation":
        raise SystemExit(f"profile {args.profile!r} is not a simulation profile")
    env = Environment()
    sink = _attach_events_sink(env, args)
    prepared = prepare_simulate(
        code,
        events=args.events,
        machines=args.machines,
        cores=args.cores,
        seed=args.seed,
        label=f"mc-{args.profile}",
        env=env,
    )
    return _finish(prepared, out, sink=sink, dash_out=args.dash_out)


def cmd_process(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.desim import Environment
    from repro.scenarios import prepare_process

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "data-processing":
        raise SystemExit(f"profile {args.profile!r} is not a data profile")
    env = Environment()
    sink = _attach_events_sink(env, args)
    prepared = prepare_process(
        code,
        files=args.files,
        machines=args.machines,
        cores=args.cores,
        wan_gbit=args.wan_gbit,
        outage_hours=args.outage_hours,
        seed=args.seed,
        label=f"data-{args.profile}",
        env=env,
    )
    return _finish(prepared, out, sink=sink, dash_out=args.dash_out)


def cmd_chaos(args, out) -> int:
    """A data run that survives a barrage of injected faults.

    See :func:`repro.scenarios.prepare_chaos` for the fault schedule —
    the same scenario is reachable declaratively as the sweep registry's
    ``chaos`` scenario.
    """
    from repro.desim import Environment
    from repro.scenarios import prepare_chaos

    env = Environment()
    sink = _attach_events_sink(env, args)
    prepared = prepare_chaos(
        files=args.files,
        machines=args.machines,
        cores=args.cores,
        wan_gbit=args.wan_gbit,
        seed=args.seed,
        bit_rot=args.bit_rot,
        truncate=args.truncate,
        duplicates=args.duplicates,
        master_crash_at=args.master_crash_at,
        env=env,
    )
    if args.master_crash_at is None:
        return _finish(prepared, out, sink=sink, dash_out=args.dash_out)

    # Crash-and-recover flow: run until the MasterCrash fault kills the
    # master, then warm-restart the campaign from the surviving Lobster
    # DB and drive the resumed run to completion.
    from repro.scenarios import execute_prepared, warm_restart

    execute_prepared(prepared, settle=60.0)
    if not prepared.run.crashed:
        out.write(
            f"campaign finished before t={args.master_crash_at:.0f}s — "
            "the master was never crashed\n"
        )
        return _finish(prepared, out, sink=sink, dash_out=args.dash_out)
    out.write(
        f"MASTER CRASHED at t={env.now:.0f}s "
        f"({prepared.run.master.tasks_returned} task results banked so far)\n"
    )
    resumed = warm_restart(prepared)
    out.write("WARM RESTART: recovering from the Lobster DB\n")
    return _finish(resumed, out, sink=sink, dash_out=args.dash_out)


def cmd_crashtest(args, out) -> int:
    """Fuzz crash consistency: crash at checkpoints, assert convergence.

    See :mod:`repro.crashtest` for the harness.  Exit status is 0 only
    when every tested crash point converges with clean invariants (the
    CI gate greps the ``CRASHTEST OK`` verdict line as a backstop).
    """
    from repro.crashtest import list_crash_scenarios, run_crashtest

    if args.list_only:
        for spec in list_crash_scenarios():
            out.write(f"{spec.name:<12s} {spec.description}\n")
        return 0

    def progress(point):
        verdict = "ok" if point.ok else "FAILED"
        out.write(f"  crash @ seq={point.seq:<4d} {point.op:<22s} {verdict}\n")
        for problem in point.problems:
            out.write(f"      {problem}\n")

    try:
        report = run_crashtest(
            scenario=args.scenario,
            mode=args.mode,
            samples=args.samples,
            seed=args.seed,
            double_crash=args.double_crash,
            progress=progress,
        )
    except KeyError as exc:
        # str(KeyError) wraps the message in repr quotes; unwrap it.
        raise SystemExit(exc.args[0]) from None
    out.write(report.format_report() + "\n")
    if args.report_out is not None:
        import json

        with open(args.report_out, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        out.write(f"report written to {args.report_out}\n")
    return 0 if report.ok else 1


def cmd_tasksize(args, out) -> int:
    from repro.core import TaskSizeConfig, TaskSizeSimulator
    from repro.distributions import (
        ConstantHazardEviction,
        NoEviction,
        WeibullEviction,
    )

    model = {
        "constant": lambda: ConstantHazardEviction(args.probability),
        "weibull": lambda: WeibullEviction(),
        "none": lambda: NoEviction(),
    }[args.eviction]()
    sim = TaskSizeSimulator(
        TaskSizeConfig(n_tasklets=args.tasklets, n_workers=args.workers),
        seed=args.seed,
    )
    out.write(f"eviction model: {model!r}\n")
    out.write("hours  tasklets/task  efficiency\n")
    best = None
    for hours in (0.25, 0.5, 1, 2, 3, 4, 6, 8, 10):
        r = sim.simulate(hours * HOUR, model)
        out.write(f"{hours:5.2f}  {r.tasklets_per_task:13d}  {r.efficiency:10.4f}\n")
        if best is None or r.efficiency > best.efficiency:
            best = r
    out.write(
        f"\noptimal: {best.task_length / HOUR:.2f} h "
        f"({best.tasklets_per_task} tasklets/task) at {best.efficiency:.1%}\n"
    )
    return 0


def cmd_profiles(args, out) -> int:
    from repro.analysis.profiles import PROFILES, profile

    out.write(f"{'name':<14s} {'kind':<16s} {'cpu/evt':>8s} {'in/evt':>9s} {'out/evt':>9s}\n")
    for name in sorted(PROFILES):
        code = profile(name)
        out.write(
            f"{name:<14s} {code.kind.value:<16s} "
            f"{code.per_event_cpu.mean():8.3f} "
            f"{code.input_bytes_per_event / 1e3:8.0f}k "
            f"{code.output_bytes_per_event / 1e3:8.0f}k\n"
        )
    return 0


def cmd_topology(args, out) -> int:
    from repro.batch import MachinePool
    from repro.core import Services
    from repro.desim import Environment

    env = Environment()
    services = Services.default(env, wan_bandwidth=args.wan_gbit * GBIT)
    MachinePool.homogeneous(
        env,
        args.machines,
        cores=args.cores,
        fabric=services.fabric,
        machines_per_switch=args.machines_per_switch,
    )
    out.write(services.fabric.describe() + "\n")
    return 0


def cmd_events(args, out) -> int:
    from collections import Counter

    from repro.monitor import diagnose, load_events, metrics_from_events

    try:
        events = load_events(args.path)
    except OSError as exc:
        raise SystemExit(str(exc)) from None
    except ValueError as exc:  # json.JSONDecodeError is a ValueError
        raise SystemExit(f"{args.path}: not a valid event stream ({exc})") from None
    metrics = metrics_from_events(events)

    out.write(f"{len(events)} events from {args.path}\n")
    counts = Counter(ev.get("topic", "?") for ev in events)
    for topic, n in counts.most_common(args.top):
        out.write(f"  {topic:<18s} {n:8d}\n")
    if len(counts) > args.top:
        out.write(f"  ... and {len(counts) - args.top} more topics\n")

    out.write(
        f"\ntask records: {metrics.n_tasks} "
        f"({metrics.n_succeeded()} ok, {metrics.n_failed()} failed), "
        f"evictions seen: {metrics.evictions_seen}\n"
    )
    if metrics.n_tasks:
        b = metrics.runtime_breakdown()
        out.write(f"overall efficiency: {metrics.overall_efficiency():.1%}\n")
        for label, hours, pct in b.rows():
            out.write(f"  {label:<16s} {hours:9.2f} h  {pct:5.1f}%\n")

    findings = diagnose(metrics)
    if findings:
        out.write("\ntroubleshooting findings:\n")
        for d in findings:
            out.write(
                f"  [{d.symptom}] {d.metric:.3g} > {d.threshold:.3g}: "
                f"{d.suggestion}\n"
            )
    elif metrics.n_tasks:
        out.write("\nno troubleshooting findings — run looks healthy\n")
    return 0


def cmd_trace(args, out) -> int:
    """Produce and analyze span trees, live or from a recording.

    Live mode runs the quickstart scenario with a
    :class:`~repro.monitor.SpanTracer` attached; ``--replay`` instead
    rebuilds the spans from a JSONL event recording (span events are
    part of the bus stream, so any ``--events-out`` file from a traced
    run replays losslessly).
    """
    from repro.monitor import (
        critical_path,
        diagnose,
        format_breakdown,
        spans_from_events,
        work_coverage,
        write_chrome_trace,
        write_spans_jsonl,
    )

    if args.replay is not None:
        from repro.monitor import load_events, metrics_from_events

        try:
            events = load_events(args.replay)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        except ValueError as exc:
            raise SystemExit(
                f"{args.replay}: not a valid event stream ({exc})"
            ) from None
        spans = spans_from_events(events)
        metrics = metrics_from_events(events)
        orphan_count = sum(
            1 for s in spans
            if s.parent_id is None and s.name not in ("unit", "run")
        )
        out.write(f"replayed {len(events)} events from {args.replay}\n")
    else:
        from repro.analysis import simulation_code
        from repro.batch import CondorPool, GlideinRequest, MachinePool
        from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
        from repro.desim import Environment
        from repro.distributions import ConstantHazardEviction
        from repro.monitor import SpanTracer

        env = Environment()
        tracer = SpanTracer(env)
        sink = _attach_events_sink(env, args)
        services = Services.default(env, seed=args.seed)
        cfg = LobsterConfig(
            workflows=[
                WorkflowConfig(
                    label="traced",
                    code=simulation_code(),
                    n_events=args.events,
                    events_per_tasklet=500,
                    tasklets_per_task=4,
                )
            ],
            cores_per_worker=4,
            seed=args.seed,
        )
        run = LobsterRun(env, cfg, services)
        run.start()
        machines = MachinePool.homogeneous(
            env, args.workers, cores=4, fabric=services.fabric
        )
        pool = CondorPool(
            env, machines, eviction=ConstantHazardEviction(0.1), seed=args.seed
        )
        pool.submit(
            GlideinRequest(
                n_workers=args.workers, cores_per_worker=4, start_interval=2.0
            ),
            run.worker_payload,
        )
        env.run(until=run.process)
        pool.drain()
        try:
            env.run(until=env.now + 300.0)
        except RuntimeError:
            pass
        orphan_count = len(tracer.finalize())
        spans = list(tracer.spans)
        metrics = run.metrics
        if sink is not None:
            sink.close()
            out.write(f"recorded {sink.count} events to {sink.path}\n")

    traces = {s.trace_id for s in spans}
    out.write(f"{len(spans)} spans across {len(traces)} traces, "
              f"{orphan_count} orphans\n")
    if args.spans_out is not None:
        n = write_spans_jsonl(spans, args.spans_out)
        out.write(f"wrote {n} spans to {args.spans_out}\n")
    if args.chrome_out is not None:
        n = write_chrome_trace(spans, args.chrome_out)
        out.write(f"wrote {n} trace events to {args.chrome_out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)\n")
    if not spans:
        return 0

    slices, makespan = critical_path(spans)
    if slices:
        out.write("\n" + format_breakdown(slices, makespan, top=args.top) + "\n")
        out.write(
            f"critical path covers {work_coverage(slices, makespan):.1%} "
            f"of the {makespan:.0f}s makespan\n"
        )

    findings = diagnose(metrics, spans=spans)
    if findings:
        out.write("\ntroubleshooting findings (with evidence spans):\n")
        for d in findings:
            out.write(f"  - {d}\n")
    else:
        out.write("\nno troubleshooting findings — run looks healthy\n")
    return 0


def cmd_sweep(args, out) -> int:
    """Expand a sweep spec, execute its matrix, and write the payload."""
    from repro.sweep import format_sweep_table, load_spec, run_sweep, write_json

    try:
        spec = load_spec(args.spec)
    except OSError as exc:
        raise SystemExit(str(exc)) from None
    except ValueError as exc:
        raise SystemExit(f"{args.spec}: {exc}") from None
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")

    plans = spec.expand()
    out.write(
        f"sweep {spec.name!r}: scenario {spec.scenario!r}, "
        f"{len(plans)} runs across {len(spec.axes)} axes "
        f"(seed {spec.resolved_seed()}, jobs {args.jobs})\n"
    )
    if args.list_only:
        for plan in plans:
            out.write(f"  {plan.run_id}\n")
        return 0

    def progress(row):
        status = row.status if not row.resumed else f"{row.status} (resumed)"
        note = ""
        if row.ok and "makespan_s" in row.metrics:
            note = f"  makespan {row.metrics['makespan_s']:.0f}s"
        elif row.error:
            note = f"  {row.error}"
        out.write(f"  [{status:>4s}] {row.run_id}{note}\n")

    try:
        payload = run_sweep(
            spec,
            jobs=args.jobs,
            baseline=args.baseline,
            resume=args.resume,
            timeout_s=args.timeout,
            progress=progress,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    write_json(payload, args.out)
    out.write(f"\n{format_sweep_table(payload)}\n")
    out.write(f"wrote {args.out}\n")
    return 0 if payload["n_failed"] == 0 else 1


def _parse_params(pairs: List[str]) -> dict:
    """Parse repeated ``--param KEY=VALUE`` flags into scenario kwargs.

    Values are coerced int → float → string so ``--param workers=20``
    and ``--param wan_gbit=0.6`` both round-trip into the scenario
    builder's native types.
    """
    params: dict = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects KEY=VALUE, got {pair!r}")
        value: object
        try:
            value = int(raw)
        except ValueError:
            try:
                value = float(raw)
            except ValueError:
                value = raw
        params[key.replace("-", "_")] = value
    return params


def cmd_dash(args, out) -> int:
    """Render a run as a static HTML ops dashboard.

    Live mode runs a DES scenario from the sweep registry with a
    :class:`~repro.monitor.RollupCollector` (and a
    :class:`~repro.monitor.SpanTracer`, so §5 diagnoses carry
    click-through evidence spans) attached to the bus; ``--replay``
    instead rebuilds the rollup from a JSONL event recording.  Both
    paths optionally cross-check the streaming rollup against the
    exact :class:`~repro.monitor.RunMetrics` reduction.
    """
    from repro.monitor import verify_parity, write_dashboard

    if args.replay is not None:
        from repro.monitor import (
            load_events,
            metrics_from_events,
            rollup_from_events,
            spans_from_events,
        )

        try:
            events = load_events(args.replay)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        except ValueError as exc:
            raise SystemExit(
                f"{args.replay}: not a valid event stream ({exc})"
            ) from None
        rollup = rollup_from_events(events, bin_width=args.bin_width)
        metrics = metrics_from_events(events)
        spans = spans_from_events(events)
        bus_stats = None
        title = f"replay of {args.replay}"
        out.write(f"replayed {len(events)} events from {args.replay}\n")
    else:
        from repro.desim import Environment
        from repro.monitor import RollupCollector, SpanTracer
        from repro.sweep import get_scenario, list_scenarios

        try:
            scenario = get_scenario(args.scenario)
        except KeyError:
            names = ", ".join(s.name for s in list_scenarios())
            raise SystemExit(
                f"unknown scenario {args.scenario!r} (available: {names})"
            ) from None
        if scenario.kind != "des":
            raise SystemExit(
                f"scenario {args.scenario!r} is not a DES run scenario"
            )
        params = _parse_params(args.param)
        params.setdefault("seed", args.seed)
        env = Environment()
        tracer = SpanTracer(env)
        collector = RollupCollector(env.bus, bin_width=args.bin_width)
        try:
            result = scenario.build(env, **params)
        except TypeError as exc:
            raise SystemExit(f"scenario {args.scenario!r}: {exc}") from None
        tracer.finalize()
        rollup = collector.rollup
        metrics = result.run.metrics
        spans = list(tracer.spans)
        bus_stats = env.bus.stats()
        title = f"{args.scenario} (seed {params['seed']})"
        out.write(
            f"ran scenario {args.scenario!r}: {rollup.events_seen} events "
            f"folded into {int(rollup.bin_width)}s windows\n"
        )

    if args.check_parity:
        problems = verify_parity(rollup, metrics)
        if problems:
            out.write("PARITY FAILED:\n")
            for p in problems:
                out.write(f"  - {p}\n")
            return 1
        out.write("parity OK: rollup matches the exact reduction bit-for-bit\n")

    write_dashboard(
        args.out,
        rollup,
        metrics=metrics,
        spans=spans,
        bus_stats=bus_stats,
        title=title,
    )
    out.write(f"dashboard written to {args.out}\n")
    return 0


def cmd_watch(args, out) -> int:
    """Watch a run live (or replay one) through the health engine.

    Live mode attaches a :class:`~repro.monitor.RunWatcher` (plus the
    rollup collector and span tracer) to a DES scenario from the sweep
    registry; every detector transition is printed as a greppable
    ``ALERT`` line and published on the bus, and ``--refresh-every``
    re-renders the dashboard atomically at window closes.  ``--replay``
    runs the same engine over a JSONL recording — the alert stream is
    byte-identical to what the live run produced.
    """
    import json as _json

    from repro.monitor import rollup_from_events, write_dashboard

    if args.replay is not None:
        from repro.monitor import alerts_from_events, load_events, metrics_from_events

        try:
            events = load_events(args.replay)
        except OSError as exc:
            raise SystemExit(str(exc)) from None
        except ValueError as exc:
            raise SystemExit(
                f"{args.replay}: not a valid event stream ({exc})"
            ) from None
        engine = alerts_from_events(events, window=args.window)
        rollup = rollup_from_events(events, bin_width=args.window)
        metrics = metrics_from_events(events)
        bus_stats = None
        bus_timeline = None
        now = max((float(e.get("t", 0.0)) for e in events), default=None)
        title = f"watch replay of {args.replay}"
        out.write(f"replayed {len(events)} events from {args.replay}\n")
    else:
        from repro.desim import Environment
        from repro.monitor import RollupCollector, RunWatcher, SpanTracer
        from repro.sweep import get_scenario, list_scenarios

        try:
            scenario = get_scenario(args.scenario)
        except KeyError:
            names = ", ".join(s.name for s in list_scenarios())
            raise SystemExit(
                f"unknown scenario {args.scenario!r} (available: {names})"
            ) from None
        if scenario.kind != "des":
            raise SystemExit(
                f"scenario {args.scenario!r} is not a DES run scenario"
            )
        params = _parse_params(args.param)
        params.setdefault("seed", args.seed)
        env = Environment()
        sink = _attach_events_sink(env, args)
        tracer = SpanTracer(env)
        collector = RollupCollector(env.bus, bin_width=args.window)
        watcher = RunWatcher(env.bus, window=args.window)
        engine = watcher.engine

        refreshes = [0]
        if args.refresh_every is not None:
            last = [0.0]
            sample_bus = engine.on_window  # the watcher's stats sampler

            def on_window(w_idx: int, t: float) -> None:
                sample_bus(w_idx, t)
                if t - last[0] >= args.refresh_every:
                    last[0] = t
                    write_dashboard(
                        args.out,
                        collector.rollup,
                        bus_stats=env.bus.stats(),
                        title=f"{args.scenario} (live, t={t:.0f}s)",
                        alerts=engine.alerts,
                        watch_history=engine.history,
                        bus_timeline=watcher.bus_timeline,
                        now=t,
                    )
                    refreshes[0] += 1

            engine.on_window = on_window

        try:
            scenario.build(env, **params)
        except TypeError as exc:
            raise SystemExit(f"scenario {args.scenario!r}: {exc}") from None
        tracer.finalize()
        if sink is not None:
            sink.close()
            out.write(f"recorded {sink.count} events to {sink.path}\n")
        rollup = collector.rollup
        metrics = None
        bus_stats = env.bus.stats()
        bus_timeline = watcher.bus_timeline
        now = float(env.now)
        title = f"{args.scenario} (seed {params['seed']})"
        out.write(
            f"watched {engine.events_seen} events across "
            f"{engine.windows_closed} windows"
            + (f", {refreshes[0]} mid-run refreshes\n"
               if args.refresh_every is not None else "\n")
        )

    for a in engine.alerts:
        verb = "RAISE" if a["topic"].endswith("raise") else "clear"
        out.write(
            f"ALERT {verb} t={a['t']:.0f} {a['alert']} {a['severity']} "
            f"window={a['window']} level={a['level']:.4g}\n"
        )
    raised = len(engine.alerts_raised())
    cleared = len(engine.alerts_cleared())
    out.write(f"alerts: {raised} raised, {cleared} cleared\n")

    if args.alerts_out is not None:
        with open(args.alerts_out, "w", encoding="utf-8") as fh:
            _json.dump(engine.alerts, fh, sort_keys=True, indent=1)
            fh.write("\n")
        out.write(f"alert stream written to {args.alerts_out}\n")

    write_dashboard(
        args.out,
        rollup,
        metrics=metrics,
        bus_stats=bus_stats,
        title=title,
        alerts=engine.alerts,
        watch_history=engine.history,
        bus_timeline=bus_timeline,
        now=now,
    )
    out.write(f"dashboard written to {args.out}\n")
    if args.fail_on_alert and raised:
        return 1
    return 0


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "simulate": cmd_simulate,
    "process": cmd_process,
    "chaos": cmd_chaos,
    "crashtest": cmd_crashtest,
    "tasksize": cmd_tasksize,
    "profiles": cmd_profiles,
    "topology": cmd_topology,
    "events": cmd_events,
    "trace": cmd_trace,
    "sweep": cmd_sweep,
    "dash": cmd_dash,
    "watch": cmd_watch,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args, out)
    except BrokenPipeError:  # e.g. `python -m repro events run.jsonl | head`
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
