"""Command-line interface: ``python -m repro <command>``.

Mirrors the real Lobster's operational entry points on the simulated
substrate:

* ``quickstart`` — a tiny end-to-end MC run with a final report,
* ``simulate``   — a Monte-Carlo production run (Fig 11 conditions),
* ``process``    — a data-processing run over a synthetic dataset
  (Fig 10 conditions, optional WAN outage),
* ``tasksize``   — the §4.1 task-size optimiser,
* ``profiles``   — list the bundled analysis-code profiles.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]

HOUR = 3600.0
GBIT = 125_000_000.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Lobster (CLUSTER 2015) reproduction on a simulated cluster",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    q = sub.add_parser("quickstart", help="tiny end-to-end MC run")
    q.add_argument("--events", type=int, default=50_000)
    q.add_argument("--workers", type=int, default=10)
    q.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("simulate", help="Monte-Carlo production run")
    s.add_argument("--events", type=int, default=1_000_000)
    s.add_argument("--machines", type=int, default=50)
    s.add_argument("--cores", type=int, default=8)
    s.add_argument("--profile", default="digi-reco-mc")
    s.add_argument("--seed", type=int, default=0)

    p = sub.add_parser("process", help="data-processing run over a synthetic dataset")
    p.add_argument("--files", type=int, default=200)
    p.add_argument("--machines", type=int, default=25)
    p.add_argument("--cores", type=int, default=8)
    p.add_argument("--profile", default="ntuple")
    p.add_argument("--wan-gbit", type=float, default=0.6)
    p.add_argument("--outage-hours", type=float, default=0.0,
                   help="inject a 1-hour WAN outage starting at this hour (0 = none)")
    p.add_argument("--seed", type=int, default=0)

    t = sub.add_parser("tasksize", help="run the section-4.1 task-size optimiser")
    t.add_argument("--tasklets", type=int, default=20_000)
    t.add_argument("--workers", type=int, default=1_600)
    t.add_argument("--eviction", choices=("constant", "weibull", "none"),
                   default="constant")
    t.add_argument("--probability", type=float, default=0.1)
    t.add_argument("--seed", type=int, default=0)

    sub.add_parser("profiles", help="list bundled analysis profiles")
    return parser


def _finish(env, run, pool, out) -> int:
    from repro.monitor import render_report

    env.run(until=run.process)
    pool.drain()
    # Let the drain cascade settle so workers and glide-ins exit cleanly
    # instead of being garbage-collected mid-yield.
    try:
        env.run(until=env.now + 300.0)
    except RuntimeError:
        pass  # queue drained before the settling window elapsed
    out.write(render_report(run) + "\n")
    return 0


def cmd_quickstart(args, out) -> int:
    from repro.analysis import simulation_code
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.desim import Environment
    from repro.distributions import ConstantHazardEviction

    env = Environment()
    services = Services.default(env, seed=args.seed)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label="quickstart",
                code=simulation_code(),
                n_events=args.events,
                events_per_tasklet=500,
                tasklets_per_task=4,
            )
        ],
        cores_per_worker=4,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, args.workers, cores=4)
    pool = CondorPool(env, machines, eviction=ConstantHazardEviction(0.1), seed=args.seed)
    pool.submit(
        GlideinRequest(n_workers=args.workers, cores_per_worker=4, start_interval=2.0),
        run.worker_payload,
    )
    return _finish(env, run, pool, out)


def cmd_simulate(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import LobsterConfig, LobsterRun, Services, WorkflowConfig
    from repro.desim import Environment

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "simulation":
        raise SystemExit(f"profile {args.profile!r} is not a simulation profile")
    env = Environment()
    services = Services.default(env, seed=args.seed)
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label=f"mc-{args.profile}",
                code=code,
                n_events=args.events,
                events_per_tasklet=500,
                tasklets_per_task=6,
                max_retries=50,
            )
        ],
        cores_per_worker=args.cores,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, args.machines, cores=args.cores)
    pool = CondorPool(env, machines, seed=args.seed)
    pool.submit(
        GlideinRequest(
            n_workers=args.machines, cores_per_worker=args.cores, start_interval=0.5
        ),
        run.worker_payload,
    )
    return _finish(env, run, pool, out)


def cmd_process(args, out) -> int:
    from repro.analysis.profiles import profile
    from repro.batch import CondorPool, GlideinRequest, MachinePool
    from repro.core import (
        LobsterConfig,
        LobsterRun,
        MergeMode,
        Services,
        WorkflowConfig,
    )
    from repro.dbs import DBS, synthetic_dataset
    from repro.desim import Environment
    from repro.distributions import WeibullEviction
    from repro.storage.wan import OutageWindow

    try:
        code = profile(args.profile)
    except KeyError as exc:
        raise SystemExit(str(exc)) from None
    if code.kind.value != "data-processing":
        raise SystemExit(f"profile {args.profile!r} is not a data profile")
    env = Environment()
    dbs = DBS()
    ds = synthetic_dataset(n_files=args.files, events_per_file=45_000,
                           lumis_per_file=60, seed=args.seed)
    dbs.register(ds)
    outages = (
        [OutageWindow(args.outage_hours * HOUR, (args.outage_hours + 1) * HOUR)]
        if args.outage_hours > 0
        else None
    )
    services = Services.default(
        env, dbs=dbs, wan_bandwidth=args.wan_gbit * GBIT, outages=outages,
        seed=args.seed,
    )
    cfg = LobsterConfig(
        workflows=[
            WorkflowConfig(
                label=f"data-{args.profile}",
                code=code,
                dataset=ds.name,
                lumis_per_tasklet=10,
                tasklets_per_task=6,
                merge_mode=MergeMode.INTERLEAVED,
                max_retries=50,
            )
        ],
        cores_per_worker=args.cores,
        seed=args.seed,
    )
    run = LobsterRun(env, cfg, services)
    run.start()
    machines = MachinePool.homogeneous(env, args.machines, cores=args.cores)
    pool = CondorPool(env, machines, eviction=WeibullEviction(), seed=args.seed)
    pool.submit(
        GlideinRequest(
            n_workers=args.machines, cores_per_worker=args.cores, start_interval=2.0
        ),
        run.worker_payload,
    )
    return _finish(env, run, pool, out)


def cmd_tasksize(args, out) -> int:
    from repro.core import TaskSizeConfig, TaskSizeSimulator
    from repro.distributions import (
        ConstantHazardEviction,
        NoEviction,
        WeibullEviction,
    )

    model = {
        "constant": lambda: ConstantHazardEviction(args.probability),
        "weibull": lambda: WeibullEviction(),
        "none": lambda: NoEviction(),
    }[args.eviction]()
    sim = TaskSizeSimulator(
        TaskSizeConfig(n_tasklets=args.tasklets, n_workers=args.workers),
        seed=args.seed,
    )
    out.write(f"eviction model: {model!r}\n")
    out.write("hours  tasklets/task  efficiency\n")
    best = None
    for hours in (0.25, 0.5, 1, 2, 3, 4, 6, 8, 10):
        r = sim.simulate(hours * HOUR, model)
        out.write(f"{hours:5.2f}  {r.tasklets_per_task:13d}  {r.efficiency:10.4f}\n")
        if best is None or r.efficiency > best.efficiency:
            best = r
    out.write(
        f"\noptimal: {best.task_length / HOUR:.2f} h "
        f"({best.tasklets_per_task} tasklets/task) at {best.efficiency:.1%}\n"
    )
    return 0


def cmd_profiles(args, out) -> int:
    from repro.analysis.profiles import PROFILES, profile

    out.write(f"{'name':<14s} {'kind':<16s} {'cpu/evt':>8s} {'in/evt':>9s} {'out/evt':>9s}\n")
    for name in sorted(PROFILES):
        code = profile(name)
        out.write(
            f"{name:<14s} {code.kind.value:<16s} "
            f"{code.per_event_cpu.mean():8.3f} "
            f"{code.input_bytes_per_event / 1e3:8.0f}k "
            f"{code.output_bytes_per_event / 1e3:8.0f}k\n"
        )
    return 0


_COMMANDS = {
    "quickstart": cmd_quickstart,
    "simulate": cmd_simulate,
    "process": cmd_process,
    "tasksize": cmd_tasksize,
    "profiles": cmd_profiles,
}


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
