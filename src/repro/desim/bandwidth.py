"""Max-min fair-share bandwidth links.

A :class:`FairShareLink` models a network resource (WAN uplink, disk
spindle, proxy NIC) whose capacity is divided among concurrent flows with
max-min fairness: every flow gets an equal share unless capped by its own
maximum rate, in which case the spare capacity is redistributed.

Transfers are events: processes ``yield link.transfer(nbytes)`` and resume
once the bytes have moved.  Rates are recomputed whenever the flow set or
the link capacity changes, so transfer durations respond dynamically to
congestion — exactly the effect the paper observes when ~9000 tasks share
a 10 Gbit/s campus link (Fig 10).
"""

from __future__ import annotations

from itertools import count
from typing import List, Optional

from .core import Environment
from .events import Event, PENDING

__all__ = ["FairShareLink", "Transfer", "TransferCancelled", "allocate_max_min"]

_EPS = 1e-9


class TransferCancelled(Exception):
    """A transfer was cancelled (e.g. worker evicted mid-stream)."""


def allocate_max_min(demands: List[Optional[float]], capacity: float) -> List[float]:
    """Max-min fair allocation of *capacity* across flows.

    *demands* holds each flow's rate cap (``None`` = uncapped).  Returns
    a rate per flow.  Uncapped flows split whatever remains equally.
    """
    n = len(demands)
    if n == 0:
        return []
    rates = [0.0] * n
    remaining = capacity
    # Serve capped flows in increasing cap order; each takes
    # min(cap, equal-share-of-remaining).
    order = sorted(range(n), key=lambda i: float("inf") if demands[i] is None else demands[i])
    left = n
    for i in order:
        share = remaining / left
        cap = demands[i]
        rate = share if cap is None else min(cap, share)
        rates[i] = rate
        remaining -= rate
        left -= 1
    return rates


class Transfer(Event):
    """Event representing an in-flight transfer on a :class:`FairShareLink`."""

    __slots__ = ("link", "nbytes", "remaining", "max_rate", "rate", "started", "_last")

    def __init__(self, link: "FairShareLink", nbytes: float, max_rate: Optional[float]):
        super().__init__(link.env)
        self.link = link
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.max_rate = max_rate
        self.rate = 0.0
        self.started = link.env.now
        self._last = link.env.now

    @property
    def elapsed(self) -> float:
        return self.env.now - self.started

    def cancel(self) -> None:
        """Abort the transfer; the event fails with TransferCancelled.

        Safe to call after completion (no-op).  The failure arrives
        pre-defused so a cancelled transfer nobody waits on does not
        crash the simulation.
        """
        if self._value is not PENDING:
            return
        self.link._remove(self)
        self._defused = True
        self.fail(TransferCancelled(f"{self.nbytes - self.remaining:.0f}/{self.nbytes:.0f} bytes moved"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Transfer {self.nbytes:.0f}B remaining={self.remaining:.0f}B rate={self.rate:.0f}B/s>"


class FairShareLink:
    """A link of fixed *capacity* (bytes/second) shared by live transfers.

    Capacity may be changed at runtime (``set_capacity``), which models
    outages (capacity 0) and administrative re-provisioning.  The link
    accumulates usage statistics for the monitoring subsystem.
    """

    def __init__(self, env: Environment, capacity: float, name: str = "link"):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.env = env
        self.name = name
        self._capacity = float(capacity)
        self._flows: List[Transfer] = []
        self._generation = count()
        self._timer_gen = -1
        # statistics
        self.bytes_moved = 0.0
        self._busy_integral = 0.0  # ∫ (allocated rate) dt
        self._window_start = env.now
        self._last_stat = env.now

    # -- public API ----------------------------------------------------------
    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def utilization(self) -> float:
        """Mean fraction of capacity in use over the current window.

        The window starts at link creation (or the last call to
        :meth:`reset_utilization_window`) and ends now.
        """
        self._advance()
        horizon = self.env.now - self._window_start
        if horizon <= 0 or self._capacity <= 0:
            return 0.0
        return min(1.0, self._busy_integral / (self._capacity * horizon))

    def reset_utilization_window(self) -> None:
        """Start a fresh utilization window at the current time."""
        self._advance()
        self._busy_integral = 0.0
        self._window_start = self.env.now

    def transfer(self, nbytes: float, max_rate: Optional[float] = None) -> Transfer:
        """Begin moving *nbytes*; returns the completion event."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        flow = Transfer(self, nbytes, max_rate)
        if nbytes == 0:
            flow.succeed(flow)
            return flow
        self._advance()
        self._flows.append(flow)
        self._update()
        return flow

    def set_capacity(self, capacity: float) -> None:
        """Change the link capacity (0 = outage); live flows re-share."""
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self._advance()
        self._capacity = float(capacity)
        self._update()

    def estimate_duration(self, nbytes: float, max_rate: Optional[float] = None) -> float:
        """Duration estimate for a new transfer at current congestion.

        Honours existing flows' own ``max_rate`` caps: a link full of
        capped trickle flows still serves a new uncapped transfer at
        nearly full capacity.
        """
        if self._capacity <= 0:
            return float("inf")
        demands = [f.max_rate for f in self._flows] + [max_rate]
        rate = allocate_max_min(demands, self._capacity)[-1]
        return nbytes / rate if rate > 0 else float("inf")

    # -- internals ------------------------------------------------------------
    def _advance(self) -> None:
        """Progress all flows to the current time at their last rates."""
        now = self.env.now
        dt = now - self._last_stat
        if dt > 0:
            moved = 0.0
            for f in self._flows:
                step = f.rate * (now - f._last)
                f.remaining = max(0.0, f.remaining - step)
                f._last = now
                moved += step
            self.bytes_moved += moved
            self._busy_integral += sum(f.rate for f in self._flows) * dt
            self._last_stat = now
        else:
            for f in self._flows:
                if f._last < now:
                    step = f.rate * (now - f._last)
                    f.remaining = max(0.0, f.remaining - step)
                    f._last = now
                    self.bytes_moved += step

    def _remove(self, flow: Transfer) -> None:
        self._advance()
        try:
            self._flows.remove(flow)
        except ValueError:
            return
        self._update()

    def _update(self) -> None:
        """Recompute rates and (re)arm the completion timer."""
        # Complete any flows that have drained.  The tolerance is
        # relative to the flow size: float error in rate*dt accumulation
        # is proportional to nbytes, and an absolute epsilon can leave a
        # residue too small to advance the simulation clock (infinite
        # zero-delay ticks).
        done = [f for f in self._flows if f.remaining <= _EPS * max(1.0, f.nbytes)]
        if done:
            for f in done:
                self._flows.remove(f)
            for f in done:
                if f._value is PENDING:
                    f.rate = 0.0
                    f.succeed(f)

        if self._flows and self._capacity > 0:
            rates = allocate_max_min([f.max_rate for f in self._flows], self._capacity)
            for f, r in zip(self._flows, rates):
                f.rate = r
        else:
            for f in self._flows:
                f.rate = 0.0

        # Schedule the next completion.
        gen = next(self._generation)
        self._timer_gen = gen
        horizon = float("inf")
        now = self.env.now
        for f in self._flows:
            if f.rate > 0:
                horizon = min(horizon, f.remaining / f.rate)
        if horizon < float("inf"):
            # Ensure the tick lands at a strictly later representable
            # time, or the link would spin at a frozen clock.
            while now + horizon == now:
                horizon = horizon * 2 if horizon > 0 else max(now * 1e-15, 1e-12)
            self.env.process(self._tick(gen, horizon), name=f"{self.name}-tick")

    def _tick(self, gen: int, delay: float):
        yield self.env.timeout(delay)
        if gen != self._timer_gen:
            return  # superseded by a later update
        self._advance()
        self._update()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FairShareLink {self.name!r} cap={self._capacity:.0f}B/s flows={len(self._flows)}>"
