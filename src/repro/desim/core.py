"""The simulation environment: clock, event queue, and process driver."""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Generator, Iterable, List, Optional, Tuple

from .bus import EventBus, Topics
from .events import (
    NORMAL,
    PENDING,
    URGENT,
    AllOf,
    AnyOf,
    Event,
    Initialize,
    Interruption,
    StopProcess,
    Timeout,
)

__all__ = ["Environment", "Process", "EmptySchedule", "simulate"]


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class _StopSimulation(Exception):
    """Internal: raised to halt :meth:`Environment.run` at its until-event."""


class Process(Event):
    """A running simulation process wrapping a generator.

    A process is itself an event which fires when the generator returns
    (successfully, with the generator's return value) or raises
    (failed, with the exception).
    """

    __slots__ = ("_generator", "_target", "name", "span_ctx")

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None):
        if not hasattr(generator, "throw"):
            raise ValueError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: Ambient trace context (monitor.tracing), inherited from the
        #: process that spawned this one so causal parentage crosses
        #: process boundaries without any signature changes.
        parent = env._active_proc
        self.span_ctx = parent.span_ctx if parent is not None else None
        #: The event the process currently waits for.
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        return self._target

    @property
    def is_alive(self) -> bool:
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` with *cause* into this process."""
        Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_proc = self
        # ``_active_proc`` is cleared exactly once, in the finally below —
        # including the non-event-yield error path, which previously left
        # a second clear unreachable after its raise.
        try:
            while True:
                try:
                    if event._ok:
                        next_event = self._generator.send(event._value)
                    else:
                        # The event failed: propagate into the generator.
                        event._defused = True
                        exc = event._value
                        if not isinstance(exc, BaseException):  # pragma: no cover
                            exc = RuntimeError(repr(exc))
                        next_event = self._generator.throw(exc)
                except (StopIteration, StopProcess) as stop:
                    self._target = None
                    self.succeed(stop.value)
                    return
                except BaseException as exc:
                    self._target = None
                    self.fail(exc)
                    return

                if type(next_event) is not Timeout and not isinstance(next_event, Event):
                    raise RuntimeError(
                        f"process {self.name!r} yielded a non-event: {next_event!r}"
                    )

                if next_event.callbacks is not None:
                    # Not yet processed: wait for it.
                    next_event.callbacks.append(self._resume)
                    self._target = next_event
                    return
                # Already processed: continue immediately with its outcome.
                event = next_event
        finally:
            env._active_proc = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} at {id(self):#x}>"


class Environment:
    """Execution environment for a discrete-event simulation.

    Time advances by processing scheduled events in (time, priority,
    insertion-order) order.  All events and processes belong to exactly
    one environment.

    Every environment carries an :class:`~repro.desim.bus.EventBus` at
    :attr:`bus`; substrate components publish structured events there and
    the monitoring layer subscribes.  The kernel itself only publishes
    ``kernel.step`` when someone actually listens: instrumentation state
    is folded into a single cached flag so the idle-bus hot path pays one
    boolean check per event.
    """

    def __init__(self, initial_time: float = 0.0, tracer=None, bus: Optional[EventBus] = None):
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_proc: Optional[Process] = None
        #: The structured event spine every layer publishes to.
        self.bus = bus if bus is not None else EventBus(self)
        if self.bus.env is None:
            self.bus.env = self
            # Ports compiled while the bus was env-less stamp time 0.0;
            # recompile them against this environment's clock.
            self.bus._changed()
        self._tracer = tracer
        #: Attach point for a :class:`repro.monitor.tracing.SpanTracer`;
        #: substrate layers reach it duck-typed (never importing monitor).
        self.spans = None
        #: Cached: does schedule()/step() need to call instrumentation?
        self._instrumented = tracer is not None
        #: Same-timestamp kernel.step compaction: kind -> [count, queued].
        #: One coalesced event per (timestamp, kind) is flushed when the
        #: clock advances (and at run end), so a kernel.step subscriber
        #: costs a dict update per step instead of a full publication.
        self._step_batch: dict = {}
        self._step_batch_time: float = 0.0
        self.bus.watch(self._refresh_instrumentation)
        self._refresh_instrumentation()

    # -- instrumentation ---------------------------------------------------
    @property
    def tracer(self):
        """Optional :class:`repro.desim.Tracer` collecting kernel stats."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer) -> None:
        self._tracer = tracer
        self._refresh_instrumentation()

    def _refresh_instrumentation(self) -> None:
        was_subscribed = getattr(self, "_kernel_subscribed", False)
        self._kernel_subscribed = self.bus.has_subscribers(Topics.KERNEL_STEP)
        self._instrumented = self._tracer is not None or self._kernel_subscribed
        if was_subscribed and not self._kernel_subscribed:
            # The last kernel.step subscriber left: flush what it is
            # still owed before the fast loop takes over.
            self._flush_steps()

    def _instrument_step(self, event: Event) -> None:
        if self._tracer is not None:
            self._tracer.on_step(self, event)
        if self._kernel_subscribed:
            batch = self._step_batch
            if batch and self._step_batch_time != self._now:
                self._flush_steps()
                batch = self._step_batch
            self._step_batch_time = self._now
            kind = type(event).__name__
            entry = batch.get(kind)
            if entry is None:
                batch[kind] = [1, len(self._queue)]
            else:
                entry[0] += 1
                entry[1] = len(self._queue)

    def _flush_steps(self) -> None:
        """Publish the coalesced kernel.step batch (one event per kind)."""
        batch = self._step_batch
        if not batch:
            return
        self._step_batch = {}
        t = self._step_batch_time
        publish = self.bus.publish
        for kind, (n, queued) in batch.items():
            publish(Topics.KERNEL_STEP, _time=t, kind=kind, queued=queued, count=n)

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_proc

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Insert *event* into the queue after *delay* time units."""
        if self._tracer is not None:
            self._tracer.on_schedule(self, event)
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when none remain."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next event; raise :class:`EmptySchedule` when done."""
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule() from None

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            return
        if self._instrumented:
            self._instrument_step(event)
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation.
            exc = event._value
            raise exc

    def run(self, until: Any = None) -> Any:
        """Run until *until* (a time, an event, or exhaustion when None).

        Returns the until-event's value if *until* is an event.  A time
        equal to the current instant returns immediately (simpy
        semantics); only a time strictly in the past is an error.
        """
        if until is not None:
            if isinstance(until, Event):
                at_event = until
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(f"until={at} must not lie in the past (now={self._now})")
                if at == self._now:
                    return None
                at_event = Event(self)
                at_event._ok = True
                at_event._value = None
                self.schedule(at_event, priority=URGENT, delay=at - self._now)

            def stop(_event: Event) -> None:
                raise _StopSimulation()

            if at_event.callbacks is None:
                return at_event._value
            at_event.callbacks.append(stop)
        else:
            at_event = None

        # The dispatch loop below is step() inlined: one heappop, one
        # callbacks swap, and a batched callback sweep per event, with
        # the bound methods hoisted out of the loop.  Instrumented
        # environments (tracer attached or a kernel.step subscriber) fall
        # back to the full step() so hooks keep firing; the flag is
        # re-read every iteration, so attaching mid-run takes effect.
        pop = heapq.heappop
        queue = self._queue
        step = self.step
        try:
            while True:
                if self._instrumented:
                    step()
                    continue
                try:
                    self._now, _, _, event = pop(queue)
                except IndexError:
                    raise EmptySchedule() from None
                callbacks = event.callbacks
                event.callbacks = None
                if callbacks:
                    if len(callbacks) == 1:
                        callbacks[0](event)
                    else:
                        for callback in callbacks:
                            callback(event)
                if not event._ok and not event._defused:
                    raise event._value
        except EmptySchedule:
            if self._step_batch:
                self._flush_steps()
            if at_event is not None and at_event._value is PENDING:
                raise RuntimeError(
                    "simulation ran out of events before the until-event fired"
                ) from None
            return None
        except _StopSimulation:
            if self._step_batch:
                self._flush_steps()
            if at_event is not None and not at_event._ok:
                raise at_event._value
            return at_event._value if at_event is not None else None

    # -- factories ----------------------------------------------------------
    def process(self, generator: Generator, name: Optional[str] = None) -> Process:
        """Start a new process from *generator*."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires after *delay* time units."""
        if self._tracer is not None:
            return Timeout(self, delay, value)
        # Fast path: build the event inline and push it straight onto the
        # queue, skipping the Event/Timeout constructor chain and the
        # schedule() indirection.  Timeouts dominate big simulations, so
        # this is the kernel's single hottest allocation site.  Only an
        # attached tracer needs the slow constructor (its on_schedule
        # hook); a mere kernel.step subscriber does not tax this site.
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        ev = Timeout.__new__(Timeout)
        ev.env = self
        ev.callbacks = []
        ev._value = value
        ev._ok = True
        ev._defused = False
        ev.delay = delay
        heapq.heappush(self._queue, (self._now + delay, NORMAL, next(self._eid), ev))
        return ev

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, list(events))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Environment now={self._now} queued={len(self._queue)}>"


def simulate(processes, until: Optional[float] = None) -> Environment:
    """Convenience: run generator factories in a fresh environment.

    *processes* is an iterable of callables accepting the environment and
    returning a generator.
    """
    env = Environment()
    for factory in processes:
        env.process(factory(env))
    env.run(until=until)
    return env
