"""Simulation tracing: introspection of the DES kernel itself.

Large whole-cluster simulations schedule millions of events; when one
misbehaves (runs slow, leaks processes, floods the queue) the operator
needs the same kind of drill-down the paper's §5 advocates for the
cluster — but for the simulator.  A :class:`Tracer` attached to an
:class:`~repro.desim.Environment` counts events by type, samples queue
depth, and can capture a bounded ring of recent event records for
post-mortem inspection.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Deque, Optional, Tuple

__all__ = ["Tracer"]


class Tracer:
    """Collects kernel-level statistics from a live Environment."""

    def __init__(self, ring_size: int = 0):
        """*ring_size* > 0 keeps the last N (time, type) event records."""
        if ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        self.scheduled = 0
        self.processed = 0
        self.by_type: Counter = Counter()
        self.max_queue_depth = 0
        self.ring: Optional[Deque[Tuple[float, str]]] = (
            deque(maxlen=ring_size) if ring_size else None
        )

    # -- hooks called by the Environment ------------------------------------
    def on_schedule(self, env, event) -> None:
        self.scheduled += 1
        depth = len(env._queue) + 1
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def on_step(self, env, event) -> None:
        self.processed += 1
        name = type(event).__name__
        self.by_type[name] += 1
        if self.ring is not None:
            self.ring.append((env.now, name))

    # -- reporting ---------------------------------------------------------------
    def summary(self) -> dict:
        return {
            "scheduled": self.scheduled,
            "processed": self.processed,
            "pending": self.scheduled - self.processed,
            "max_queue_depth": self.max_queue_depth,
            "by_type": dict(self.by_type),
        }

    def top_types(self, n: int = 5):
        return self.by_type.most_common(n)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tracer processed={self.processed} "
            f"max_queue={self.max_queue_depth}>"
        )
