"""``repro.desim`` — a small, fast discrete-event simulation kernel.

This package is the substrate on which all cluster components (Work Queue,
HTCondor pool, CVMFS caches, storage servers) are modelled.  It provides:

* :class:`Environment` — the simulation clock and event queue,
* generator-based processes with interrupts (used for evictions),
* :class:`Resource`, :class:`Store`, :class:`Container` synchronisation
  primitives,
* :class:`FairShareLink` — max-min fair bandwidth sharing for network
  and disk contention modelling.

Example
-------
>>> from repro.desim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(3)
...     return env.now
>>> p = env.process(hello(env))
>>> env.run()
>>> p.value
3.0
"""

from .bus import BusEvent, EventBus, MemorySink, Subscription, Topics
from .core import EmptySchedule, Environment, Process, simulate
from .events import (
    AllOf,
    AnyOf,
    Condition,
    ConditionValue,
    Event,
    Interrupt,
    StopProcess,
    Timeout,
)
from .bandwidth import FairShareLink, Transfer, TransferCancelled, allocate_max_min
from .trace import Tracer
from .resources import (
    Container,
    FilterStore,
    Preempted,
    PreemptiveResource,
    PriorityResource,
    PriorityStore,
    Resource,
    Store,
)

__all__ = [
    "Environment",
    "Process",
    "EmptySchedule",
    "simulate",
    "Event",
    "Timeout",
    "Interrupt",
    "StopProcess",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Resource",
    "PriorityResource",
    "PreemptiveResource",
    "Preempted",
    "Container",
    "Store",
    "FilterStore",
    "PriorityStore",
    "FairShareLink",
    "Transfer",
    "TransferCancelled",
    "allocate_max_min",
    "Tracer",
    "BusEvent",
    "EventBus",
    "MemorySink",
    "Subscription",
    "Topics",
]
