"""Core event primitives for the discrete-event simulation kernel.

The kernel follows the classic process-interaction style: simulation
processes are Python generators which yield :class:`Event` objects and are
resumed when those events fire.  The design is intentionally close to the
de-facto standard API of process-based DES libraries so that simulation
code elsewhere in the package reads naturally.

Event life cycle::

    pending ──trigger──▶ triggered ──step()──▶ processed
                (scheduled in the event queue)    (callbacks executed)

An event may *succeed* (carrying a value) or *fail* (carrying an
exception).  A failed event propagates its exception into every process
waiting on it unless the event is explicitly :attr:`~Event.defused`.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Initialize",
    "Interruption",
    "Condition",
    "AllOf",
    "AnyOf",
    "ConditionValue",
    "Interrupt",
    "StopProcess",
]

#: Sentinel for an event that has not been triggered yet.
PENDING = object()

#: Scheduling priority for internal bookkeeping events (interrupts,
#: process initialization) that must run before user events at the same
#: simulation time.
URGENT = 0

#: Default scheduling priority for user events.
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process when :meth:`Process.interrupt` is called.

    The interrupt's *cause* is available both as ``exc.cause`` and as
    ``exc.args[0]``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt({self.cause!r})"


class StopProcess(Exception):
    """Raised to exit a process early while returning a value.

    ``return value`` inside the generator is the idiomatic way; this
    exception exists for helpers that need to stop a process from within
    a nested call.
    """

    @property
    def value(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An event that may happen at some point in simulated time.

    Callbacks are plain callables invoked with the event as their single
    argument once the event is processed.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):  # noqa: F821 - forward ref
        self.env = env
        #: Callables run when the event is processed; ``None`` afterwards.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled (value decided)."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is PENDING:
            raise AttributeError("value of event not yet available")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event succeeded or failed with."""
        if self._value is PENDING:
            raise AttributeError("value of event not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True when a failure has been marked as handled."""
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional *value*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with *exception*."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Copy the outcome of *event* onto this event (callback helper)."""
        self._ok = event._ok
        self._value = event._value
        self.env.schedule(self)

    # -- composition -----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed *delay* of simulated time."""

    __slots__ = ("delay",)

    def __init__(self, env, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Internal event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env.schedule(self, priority=URGENT)


class Interruption(Event):
    """Internal event delivering an :class:`Interrupt` into a process."""

    __slots__ = ("process",)

    def __init__(self, process, cause: Any):
        super().__init__(process.env)
        self.process = process
        self.callbacks.append(self._interrupt)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        if process._value is not PENDING:
            raise RuntimeError(f"{process!r} has terminated and cannot be interrupted")
        if process is self.env.active_process:
            raise RuntimeError("a process is not allowed to interrupt itself")
        self.env.schedule(self, priority=URGENT)

    def _interrupt(self, event: Event) -> None:
        proc = self.process
        if proc._value is not PENDING:
            return  # process terminated in the meantime; drop silently
        # Unsubscribe the process from its current target, then throw.
        target = proc._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(proc._resume)
            except ValueError:  # pragma: no cover - already removed
                pass
            else:
                # The process was this target's observer.  If the target
                # later fails (commonly because the interrupt handler
                # cancels the transfers feeding it), there is nobody left
                # to handle that failure — absorb it instead of crashing
                # the simulation.
                target.callbacks.append(_defuse_if_failed)
        proc._resume(event)


def _defuse_if_failed(event: "Event") -> None:
    """Absorb the failure of an event whose observer was interrupted."""
    if not event._ok:
        event._defused = True


class ConditionValue:
    """Result of a condition: an ordered mapping of fired events to values."""

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __iter__(self):
        return iter(self.events)

    def keys(self):
        return iter(self.events)

    def values(self):
        return (e._value for e in self.events)

    def items(self):
        return ((e, e._value) for e in self.events)

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Event that fires when a boolean combination of events has fired."""

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        if not self._events:
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.env is not env:
                raise ValueError("events from different environments cannot be mixed")

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

        # If already decided, collect values eagerly.

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        self._collect(self, value)
        return value

    def _collect(self, event: Event, value: ConditionValue) -> None:
        for child in getattr(event, "_events", []):
            if isinstance(child, Condition):
                self._collect(child, value)
            elif child.callbacks is None and child not in value.events:
                # ``callbacks is None`` means the event has actually been
                # processed.  (A Timeout's value is set at creation time,
                # so checking the value would wrongly include unfired
                # timeouts.)
                value.events.append(child)

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            # The condition has already been decided; a late failure of a
            # sub-event is deliberately ignored (e.g. the losing branch of
            # an AnyOf being cancelled afterwards).
            if not event._ok:
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(self._build_value())

    @staticmethod
    def all_events(events, count) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events, count) -> bool:
        return count > 0 or not events


class AllOf(Condition):
    """Fires once every event in *events* has fired."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Fires once any event in *events* has fired."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_events, events)
