"""Shared-resource primitives: Resource, Container, Store and variants.

These follow the request/release (put/get) event pattern: a request is an
event that fires once the resource grants it.  Requests may be used as
context managers so that releases cannot be forgotten::

    with resource.request() as req:
        yield req
        ...  # resource held here
"""

from __future__ import annotations

from heapq import heappush, heappop
from itertools import count
from typing import Any, Callable, List

from .events import Event, PENDING

__all__ = [
    "Resource",
    "PriorityResource",
    "Preempted",
    "PreemptiveResource",
    "Container",
    "Store",
    "FilterStore",
    "PriorityStore",
]


class _BaseRequest(Event):
    """Common machinery for resource request / put / get events."""

    __slots__ = ("resource", "proc")

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource
        self.proc = resource.env.active_process

    def cancel(self) -> None:
        """Withdraw an ungranted request from the waiting queue."""
        if self._value is PENDING:
            self.resource._remove_waiter(self)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc_value, traceback):
        raise NotImplementedError


class Request(_BaseRequest):
    """A claim for one unit of a :class:`Resource`'s capacity."""

    __slots__ = ()

    def __exit__(self, exc_type, exc_value, traceback):
        if self._value is PENDING:
            self.cancel()
        elif self._ok:
            self.resource.release(self)
        return None


class Release(Event):
    """Event returning a previously granted :class:`Request`."""

    __slots__ = ("resource", "request")

    def __init__(self, resource, request: Request):
        super().__init__(resource.env)
        self.resource = resource
        self.request = request
        resource._do_release(self)
        self.succeed()


class Resource:
    """A resource with limited *capacity*, granted FIFO.

    ``count`` users hold the resource at any time; excess requests queue.
    """

    def __init__(self, env, capacity: int = 1):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        self.queue: List[Request] = []

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of users currently holding the resource."""
        return len(self.users)

    def request(self) -> Request:
        req = Request(self)
        self.queue.append(req)
        self._trigger()
        return req

    def release(self, request: Request) -> Release:
        return Release(self, request)

    # -- internal -----------------------------------------------------------
    def _remove_waiter(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _do_release(self, release: Release) -> None:
        try:
            self.users.remove(release.request)
        except ValueError:
            pass
        self._trigger()

    def _trigger(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            req = self.queue.pop(0)
            self.users.append(req)
            req.succeed()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} count={self.count}/{self._capacity} "
            f"queued={len(self.queue)}>"
        )


class PriorityRequest(Request):
    """Request with a priority (lower value served first) and FIFO ties."""

    __slots__ = ("priority", "time", "preempt", "_key")

    def __init__(self, resource, priority: int = 0, preempt: bool = False):
        self.priority = priority
        self.preempt = preempt
        self.time = resource.env.now
        self._key = (priority, self.time, not preempt)
        super().__init__(resource)

    def __lt__(self, other: "PriorityRequest") -> bool:
        return self._key < other._key


class PriorityResource(Resource):
    """Resource whose waiting queue is ordered by request priority."""

    def request(self, priority: int = 0, preempt: bool = False) -> PriorityRequest:  # type: ignore[override]
        req = PriorityRequest(self, priority, preempt)
        heappush(self.queue, req)  # type: ignore[arg-type]
        self._trigger()
        return req

    def _trigger(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            req = heappop(self.queue)  # type: ignore[arg-type]
            self.users.append(req)
            req.succeed()

    def _remove_waiter(self, request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass
        else:
            # restore heap invariant
            import heapq

            heapq.heapify(self.queue)


class Preempted:
    """Cause attached to the Interrupt thrown on preemption."""

    def __init__(self, by, usage_since: float, resource):
        self.by = by
        self.usage_since = usage_since
        self.resource = resource

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Preempted by={self.by!r} since={self.usage_since}>"


class PreemptiveResource(PriorityResource):
    """PriorityResource where higher-priority requests evict current users.

    Used to model opportunistic slots: the resource owner's workload
    arrives at higher priority and preempts the running glide-in worker.
    """

    def _trigger(self) -> None:
        # First, serve from the queue while capacity remains.
        super()._trigger()
        # Then consider preemption for the best queued request.
        while self.queue:
            req = self.queue[0]
            if len(self.users) < self._capacity:
                heappop(self.queue)
                self.users.append(req)
                req.succeed()
                continue
            if not getattr(req, "preempt", False):
                break
            victim = max(self.users, key=lambda u: (u.priority, u.time))
            if (victim.priority, victim.time) <= (req.priority, req.time):
                break  # nothing lower-priority to evict
            self.users.remove(victim)
            if victim.proc is not None and victim.proc.is_alive:
                victim.proc.interrupt(Preempted(req.proc, victim.time, self))
            heappop(self.queue)
            self.users.append(req)
            req.succeed()


class ContainerPut(Event):
    __slots__ = ("container", "amount")

    def __init__(self, container, amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._put_waiters.append(self)
        container._trigger()


class ContainerGet(Event):
    __slots__ = ("container", "amount")

    def __init__(self, container, amount: float):
        if amount <= 0:
            raise ValueError("amount must be positive")
        super().__init__(container.env)
        self.container = container
        self.amount = amount
        container._get_waiters.append(self)
        container._trigger()


class Container:
    """Holds a continuous amount (fuel-tank semantics) between 0 and capacity."""

    def __init__(self, env, capacity: float = float("inf"), init: float = 0.0):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not 0 <= init <= capacity:
            raise ValueError("init must lie within [0, capacity]")
        self.env = env
        self._capacity = capacity
        self._level = init
        self._put_waiters: List[ContainerPut] = []
        self._get_waiters: List[ContainerGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        return ContainerGet(self, amount)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters:
                put = self._put_waiters[0]
                if self._level + put.amount <= self._capacity:
                    self._put_waiters.pop(0)
                    self._level += put.amount
                    put.succeed()
                    progress = True
            if self._get_waiters:
                get = self._get_waiters[0]
                if self._level >= get.amount:
                    self._get_waiters.pop(0)
                    self._level -= get.amount
                    get.succeed()
                    progress = True


class StorePut(Event):
    __slots__ = ("store", "item")

    def __init__(self, store, item: Any):
        super().__init__(store.env)
        self.store = store
        self.item = item
        store._put_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw an ungranted put from the waiting queue."""
        if self._value is PENDING:
            try:
                self.store._put_waiters.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    __slots__ = ("store",)

    def __init__(self, store):
        super().__init__(store.env)
        self.store = store
        store._get_waiters.append(self)
        store._trigger()

    def cancel(self) -> None:
        """Withdraw an ungranted get from the waiting queue.

        A get that was already granted cannot be cancelled; the caller is
        responsible for returning the received item if it no longer wants
        it (e.g. a worker evicted in the same instant a task arrived).
        """
        if self._value is PENDING:
            try:
                self.store._get_waiters.remove(self)
            except ValueError:
                pass


class FilterStoreGet(StoreGet):
    __slots__ = ("filter",)

    def __init__(self, store, filter: Callable[[Any], bool]):
        self.filter = filter
        super().__init__(store)


class Store:
    """FIFO store of discrete items with bounded capacity."""

    def __init__(self, env, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self._capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def get(self) -> StoreGet:
        return StoreGet(self)

    def retrigger(self) -> None:
        """Re-evaluate waiting getters whose external predicates may have
        changed (e.g. a FilterStore filter closing over mutable state)."""
        self._trigger()

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            if self._get_waiters and self.items:
                got = self._do_get()
                if got:
                    progress = True

    def _do_get(self) -> bool:
        get = self._get_waiters.pop(0)
        get.succeed(self.items.pop(0))
        return True


class FilterStore(Store):
    """Store whose getters may select items with a predicate."""

    def get(self, filter: Callable[[Any], bool] = lambda item: True) -> FilterStoreGet:  # type: ignore[override]
        return FilterStoreGet(self, filter)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                self.items.append(put.item)
                put.succeed()
                progress = True
            # Try every waiting getter against available items.
            for get in list(self._get_waiters):
                for idx, item in enumerate(self.items):
                    if get.filter(item):
                        del self.items[idx]
                        self._get_waiters.remove(get)
                        get.succeed(item)
                        progress = True
                        break


class PriorityStore(Store):
    """Store that always yields its smallest item (heap order)."""

    def __init__(self, env, capacity: float = float("inf")):
        super().__init__(env, capacity)
        self._counter = count()

    def put(self, item: Any) -> StorePut:
        return StorePut(self, item)

    def _trigger(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._put_waiters and len(self.items) < self._capacity:
                put = self._put_waiters.pop(0)
                heappush(self.items, put.item)
                put.succeed()
                progress = True
            if self._get_waiters and self.items:
                get = self._get_waiters.pop(0)
                get.succeed(heappop(self.items))
                progress = True
