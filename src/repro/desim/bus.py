"""The structured event bus: one instrumentation spine for every layer.

The paper's §5 thesis is that Lobster scaled *because* every segment of
every task was instrumented end-to-end.  This module is the simulated
equivalent: every substrate component (Work Queue, the batch pool, the
CVMFS/squid tier, the storage servers, Lobster's own control loop)
publishes typed, timestamped events onto the environment's
:class:`EventBus`; the monitoring layer subscribes instead of being
hand-threaded through each producer.

Design constraints, in order:

1. **Work scales with subscribed density, not emitted density.**  A
   publish site whose topic nobody wants must cost one truthiness check
   and build no payload.  Three tiers, cheapest first:

   * ``if bus:`` — the whole-bus guard (``__bool__`` is ``active``);
     free when nothing at all listens.
   * ``port = bus.port(topic)`` … ``if port: port.emit(**fields)`` —
     the per-topic fast path.  The port caches the compiled callback
     tuple for its topic; when the bus is live but the topic is
     unmatched the port is falsy and the site skips payload
     construction entirely.  Ports are refreshed on every subscription
     change, so late subscribers are never starved.
   * ``bus.publish_lazy(topic, thunk)`` — for sites where even the
     guard is awkward: the thunk builds the field dict and is invoked
     at most once, and only when a subscriber (or the ring) will see
     the event.

2. **Lazy event materialisation.**  A :class:`BusEvent` object is built
   only when something needs one — the ring, or a classic subscriber.
   Hot consumers subscribe with ``raw=True`` (exact topics only) and
   receive the flat *record* dict instead: the producer's field dict
   with the simulated time appended under ``"t"``.  When a topic has
   only raw subscribers, delivery allocates nothing beyond the field
   dict the producer was building anyway.
3. **Deterministic delivery.**  Subscribers run synchronously, in
   subscription order, at the simulated instant of publication; field
   dicts preserve insertion order.  Same seed → byte-identical event
   stream (see ``tests/test_determinism.py``).
4. **Bounded retention.**  An optional ring buffer keeps the last *N*
   events for post-mortem drill-down without unbounded memory growth.

Topics are dotted paths (``task.done``, ``cache.miss``, ``proxy.queue``)
and subscriptions filter by exact topic, by prefix (``task.*``), or
match everything (``*``).  Patterns are compiled into a per-topic
subscriber index at *subscribe* time (exact / prefix / wildcard
buckets); publication never scans the subscription list.  The canonical
topic names live on :class:`Topics` so publishers and subscribers cannot
drift apart — subscribing with a pattern that can never match the known
topic namespace warns once, so index-compilation typos surface instead
of silently dropping events.
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

__all__ = [
    "BusEvent",
    "EventBus",
    "MemorySink",
    "Subscription",
    "TopicPort",
    "Topics",
    "make_event",
]


class Topics:
    """Canonical topic names published by the substrate layers."""

    # Work Queue (wq.master / wq.worker / wq.foreman)
    TASK_SUBMIT = "task.submit"
    TASK_DISPATCH = "task.dispatch"
    TASK_START = "task.start"
    TASK_DONE = "task.done"
    TASK_REQUEUE = "task.requeue"
    TASK_ABORT = "task.abort"
    TASK_EXHAUSTED = "task.exhausted"  #: retry budget spent; task failed
    TASK_RESULT = "task.result"  #: full Lobster-level record (core.lobster)
    TASK_DUPLICATE = "task.duplicate"  #: late/duplicate result dropped
    WORKER_REGISTER = "worker.register"
    WORKER_UNREGISTER = "worker.unregister"
    FOREMAN_RELAY = "foreman.relay"
    # Batch system (batch.condor / batch.owner)
    EVICTION = "eviction"
    POOL_OCCUPANCY = "pool.occupancy"
    OWNER_PREEMPT = "owner.preempt"
    # Software delivery (cvmfs.parrot / cvmfs.squid)
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    PROXY_QUEUE = "proxy.queue"
    PROXY_TIMEOUT = "proxy.timeout"
    # Storage (storage.xrootd / storage.chirp / storage.wan)
    LINK_TRANSFER = "link.transfer"
    CHIRP_QUEUE = "chirp.queue"
    XROOTD_ERROR = "xrootd.error"
    # Network fabric (repro.net.fabric)
    NET_FLOW = "net.flow"
    NET_FLOW_FAIL = "net.flow.fail"
    NET_OUTAGE = "net.outage"
    # Wrapper / merge (core.wrapper / core.merge)
    WRAPPER_SEGMENT = "wrapper.segment"
    MERGE_SUBMIT = "merge.submit"
    MERGE_DONE = "merge.done"
    MERGE_RETRY = "merge.retry"
    # Output integrity / exactly-once ledger (storage.se, core.lobster, core.merge)
    INTEGRITY_CORRUPT = "integrity.corrupt"  #: checksum mismatch at a read/commit hop
    INTEGRITY_QUARANTINE = "integrity.quarantine"  #: corrupt output pulled for re-derive
    INTEGRITY_COMMIT = "integrity.commit"  #: output verified + committed in the ledger
    INTEGRITY_ORPHAN = "integrity.orphan"  #: half-written output swept on recovery
    # Fault injection / active recovery (repro.faults, wq.master, core.wrapper)
    FAULT_INJECT = "fault.inject"
    FAULT_CLEAR = "fault.clear"
    HOST_BLACKLIST = "host.blacklist"
    RECOVERY_FALLBACK = "recovery.fallback"
    RECOVERY_RESUME = "recovery.resume"  #: a warm-restarted master re-attached state
    # Crash consistency (core.jobit_db): one event per durable DB transition,
    # the enumeration the repro.crashtest fuzzer snapshots at.
    DB_CHECKPOINT = "db.checkpoint"
    # Dataset publication (core.publish)
    PUBLISH_DATASET = "publish.dataset"  #: a workflow's outputs went public
    # Live run health (monitor.watch): typed, deduplicated detector
    # transitions with evidence span/trace ids (§5 operator heuristics)
    ALERT_RAISE = "alert.raise"
    ALERT_CLEAR = "alert.clear"
    # Causal tracing (monitor.tracing; published so recordings replay)
    SPAN_START = "span.start"
    SPAN_END = "span.end"
    # Kernel introspection (desim.core)
    KERNEL_STEP = "kernel.step"

    _extra: Set[str] = set()

    @classmethod
    def known(cls) -> Set[str]:
        """Every canonical topic name plus explicitly registered extras."""
        topics = {
            v
            for k, v in vars(Topics).items()
            if not k.startswith("_") and isinstance(v, str)
        }
        topics.update(cls._extra)
        return topics

    @classmethod
    def register(cls, *names: str) -> None:
        """Register ad-hoc topic names (benchmarks, experiments) so
        subscriptions against them pass the never-matches check."""
        cls._extra.update(names)


class BusEvent:
    """One published event: (simulated time, topic, ordered fields).

    Deliberately has no ``__init__``: a slots class with the default
    constructor allocates via the bare ``BusEvent()`` call roughly twice
    as fast as ``object.__new__`` (and ~3x faster than a Python-level
    ``__init__``), which is the difference between the compiled port
    emitters clearing the subscribed-overhead budget or not.  Use
    :func:`make_event` (or assign the three slots directly) to build one.
    """

    __slots__ = ("time", "topic", "fields")

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict view with ``t`` and ``topic`` leading (JSONL shape)."""
        out: Dict[str, Any] = {"t": self.time, "topic": self.topic}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BusEvent {self.topic} t={self.time:.3f} {self.fields!r}>"


def make_event(time: float, topic: str, fields: Dict[str, Any]) -> BusEvent:
    """Build a :class:`BusEvent` (slow-path convenience constructor)."""
    event = BusEvent()
    event.time = time
    event.topic = topic
    event.fields = fields
    return event


def _matches(pattern: str, topic: str) -> bool:
    """The pattern semantics, in one place.

    Used when *compiling* subscriptions into the per-topic index —
    publication itself never pattern-matches (it reads the compiled
    index), so this stays the single definition both sides agree on.
    """
    if pattern == "*" or pattern == topic:
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1])
    return False


class Subscription:
    """A live (pattern, callback) registration; cancel() detaches it."""

    __slots__ = ("pattern", "callback", "bus", "seq", "raw")

    def __init__(
        self,
        bus: "EventBus",
        pattern: str,
        callback: Callable[[BusEvent], None],
        raw: bool = False,
    ):
        self.bus: Optional["EventBus"] = bus
        self.pattern = pattern
        self.callback = callback
        #: Raw subscribers receive the flat record dict (fields plus a
        #: trailing ``"t"`` time key) instead of a BusEvent.
        self.raw = raw
        #: Subscription-order sequence number; delivery order is defined
        #: by it even though subscriptions live in per-shape index buckets.
        self.seq = 0

    def matches(self, topic: str) -> bool:
        return _matches(self.pattern, topic)

    def cancel(self) -> None:
        if self.bus is not None:
            self.bus.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self.bus is not None else "cancelled"
        return f"<Subscription {self.pattern!r} ({state})>"


def _emit_dropped(**fields) -> None:
    """Compiled emit for a port nobody listens to: discard."""


class TopicPort:
    """The per-topic fast path: a pre-resolved emitter for one topic.

    A port caches the compiled callback tuple for its topic (and the
    ring, if any); the bus refreshes every port whenever the
    subscription set changes.  Producers cache the port once (usually in
    ``__init__``) and guard the hot path with ``if port.on:`` (or the
    equivalent ``if port:``) — false means *this topic* would be
    dropped, so the site skips building the payload even while other
    topics are subscribed.

    ``emit(**fields)`` stamps the owning environment's clock; it is a
    per-state compiled closure (recompiled on every subscription
    change), so always cache the *port*, never a bound ``port.emit``.
    Ports of an environment-less bus stamp 0.0 (use :meth:`emit_at` to
    override).

    Accounting: every *delivered* emit bumps a one-cell tally closed
    over by the compiled emitter; the subscriber count at compile time
    is fixed, so :attr:`EventBus.published` / :attr:`EventBus.delivered`
    recover exact totals as ``tally`` and ``tally × fan-out`` without
    any per-delivery bookkeeping beyond the single list-cell increment.
    The zero-subscriber fast path (:func:`_emit_dropped`) stays
    accounting-free — a dead port still costs nothing.
    """

    __slots__ = ("bus", "topic", "on", "emit", "_env", "_subs", "_ring", "_tally", "_fanout")

    def __init__(self, bus: "EventBus", topic: str):
        self.bus = bus
        self.topic = topic
        #: One-cell emit counter shared with the compiled closure.  The
        #: fan-out (subscriber count) is constant between refreshes, so
        #: delivered = tally * fan-out; _refresh() flushes both into the
        #: bus-level totals before recompiling.
        self._tally = [0]
        self._fanout = 0
        self._refresh()

    def _refresh(self) -> None:
        bus = self.bus
        n = self._tally[0]
        if n:
            bus._published += n
            bus._delivered += n * self._fanout
            self._tally[0] = 0
        subs = bus._cache.get(self.topic)
        if subs is None:
            subs = bus._resolve(self.topic)
        self._subs = subs
        self._ring = bus.ring
        self._env = bus.env
        self._fanout = len(subs)
        #: Hot-path guard: True when an emit would reach anything.
        self.on = bool(subs) or self._ring is not None
        self.emit = self._compile()

    def _compile(self):
        """Build the emit closure for the current subscription state.

        Everything the hot path touches is a closure cell — no ``self``
        attribute chasing per emit.  The single-subscriber, no-ring
        shapes (the common case for domain topics) skip the delivery
        loop entirely; the single-*raw*-subscriber shape materialises no
        event object at all — the producer's field dict, stamped with
        ``"t"``, is the delivered record.
        """
        subs, ring, env, topic = self._subs, self._ring, self._env, self.topic
        if not subs and ring is None:
            return _emit_dropped
        mk = BusEvent
        tally = self._tally
        if len(subs) == 1 and ring is None and env is not None:
            cb, raw = subs[0]
            if raw:
                # The hot shape: one raw subscriber, no ring.  Zero
                # allocation beyond the kwargs dict the call itself
                # builds — the dict is stamped in place and handed over.
                def emit(**fields) -> None:
                    tally[0] += 1
                    fields["t"] = env._now
                    cb(fields)

                return emit

            # One classic subscriber: materialise the event.  The bare
            # class call is the cheapest allocation CPython offers for
            # a slots instance (see BusEvent docstring).
            def emit(**fields) -> None:
                tally[0] += 1
                event = mk()
                event.time = env._now
                event.topic = topic
                event.fields = fields
                cb(event)

            return emit

        need_event = ring is not None or any(not raw for _, raw in subs)

        def emit(**fields) -> None:
            tally[0] += 1
            t = env._now if env is not None else 0.0
            event = None
            if need_event:
                event = mk()
                event.time = t
                event.topic = topic
                event.fields = fields
                if ring is not None:
                    ring.append(event)
            record = None
            for cb, raw in subs:
                if raw:
                    if record is None:
                        # Classic subscribers share ``fields`` through
                        # the event; give raw ones their own copy so
                        # the "t" stamp never leaks into event.fields.
                        record = dict(fields) if need_event else fields
                        record["t"] = t
                    cb(record)
                else:
                    cb(event)

        return emit

    def __bool__(self) -> bool:
        return self.on

    def emit_at(self, time: float, **fields) -> None:
        """Like :meth:`emit` with an explicit timestamp."""
        if not self.on:
            return
        self._tally[0] += 1
        subs = self._subs
        need_event = self._ring is not None or any(not raw for _, raw in subs)
        event = None
        if need_event:
            event = make_event(time, self.topic, fields)
            if self._ring is not None:
                self._ring.append(event)
        record = None
        for cb, raw in subs:
            if raw:
                if record is None:
                    record = dict(fields) if need_event else fields
                    record["t"] = time
                cb(record)
            else:
                cb(event)

    def emit_lazy(self, thunk: Callable[[], Dict[str, Any]]) -> None:
        """Build the payload via *thunk* only if delivery will happen.

        The thunk is invoked at most once per call, and never when the
        port is inactive.
        """
        if self.on:
            self.emit(**thunk())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TopicPort {self.topic!r} subs={len(self._subs)} on={self.on}>"


class EventBus:
    """Typed topic pub/sub with a compiled index, ports, and a ring.

    Subscriptions are compiled into a per-topic subscriber index at
    subscribe time (exact-topic, dotted-prefix, and wildcard buckets);
    ``publish`` resolves a topic with one dict lookup and never scans
    pattern lists.  Unsubscribing invalidates only the affected topics.
    """

    __slots__ = (
        "env",
        "ring",
        "active",
        "_published",
        "_delivered",
        "_subs",
        "_cache",
        "_watchers",
        "_ports",
        "_exact",
        "_prefix",
        "_wild",
        "_seq",
        "_warned",
    )

    def __init__(self, env=None, ring_size: int = 0):
        if ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        #: The owning environment (stamps event times); may be None for
        #: standalone use, in which case publishers pass their own time.
        self.env = env
        self.ring: Optional[deque] = deque(maxlen=ring_size) if ring_size else None
        #: True once anything can observe a publication.  Publishers are
        #: expected to guard with ``if bus:`` so an idle bus costs one
        #: attribute check and nothing else.
        self.active: bool = self.ring is not None
        self._published = 0
        self._delivered = 0
        self._subs: List[Subscription] = []
        #: topic -> compiled tuple of (callback, raw) in subscription order.
        self._cache: Dict[str, Tuple[Tuple[Callable, bool], ...]] = {}
        #: Called (with no args) when the subscription set changes; the
        #: Environment uses this to refresh its kernel instrumentation flag.
        self._watchers: List[Callable[[], None]] = []
        #: topic -> the (single, shared) TopicPort for that topic.
        self._ports: Dict[str, TopicPort] = {}
        # -- the compiled subscription index --------------------------------
        #: exact topic -> subscriptions on exactly that topic.
        self._exact: Dict[str, List[Subscription]] = {}
        #: dotted prefix (with trailing dot) -> prefix subscriptions.
        self._prefix: Dict[str, List[Subscription]] = {}
        #: match-everything subscriptions.
        self._wild: List[Subscription] = []
        self._seq = 0
        #: Patterns already warned about (once per bus per pattern).
        self._warned: Set[str] = set()

    # -- counters ----------------------------------------------------------
    @property
    def published(self) -> int:
        """Events delivered, across every path: legacy ``publish`` /
        ``publish_lazy`` plus all compiled port emits (``emit``,
        ``emit_at``, ``emit_lazy``).  Emits nobody observes (the
        zero-subscriber fast path) are never counted — and never cost
        anything.  A batched flush narration (e.g. one ``net.flow``
        record carrying a ``flows`` list) counts as one event.
        """
        n = self._published
        for port in self._ports.values():
            n += port._tally[0]
        return n

    @property
    def delivered(self) -> int:
        """Total (event, subscriber) deliveries across every path.

        Port deliveries are recovered as ``tally × fan-out`` (the
        subscriber set is constant between port refreshes), so the hot
        path pays one list-cell increment, not one per subscriber.
        """
        n = self._delivered
        for port in self._ports.values():
            n += port._tally[0] * port._fanout
        return n

    def stats(self) -> Dict[str, int]:
        """Telemetry snapshot: true event/delivery totals plus wiring."""
        return {
            "published": self.published,
            "delivered": self.delivered,
            "subscriptions": len(self._subs),
            "ports": len(self._ports),
            "ring": len(self.ring) if self.ring is not None else 0,
        }

    # -- wiring ------------------------------------------------------------
    def subscribe(
        self,
        pattern: str,
        callback: Callable[[BusEvent], None],
        raw: bool = False,
    ) -> Subscription:
        """Register *callback* for every topic matching *pattern*.

        Patterns are an exact topic (``"task.done"``), a dotted prefix
        (``"task.*"``), or ``"*"`` for everything.  The pattern is
        compiled into the per-topic index immediately; a pattern that
        can never match the known topic namespace warns once (see
        :meth:`Topics.register` for ad-hoc topics).

        With ``raw=True`` (exact topics only) the callback receives the
        flat record dict — the producer's fields with the simulated
        time appended under ``"t"`` — instead of a :class:`BusEvent`.
        This is the zero-materialisation path for hot consumers; the
        record dict is owned by the delivery, and ``"t"`` is a reserved
        key producers must not use.
        """
        if not pattern:
            raise ValueError("pattern must be non-empty")
        if raw and (pattern == "*" or pattern.endswith(".*")):
            raise ValueError(
                "raw subscriptions require an exact topic (the record dict "
                "carries no topic; the subscriber is expected to know it)"
            )
        self._warn_if_unmatchable(pattern)
        sub = Subscription(self, pattern, callback, raw)
        self._seq += 1
        sub.seq = self._seq
        self._subs.append(sub)
        if pattern == "*":
            self._wild.append(sub)
        elif pattern.endswith(".*"):
            self._prefix.setdefault(pattern[:-1], []).append(sub)
        else:
            self._exact.setdefault(pattern, []).append(sub)
        # Incremental index update: already-compiled topics gain the new
        # callback in place (it has the highest seq, so appending keeps
        # subscription order); nothing is recompiled wholesale.
        for topic in self._cache:
            if _matches(pattern, topic):
                self._cache[topic] += ((callback, raw),)
        self._changed()
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            return
        sub.bus = None
        pattern = sub.pattern
        if pattern == "*":
            self._wild.remove(sub)
        elif pattern.endswith(".*"):
            bucket = self._prefix.get(pattern[:-1])
            if bucket is not None:
                bucket.remove(sub)
                if not bucket:
                    del self._prefix[pattern[:-1]]
        else:
            bucket = self._exact.get(pattern)
            if bucket is not None:
                bucket.remove(sub)
                if not bucket:
                    del self._exact[pattern]
        # Invalidate only the topics the cancelled pattern touched; they
        # recompile from the index on next use (or port refresh below).
        for topic in [t for t in self._cache if _matches(pattern, t)]:
            del self._cache[topic]
        self._changed()

    def attach(self, sink, pattern: str = "*") -> Subscription:
        """Subscribe a sink: a callable or an object with ``on_event``."""
        callback = sink if callable(sink) else sink.on_event
        return self.subscribe(pattern, callback)

    def watch(self, callback: Callable[[], None]) -> None:
        """Run *callback* whenever the subscription set changes."""
        self._watchers.append(callback)

    def _changed(self) -> None:
        """Fan a subscription-set change out to ports and watchers."""
        self.active = bool(self._subs) or self.ring is not None
        for port in self._ports.values():
            port._refresh()
        for watcher in self._watchers:
            watcher()

    def _warn_if_unmatchable(self, pattern: str) -> None:
        if pattern == "*" or pattern in self._warned:
            return
        known = Topics.known()
        if pattern.endswith(".*"):
            prefix = pattern[:-1]
            ok = any(t.startswith(prefix) for t in known)
        else:
            ok = pattern in known
        if not ok:
            self._warned.add(pattern)
            warnings.warn(
                f"bus subscription pattern {pattern!r} matches no known topic; "
                "events will never be delivered to it "
                "(register ad-hoc topics via Topics.register)",
                RuntimeWarning,
                stacklevel=3,
            )

    # -- queries -----------------------------------------------------------
    def wants(self, topic: str) -> bool:
        """True when some subscriber (or the ring) would see *topic*."""
        if self.ring is not None:
            return True
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        return bool(subs)

    def has_subscribers(self, topic: str) -> bool:
        """True when a *subscriber* matches *topic* (ring excluded)."""
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        return bool(subs)

    def port(self, topic: str) -> TopicPort:
        """The shared :class:`TopicPort` for *topic* (created on demand)."""
        port = self._ports.get(topic)
        if port is None:
            port = self._ports[topic] = TopicPort(self, topic)
        return port

    def _resolve(self, topic: str) -> Tuple[Tuple[Callable, bool], ...]:
        """Compile *topic*'s (callback, raw) tuple from the index."""
        matched: List[Subscription] = list(self._wild)
        exact = self._exact.get(topic)
        if exact:
            matched.extend(exact)
        if self._prefix:
            i = topic.find(".")
            while i != -1:
                bucket = self._prefix.get(topic[: i + 1])
                if bucket:
                    matched.extend(bucket)
                i = topic.find(".", i + 1)
        matched.sort(key=lambda s: s.seq)
        subs = tuple((s.callback, s.raw) for s in matched)
        self._cache[topic] = subs
        return subs

    # -- publication -------------------------------------------------------
    def publish(self, topic: str, _time: Optional[float] = None, **fields) -> None:
        """Deliver one event to every matching subscriber, synchronously.

        The event time is the environment clock unless *_time* overrides
        it.  When the bus is inactive this returns immediately — but
        callers on hot paths should guard with ``if bus:`` (or better, a
        cached :meth:`port`) and not pay for building ``fields`` at all.
        """
        if not self.active:
            return
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        if not subs and self.ring is None:
            return
        if _time is None:
            _time = self.env.now if self.env is not None else 0.0
        self._deliver(_time, topic, fields, subs)

    def _deliver(self, time, topic, fields, subs) -> None:
        """Shared slow-path delivery: materialise lazily, then fan out."""
        need_event = self.ring is not None or any(not raw for _, raw in subs)
        event = None
        if need_event:
            event = make_event(time, topic, fields)
            if self.ring is not None:
                self.ring.append(event)
        record = None
        self._published += 1
        for callback, raw in subs:
            if raw:
                if record is None:
                    record = dict(fields) if need_event else fields
                    record["t"] = time
                callback(record)
            else:
                callback(event)
        self._delivered += len(subs)

    def publish_lazy(
        self,
        topic: str,
        thunk: Callable[[], Dict[str, Any]],
        _time: Optional[float] = None,
    ) -> None:
        """Publish with a deferred payload: *thunk* builds the field dict.

        The thunk runs at most once per call, and only when a subscriber
        (or the ring) will actually see the event — an unmatched topic
        costs one dict lookup and zero payload construction.
        """
        if not self.active:
            return
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        if not subs and self.ring is None:
            return
        if _time is None:
            _time = self.env.now if self.env is not None else 0.0
        self._deliver(_time, topic, thunk(), subs)

    # -- dunder ------------------------------------------------------------
    def __bool__(self) -> bool:
        return self.active

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EventBus subs={len(self._subs)} published={self.published} "
            f"delivered={self.delivered} "
            f"ring={len(self.ring) if self.ring is not None else 0}>"
        )


class MemorySink:
    """In-memory sink for tests: collects every matching event."""

    def __init__(self) -> None:
        self.events: List[BusEvent] = []

    def __call__(self, event: BusEvent) -> None:
        self.events.append(event)

    def topics(self) -> List[str]:
        return [e.topic for e in self.events]

    def of(self, topic: str) -> List[BusEvent]:
        return [e for e in self.events if e.topic == topic]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
