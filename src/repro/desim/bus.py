"""The structured event bus: one instrumentation spine for every layer.

The paper's §5 thesis is that Lobster scaled *because* every segment of
every task was instrumented end-to-end.  This module is the simulated
equivalent: every substrate component (Work Queue, the batch pool, the
CVMFS/squid tier, the storage servers, Lobster's own control loop)
publishes typed, timestamped events onto the environment's
:class:`EventBus`; the monitoring layer subscribes instead of being
hand-threaded through each producer.

Design constraints, in order:

1. **Zero overhead when idle.**  A bus with no subscribers and no ring
   must cost publishers a single attribute check.  Publishers therefore
   guard with ``if bus:`` (``__bool__`` is ``self.active``) before even
   building the event's field dict, and the DES kernel consults a cached
   flag rather than calling into the bus at all.
2. **Deterministic delivery.**  Subscribers run synchronously, in
   subscription order, at the simulated instant of publication; field
   dicts preserve insertion order.  Same seed → byte-identical event
   stream (see ``tests/test_determinism.py``).
3. **Bounded retention.**  An optional ring buffer keeps the last *N*
   events for post-mortem drill-down without unbounded memory growth.

Topics are dotted paths (``task.done``, ``cache.miss``, ``proxy.queue``)
and subscriptions filter by exact topic, by prefix (``task.*``), or
match everything (``*``).  The canonical topic names live on
:class:`Topics` so publishers and subscribers cannot drift apart.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["BusEvent", "EventBus", "MemorySink", "Subscription", "Topics"]


class Topics:
    """Canonical topic names published by the substrate layers."""

    # Work Queue (wq.master / wq.worker / wq.foreman)
    TASK_SUBMIT = "task.submit"
    TASK_DISPATCH = "task.dispatch"
    TASK_START = "task.start"
    TASK_DONE = "task.done"
    TASK_REQUEUE = "task.requeue"
    TASK_ABORT = "task.abort"
    TASK_EXHAUSTED = "task.exhausted"  #: retry budget spent; task failed
    TASK_RESULT = "task.result"  #: full Lobster-level record (core.lobster)
    TASK_DUPLICATE = "task.duplicate"  #: late/duplicate result dropped
    WORKER_REGISTER = "worker.register"
    WORKER_UNREGISTER = "worker.unregister"
    FOREMAN_RELAY = "foreman.relay"
    # Batch system (batch.condor / batch.owner)
    EVICTION = "eviction"
    POOL_OCCUPANCY = "pool.occupancy"
    OWNER_PREEMPT = "owner.preempt"
    # Software delivery (cvmfs.parrot / cvmfs.squid)
    CACHE_HIT = "cache.hit"
    CACHE_MISS = "cache.miss"
    PROXY_QUEUE = "proxy.queue"
    PROXY_TIMEOUT = "proxy.timeout"
    # Storage (storage.xrootd / storage.chirp / storage.wan)
    LINK_TRANSFER = "link.transfer"
    CHIRP_QUEUE = "chirp.queue"
    XROOTD_ERROR = "xrootd.error"
    # Network fabric (repro.net.fabric)
    NET_FLOW = "net.flow"
    NET_FLOW_FAIL = "net.flow.fail"
    NET_OUTAGE = "net.outage"
    # Wrapper / merge (core.wrapper / core.merge)
    WRAPPER_SEGMENT = "wrapper.segment"
    MERGE_SUBMIT = "merge.submit"
    MERGE_DONE = "merge.done"
    MERGE_RETRY = "merge.retry"
    # Output integrity / exactly-once ledger (storage.se, core.lobster, core.merge)
    INTEGRITY_CORRUPT = "integrity.corrupt"  #: checksum mismatch at a read/commit hop
    INTEGRITY_QUARANTINE = "integrity.quarantine"  #: corrupt output pulled for re-derive
    INTEGRITY_COMMIT = "integrity.commit"  #: output verified + committed in the ledger
    INTEGRITY_ORPHAN = "integrity.orphan"  #: half-written output swept on recovery
    # Fault injection / active recovery (repro.faults, wq.master, core.wrapper)
    FAULT_INJECT = "fault.inject"
    FAULT_CLEAR = "fault.clear"
    HOST_BLACKLIST = "host.blacklist"
    RECOVERY_FALLBACK = "recovery.fallback"
    # Dataset publication (core.publish)
    PUBLISH_DATASET = "publish.dataset"  #: a workflow's outputs went public
    # Causal tracing (monitor.tracing; published so recordings replay)
    SPAN_START = "span.start"
    SPAN_END = "span.end"
    # Kernel introspection (desim.core)
    KERNEL_STEP = "kernel.step"


class BusEvent:
    """One published event: (simulated time, topic, ordered fields)."""

    __slots__ = ("time", "topic", "fields")

    def __init__(self, time: float, topic: str, fields: Dict[str, Any]):
        self.time = time
        self.topic = topic
        self.fields = fields

    def as_dict(self) -> Dict[str, Any]:
        """Flat dict view with ``t`` and ``topic`` leading (JSONL shape)."""
        out: Dict[str, Any] = {"t": self.time, "topic": self.topic}
        out.update(self.fields)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<BusEvent {self.topic} t={self.time:.3f} {self.fields!r}>"


def _matches(pattern: str, topic: str) -> bool:
    if pattern == "*" or pattern == topic:
        return True
    if pattern.endswith(".*"):
        return topic.startswith(pattern[:-1])
    return False


class Subscription:
    """A live (pattern, callback) registration; cancel() detaches it."""

    __slots__ = ("pattern", "callback", "bus")

    def __init__(self, bus: "EventBus", pattern: str, callback: Callable[[BusEvent], None]):
        self.bus: Optional["EventBus"] = bus
        self.pattern = pattern
        self.callback = callback

    def matches(self, topic: str) -> bool:
        return _matches(self.pattern, topic)

    def cancel(self) -> None:
        if self.bus is not None:
            self.bus.unsubscribe(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "live" if self.bus is not None else "cancelled"
        return f"<Subscription {self.pattern!r} ({state})>"


class EventBus:
    """Typed topic pub/sub with filtering, a ring buffer, and sinks."""

    __slots__ = ("env", "ring", "active", "published", "delivered", "_subs", "_cache", "_watchers")

    def __init__(self, env=None, ring_size: int = 0):
        if ring_size < 0:
            raise ValueError("ring_size must be non-negative")
        #: The owning environment (stamps event times); may be None for
        #: standalone use, in which case publishers pass their own time.
        self.env = env
        self.ring: Optional[deque] = deque(maxlen=ring_size) if ring_size else None
        #: True once anything can observe a publication.  Publishers are
        #: expected to guard with ``if bus:`` so an idle bus costs one
        #: attribute check and nothing else.
        self.active: bool = self.ring is not None
        self.published = 0
        self.delivered = 0
        self._subs: List[Subscription] = []
        #: topic -> tuple of callbacks, rebuilt lazily per new topic and
        #: invalidated whenever the subscription set changes.
        self._cache: Dict[str, Tuple[Callable[[BusEvent], None], ...]] = {}
        #: Called (with no args) when the subscription set changes; the
        #: Environment uses this to refresh its kernel instrumentation flag.
        self._watchers: List[Callable[[], None]] = []

    # -- wiring ------------------------------------------------------------
    def subscribe(
        self, pattern: str, callback: Callable[[BusEvent], None]
    ) -> Subscription:
        """Register *callback* for every topic matching *pattern*.

        Patterns are an exact topic (``"task.done"``), a dotted prefix
        (``"task.*"``), or ``"*"`` for everything.
        """
        if not pattern:
            raise ValueError("pattern must be non-empty")
        sub = Subscription(self, pattern, callback)
        self._subs.append(sub)
        self._invalidate()
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        try:
            self._subs.remove(sub)
        except ValueError:
            return
        sub.bus = None
        self._invalidate()

    def attach(self, sink, pattern: str = "*") -> Subscription:
        """Subscribe a sink: a callable or an object with ``on_event``."""
        callback = sink if callable(sink) else sink.on_event
        return self.subscribe(pattern, callback)

    def watch(self, callback: Callable[[], None]) -> None:
        """Run *callback* whenever the subscription set changes."""
        self._watchers.append(callback)

    def _invalidate(self) -> None:
        self._cache.clear()
        self.active = bool(self._subs) or self.ring is not None
        for watcher in self._watchers:
            watcher()

    # -- queries -----------------------------------------------------------
    def wants(self, topic: str) -> bool:
        """True when some subscriber (or the ring) would see *topic*."""
        if self.ring is not None:
            return True
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        return bool(subs)

    def has_subscribers(self, topic: str) -> bool:
        """True when a *subscriber* matches *topic* (ring excluded)."""
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        return bool(subs)

    def _resolve(self, topic: str) -> Tuple[Callable[[BusEvent], None], ...]:
        subs = tuple(s.callback for s in self._subs if s.matches(topic))
        self._cache[topic] = subs
        return subs

    # -- publication -------------------------------------------------------
    def publish(self, topic: str, _time: Optional[float] = None, **fields) -> None:
        """Deliver one event to every matching subscriber, synchronously.

        The event time is the environment clock unless *_time* overrides
        it.  When the bus is inactive this returns immediately — but
        callers on hot paths should guard with ``if bus:`` and not pay
        for building ``fields`` at all.
        """
        if not self.active:
            return
        subs = self._cache.get(topic)
        if subs is None:
            subs = self._resolve(topic)
        if not subs and self.ring is None:
            return
        if _time is None:
            _time = self.env.now if self.env is not None else 0.0
        event = BusEvent(_time, topic, fields)
        self.published += 1
        if self.ring is not None:
            self.ring.append(event)
        for callback in subs:
            callback(event)
        self.delivered += len(subs)

    # -- dunder ------------------------------------------------------------
    def __bool__(self) -> bool:
        return self.active

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<EventBus subs={len(self._subs)} published={self.published} "
            f"ring={len(self.ring) if self.ring is not None else 0}>"
        )


class MemorySink:
    """In-memory sink for tests: collects every matching event."""

    def __init__(self) -> None:
        self.events: List[BusEvent] = []

    def __call__(self, event: BusEvent) -> None:
        self.events.append(event)

    def topics(self) -> List[str]:
        return [e.topic for e in self.events]

    def of(self, topic: str) -> List[BusEvent]:
        return [e for e in self.events if e.topic == topic]

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)
