"""``repro.sweep`` — the declarative sweep/ablation engine (DESIGN.md §11).

One engine behind every figure, bench, and CLI scenario: declare a
:class:`SweepSpec` (base scenario + named axes of variants), expand it
to a run matrix with stable content-hashed run IDs, fan the runs out
across worker processes, and reduce the rows into a machine-readable
``BENCH_sweep.json`` — per-run makespan/efficiency/critical-path
attribution, baseline-vs-variant deltas, and an axis-importance table
("which axis moves makespan most").

.. code-block:: python

    from repro.sweep import Axis, SweepSpec, Variant, run_sweep

    spec = SweepSpec(
        name="access-vs-eviction",
        scenario="data_processing",
        base=dict(n_machines=6, n_files=60, seed=7),
        axes=[
            Axis("access", (Variant("xrootd", {"data_access": "xrootd"}),
                            Variant("chirp", {"data_access": "chirp"}))),
            Axis("eviction", (Variant("none", {"eviction": "none"}),
                              Variant("weibull", {"eviction": "weibull"}))),
        ],
    )
    payload = run_sweep(spec, jobs=4)
"""

from .registry import (
    ScenarioDef,
    get_scenario,
    list_scenarios,
    register_scenario,
)
from .results import (
    BENCH_SCHEMA,
    SWEEP_SCHEMA,
    RunResult,
    axis_importance,
    bench_payload,
    compute_deltas,
    format_sweep_table,
    load_sweep,
    reduce_sweep,
    write_json,
)
from .runner import execute_plan, run_sweep
from .spec import (
    Axis,
    RunPlan,
    SweepSpec,
    Variant,
    canonical_json,
    content_hash,
    load_spec,
)

__all__ = [
    "Axis",
    "Variant",
    "RunPlan",
    "SweepSpec",
    "canonical_json",
    "content_hash",
    "load_spec",
    "ScenarioDef",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "RunResult",
    "SWEEP_SCHEMA",
    "BENCH_SCHEMA",
    "reduce_sweep",
    "compute_deltas",
    "axis_importance",
    "bench_payload",
    "write_json",
    "load_sweep",
    "format_sweep_table",
    "execute_plan",
    "run_sweep",
]
