"""Scenario registry: the names a :class:`~repro.sweep.SweepSpec` can target.

A registered scenario is a thin declarative wrapper over the shared
builders in :mod:`repro.scenarios`: every parameter is JSON-able (so it
can be hashed into the run ID and shipped to a worker process) and the
wrapper resolves the declarative encodings — eviction models, cache
modes, outage windows — into the objects the builders take.

Two kinds exist:

* ``des`` scenarios run a full discrete-event simulation; the engine
  attaches a :class:`~repro.monitor.SpanTracer` and extracts the
  standard metric set plus critical-path attribution.
* ``model`` scenarios are closed-form/Monte-Carlo models (the Fig 3
  task-size model, the Fig 6 cache microbenchmark); they return their
  metrics dict directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

__all__ = [
    "ScenarioDef",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
]

SCENARIOS: Dict[str, "ScenarioDef"] = {}


@dataclass(frozen=True)
class ScenarioDef:
    """A sweepable scenario: ``kind`` is ``"des"`` or ``"model"``.

    ``des`` builders take ``(env, **params)`` and return a
    :class:`~repro.scenarios.ScenarioResult`; ``model`` builders take
    ``(**params)`` and return a flat metrics dict.
    """

    name: str
    kind: str
    build: Callable
    description: str = ""


def register_scenario(
    name: str, kind: str, description: str = ""
) -> Callable[[Callable], Callable]:
    """Decorator: add a scenario to the registry under *name*."""
    if kind not in ("des", "model"):
        raise ValueError(f"scenario kind must be 'des' or 'model', got {kind!r}")

    def deco(fn: Callable) -> Callable:
        if name in SCENARIOS:
            raise ValueError(f"scenario {name!r} already registered")
        SCENARIOS[name] = ScenarioDef(
            name=name, kind=kind, build=fn, description=description
        )
        return fn

    return deco


def get_scenario(name: str) -> ScenarioDef:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None


def list_scenarios() -> List[ScenarioDef]:
    return [SCENARIOS[k] for k in sorted(SCENARIOS)]


# --------------------------------------------------------------------------
# Declarative encodings
# --------------------------------------------------------------------------


def resolve_eviction(spec):
    """Resolve a declarative eviction model.

    ``None`` keeps the scenario builder's default; strings are
    ``"none"``, ``"weibull"``, ``"constant:<p>"``, or
    ``"empirical:<n_workers>:<seed>"`` (a synthetic availability trace).
    """
    from ..batch import synthetic_availability_trace
    from ..distributions import (
        ConstantHazardEviction,
        EmpiricalEviction,
        EvictionModel,
        NoEviction,
        WeibullEviction,
    )

    if spec is None or isinstance(spec, EvictionModel):
        return spec
    kind, _, rest = str(spec).partition(":")
    if kind == "none":
        return NoEviction()
    if kind == "weibull":
        return WeibullEviction()
    if kind == "constant":
        return ConstantHazardEviction(float(rest or 0.1))
    if kind == "empirical":
        n_workers, _, trace_seed = rest.partition(":")
        trace = synthetic_availability_trace(
            n_workers=int(n_workers or 20_000), seed=int(trace_seed or 0)
        )
        return EmpiricalEviction.from_trace(trace)
    raise ValueError(f"unknown eviction spec {spec!r}")


def resolve_cache_mode(spec):
    """``"alien"``/``"locked"``/``"private"`` -> :class:`CacheMode`."""
    from ..cvmfs import CacheMode

    if spec is None or isinstance(spec, CacheMode):
        return spec
    try:
        return CacheMode[str(spec).upper()]
    except KeyError:
        known = ", ".join(m.name.lower() for m in CacheMode)
        raise ValueError(f"unknown cache mode {spec!r} (known: {known})") from None


def resolve_outages(spec):
    """``[[start_s, end_s], ...]`` -> list of :class:`OutageWindow`."""
    from ..storage.wan import OutageWindow

    if spec is None:
        return None
    return [
        w if isinstance(w, OutageWindow) else OutageWindow(float(w[0]), float(w[1]))
        for w in spec
    ]


# --------------------------------------------------------------------------
# Built-in scenarios
# --------------------------------------------------------------------------


@register_scenario(
    "data_processing", "des",
    "Fig 10-style data run (XrootD streaming / Chirp staging over a WAN)",
)
def _data_processing(env, **params):
    from ..scenarios import data_processing_scenario

    params["eviction"] = resolve_eviction(params.get("eviction"))
    params["outages"] = resolve_outages(params.get("outages"))
    return data_processing_scenario(env=env, **params)


@register_scenario(
    "simulation", "des",
    "Fig 11-style Monte-Carlo run (cold caches, squid transient, Chirp queueing)",
)
def _simulation(env, **params):
    from ..scenarios import simulation_scenario

    params["eviction"] = resolve_eviction(params.get("eviction"))
    params["cache_mode"] = resolve_cache_mode(params.get("cache_mode"))
    return simulation_scenario(env=env, **params)


@register_scenario(
    "quickstart", "des", "tiny end-to-end MC run (the CLI quickstart)"
)
def _quickstart(env, **params):
    from ..scenarios import execute_prepared, prepare_quickstart

    return execute_prepared(prepare_quickstart(env=env, **params), settle=None)


@register_scenario(
    "chaos", "des",
    "data run under the injected fault barrage with active recovery",
)
def _chaos(env, **params):
    from ..scenarios import execute_prepared, prepare_chaos

    return execute_prepared(prepare_chaos(env=env, **params), settle=None)


@register_scenario(
    "tasksize", "model",
    "Fig 3 Monte-Carlo model: CPU efficiency vs task length under eviction",
)
def _tasksize(
    task_hours: float = 1.0,
    eviction: str = "constant:0.1",
    n_tasklets: int = 20_000,
    n_workers: int = 1_600,
    seed: int = 0,
):
    from ..core import TaskSizeConfig, TaskSizeSimulator

    HOUR = 3600.0
    sim = TaskSizeSimulator(
        TaskSizeConfig(n_tasklets=n_tasklets, n_workers=n_workers), seed=seed
    )
    r = sim.simulate(task_hours * HOUR, resolve_eviction(eviction))
    return {
        "task_length_s": r.task_length,
        "tasklets_per_task": r.tasklets_per_task,
        "efficiency": r.efficiency,
        "evictions": r.evictions,
        "abandoned_tasks": r.abandoned_tasks,
        "tasks_completed": r.tasks_completed,
    }


@register_scenario(
    "cache_node", "model",
    "Fig 6 microbenchmark: concurrent cold cache setups on one node",
)
def _cache_node(**params):
    from ..scenarios import cache_node_scenario

    metrics = cache_node_scenario(
        params["mode"],
        n_instances=params.get("n_instances", 8),
        squid_gbit=params.get("squid_gbit", 2.0),
    )
    metrics.pop("mode", None)
    return metrics


@register_scenario(
    "crashtest", "model",
    "crash-consistency fuzz: kill the master at sampled checkpoints, "
    "warm-restart, assert convergence",
)
def _crashtest(
    scenario: str = "micro",
    mode: str = "sample",
    samples: int = 10,
    seed: int = 0,
    double_crash: bool = False,
):
    """Sweepable wrapper over :func:`repro.crashtest.run_crashtest`.

    Registered as a ``model`` scenario: the harness drives its own DES
    environments internally (one donor plus one per crash point), so it
    takes no outer ``env``.  The flat metrics let a sweep grid e.g.
    ``seed`` x ``scenario`` and gate on ``points_failed == 0``.
    """
    from ..crashtest import run_crashtest

    report = run_crashtest(
        scenario=scenario,
        mode=mode,
        samples=samples,
        seed=seed,
        double_crash=double_crash,
    )
    return {
        "checkpoints": report.checkpoints_total,
        "points_tested": len(report.points),
        "points_failed": report.n_failed,
        "invariant_violations": report.invariant_violations,
        "donor_problems": len(report.donor_problems),
        "converged": float(report.ok),
    }


@register_scenario(
    "toy", "model",
    "instant deterministic model with failure knobs (tests, smoke sweeps)",
)
def _toy(
    value: float = 1.0,
    factor: float = 1.0,
    crash: bool = False,
    hard_exit: bool = False,
    sleep_s: float = 0.0,
    seed: int = 0,
):
    """A microscopic stand-in scenario.

    ``crash`` raises, ``hard_exit`` kills the process without cleanup,
    and ``sleep_s`` stalls — the knobs the failure-path tests and the
    CI smoke sweep use to exercise the executor.
    """
    import os
    import time

    import numpy as np

    if crash:
        raise RuntimeError("toy scenario: injected crash")
    if hard_exit:
        os._exit(13)
    if sleep_s:
        time.sleep(sleep_s)
    rng = np.random.default_rng(seed)
    noise = float(rng.random())
    return {
        "makespan_s": value * factor * 100.0 + noise,
        "efficiency": 1.0 / (1.0 + value * factor),
        "noise": noise,
    }
