"""Declarative sweep specifications.

A :class:`SweepSpec` describes an ablation campaign the way pykeen's
``ablation_pipeline`` or a LAW parameter grid does: one *base* scenario
(a name from the scenario registry plus base parameters) and named
*axes*, each holding the variants of one knob (faults on/off, fabric
topology, recovery policy, task size, cache mode, eviction model, ...).

The spec expands to a run matrix of :class:`RunPlan` rows.  Every run
gets a **stable content-hashed run ID**: the hash covers the scenario
name, the fully merged parameters, and the seed — nothing positional —
so the same logical run keeps its ID across spec reorderings, resumed
sweeps, machines, and processes.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import runpy
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Variant",
    "Axis",
    "RunPlan",
    "SweepSpec",
    "canonical_json",
    "content_hash",
    "load_spec",
]


def canonical_json(obj) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_hash(obj, length: int = 10) -> str:
    """Stable hex digest of a JSON-able object."""
    digest = hashlib.sha256(canonical_json(obj).encode()).hexdigest()
    return digest[:length]


@dataclass(frozen=True)
class Variant:
    """One setting of one axis: a name plus the parameters it overrides."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self):
        if not self.name:
            raise ValueError("variant name must be non-empty")
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, d: Mapping) -> "Variant":
        return cls(name=d["name"], params=dict(d.get("params", {})))


@dataclass(frozen=True)
class Axis:
    """A named knob and its variants; the first variant is the baseline."""

    name: str
    variants: Tuple[Variant, ...]

    def __post_init__(self):
        object.__setattr__(self, "variants", tuple(self.variants))
        if not self.name:
            raise ValueError("axis name must be non-empty")
        if not self.variants:
            raise ValueError(f"axis {self.name!r} needs at least one variant")
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise ValueError(f"axis {self.name!r} has duplicate variant names")

    @property
    def baseline(self) -> Variant:
        return self.variants[0]

    def to_dict(self) -> dict:
        return {"name": self.name, "variants": [v.to_dict() for v in self.variants]}

    @classmethod
    def from_dict(cls, d: Mapping) -> "Axis":
        return cls(
            name=d["name"],
            variants=tuple(Variant.from_dict(v) for v in d["variants"]),
        )


@dataclass(frozen=True)
class RunPlan:
    """One expanded run: its stable ID, variant assignment, and params."""

    run_id: str
    scenario: str
    variants: Mapping[str, str]  #: axis name -> variant name
    params: Mapping[str, object]  #: fully merged scenario parameters
    seed: int

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "scenario": self.scenario,
            "variants": dict(self.variants),
            "params": dict(self.params),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunPlan":
        return cls(
            run_id=d["run_id"],
            scenario=d["scenario"],
            variants=dict(d["variants"]),
            params=dict(d["params"]),
            seed=int(d["seed"]),
        )


@dataclass
class SweepSpec:
    """A declarative scenario grid.

    ``mode="grid"`` takes the full cartesian product of all axes;
    ``mode="star"`` (classic one-at-a-time ablation) runs the all-
    baseline scenario plus one run per non-baseline variant per axis.

    ``seed=None`` resolves through
    :func:`repro.testing.resolve_test_seed`, so a CI seed-matrix leg
    sweeps under its matrix seed while local runs stay at 0.
    """

    name: str
    scenario: str
    axes: Sequence[Axis]
    base: Dict[str, object] = field(default_factory=dict)
    mode: str = "grid"
    seed: Optional[int] = None
    #: Metric the reducer ranks axes and computes deltas on.
    objective: str = "makespan_s"
    #: Ask DES scenarios to record completion-time series per run.
    record_series: bool = False
    #: Per-run wall-clock budget for worker processes (None = unlimited).
    timeout_s: Optional[float] = None

    def __post_init__(self):
        self.axes = tuple(self.axes)
        if not self.name:
            raise ValueError("sweep name must be non-empty")
        if self.mode not in ("grid", "star"):
            raise ValueError(f"unknown sweep mode {self.mode!r}")
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        names = [a.name for a in self.axes]
        if len(set(names)) != len(names):
            raise ValueError("axis names must be unique")

    # -- seeds ------------------------------------------------------------

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        from ..testing import resolve_test_seed

        return resolve_test_seed()

    # -- expansion --------------------------------------------------------

    def _assignments(self) -> List[Tuple[Variant, ...]]:
        if self.mode == "grid":
            return list(itertools.product(*(a.variants for a in self.axes)))
        # star: all-baseline, then vary one axis at a time.
        baseline = tuple(a.baseline for a in self.axes)
        rows = [baseline]
        for i, axis in enumerate(self.axes):
            for v in axis.variants[1:]:
                row = list(baseline)
                row[i] = v
                rows.append(tuple(row))
        return rows

    def plan(self, assignment: Sequence[Variant]) -> RunPlan:
        """Build the :class:`RunPlan` for one variant assignment."""
        seed = self.resolved_seed()
        params: Dict[str, object] = dict(self.base)
        for variant in assignment:
            params.update(variant.params)
        params.setdefault("seed", seed)
        variants = {a.name: v.name for a, v in zip(self.axes, assignment)}
        digest = content_hash(
            {"scenario": self.scenario, "params": params, "seed": params["seed"]}
        )
        label = "+".join(v.name for v in assignment)
        return RunPlan(
            run_id=f"{label}-{digest}",
            scenario=self.scenario,
            variants=variants,
            params=params,
            seed=int(params["seed"]),  # type: ignore[arg-type]
        )

    def expand(self) -> List[RunPlan]:
        """The full run matrix, in deterministic axis-major order."""
        plans = [self.plan(row) for row in self._assignments()]
        ids = [p.run_id for p in plans]
        if len(set(ids)) != len(ids):
            raise ValueError(
                "sweep expands to duplicate run ids — two variant "
                "assignments produce identical parameters"
            )
        return plans

    def baseline_plan(self) -> RunPlan:
        """The all-baseline run (first variant of every axis)."""
        return self.plan(tuple(a.baseline for a in self.axes))

    # -- (de)serialisation ------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "base": dict(self.base),
            "axes": [a.to_dict() for a in self.axes],
            "mode": self.mode,
            "seed": self.seed,
            "objective": self.objective,
            "record_series": self.record_series,
            "timeout_s": self.timeout_s,
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "SweepSpec":
        return cls(
            name=d["name"],
            scenario=d["scenario"],
            base=dict(d.get("base", {})),
            axes=tuple(Axis.from_dict(a) for a in d["axes"]),
            mode=d.get("mode", "grid"),
            seed=d.get("seed"),
            objective=d.get("objective", "makespan_s"),
            record_series=bool(d.get("record_series", False)),
            timeout_s=d.get("timeout_s"),
        )

    def spec_hash(self) -> str:
        return content_hash(self.to_dict(), length=12)


def load_spec(path: str) -> SweepSpec:
    """Load a :class:`SweepSpec` from a ``.json`` or ``.py`` file.

    A Python spec file defines ``SPEC`` (a :class:`SweepSpec`) or a
    zero-argument ``build_spec()``; a JSON file holds the
    :meth:`SweepSpec.to_dict` shape.
    """
    if path.endswith(".json"):
        with open(path) as fh:
            return SweepSpec.from_dict(json.load(fh))
    if path.endswith(".py"):
        ns = runpy.run_path(path, run_name="repro.sweep.spec_file")
        if isinstance(ns.get("SPEC"), SweepSpec):
            return ns["SPEC"]
        if callable(ns.get("build_spec")):
            spec = ns["build_spec"]()
            if not isinstance(spec, SweepSpec):
                raise TypeError(f"{path}: build_spec() did not return a SweepSpec")
            return spec
        raise ValueError(f"{path}: no SPEC object or build_spec() found")
    raise ValueError(f"unsupported spec file {path!r} (need .json or .py)")
