"""Sweep execution: fan the run matrix out across worker processes.

Each run executes in its own fresh state — a new
:class:`~repro.desim.Environment`, a new
:class:`~repro.monitor.SpanTracer`, and rewound global id counters
(:func:`repro.testing.reset_id_counters`) — so a run's metrics are a
pure function of ``(scenario, params, seed)``.  That is what makes run
IDs content-addressable and lets ``--jobs 1`` and ``--jobs 4`` produce
byte-identical result rows.

Failure isolation: every run owns one worker process.  A run that
raises reports a ``failed`` row; a run whose process dies (segfault,
``os._exit``) or overruns the timeout is marked ``failed`` and
terminated without touching its siblings.  Resuming a sweep feeds the
previous ``BENCH_sweep.json`` back in: completed run IDs are reused,
only missing or failed runs execute.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from .registry import get_scenario
from .results import (
    STATUS_FAILED,
    RunResult,
    load_sweep,
    reduce_sweep,
)
from .spec import RunPlan, SweepSpec

__all__ = ["execute_plan", "run_sweep"]

#: How long the parent sleeps between polls of its worker pipes.
_POLL_S = 0.01
#: Grace period between terminate() and kill() on a timed-out worker.
_TERM_GRACE_S = 2.0

#: Critical-path contributors kept per run.
TOP_CONTRIBUTORS = 8


def _mp_context():
    """Prefer fork (cheap, modules already imported), fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# --------------------------------------------------------------------------
# Single-run execution
# --------------------------------------------------------------------------


def _des_outcome(result, tracer, record_series: bool):
    """Standard metric set + critical-path attribution for a DES run."""
    from ..monitor import attribute, critical_path, work_coverage

    env, run, pool = result.env, result.run, result.pool
    m = run.metrics
    recs = [
        r for r in m.records if r.category == "analysis" and r.succeeded
    ]
    cpu = float(sum(r.segments.get("cpu", 0.0) for r in recs))
    wall = float(sum(r.wall_time for r in recs))
    setups = [r.segments.get("setup", 0.0) for r in recs]
    services = run.services
    proxy_bytes = float(
        sum(p.bytes_served for p in services.proxies.proxies)
    )
    analysis_done = sorted(r.finished for r in recs)
    merge_done = sorted(
        r.finished for r in m.records if r.category == "merge" and r.succeeded
    )
    if services.mapreduce is not None:
        # Hadoop merges run inside the storage cluster, not as WQ tasks.
        merge_done = sorted(
            merge_done
            + [t for t, phase, _ in services.mapreduce.completions if phase == "reduce"]
        )
    metrics: Dict[str, float] = {
        "makespan_s": float(env.now),
        "efficiency": float(m.overall_efficiency()),
        "tasks_ok": float(m.n_succeeded()),
        "tasks_failed": float(m.n_failed()),
        "tasks_requeued": float(run.master.tasks_requeued),
        "evictions": float(pool.total_evictions),
        "cpu_s": cpu,
        "wall_s": wall,
        "overhead_s": wall - cpu,
        "cpu_utilisation": cpu / wall if wall else 0.0,
        "mean_setup_s": float(sum(setups) / len(setups)) if setups else 0.0,
        "wan_bytes": float(services.wan.bytes_moved),
        "chirp_bytes": float(services.chirp.bytes_out),
        "proxy_bytes": proxy_bytes,
        "merged_files": float(
            sum(len(w.merge.merged_files) for w in run.workflows.values())
        ),
        "outputs_created": float(
            sum(w.outputs_created for w in run.workflows.values())
        ),
    }
    if analysis_done:
        metrics["last_analysis_s"] = float(analysis_done[-1])
    if merge_done:
        metrics["first_merge_s"] = float(merge_done[0])
        metrics["last_merge_s"] = float(merge_done[-1])

    slices, makespan = critical_path(tracer.spans)
    contributors = [
        {
            "label": label,
            "seconds": seconds,
            "share": seconds / makespan if makespan else 0.0,
        }
        for label, seconds in attribute(slices)[:TOP_CONTRIBUTORS]
    ]
    coverage = work_coverage(slices, makespan) if slices else None

    series: Dict[str, list] = {}
    if record_series:
        series["analysis_done"] = [float(t) for t in analysis_done]
        series["merge_done"] = [float(t) for t in merge_done]
    return metrics, contributors, coverage, series


def execute_plan(plan: RunPlan, record_series: bool = False) -> RunResult:
    """Run one plan in-process and return its :class:`RunResult`.

    Resets the global id counters first, so results are identical
    whether the plan runs here or in a worker process.
    """
    from ..testing import reset_id_counters

    reset_id_counters()
    sdef = get_scenario(plan.scenario)
    params = dict(plan.params)
    if sdef.kind == "model":
        metrics = dict(sdef.build(**params))
        return RunResult.for_plan(plan, metrics=metrics)

    from ..desim import Environment
    from ..monitor import RunWatcher, SpanTracer

    env = Environment()
    tracer = SpanTracer(env)
    # The live health engine rides along on every sweep cell; its alert
    # counts are result metrics, and because the engine is a pure fold
    # of the event stream they are identical under --jobs 1 and N.
    watcher = RunWatcher(env.bus)
    result = sdef.build(env=env, **params)
    tracer.finalize()
    metrics, contributors, coverage, series = _des_outcome(
        result, tracer, record_series
    )
    metrics["alerts_raised"] = float(len(watcher.engine.alerts_raised()))
    metrics["alerts_cleared"] = float(len(watcher.engine.alerts_cleared()))
    return RunResult.for_plan(
        plan,
        metrics=metrics,
        critical_path=contributors,
        work_coverage=coverage,
        series=series,
    )


def _execute_safely(plan: RunPlan, record_series: bool) -> RunResult:
    try:
        return execute_plan(plan, record_series=record_series)
    except Exception as exc:
        return RunResult.for_plan(
            plan,
            status=STATUS_FAILED,
            error=f"{type(exc).__name__}: {exc}",
        )


def _worker(plan_dict: dict, record_series: bool, conn) -> None:
    """Worker-process entry: run one plan, ship the row back, exit."""
    try:
        row = _execute_safely(RunPlan.from_dict(plan_dict), record_series)
        conn.send(row.to_dict())
    finally:
        conn.close()


# --------------------------------------------------------------------------
# The sweep loop
# --------------------------------------------------------------------------


class _Slot:
    """One in-flight worker process."""

    __slots__ = ("plan", "proc", "conn", "deadline")

    def __init__(self, plan, proc, conn, deadline):
        self.plan = plan
        self.proc = proc
        self.conn = conn
        self.deadline = deadline


def _reap(slot: _Slot, now: float) -> Optional[RunResult]:
    """Collect a slot's result if it finished, crashed, or timed out."""
    if slot.conn.poll():
        try:
            row = RunResult.from_dict(slot.conn.recv())
        except EOFError:
            # Pipe at EOF with no row: the worker died (segfault,
            # os._exit) before reporting.  Join first so exitcode is set.
            slot.proc.join()
            row = RunResult.for_plan(
                slot.plan, status=STATUS_FAILED,
                error="worker process died without a result "
                      f"(exit code {slot.proc.exitcode})",
            )
        slot.proc.join()
        slot.conn.close()
        return row
    if not slot.proc.is_alive():
        slot.proc.join()
        slot.conn.close()
        return RunResult.for_plan(
            slot.plan, status=STATUS_FAILED,
            error=f"worker process died (exit code {slot.proc.exitcode})",
        )
    if slot.deadline is not None and now >= slot.deadline:
        slot.proc.terminate()
        slot.proc.join(_TERM_GRACE_S)
        if slot.proc.is_alive():  # pragma: no cover - stubborn worker
            slot.proc.kill()
            slot.proc.join()
        slot.conn.close()
        return RunResult.for_plan(
            slot.plan, status=STATUS_FAILED,
            error="worker process timed out",
        )
    return None


def _run_parallel(
    plans: Sequence[RunPlan],
    jobs: int,
    record_series: bool,
    timeout_s: Optional[float],
    progress: Optional[Callable[[RunResult], None]],
) -> Dict[str, RunResult]:
    ctx = _mp_context()
    queue = list(plans)
    active: List[_Slot] = []
    done: Dict[str, RunResult] = {}
    while queue or active:
        while queue and len(active) < jobs:
            plan = queue.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker,
                args=(plan.to_dict(), record_series, child_conn),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            deadline = (
                time.monotonic() + timeout_s if timeout_s is not None else None
            )
            active.append(_Slot(plan, proc, parent_conn, deadline))
        now = time.monotonic()
        still_active = []
        for slot in active:
            row = _reap(slot, now)
            if row is None:
                still_active.append(slot)
                continue
            done[row.run_id] = row
            if progress is not None:
                progress(row)
        active = still_active
        if active:
            time.sleep(_POLL_S)
    return done


def run_sweep(
    spec: SweepSpec,
    jobs: int = 1,
    baseline: Optional[str] = None,
    resume: Union[None, str, Mapping] = None,
    timeout_s: Optional[float] = None,
    progress: Optional[Callable[[RunResult], None]] = None,
) -> dict:
    """Expand *spec*, execute its matrix, and reduce to a sweep payload.

    ``jobs=1`` runs in-process (handy under a debugger); ``jobs>1``
    fans out across that many worker processes.  *resume* takes a prior
    payload (or a path to one): completed run IDs are reused with
    ``resumed: true``, failed and missing runs re-execute.  *baseline*
    overrides the all-baseline run for the delta table; *timeout_s*
    overrides ``spec.timeout_s``.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    plans = spec.expand()
    timeout_s = timeout_s if timeout_s is not None else spec.timeout_s

    reused: Dict[str, RunResult] = {}
    if resume is not None:
        payload = load_sweep(resume) if isinstance(resume, str) else resume
        for row in payload.get("runs", []):
            prior = RunResult.from_dict(row)
            if prior.ok:
                prior.resumed = True
                reused[prior.run_id] = prior

    todo = [p for p in plans if p.run_id not in reused]
    if progress is not None:
        for plan in plans:
            if plan.run_id in reused:
                progress(reused[plan.run_id])

    if jobs == 1:
        executed: Dict[str, RunResult] = {}
        for plan in todo:
            row = _execute_safely(plan, spec.record_series)
            executed[row.run_id] = row
            if progress is not None:
                progress(row)
    else:
        executed = _run_parallel(
            todo, jobs, spec.record_series, timeout_s, progress
        )

    results = [
        reused.get(p.run_id) or executed[p.run_id] for p in plans
    ]
    if baseline is not None:
        known = {p.run_id for p in plans}
        if baseline not in known:
            raise ValueError(f"--baseline {baseline!r} is not a run id of this sweep")
    return reduce_sweep(spec, results, baseline_id=baseline)
