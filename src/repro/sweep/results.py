"""Sweep results: per-run schema, reducers, and JSON emission.

The machine-readable trajectory file every sweep produces
(``BENCH_sweep.json``, schema ``repro.sweep/1``) holds:

* the expanded spec and its content hash,
* one row per run — stable run ID, variant assignment, status,
  the standard metric set, and critical-path attribution,
* baseline-vs-variant deltas on the spec's objective metric,
* an axis-importance table ("which axis moves the objective most").

The sibling ``repro.bench/1`` schema wraps the rows a migrated figure
benchmark emits next to its human-readable ``.txt``.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from .spec import RunPlan, SweepSpec

__all__ = [
    "SWEEP_SCHEMA",
    "BENCH_SCHEMA",
    "RunResult",
    "reduce_sweep",
    "compute_deltas",
    "axis_importance",
    "bench_payload",
    "write_json",
    "load_sweep",
    "format_sweep_table",
]

SWEEP_SCHEMA = "repro.sweep/1"
BENCH_SCHEMA = "repro.bench/1"

STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass
class RunResult:
    """Outcome of one run of the matrix."""

    run_id: str
    scenario: str
    variants: Mapping[str, str]
    params: Mapping[str, object]
    seed: int
    status: str = STATUS_OK
    metrics: Dict[str, float] = field(default_factory=dict)
    #: Top critical-path contributors: [{label, seconds, share}, ...].
    critical_path: List[dict] = field(default_factory=list)
    #: Fraction of the makespan the critical path attributes to work.
    work_coverage: Optional[float] = None
    #: Optional per-run series (completion timelines) when requested.
    series: Dict[str, list] = field(default_factory=dict)
    error: Optional[str] = None
    #: True when a resumed sweep reused this row instead of re-running.
    resumed: bool = False

    @classmethod
    def for_plan(cls, plan: RunPlan, **kw) -> "RunResult":
        return cls(
            run_id=plan.run_id,
            scenario=plan.scenario,
            variants=dict(plan.variants),
            params=dict(plan.params),
            seed=plan.seed,
            **kw,
        )

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def to_dict(self) -> dict:
        d = {
            "run_id": self.run_id,
            "scenario": self.scenario,
            "variants": dict(self.variants),
            "params": dict(self.params),
            "seed": self.seed,
            "status": self.status,
            "metrics": dict(self.metrics),
            "critical_path": list(self.critical_path),
            "work_coverage": self.work_coverage,
            "error": self.error,
            "resumed": self.resumed,
        }
        if self.series:
            d["series"] = {k: list(v) for k, v in self.series.items()}
        return d

    @classmethod
    def from_dict(cls, d: Mapping) -> "RunResult":
        return cls(
            run_id=d["run_id"],
            scenario=d["scenario"],
            variants=dict(d.get("variants", {})),
            params=dict(d.get("params", {})),
            seed=int(d.get("seed", 0)),
            status=d.get("status", STATUS_OK),
            metrics=dict(d.get("metrics", {})),
            critical_path=list(d.get("critical_path", [])),
            work_coverage=d.get("work_coverage"),
            series={k: list(v) for k, v in d.get("series", {}).items()},
            error=d.get("error"),
            resumed=bool(d.get("resumed", False)),
        )


# --------------------------------------------------------------------------
# Reducers
# --------------------------------------------------------------------------


def _objective(result: RunResult, objective: str) -> Optional[float]:
    v = result.metrics.get(objective)
    if v is None:
        return None
    v = float(v)
    return v if math.isfinite(v) else None


def compute_deltas(
    results: Sequence[RunResult],
    objective: str,
    baseline_id: str,
) -> List[dict]:
    """Per-run objective delta against the baseline run."""
    by_id = {r.run_id: r for r in results}
    base = by_id.get(baseline_id)
    base_val = _objective(base, objective) if base is not None and base.ok else None
    rows = []
    for r in results:
        val = _objective(r, objective) if r.ok else None
        row = {
            "run_id": r.run_id,
            "variants": dict(r.variants),
            objective: val,
            "delta": None,
            "delta_pct": None,
        }
        if val is not None and base_val is not None:
            row["delta"] = val - base_val
            row["delta_pct"] = (
                (val - base_val) / base_val * 100.0 if base_val else None
            )
        rows.append(row)
    return rows


def axis_importance(
    spec: SweepSpec, results: Sequence[RunResult], objective: Optional[str] = None
) -> List[dict]:
    """Rank axes by how much they move the objective.

    For each axis, completed runs are grouped by that axis's variant;
    the importance ("spread") is the gap between the best and worst
    group mean — the makespan the axis controls, everything else
    averaged out.  Rows are sorted most-important first.
    """
    objective = objective or spec.objective
    rows = []
    for axis in spec.axes:
        groups: Dict[str, List[float]] = {}
        for r in results:
            if not r.ok:
                continue
            val = _objective(r, objective)
            if val is None:
                continue
            groups.setdefault(r.variants.get(axis.name, "?"), []).append(val)
        means = {
            name: sum(vals) / len(vals) for name, vals in groups.items() if vals
        }
        spread = (max(means.values()) - min(means.values())) if len(means) > 1 else 0.0
        lo = min(means.values()) if means else None
        rows.append(
            {
                "axis": axis.name,
                "spread": spread,
                "spread_pct": (spread / lo * 100.0) if lo else None,
                "groups": {
                    name: {"mean": means[name], "n": len(groups[name])}
                    for name in sorted(means)
                },
            }
        )
    rows.sort(key=lambda row: -row["spread"])
    return rows


def reduce_sweep(
    spec: SweepSpec,
    results: Sequence[RunResult],
    baseline_id: Optional[str] = None,
) -> dict:
    """Assemble the full ``repro.sweep/1`` payload."""
    if baseline_id is None:
        baseline_id = spec.baseline_plan().run_id
    ok = [r for r in results if r.ok]
    payload = {
        "schema": SWEEP_SCHEMA,
        "name": spec.name,
        "scenario": spec.scenario,
        "objective": spec.objective,
        "spec": spec.to_dict(),
        "spec_hash": spec.spec_hash(),
        "seed": spec.resolved_seed(),
        "n_runs": len(results),
        "n_ok": len(ok),
        "n_failed": len(results) - len(ok),
        "baseline": baseline_id,
        "runs": [r.to_dict() for r in results],
        "deltas": compute_deltas(results, spec.objective, baseline_id),
        "importance": axis_importance(spec, results),
    }
    return payload


def bench_payload(name: str, rows: Sequence[Mapping], **meta) -> dict:
    """Wrap a migrated benchmark's rows in the ``repro.bench/1`` schema."""
    return {"schema": BENCH_SCHEMA, "name": name, **meta, "rows": list(rows)}


# --------------------------------------------------------------------------
# I/O
# --------------------------------------------------------------------------


def write_json(payload: Mapping, path: str) -> str:
    """Write a payload with stable formatting (diffable in git)."""
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_sweep(path: str) -> dict:
    """Read a ``BENCH_sweep.json`` back (resume, analysis, CI gates)."""
    with open(path) as fh:
        payload = json.load(fh)
    if payload.get("schema") != SWEEP_SCHEMA:
        raise ValueError(
            f"{path}: schema {payload.get('schema')!r} is not {SWEEP_SCHEMA!r}"
        )
    return payload


# --------------------------------------------------------------------------
# Human-readable summary
# --------------------------------------------------------------------------


def _fmt(v, width=12, prec=3) -> str:
    if v is None:
        return " " * (width - 1) + "-"
    return f"{v:{width}.{prec}f}"


def format_sweep_table(payload: Mapping, top: int = 40) -> str:
    """Render the deltas + importance tables as aligned text."""
    objective = payload.get("objective", "makespan_s")
    lines = [
        f"sweep {payload['name']!r}: {payload['n_ok']}/{payload['n_runs']} runs ok"
        + (f", {payload['n_failed']} failed" if payload.get("n_failed") else ""),
        f"baseline: {payload['baseline']}",
        "",
        f"{'run':<42s} {objective:>14s} {'delta':>12s} {'delta%':>8s}",
    ]
    for row in payload["deltas"][:top]:
        pct = row.get("delta_pct")
        lines.append(
            f"{row['run_id']:<42s} {_fmt(row.get(objective), 14)} "
            f"{_fmt(row.get('delta'), 12)} "
            f"{_fmt(pct, 8, 1)}"
        )
    if len(payload["deltas"]) > top:
        lines.append(f"... and {len(payload['deltas']) - top} more runs")
    lines.append("")
    lines.append(f"axis importance (objective: {objective}):")
    for row in payload["importance"]:
        pct = f" ({row['spread_pct']:.1f}%)" if row.get("spread_pct") else ""
        lines.append(f"  {row['axis']:<16s} spread {row['spread']:.3f}{pct}")
        for name, g in row["groups"].items():
            lines.append(
                f"    {name:<16s} mean {g['mean']:12.3f}  (n={g['n']})"
            )
    failed = [r for r in payload["runs"] if r["status"] != STATUS_OK]
    if failed:
        lines.append("")
        lines.append("failed runs:")
        for r in failed:
            lines.append(f"  {r['run_id']}: {r.get('error')}")
    return "\n".join(lines)
