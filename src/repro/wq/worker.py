"""Work Queue workers.

A worker manages several cores on one machine and runs tasks that may
each claim one or more of them (``Task.cores``): a dispatcher pulls the
next task that *fits the currently free cores* and hands it to a runner
process, so a 4-core task occupies four slots while 1-core tasks pack
around it.  All task slots share the worker's sandbox cache and (in
Lobster's deployment) a single Parrot/CVMFS cache.

Workers are started as batch payloads by :class:`repro.batch.CondorPool`
and may be evicted at any moment: the eviction interrupt propagates into
the dispatcher and every runner, running tasks are reported lost and
re-queued at the master, and any in-flight transfers are cancelled.
"""

from __future__ import annotations

from itertools import count
from typing import Any, Dict, List, Optional, Set

from ..desim import Environment, Interrupt, Topics
from ..analysis.report import ExitCode
from ..batch.machines import Machine
from ..net import TrafficClass
from ..storage.integrity import IntegrityError
from .master import Master
from .task import Task, TaskResult, TaskState
from .transfer import ship

__all__ = ["Worker"]


class Worker:
    """A multi-core worker pulling tasks from a master or foreman."""

    _ids = count()

    def __init__(
        self,
        env: Environment,
        machine: Machine,
        upstream,
        cores: int = 8,
        connect_latency: float = 2.0,
        name: Optional[str] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        if cores <= 0:
            raise ValueError("cores must be positive")
        self.env = env
        self.machine = machine
        self.upstream = upstream
        #: The root master (for bookkeeping), even when behind a foreman.
        self.master: Master = getattr(upstream, "master", upstream)
        self.cores = cores
        self.connect_latency = connect_latency
        self.name = name or f"worker{next(Worker._ids):06d}"
        #: Arbitrary per-worker context the executor may use (Lobster
        #: stores the ParrotCache, proxies, storage handles here).
        self.context: Dict[str, Any] = context or {}
        self._sandboxes: Set[str] = set()
        # Shared per-topic fast path (one compiled emitter per bus).
        self._p_dispatch = env.bus.port(Topics.TASK_DISPATCH)
        self.tasks_done = 0
        self.evicted = False
        self._free = cores
        self._runners: List = []
        self._dispatcher = None
        self._crash: Optional[BaseException] = None
        self._dying = False

    @property
    def free_cores(self) -> int:
        """Cores not currently claimed by a running task."""
        return self._free

    # -- the payload process -------------------------------------------------
    def run(self):
        """Main worker process (the condor payload)."""
        env = self.env
        registered = False
        try:
            yield env.timeout(self.connect_latency)
            self.master.register(self.cores)
            registered = True
            self._dispatcher = env.process(
                self._dispatch_loop(), name=f"{self.name}-dispatch"
            )
            yield self._dispatcher
            # Drained (or crashed): wait for in-flight runners to settle.
            for r in list(self._runners):
                if r.is_alive:
                    try:
                        yield r
                    except Exception:
                        pass
        except Interrupt as interrupt:
            self.evicted = True
            self._dying = True
            if self._dispatcher is not None and self._dispatcher.is_alive:
                self._dispatcher.interrupt(interrupt.cause)
            for r in list(self._runners):
                if r.is_alive:
                    r.interrupt(interrupt.cause)
            for r in list(self._runners):
                if r.is_alive:
                    try:
                        yield r
                    except Exception:
                        pass
        finally:
            if registered:
                self.master.unregister(self.cores)
        if self._crash is not None:
            # A runner hit a non-eviction failure (executor bug, machine
            # fault): surface it so the batch system records "failed".
            raise self._crash

    # -- internals ---------------------------------------------------------------
    @property
    def _source(self):
        return self.upstream.ready

    @property
    def _upstream_nic(self):
        return self.upstream.nic

    def _fits(self, task: Task) -> bool:
        return (
            not self._dying
            and task.cores <= self._free
            and not self.master.is_blacklisted(self.machine.name)
        )

    def _dispatch_loop(self):
        master = self.master
        while True:
            get = self._source.get(self._fits)
            try:
                outcome = yield get | master.drain_event
            except Interrupt:
                get.cancel()
                if get.triggered and get.ok:
                    master.requeue(get.value)
                return
            if get not in outcome:
                get.cancel()
                return  # drained
            task: Task = outcome[get]
            task.state = TaskState.DISPATCHED
            port = self._p_dispatch
            if port.on:
                port.emit(
                    task_id=task.task_id,
                    worker=self.name,
                    cores=task.cores,
                    free=self._free - task.cores,
                )
            master.task_started()
            self._free -= task.cores
            runner = self.env.process(
                self._runner(task, self.env.now),
                name=f"{self.name}-run{task.task_id}",
            )
            tr = self.env.spans
            if tr is not None and task.attempt_span is not None:
                # The attempt context becomes ambient for the runner, so
                # every flow/segment below lands in the right tree.
                runner.span_ctx = task.attempt_span.ctx
                tr.annotate(
                    task.attempt_span, worker=self.name, host=self.machine.name
                )
                if task.queue_span is not None:
                    tr.end(task.queue_span, worker=self.name)
                    task.queue_span = None
            self._runners.append(runner)

    def _runner(self, task: Task, started: float):
        """Execute one task on its claimed cores."""
        master = self.master
        me = self.env.active_process
        try:
            result = yield from self._execute(task, started)
        except Interrupt:
            master.requeue(task, lost_after=self.env.now - started)
            return
        except Exception as exc:
            # The runner crashed: re-queue the task (real Work Queue
            # notices the disconnect), then take the whole worker down.
            master.requeue(
                task, lost_after=self.env.now - started, reason="worker-crash"
            )
            self._crash = exc
            self._shutdown(exclude=me)
            return
        finally:
            self._free += task.cores
            self._runners[:] = [r for r in self._runners if r is not me]
            # Freed cores may satisfy a filtered get blocked upstream.
            self._source.retrigger()
        if result is None:
            # Fast abort: the master flagged this task a straggler.
            master.requeue(
                task, lost_after=self.env.now - started, reason="fast-abort"
            )
            return
        self.tasks_done += 1
        master.task_finished(result, host=self.machine.name)

    def _shutdown(self, exclude=None) -> None:
        """Stop the dispatcher and every other runner (worker crash)."""
        self._dying = True
        if self._dispatcher is not None and self._dispatcher.is_alive:
            self._dispatcher.interrupt("worker-crashed")
        for r in list(self._runners):
            if r is not exclude and r.is_alive:
                r.interrupt("worker-crashed")

    def _execute(self, task: Task, started: float) -> "TaskResult":
        env = self.env
        # Snapshot the attempt number now: if the master requeues the
        # task while we run (eviction race), our eventual result must be
        # recognisable as stale.
        attempt = task.attempts
        # --- WQ stage-in: sandbox (cached per worker) + WQ-managed inputs.
        t0 = env.now
        tr = env.spans
        nbytes = task.wq_input_bytes
        if task.sandbox_id not in self._sandboxes:
            nbytes += task.sandbox_bytes
        if nbytes > 0:
            span = None
            if tr is not None and task.attempt_span is not None and task.attempts == attempt:
                span = tr.start(
                    "wq.stage_in",
                    parent=task.attempt_span,
                    activate=True,
                    nbytes=nbytes,
                )
            yield from ship(
                self._upstream_nic, self.machine.nic, nbytes, cls=TrafficClass.STAGING
            )
            if span is not None:
                tr.end(span)
        self._sandboxes.add(task.sandbox_id)
        stage_in = env.now - t0

        # --- run the application wrapper as an interruptible process so
        # the master's fast-abort (straggler mitigation) can stop it.
        task.state = TaskState.RUNNING
        abort = env.event()
        self.master.register_running(task, abort)
        proc = env.process(
            self._run_wrapper(task), name=f"{self.name}-task{task.task_id}"
        )
        try:
            outcome = yield proc | abort
        except BaseException as exc:
            # Eviction interrupt or executor crash: stop the wrapper
            # process (cancelling its transfers) before propagating.
            if proc.is_alive:
                proc.interrupt("worker-gone")
                # A generator being finalised (GeneratorExit) must not
                # yield again; in every other case wait for the wrapper
                # to unwind so its transfers are cancelled.
                if not isinstance(exc, GeneratorExit):
                    try:
                        yield proc
                    except Exception:
                        pass
            self.master.unregister_running(task)
            raise
        self.master.unregister_running(task)
        if proc not in outcome:
            # Fast-aborted by the master.
            if proc.is_alive:
                proc.interrupt("fast-abort")
                try:
                    yield proc
                except Exception:
                    pass
            return None
        exit_code, segments, report = outcome[proc]

        # --- WQ stage-out: whatever the executor left for WQ to move.
        t0 = env.now
        out_bytes = task.wq_output_bytes if exit_code == ExitCode.SUCCESS else 0.0
        if out_bytes > 0:
            span = None
            if tr is not None and task.attempt_span is not None and task.attempts == attempt:
                span = tr.start(
                    "wq.stage_out",
                    parent=task.attempt_span,
                    activate=True,
                    nbytes=out_bytes,
                )
            try:
                yield from ship(
                    self.machine.nic,
                    self._upstream_nic,
                    out_bytes,
                    cls=TrafficClass.OUTPUT,
                    expect_digest=report.output_checksum if report else "",
                    payload_digest=task.wq_output_checksum,
                    name=f"task-{task.task_id}-output",
                )
            except IntegrityError:
                # The staged output did not survive the hop intact: a
                # retryable stage-out failure, not a worker crash.
                exit_code = ExitCode.STAGE_OUT_FAILED
                if report is not None:
                    report.exit_code = ExitCode.STAGE_OUT_FAILED
                    report.annotations["failed_segment"] = "wq_stage_out"
            if span is not None:
                tr.end(
                    span,
                    status="ok" if exit_code == ExitCode.SUCCESS else "integrity-failed",
                )
        stage_out = env.now - t0

        return TaskResult(
            task=task,
            exit_code=exit_code,
            worker_id=self.name,
            submitted=task.submitted if task.submitted is not None else started,
            started=started,
            finished=env.now,
            segments=dict(segments),
            wq_stage_in=stage_in,
            wq_stage_out=stage_out,
            report=report,
            attempt=attempt,
        )

    def _run_wrapper(self, task: Task):
        result = yield from task.executor(self, task)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Worker {self.name} cores={self.cores} on {self.machine.name}>"
