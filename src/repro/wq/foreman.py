"""Work Queue foremen (paper §3).

A single master eventually saturates on the number of workers it can
drive — mostly on sandbox stage-in traffic.  Foremen form an
intermediate rank: each connects to the master like a big worker, keeps
a buffer of tasks, caches sandboxes so the master ships each sandbox
once per *foreman* rather than once per *worker*, and serves its own
set of workers.  The paper runs four foremen with eight-core workers.
"""

from __future__ import annotations

from itertools import count
from typing import Optional, Set

from ..desim import Environment, FilterStore, Topics
from ..net import Fabric, TrafficClass
from .master import Master
from .transfer import ship

__all__ = ["Foreman"]

GBIT = 125_000_000.0


class Foreman:
    """An intermediate task distributor between master and workers."""

    _ids = count()

    def __init__(
        self,
        env: Environment,
        upstream,
        buffer_depth: int = 64,
        nic_bandwidth: float = 10 * GBIT,
        name: Optional[str] = None,
        fabric: Optional[Fabric] = None,
    ):
        """*upstream* is the master or another foreman — the paper's
        "hierarchy of arbitrary width and depth"."""
        if buffer_depth <= 0:
            raise ValueError("buffer_depth must be positive")
        self.env = env
        self.upstream = upstream
        #: The root master, however deep this foreman sits.
        self.master: Master = getattr(upstream, "master", upstream)
        self.name = name or f"foreman{next(self._ids):02d}"
        self.fabric = fabric if fabric is not None else Fabric(env)
        self.nic = self.fabric.attach(
            f"{self.name}.nic", nic_bandwidth, node=self.name
        )
        #: Bounded buffer: the pump blocks when it is full, giving
        #: natural flow control against the upstream.
        self.ready = FilterStore(env, capacity=buffer_depth)
        self._sandboxes: Set[str] = set()
        self.tasks_relayed = 0
        self._p_relay = env.bus.port(Topics.FOREMAN_RELAY)
        self._pump_proc = env.process(self._pump(), name=f"{self.name}-pump")

    def _pump(self):
        """Pull tasks from the upstream rank and buffer them locally."""
        upstream = self.upstream
        master = self.master
        while True:
            get = upstream.ready.get()
            outcome = yield get | master.drain_event
            if get not in outcome:
                get.cancel()
                return
            task = outcome[get]
            # Ship the task (and its sandbox, once) upstream → foreman.
            nbytes = task.wq_input_bytes
            if task.sandbox_id not in self._sandboxes:
                nbytes += task.sandbox_bytes
                self._sandboxes.add(task.sandbox_id)
            if master.dispatch_latency > 0:
                yield self.env.timeout(master.dispatch_latency)
            yield from ship(upstream.nic, self.nic, nbytes, cls=TrafficClass.STAGING)
            self.tasks_relayed += 1
            port = self._p_relay
            if port.on:
                port.emit(
                    foreman=self.name,
                    task_id=task.task_id,
                    nbytes=nbytes,
                    buffered=len(self.ready.items) + 1,
                )
            yield self.ready.put(task)

    def has_sandbox(self, sandbox_id: str) -> bool:
        return sandbox_id in self._sandboxes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Foreman {self.name} buffered={len(self.ready.items)}>"
