"""``repro.wq`` — the Work Queue distributed execution framework.

A per-user master/worker system (paper §3): the master holds a queue of
tasks; workers — possibly behind an intermediate rank of foremen — pull
tasks, execute them, and return results.  Workers manage multiple cores
with a shared sandbox cache and survive on non-dedicated machines where
eviction can strike at any yield point.
"""

from .task import Task, TaskResult, TaskState
from .recovery import RecoveryPolicy
from .master import Master
from .foreman import Foreman
from .worker import Worker
from .transfer import ship

__all__ = [
    "Task",
    "TaskResult",
    "TaskState",
    "RecoveryPolicy",
    "Master",
    "Foreman",
    "Worker",
    "ship",
]
