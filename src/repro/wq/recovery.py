"""Active recovery policy for the Work Queue master.

On a non-dedicated cluster failure is the steady state: workers are
evicted without warning, misconfigured "black-hole" nodes fast-fail
every task they touch, and infrastructure services crash and return.
The paper's operators closed these loops by hand with the §5
troubleshooting tooling; :class:`RecoveryPolicy` encodes the same
responses as scheduler policy:

* **retry budgets** — a task lost to eviction (or a fast-abort) is
  re-queued at most ``max_attempts`` times, then declared failed and
  surfaced as a ``task.exhausted`` bus event plus a normal failed
  result, so the scheduler above can re-package the work instead of
  cycling one doomed task forever;
* **exponential backoff** — re-queued tasks wait
  ``backoff_base * backoff_factor**(attempts-1)`` seconds (capped at
  ``backoff_cap``) before re-entering the ready queue, so a task
  bounced off a sick worker does not land straight back on it;
* **host blacklisting** — the master tracks the per-host failure rate
  of returned results and stops dispatching to hosts that fail more
  than ``blacklist_threshold`` of at least ``blacklist_min_samples``
  tasks (the automated version of the paper's "identify misconfigured
  nodes" drill-down).  Blacklists expire after
  ``blacklist_duration`` seconds, or last the whole run when ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RecoveryPolicy"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs for the master's active failure-recovery behaviour."""

    #: Give up on a task after this many lost attempts (None = retry
    #: forever, the pre-policy behaviour).
    max_attempts: Optional[int] = 50
    #: First requeue delay in seconds (0 disables backoff entirely).
    backoff_base: float = 5.0
    #: Multiplier applied per additional lost attempt.
    backoff_factor: float = 2.0
    #: Ceiling on the requeue delay.
    backoff_cap: float = 300.0
    #: Blacklist a host once its failure rate reaches this fraction
    #: (None disables blacklisting).
    blacklist_threshold: Optional[float] = None
    #: Results observed from a host before its rate is trusted.
    blacklist_min_samples: int = 10
    #: Seconds a blacklist entry lasts (None = the rest of the run).
    blacklist_duration: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts is not None and self.max_attempts <= 0:
            raise ValueError("max_attempts must be positive or None")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.blacklist_threshold is not None and not (
            0 < self.blacklist_threshold <= 1
        ):
            raise ValueError("blacklist_threshold must lie in (0, 1]")
        if self.blacklist_min_samples <= 0:
            raise ValueError("blacklist_min_samples must be positive")
        if self.blacklist_duration is not None and self.blacklist_duration <= 0:
            raise ValueError("blacklist_duration must be positive or None")

    def requeue_delay(self, attempts: int) -> float:
        """Backoff before attempt *attempts* + 1 re-enters the queue."""
        if self.backoff_base <= 0 or attempts <= 0:
            return 0.0
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_factor ** (attempts - 1),
        )

    def exhausted(self, attempts: int) -> bool:
        """True when *attempts* lost attempts spend the retry budget."""
        return self.max_attempts is not None and attempts >= self.max_attempts
