"""The Work Queue master.

The master owns the ready-task queue, hands tasks to workers (or
foremen) that pull from it, receives results, and re-queues tasks lost
to eviction.  Lobster sits above the master: it keeps the ready queue
topped up (a ~400-task buffer in the paper) and consumes results as they
arrive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.report import ExitCode
from ..desim import Environment, FilterStore, Store, Topics
from ..net import Fabric
from .recovery import RecoveryPolicy
from .task import Task, TaskResult, TaskState

__all__ = ["Master"]

GBIT = 125_000_000.0


class Master:
    """Coordinates task distribution and result collection."""

    def __init__(
        self,
        env: Environment,
        name: str = "master",
        nic_bandwidth: float = 10 * GBIT,
        dispatch_latency: float = 0.05,
        fabric=None,
        recovery: Optional[RecoveryPolicy] = None,
    ):
        self.env = env
        self.name = name
        self.fabric = fabric if fabric is not None else Fabric(env)
        self.nic = self.fabric.attach(f"{name}.nic", nic_bandwidth, node=name)
        self.dispatch_latency = dispatch_latency
        #: Active failure-recovery behaviour (retry budget, backoff,
        #: host blacklisting); defaults are deliberately gentle.
        self.recovery = recovery if recovery is not None else RecoveryPolicy()
        #: Tasks ready for dispatch (workers/foremen pull from here).
        #: A FilterStore so multi-core-aware workers can pull only tasks
        #: that fit their free cores.
        self.ready = FilterStore(env)
        #: Completed (or definitively failed) task results.
        self.results = Store(env)
        #: Set when the workload is over; workers drain and exit.
        self.drain_event = env.event()
        # bookkeeping
        self.workers_connected = 0
        self.tasks_submitted = 0
        self.tasks_running = 0
        self.tasks_returned = 0
        self.tasks_requeued = 0
        #: (time, running) samples for concurrency timelines.
        self.running_samples: List[tuple] = []
        #: (time, workers connected) samples (§5's overview panel).
        self.worker_samples: List[tuple] = []
        self.cores_connected = 0
        #: (time, cores connected) samples for pool-occupancy reporting.
        self.core_samples: List[tuple] = []
        # ---- fast abort (straggler mitigation) ----
        #: task -> (started, abort_event) for tasks currently executing.
        self._running_registry: Dict[Task, tuple] = {}
        self._runtime_sum = 0.0
        self._runtime_n = 0
        self.fast_abort_multiplier: Optional[float] = None
        self.tasks_aborted = 0
        # ---- active recovery (retry budgets, blacklisting) ----
        self.tasks_exhausted = 0
        #: host (machine name) -> [succeeded, failed] result counts.
        self._host_stats: Dict[str, List[int]] = {}
        #: host -> simulation time the blacklist entry was created.
        self.blacklisted: Dict[str, float] = {}
        self.hosts_blacklisted = 0  #: total entries ever created
        #: paroles granted when the blacklist condemned every known host
        #: (a pool-wide transient, not a black hole).
        self.hosts_paroled = 0
        # ---- exactly-once accounting ----
        self.tasks_duplicate = 0  #: late/duplicate results dropped
        # ---- crash accounting (MasterCrash fault) ----
        self.crashed = False
        self.tasks_orphaned = 0  #: ready + in-flight attempts lost in a crash
        self.results_orphaned = 0  #: results that arrived after the crash
        #: Callbacks observing every accepted result (see add_result_tap).
        self.result_taps: List = []
        # ---- per-topic fast paths ----
        # The master narrates every task lifecycle transition; with tens
        # of thousands of tasks these are the densest domain topics in a
        # run, so each site guards on its compiled port and builds no
        # payload when the topic is unmatched.
        bus = env.bus
        self._p_submit = bus.port(Topics.TASK_SUBMIT)
        self._p_start = bus.port(Topics.TASK_START)
        self._p_done = bus.port(Topics.TASK_DONE)
        self._p_requeue = bus.port(Topics.TASK_REQUEUE)
        self._p_abort = bus.port(Topics.TASK_ABORT)
        self._p_exhausted = bus.port(Topics.TASK_EXHAUSTED)
        self._p_duplicate = bus.port(Topics.TASK_DUPLICATE)
        self._p_register = bus.port(Topics.WORKER_REGISTER)
        self._p_unregister = bus.port(Topics.WORKER_UNREGISTER)
        self._p_blacklist = bus.port(Topics.HOST_BLACKLIST)

    # -- Lobster-facing API -----------------------------------------------------
    def submit(self, task: Task) -> None:
        """Queue *task* for dispatch."""
        task.state = TaskState.READY
        task.submitted = self.env.now
        self.tasks_submitted += 1
        if self.env.spans is not None and task.trace is not None:
            self._trace_attempt(task)
        port = self._p_submit
        if port.on:
            port.emit(
                task_id=task.task_id,
                category=task.category,
                ready=len(self.ready.items) + 1,
            )
        self.ready.put(task)

    def _trace_attempt(self, task: Task) -> None:
        """Open the next attempt span (plus its queue-wait child) for a
        traced task.  Retries link back to the attempt they replace."""
        tr = self.env.spans
        task.attempt_span = tr.attempt(
            task.trace,
            task_id=task.task_id,
            category=task.category,
            attempt=task.attempts + 1,
        )
        task.queue_span = tr.start("queue.wait", parent=task.attempt_span)

    def _trace_attempt_end(self, task: Task, status: str, **attrs) -> None:
        tr = self.env.spans
        if tr is not None and task.attempt_span is not None:
            tr.end(task.attempt_span, status=status, **attrs)
            task.attempt_span = None
            task.queue_span = None

    def wait(self):
        """DES event: the next available :class:`TaskResult`."""
        return self.results.get()

    @property
    def ready_count(self) -> int:
        return len(self.ready.items)

    @property
    def draining(self) -> bool:
        return self.drain_event.triggered

    def drain(self) -> None:
        """Signal end of workload; idle workers shut down cleanly."""
        if not self.drain_event.triggered:
            self.drain_event.succeed()

    def crash(self) -> int:
        """The master process dies where it stands (a MasterCrash fault).

        Work Queue state is not durable: the ready queue and every
        in-flight attempt are orphaned, and any result still arriving is
        dropped unprocessed.  A warm-restarted master re-derives the lost
        work from the Lobster DB — re-attachment happens at the tasklet
        layer, not here.  Returns the number of orphaned attempts.
        """
        orphaned = self.tasks_running + len(self.ready.items)
        self.crashed = True
        self.tasks_orphaned = orphaned
        self.ready.items.clear()
        self.drain()
        return orphaned

    # -- worker-facing API --------------------------------------------------------
    def register(self, cores: int = 1) -> None:
        self.workers_connected += 1
        self.cores_connected += cores
        self.worker_samples.append((self.env.now, self.workers_connected))
        self.core_samples.append((self.env.now, self.cores_connected))
        port = self._p_register
        if port.on:
            port.emit(
                workers=self.workers_connected,
                cores=self.cores_connected,
            )

    def unregister(self, cores: int = 1) -> None:
        self.workers_connected -= 1
        self.cores_connected -= cores
        self.worker_samples.append((self.env.now, self.workers_connected))
        self.core_samples.append((self.env.now, self.cores_connected))
        port = self._p_unregister
        if port.on:
            port.emit(
                workers=self.workers_connected,
                cores=self.cores_connected,
            )

    def task_started(self) -> None:
        self.tasks_running += 1
        self.running_samples.append((self.env.now, self.tasks_running))
        port = self._p_start
        if port.on:
            port.emit(running=self.tasks_running)

    def task_finished(self, result: TaskResult, host: Optional[str] = None) -> None:
        # Late-result guard: a result for a task that was already
        # completed, or whose attempt predates a requeue, is a duplicate
        # delivery from the at-least-once substrate — drop it before it
        # perturbs any accounting.
        task = result.task
        if self.crashed:
            # Nobody is listening: the scheduler died.  The attempt's
            # output was never committed, so the restarted master will
            # re-derive it from the DB.
            self.results_orphaned += 1
            return
        stale = task.result is not None or (
            result.attempt is not None and result.attempt < task.attempts
        )
        if stale:
            self.tasks_duplicate += 1
            port = self._p_duplicate
            if port.on:
                port.emit(
                    task_id=task.task_id,
                    category=task.category,
                    source="master",
                    attempt=result.attempt,
                    attempts=task.attempts,
                    workflow=getattr(task.payload, "workflow", None),
                )
            return
        self.tasks_running -= 1
        self.running_samples.append((self.env.now, self.tasks_running))
        self.tasks_returned += 1
        port = self._p_done
        if port.on:
            port.emit(
                task_id=result.task.task_id,
                category=result.task.category,
                exit_code=int(result.exit_code),
                ok=result.succeeded,
                running=self.tasks_running,
            )
        if result.succeeded and result.task.category == "analysis":
            self._runtime_sum += result.wall_time
            self._runtime_n += 1
        result.task.state = (
            TaskState.DONE if result.succeeded else TaskState.FAILED
        )
        result.task.result = result
        self._trace_attempt_end(
            task,
            "ok" if result.succeeded else "failed",
            exit_code=int(result.exit_code),
        )
        if host is not None:
            self._observe_host(host, result.succeeded)
        for tap in self.result_taps:
            tap(result)
        self.results.put(result)

    def add_result_tap(self, tap) -> None:
        """Observe every accepted (non-duplicate) result, pre-delivery.

        Used by instrumentation and fault injection (e.g. duplicate
        delivery replays a captured result).  Taps must not mutate the
        result.
        """
        self.result_taps.append(tap)

    def cancel(self, task: Task) -> bool:
        """Withdraw a task that is still waiting in the ready queue.

        Returns True when the task was found and removed; a task already
        dispatched to a worker cannot be cancelled this way (its result
        will still arrive and should be ignored by the caller).
        """
        try:
            self.ready.items.remove(task)
        except ValueError:
            return False
        task.state = TaskState.CANCELLED
        self.tasks_submitted -= 1
        self._trace_attempt_end(task, "cancelled")
        return True

    def requeue(
        self, task: Task, lost_after: float = 0.0, reason: str = "eviction"
    ) -> None:
        """Return a lost task (eviction, fast-abort, worker crash) to the
        ready queue — after the policy's backoff delay, and only while
        the task's retry budget lasts; an exhausted task is declared
        failed instead and surfaces as a normal (failed) result."""
        if self.tasks_running > 0:
            self.tasks_running -= 1
            self.running_samples.append((self.env.now, self.tasks_running))
        task.attempts += 1
        task.lost_time += lost_after
        task.state = TaskState.LOST
        self._trace_attempt_end(task, reason, lost_after=lost_after)
        if self.recovery.exhausted(task.attempts):
            self._exhaust(task, reason)
            return
        delay = self.recovery.requeue_delay(task.attempts)
        self.tasks_requeued += 1
        port = self._p_requeue
        if port.on:
            port.emit(
                task_id=task.task_id,
                attempts=task.attempts,
                lost_after=lost_after,
                reason=reason,
                delay=delay,
                running=self.tasks_running,
            )
        if self.env.spans is not None and task.trace is not None:
            self._trace_attempt(task)
            if delay > 0:
                self.env.spans.annotate(task.queue_span, backoff=delay)
        if delay > 0:
            self.env.process(
                self._delayed_requeue(task, delay),
                name=f"{self.name}-requeue{task.task_id}",
            )
        else:
            self.ready.put(task)
            task.state = TaskState.READY

    def _delayed_requeue(self, task: Task, delay: float):
        yield self.env.timeout(delay)
        self.ready.put(task)
        task.state = TaskState.READY

    def _exhaust(self, task: Task, reason: str) -> None:
        """Spend the task's retry budget: fail it and emit a result."""
        task.state = TaskState.FAILED
        self.tasks_exhausted += 1
        port = self._p_exhausted
        if port.on:
            port.emit(
                task_id=task.task_id,
                category=task.category,
                attempts=task.attempts,
                lost_time=task.lost_time,
                reason=reason,
                workflow=getattr(task.payload, "workflow", None),
            )
        now = self.env.now
        result = TaskResult(
            task=task,
            exit_code=ExitCode.EVICTED,
            worker_id="",
            submitted=task.submitted if task.submitted is not None else now,
            started=now,
            finished=now,
        )
        task.result = result
        self.tasks_returned += 1
        self.results.put(result)

    # -- host blacklisting (closing the paper's §5 black-hole loop) ----------
    def is_blacklisted(self, host: Optional[str]) -> bool:
        return host in self.blacklisted

    def _observe_host(self, host: str, succeeded: bool) -> None:
        policy = self.recovery
        if policy.blacklist_threshold is None or host in self.blacklisted:
            return
        stats = self._host_stats.get(host)
        if stats is None:
            stats = self._host_stats[host] = [0, 0]
        stats[0 if succeeded else 1] += 1
        total = stats[0] + stats[1]
        if total < policy.blacklist_min_samples:
            return
        rate = stats[1] / total
        if rate < policy.blacklist_threshold:
            return
        self.blacklisted[host] = self.env.now
        self.hosts_blacklisted += 1
        port = self._p_blacklist
        if port.on:
            port.emit(
                host=host,
                active=True,
                failure_rate=rate,
                samples=total,
                blacklisted=len(self.blacklisted),
            )
        if policy.blacklist_duration is not None:
            self.env.process(
                self._unblacklist_later(host, policy.blacklist_duration),
                name=f"{self.name}-unblacklist-{host}",
            )
        elif all(h in self.blacklisted for h in self._host_stats):
            # Safety valve: the blacklist protects throughput, but a
            # pool-wide transient (e.g. a WAN outage failing every
            # stage-in) can condemn every known host — which wedges the
            # campaign forever.  Parole the oldest entry after a backoff
            # so the pool gets a fresh look once the storm passes.
            oldest = min(self.blacklisted, key=self.blacklisted.get)
            self.hosts_paroled += 1
            self.env.process(
                self._unblacklist_later(oldest, policy.backoff_cap),
                name=f"{self.name}-parole-{oldest}",
            )

    def _unblacklist_later(self, host: str, duration: float):
        yield self.env.timeout(duration)
        if self.blacklisted.pop(host, None) is None:
            return
        self._host_stats.pop(host, None)  # fresh slate on return
        port = self._p_blacklist
        if port.on:
            port.emit(
                host=host,
                active=False,
                blacklisted=len(self.blacklisted),
            )
        # A pending filtered get from the unblacklisted host's worker
        # re-evaluates only on the next store trigger; nudge it now.
        self.ready.retrigger()

    # -- fast abort (Work Queue's straggler mitigation) ----------------------
    def enable_fast_abort(
        self,
        multiplier: float = 3.0,
        check_interval: float = 60.0,
        min_samples: int = 10,
    ) -> None:
        """Abort analysis tasks running longer than *multiplier* x the
        mean successful runtime; Work Queue re-queues them elsewhere.

        This is Work Queue's classic long-tail defence: one worker on a
        sick or overloaded node cannot hold the whole workload hostage.
        """
        if multiplier <= 1.0:
            raise ValueError("multiplier must exceed 1")
        if check_interval <= 0 or min_samples <= 0:
            raise ValueError("check_interval and min_samples must be positive")
        if self.fast_abort_multiplier is not None:
            raise RuntimeError("fast abort already enabled")
        self.fast_abort_multiplier = multiplier
        self.env.process(
            self._fast_abort_monitor(check_interval, min_samples),
            name=f"{self.name}-fast-abort",
        )

    def mean_runtime(self) -> Optional[float]:
        return self._runtime_sum / self._runtime_n if self._runtime_n else None

    def register_running(self, task: Task, abort_event) -> None:
        self._running_registry[task] = (self.env.now, abort_event)

    def unregister_running(self, task: Task) -> None:
        self._running_registry.pop(task, None)

    def _fast_abort_monitor(self, interval: float, min_samples: int):
        while not self.drain_event.triggered:
            tick = self.env.timeout(interval)
            yield tick | self.drain_event
            if self.drain_event.triggered:
                return
            if self._runtime_n < min_samples:
                continue
            threshold = self.fast_abort_multiplier * self.mean_runtime()
            now = self.env.now
            for task, (started, abort) in list(self._running_registry.items()):
                if task.category != "analysis":
                    continue
                if now - started > threshold and not abort.triggered:
                    abort.succeed()
                    self.tasks_aborted += 1
                    port = self._p_abort
                    if port.on:
                        port.emit(
                            task_id=task.task_id,
                            ran_for=now - started,
                            threshold=threshold,
                        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Master {self.name} ready={self.ready_count} "
            f"running={self.tasks_running} workers={self.workers_connected}>"
        )
