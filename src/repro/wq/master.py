"""The Work Queue master.

The master owns the ready-task queue, hands tasks to workers (or
foremen) that pull from it, receives results, and re-queues tasks lost
to eviction.  Lobster sits above the master: it keeps the ready queue
topped up (a ~400-task buffer in the paper) and consumes results as they
arrive.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..desim import Environment, FilterStore, Store, Topics
from ..net import Fabric
from .task import Task, TaskResult, TaskState

__all__ = ["Master"]

GBIT = 125_000_000.0


class Master:
    """Coordinates task distribution and result collection."""

    def __init__(
        self,
        env: Environment,
        name: str = "master",
        nic_bandwidth: float = 10 * GBIT,
        dispatch_latency: float = 0.05,
        fabric=None,
    ):
        self.env = env
        self.name = name
        self.fabric = fabric if fabric is not None else Fabric(env)
        self.nic = self.fabric.attach(f"{name}.nic", nic_bandwidth, node=name)
        self.dispatch_latency = dispatch_latency
        #: Tasks ready for dispatch (workers/foremen pull from here).
        #: A FilterStore so multi-core-aware workers can pull only tasks
        #: that fit their free cores.
        self.ready = FilterStore(env)
        #: Completed (or definitively failed) task results.
        self.results = Store(env)
        #: Set when the workload is over; workers drain and exit.
        self.drain_event = env.event()
        # bookkeeping
        self.workers_connected = 0
        self.tasks_submitted = 0
        self.tasks_running = 0
        self.tasks_returned = 0
        self.tasks_requeued = 0
        #: (time, running) samples for concurrency timelines.
        self.running_samples: List[tuple] = []
        #: (time, workers connected) samples (§5's overview panel).
        self.worker_samples: List[tuple] = []
        self.cores_connected = 0
        #: (time, cores connected) samples for pool-occupancy reporting.
        self.core_samples: List[tuple] = []
        # ---- fast abort (straggler mitigation) ----
        #: task -> (started, abort_event) for tasks currently executing.
        self._running_registry: Dict[Task, tuple] = {}
        self._runtime_sum = 0.0
        self._runtime_n = 0
        self.fast_abort_multiplier: Optional[float] = None
        self.tasks_aborted = 0

    # -- Lobster-facing API -----------------------------------------------------
    def submit(self, task: Task) -> None:
        """Queue *task* for dispatch."""
        task.state = TaskState.READY
        task.submitted = self.env.now
        self.tasks_submitted += 1
        bus = self.env.bus
        if bus:
            bus.publish(
                Topics.TASK_SUBMIT,
                task_id=task.task_id,
                category=task.category,
                ready=len(self.ready.items) + 1,
            )
        self.ready.put(task)

    def wait(self):
        """DES event: the next available :class:`TaskResult`."""
        return self.results.get()

    @property
    def ready_count(self) -> int:
        return len(self.ready.items)

    @property
    def draining(self) -> bool:
        return self.drain_event.triggered

    def drain(self) -> None:
        """Signal end of workload; idle workers shut down cleanly."""
        if not self.drain_event.triggered:
            self.drain_event.succeed()

    # -- worker-facing API --------------------------------------------------------
    def register(self, cores: int = 1) -> None:
        self.workers_connected += 1
        self.cores_connected += cores
        self.worker_samples.append((self.env.now, self.workers_connected))
        self.core_samples.append((self.env.now, self.cores_connected))
        bus = self.env.bus
        if bus:
            bus.publish(
                Topics.WORKER_REGISTER,
                workers=self.workers_connected,
                cores=self.cores_connected,
            )

    def unregister(self, cores: int = 1) -> None:
        self.workers_connected -= 1
        self.cores_connected -= cores
        self.worker_samples.append((self.env.now, self.workers_connected))
        self.core_samples.append((self.env.now, self.cores_connected))
        bus = self.env.bus
        if bus:
            bus.publish(
                Topics.WORKER_UNREGISTER,
                workers=self.workers_connected,
                cores=self.cores_connected,
            )

    def task_started(self) -> None:
        self.tasks_running += 1
        self.running_samples.append((self.env.now, self.tasks_running))
        bus = self.env.bus
        if bus:
            bus.publish(Topics.TASK_START, running=self.tasks_running)

    def task_finished(self, result: TaskResult) -> None:
        self.tasks_running -= 1
        self.running_samples.append((self.env.now, self.tasks_running))
        self.tasks_returned += 1
        bus = self.env.bus
        if bus:
            bus.publish(
                Topics.TASK_DONE,
                task_id=result.task.task_id,
                category=result.task.category,
                exit_code=int(result.exit_code),
                ok=result.succeeded,
                running=self.tasks_running,
            )
        if result.succeeded and result.task.category == "analysis":
            self._runtime_sum += result.wall_time
            self._runtime_n += 1
        result.task.state = (
            TaskState.DONE if result.succeeded else TaskState.FAILED
        )
        result.task.result = result
        self.results.put(result)

    def cancel(self, task: Task) -> bool:
        """Withdraw a task that is still waiting in the ready queue.

        Returns True when the task was found and removed; a task already
        dispatched to a worker cannot be cancelled this way (its result
        will still arrive and should be ignored by the caller).
        """
        try:
            self.ready.items.remove(task)
        except ValueError:
            return False
        task.state = "cancelled"
        self.tasks_submitted -= 1
        return True

    def requeue(self, task: Task, lost_after: float = 0.0) -> None:
        """Return a task lost to eviction to the ready queue."""
        if self.tasks_running > 0:
            self.tasks_running -= 1
            self.running_samples.append((self.env.now, self.tasks_running))
        task.attempts += 1
        task.lost_time += lost_after
        task.state = TaskState.LOST
        self.tasks_requeued += 1
        bus = self.env.bus
        if bus:
            bus.publish(
                Topics.TASK_REQUEUE,
                task_id=task.task_id,
                attempts=task.attempts,
                lost_after=lost_after,
                running=self.tasks_running,
            )
        self.ready.put(task)
        task.state = TaskState.READY

    # -- fast abort (Work Queue's straggler mitigation) ----------------------
    def enable_fast_abort(
        self,
        multiplier: float = 3.0,
        check_interval: float = 60.0,
        min_samples: int = 10,
    ) -> None:
        """Abort analysis tasks running longer than *multiplier* x the
        mean successful runtime; Work Queue re-queues them elsewhere.

        This is Work Queue's classic long-tail defence: one worker on a
        sick or overloaded node cannot hold the whole workload hostage.
        """
        if multiplier <= 1.0:
            raise ValueError("multiplier must exceed 1")
        if check_interval <= 0 or min_samples <= 0:
            raise ValueError("check_interval and min_samples must be positive")
        if self.fast_abort_multiplier is not None:
            raise RuntimeError("fast abort already enabled")
        self.fast_abort_multiplier = multiplier
        self.env.process(
            self._fast_abort_monitor(check_interval, min_samples),
            name=f"{self.name}-fast-abort",
        )

    def mean_runtime(self) -> Optional[float]:
        return self._runtime_sum / self._runtime_n if self._runtime_n else None

    def register_running(self, task: Task, abort_event) -> None:
        self._running_registry[task] = (self.env.now, abort_event)

    def unregister_running(self, task: Task) -> None:
        self._running_registry.pop(task, None)

    def _fast_abort_monitor(self, interval: float, min_samples: int):
        while not self.drain_event.triggered:
            tick = self.env.timeout(interval)
            yield tick | self.drain_event
            if self.drain_event.triggered:
                return
            if self._runtime_n < min_samples:
                continue
            threshold = self.fast_abort_multiplier * self.mean_runtime()
            now = self.env.now
            for task, (started, abort) in list(self._running_registry.items()):
                if task.category != "analysis":
                    continue
                if now - started > threshold and not abort.triggered:
                    abort.succeed()
                    self.tasks_aborted += 1
                    bus = self.env.bus
                    if bus:
                        bus.publish(
                            Topics.TASK_ABORT,
                            task_id=task.task_id,
                            ran_for=now - started,
                            threshold=threshold,
                        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Master {self.name} ready={self.ready_count} "
            f"running={self.tasks_running} workers={self.workers_connected}>"
        )
