"""Work Queue task objects and results.

A :class:`Task` is what the master ships to a worker: a sandbox (the
user's wrapper + configuration, cached per worker), optional input data
to be moved by Work Queue itself, and an *executor* — the code that runs
on the worker.  Work Queue is application-agnostic: Lobster supplies the
executor (its instrumented wrapper) and an opaque *payload* describing
which tasklets to process.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Any, Callable, Dict, Generator, Optional, TYPE_CHECKING

from ..analysis.report import ExitCode, FrameworkReport

if TYPE_CHECKING:  # pragma: no cover
    from .worker import Worker

__all__ = ["Task", "TaskResult", "TaskState"]


class TaskState:
    """Task life-cycle states (string constants, stored in the Lobster DB)."""

    READY = "ready"
    DISPATCHED = "dispatched"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    LOST = "lost"  #: worker evicted; task will be retried
    CANCELLED = "cancelled"  #: withdrawn from the ready queue by the user

    ALL = (READY, DISPATCHED, RUNNING, DONE, FAILED, LOST, CANCELLED)


@dataclass
class TaskResult:
    """Everything the master learns when a task comes back."""

    task: "Task"
    exit_code: ExitCode
    worker_id: str
    submitted: float
    started: float
    finished: float
    #: Wrapper segment durations, e.g. {"setup": 120.0, "cpu": 3600.0}.
    segments: Dict[str, float] = field(default_factory=dict)
    #: Work-Queue-level transfer times (not visible to the wrapper).
    wq_stage_in: float = 0.0
    wq_stage_out: float = 0.0
    report: Optional[FrameworkReport] = None
    #: Which attempt of the task produced this result.  The master drops
    #: results whose attempt predates a requeue (late duplicates); None
    #: means the producer predates attempt tracking (treated as current).
    attempt: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        return self.exit_code == ExitCode.SUCCESS

    @property
    def wall_time(self) -> float:
        return self.finished - self.started

    @property
    def turnaround(self) -> float:
        return self.finished - self.submitted


Executor = Callable[["Worker", "Task"], Generator]


class Task:
    """A unit of work dispatched by the master to one worker core."""

    _ids = count(1)

    @classmethod
    def seed_ids(cls, start: int) -> None:
        """Ensure future task ids start at or above *start*.

        A warm-restarted master seeds this from the Lobster DB's highest
        recorded task id: output names embed the task id, so reusing one
        would collide with committed ledger entries and the duplicate
        gate would silently drop the fresh work.
        """
        nxt = next(cls._ids)
        cls._ids = count(max(nxt, int(start)))

    def __init__(
        self,
        executor: Executor,
        payload: Any = None,
        sandbox_bytes: float = 50e6,
        sandbox_id: str = "sandbox-v1",
        wq_input_bytes: float = 0.0,
        wq_output_bytes: float = 0.0,
        category: str = "analysis",
        cores: int = 1,
    ):
        if sandbox_bytes < 0 or wq_input_bytes < 0 or wq_output_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.task_id = next(Task._ids)
        self.executor = executor
        self.payload = payload
        self.sandbox_bytes = sandbox_bytes
        self.sandbox_id = sandbox_id
        self.wq_input_bytes = wq_input_bytes
        self.wq_output_bytes = wq_output_bytes
        #: Digest of the WQ-moved output, set by the wrapper at stage-out.
        self.wq_output_checksum = ""
        self.category = category
        self.cores = cores
        self.state = TaskState.READY
        self.attempts = 0
        self.lost_time = 0.0  #: wall time wasted in evicted attempts
        self.submitted: Optional[float] = None
        self.result: Optional[TaskResult] = None
        #: Causal tracing (monitor.tracing): the work-unit trace id this
        #: task belongs to, and the open spans of its current attempt.
        #: All three stay None in untraced runs.
        self.trace = None
        self.attempt_span = None
        self.queue_span = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Task {self.task_id} [{self.category}] {self.state}>"
