"""Store-and-forward transfer helper for the WQ hierarchy.

A hop moves bytes off the sender's NIC and onto the receiver's NIC; the
two links are occupied concurrently (pipelined), so the hop takes as
long as the more congested side.  On interrupt (eviction) both flows are
cancelled so no phantom traffic keeps consuming capacity.
"""

from __future__ import annotations

from ..desim import FairShareLink

__all__ = ["ship"]


def ship(src: FairShareLink, dst: FairShareLink, nbytes: float):
    """DES process: move *nbytes* across one hop (src NIC → dst NIC)."""
    if nbytes <= 0:
        return 0.0
    env = src.env
    start = env.now
    a = src.transfer(nbytes)
    b = dst.transfer(nbytes)
    try:
        yield a & b
    except BaseException:
        a.cancel()
        b.cancel()
        raise
    return env.now - start
