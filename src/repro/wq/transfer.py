"""Store-and-forward transfer helper for the WQ hierarchy.

A hop moves bytes off the sender's NIC and onto the receiver's NIC.
When both NICs sit on the same shared network fabric the hop is one
end-to-end flow crossing every link between the two nodes (rack trunks,
the campus core); otherwise the two links are occupied concurrently
(pipelined), so the hop takes as long as the more congested side.  On
interrupt (eviction) the flows are cancelled so no phantom traffic
keeps consuming capacity.

When the caller supplies both the expected digest (what the producer
computed) and the delivered digest (what actually crossed the wire),
the hop verifies them after the bytes land and raises
:class:`~repro.storage.integrity.IntegrityError` on mismatch — the
WQ-level checksum check on staged outputs.

Under causal tracing the flows a hop creates attribute themselves to
the calling process's ambient span context (see
``repro.monitor.tracing``): the worker wraps its stage-in/stage-out
around :func:`ship` in ``wq.stage_in`` / ``wq.stage_out`` spans, so
every byte moved here lands under the task attempt that moved it.
"""

from __future__ import annotations

from ..net import TrafficClass, transfer_on
from ..storage.integrity import IntegrityError

__all__ = ["ship"]


def ship(
    src,
    dst,
    nbytes: float,
    cls: str = TrafficClass.STAGING,
    expect_digest: str = "",
    payload_digest: str = "",
    name: str = "",
):
    """DES process: move *nbytes* across one hop (src NIC → dst NIC)."""
    if nbytes <= 0:
        return 0.0
    env = src.env
    start = env.now
    fabric = getattr(src, "fabric", None)
    if (
        fabric is not None
        and getattr(dst, "fabric", None) is fabric
        and getattr(src, "node", None) is not None
        and getattr(dst, "node", None) is not None
    ):
        flow = fabric.transfer(nbytes, src=src.node, dst=dst.node, cls=cls)
        try:
            yield flow
        except BaseException:
            flow.cancel()
            raise
    else:
        a = transfer_on(src, nbytes, cls=cls)
        b = transfer_on(dst, nbytes, cls=cls)
        try:
            yield a & b
        except BaseException:
            a.cancel()
            b.cancel()
            raise
    if expect_digest and payload_digest and payload_digest != expect_digest:
        bus = env.bus
        if bus:
            from ..desim.bus import Topics

            # Lazy publish: the corrupt-hop payload is only built when
            # a subscriber (or the ring) actually wants integrity.*.
            bus.publish_lazy(
                Topics.INTEGRITY_CORRUPT,
                lambda: dict(
                    name=name,
                    expected=expect_digest,
                    actual=payload_digest,
                    where="wq-transfer",
                ),
            )
        raise IntegrityError(name, expect_digest, payload_digest, where="wq-transfer")
    return env.now - start
