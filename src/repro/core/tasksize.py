"""Task-size selection model (paper §4.1, Fig 3).

Lobster splits a workflow into *tasklets* (the smallest self-contained
units) and groups them into *tasks* of a user-tunable size.  Oversized
tasks lose all their work when the worker is evicted; undersized tasks
drown in per-task overhead.  The paper determines the optimal task size
with a Monte-Carlo model:

* 100,000 tasklets, completion times Gaussian(mu=10 min, sigma=5 min),
* 8,000 workers,
* 5 min per-worker (startup) overhead, 20 min per-task overhead,
* survival times drawn from an eviction model; when the accumulated time
  of a life exceeds its survival draw the worker is evicted, the work
  since the start of the current task is lost, and a fresh life (with a
  fresh startup overhead and survival draw) retries the task.

Efficiency is effective processing time / total wall time summed over
workers.  Under eviction the maximum is ~70 % near 1-hour tasks, which
the paper adopts as the practical upper bound for non-dedicated running.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..distributions import (
    EvictionModel,
    Sampler,
    TruncatedGaussianSampler,
)

__all__ = [
    "TaskSizeConfig",
    "EfficiencyResult",
    "TaskSizeSimulator",
    "optimal_task_size",
    "MINUTE",
    "HOUR",
]

MINUTE = 60.0
HOUR = 3600.0


@dataclass
class TaskSizeConfig:
    """Parameters of the Fig 3 Monte-Carlo model (defaults = paper's)."""

    n_tasklets: int = 100_000
    n_workers: int = 8_000
    tasklet_time: Sampler = field(
        default_factory=lambda: TruncatedGaussianSampler(10 * MINUTE, 5 * MINUTE)
    )
    per_worker_overhead: float = 5 * MINUTE
    per_task_overhead: float = 20 * MINUTE
    #: Give up retrying a task after this many evictions (guards against
    #: survival distributions that can never fit the task).
    max_retries: int = 1_000

    def __post_init__(self) -> None:
        if self.n_tasklets <= 0 or self.n_workers <= 0:
            raise ValueError("n_tasklets and n_workers must be positive")
        if self.per_worker_overhead < 0 or self.per_task_overhead < 0:
            raise ValueError("overheads must be non-negative")


@dataclass
class EfficiencyResult:
    """Outcome of one task-size simulation run."""

    task_length: float  #: target task processing length (seconds)
    tasklets_per_task: int
    efficiency: float  #: effective processing time / total wall time
    effective_time: float
    total_time: float
    evictions: int
    abandoned_tasks: int
    tasks_completed: int

    def __post_init__(self) -> None:
        assert 0.0 <= self.efficiency <= 1.0 + 1e-9


class TaskSizeSimulator:
    """Monte-Carlo simulator for CPU efficiency vs task length (Fig 3)."""

    def __init__(self, config: Optional[TaskSizeConfig] = None, seed: int = 0):
        self.config = config or TaskSizeConfig()
        self.seed = seed

    def tasklets_per_task(self, task_length: float) -> int:
        """Number of tasklets whose mean processing fills *task_length*."""
        mean = self.config.tasklet_time.mean()
        return max(1, int(round(task_length / mean)))

    def simulate(self, task_length: float, eviction: EvictionModel) -> EfficiencyResult:
        """Run the model for one task length under one eviction model."""
        cfg = self.config
        rng = np.random.default_rng(self.seed)
        k = self.tasklets_per_task(task_length)
        n_tasks = int(np.ceil(cfg.n_tasklets / k))

        # Pre-draw every tasklet time; task i owns slice [i*k, (i+1)*k).
        times = np.asarray(
            cfg.tasklet_time.sample(rng, n_tasks * k), dtype=float
        )
        task_work = times.reshape(n_tasks, k).sum(axis=1)

        # Distribute tasks round-robin over workers.
        n_active = min(cfg.n_workers, n_tasks)
        effective = 0.0
        total = 0.0
        evictions = 0
        abandoned = 0
        completed = 0

        for w in range(n_active):
            my_tasks = task_work[w::n_active]
            eff, tot, ev, ab, comp = self._run_worker(my_tasks, eviction, rng)
            effective += eff
            total += tot
            evictions += ev
            abandoned += ab
            completed += comp

        efficiency = effective / total if total > 0 else 0.0
        return EfficiencyResult(
            task_length=task_length,
            tasklets_per_task=k,
            efficiency=efficiency,
            effective_time=effective,
            total_time=total,
            evictions=evictions,
            abandoned_tasks=abandoned,
            tasks_completed=completed,
        )

    def _run_worker(self, task_work, eviction: EvictionModel, rng):
        """Simulate one worker's sequence of lives processing its tasks."""
        cfg = self.config
        effective = 0.0
        total = 0.0
        evictions = 0
        abandoned = 0
        completed = 0

        survival = float(eviction.sample_survival(rng))
        age = cfg.per_worker_overhead
        # Eviction during startup: pay the lost life, start another.
        while age > survival:
            total += survival
            evictions += 1
            survival = float(eviction.sample_survival(rng))

        for work in task_work:
            task_time = cfg.per_task_overhead + work
            retries = 0
            while True:
                if age + task_time <= survival:
                    age += task_time
                    effective += work
                    completed += 1
                    break
                # Evicted mid-task: the whole life's wall time is spent,
                # the in-progress task's work is lost.
                total += survival
                evictions += 1
                retries += 1
                if retries >= cfg.max_retries:
                    abandoned += 1
                    survival = float(eviction.sample_survival(rng))
                    age = cfg.per_worker_overhead
                    while age > survival:
                        total += survival
                        evictions += 1
                        survival = float(eviction.sample_survival(rng))
                    break
                survival = float(eviction.sample_survival(rng))
                age = cfg.per_worker_overhead
                while age > survival:
                    total += survival
                    evictions += 1
                    survival = float(eviction.sample_survival(rng))

        total += age  # wall time of the final (surviving) life
        return effective, total, evictions, abandoned, completed

    def sweep(
        self,
        task_lengths: Iterable[float],
        models: Dict[str, EvictionModel],
    ) -> Dict[str, List[EfficiencyResult]]:
        """Fig 3: efficiency curves for several eviction scenarios."""
        out: Dict[str, List[EfficiencyResult]] = {}
        for name, model in models.items():
            out[name] = [self.simulate(t, model) for t in task_lengths]
        return out


def optimal_task_size(
    simulator: TaskSizeSimulator,
    eviction: EvictionModel,
    task_lengths: Optional[Sequence[float]] = None,
) -> EfficiencyResult:
    """The task length maximising efficiency over a sweep (default 1–10 h)."""
    if task_lengths is None:
        task_lengths = [h * HOUR for h in range(1, 11)]
    results = [simulator.simulate(t, eviction) for t in task_lengths]
    return max(results, key=lambda r: r.efficiency)
