"""The instrumented task wrapper (paper §3, §5).

Every Lobster task is a wrapper around the real application.  The
wrapper is broken into logical segments — machine validation, software
environment setup, input acquisition, execution, output stage-out — and
each segment records its duration and a distinct failure code.  The
record travels back to the master and into the Lobster DB, enabling the
drill-down troubleshooting of §5.

The wrapper is *defensive*: every infrastructure failure (squid timeout,
federation outage, Chirp overload, bad machine) is caught and converted
into an exit code so the scheduler can retry the tasklets; only eviction
interrupts propagate (Work Queue handles those by re-queuing).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..analysis import AnalysisCode, ExitCode, FrameworkReport
from ..cvmfs import ParrotCache, SquidTimeout
from ..desim import Topics
from ..storage import ChirpError, XrootdError, compute_checksum
from .config import DataAccess, LobsterConfig, WorkflowConfig
from .services import Services
from .unit import TaskPayload

__all__ = ["Wrapper", "Segment"]


class Segment:
    """Canonical wrapper segment names."""

    VALIDATE = "validate"
    SETUP = "setup"
    STAGE_IN = "stage_in"
    CPU = "cpu"
    IO = "io"
    STAGE_OUT = "stage_out"

    ORDER = (VALIDATE, SETUP, STAGE_IN, CPU, IO, STAGE_OUT)


#: Chunks used to interleave streaming reads with computation.
_STREAM_CHUNKS = 8


class _SegmentSpans:
    """Tracks the wrapper's open segment span for causal tracing.

    The wrapper runs inside a process whose ambient trace context is the
    task's attempt span, so each segment span lands under the attempt
    and (via ``activate``) becomes the ambient parent of any fabric
    flows, squid fetches, or Chirp requests the segment performs.  A
    no-op when tracing is off or the task is untraced.
    """

    __slots__ = ("tr", "span")

    def __init__(self, tr):
        self.tr = tr
        self.span = None

    def enter(self, name: str) -> None:
        tr = self.tr
        if tr is None:
            return
        if self.span is not None:
            tr.end(self.span)
        elif tr.current() is None:
            # Untraced task (no attempt span): don't fabricate orphans.
            self.tr = None
            return
        self.span = tr.start(f"wrapper.{name}", activate=True)

    def close(self, status: str) -> None:
        if self.tr is not None and self.span is not None:
            self.tr.end(self.span, status=status)
            self.span = None


class Wrapper:
    """Executor factory: one instance per workflow, called per task."""

    def __init__(
        self,
        cfg: LobsterConfig,
        workflow: WorkflowConfig,
        services: Services,
        seed: int = 0,
    ):
        self.cfg = cfg
        self.workflow = workflow
        self.services = services
        self.seed = seed
        # One Wrapper instance serves every task of the workflow, so it
        # is where cross-task degradation state lives: consecutive
        # stream failures, and whether the workflow has fallen back from
        # XrootD streaming to Chirp staging (graceful degradation under
        # a broken WAN, cf. the Fig 10 failure burst).
        self.stream_failures = 0
        self.fallback_active = False
        self.fallback_at: Optional[float] = None
        # Per-topic fast path: wrapper.segment fires several times per
        # task, so the whole narration loop is skipped when unwanted.
        self._p_segment = services.env.bus.port(Topics.WRAPPER_SEGMENT)

    # Worker context keys the wrapper expects.
    CACHE_KEY = "parrot_cache"

    @staticmethod
    def _work_identity(task) -> tuple:
        """(key, retry) identifying the unit of work, not the Task object."""
        payload = task.payload
        if payload is not None and getattr(payload, "tasklets", None):
            key = min(t.tasklet_id for t in payload.tasklets)
            # Tasklet attempts advance when a task fails and its work is
            # re-packaged, so the retry must re-draw its fortunes.
            retry = max(t.attempts for t in payload.tasklets)
        else:
            key = task.task_id
            retry = 0
        return key, retry

    def _rng(self, task) -> np.random.Generator:
        # Key the stream on the *work*, not the Task object: the task id
        # counter is process-global, so two otherwise identical runs in
        # one process would draw different numbers.  Retries (attempts)
        # intentionally re-draw.
        key, retry = self._work_identity(task)
        import zlib

        wf_hash = zlib.crc32(self.workflow.label.encode())
        return np.random.default_rng(
            (self.seed, wf_hash, key, retry, task.attempts)
        )

    def __call__(self, worker, task):
        """DES process run on the worker for one task.

        Returns ``(exit_code, segments, report)``.  Raises only on
        eviction interrupts.
        """
        segs = _SegmentSpans(worker.env.spans)
        try:
            exit_code, segments, report = yield from self._run(worker, task, segs)
        except BaseException:
            # Eviction (or a crash) mid-segment: the open span records
            # where the attempt died.
            segs.close("aborted")
            raise
        segs.close("ok" if exit_code == ExitCode.SUCCESS else "failed")
        port = self._p_segment
        if port.on:
            for seg in Segment.ORDER:
                if seg in segments:
                    port.emit(
                        task_id=task.task_id,
                        workflow=self.workflow.label,
                        segment=seg,
                        seconds=segments[seg],
                        exit_code=int(exit_code),
                    )
        return exit_code, segments, report

    def _run(self, worker, task, segs: Optional[_SegmentSpans] = None):
        env = worker.env
        services = self.services
        wf = self.workflow
        code: AnalysisCode = wf.code
        payload: TaskPayload = task.payload
        rng = self._rng(task)
        segments: Dict[str, float] = {}
        report = FrameworkReport()
        if segs is None:
            segs = _SegmentSpans(None)

        # ---- 1. machine validation ------------------------------------
        segs.enter(Segment.VALIDATE)
        t0 = env.now
        yield env.timeout(self.cfg.validate_seconds)
        segments[Segment.VALIDATE] = env.now - t0
        if getattr(worker.machine, "black_hole", False):
            # A misconfigured node fails everything it touches, fast —
            # the signature the master's blacklisting keys on.
            report.exit_code = ExitCode.BAD_MACHINE
            report.annotations["failed_segment"] = Segment.VALIDATE
            return report.exit_code, segments, report
        if rng.random() < self.cfg.bad_machine_rate:
            report.exit_code = ExitCode.BAD_MACHINE
            report.annotations["failed_segment"] = Segment.VALIDATE
            return report.exit_code, segments, report

        # ---- 2. software environment (CVMFS via Parrot + conditions) ---
        segs.enter(Segment.SETUP)
        t0 = env.now
        cache: Optional[ParrotCache] = worker.context.get(self.CACHE_KEY)
        try:
            if cache is not None:
                yield from cache.setup(services.repository)
            # Conditions/calibration data: through Frontier when wired
            # (IOV-cached at the squids), else a plain proxy fetch.
            if services.frontier is not None and code.conditions_volume > 0:
                run = 1
                for t in payload.tasklets:
                    lumis = getattr(t, "lumis", ())
                    if lumis:
                        run = lumis[0].run
                        break
                yield from services.frontier.fetch(
                    run, client_link=worker.machine.nic
                )
            elif code.conditions_volume > 0:
                yield from services.proxies.fetch(
                    10, code.conditions_volume, client_link=worker.machine.nic
                )
        except SquidTimeout:
            segments[Segment.SETUP] = env.now - t0
            report.exit_code = ExitCode.SETUP_FAILED
            report.annotations["failed_segment"] = Segment.SETUP
            return report.exit_code, segments, report
        segments[Segment.SETUP] = env.now - t0

        # ---- 3. input acquisition --------------------------------------
        input_bytes = payload.input_bytes + code.pileup_bytes_per_event * payload.n_events
        # Graceful degradation: once the workflow has fallen back,
        # streaming tasks stage their input via Chirp instead.
        access = wf.data_access
        if access == DataAccess.XROOTD and self.fallback_active:
            access = DataAccess.CHIRP
        stream = None
        segs.enter(Segment.STAGE_IN)
        t0 = env.now
        try:
            if access == DataAccess.XROOTD and payload.input_bytes > 0:
                # Streaming: open now, read during execution.
                stream = yield from services.xrootd.open(
                    payload.lfns[0] if payload.lfns else "/store/unknown"
                )
            elif access == DataAccess.CHIRP and input_bytes > 0:
                yield from services.chirp.get(
                    input_bytes, client_link=worker.machine.nic
                )
            # DataAccess.WQ: input was moved by Work Queue before the
            # wrapper started (task.wq_input_bytes); nothing to do here.
            if (
                wf.is_simulation
                and code.pileup_bytes_per_event > 0
                and access != DataAccess.CHIRP
            ):
                # Pile-up overlay comes from the local SE via Chirp.
                yield from services.chirp.get(
                    code.pileup_bytes_per_event * payload.n_events,
                    client_link=worker.machine.nic,
                )
        except XrootdError:
            self._note_stream_failure(env)
            segments[Segment.STAGE_IN] = env.now - t0
            report.exit_code = ExitCode.FILE_OPEN_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_IN
            return report.exit_code, segments, report
        except ChirpError:
            segments[Segment.STAGE_IN] = env.now - t0
            report.exit_code = ExitCode.STAGE_IN_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_IN
            return report.exit_code, segments, report
        segments[Segment.STAGE_IN] = env.now - t0

        # ---- 4. execution ------------------------------------------------
        segs.enter("exec")
        cpu_total = code.cpu_time(rng, payload.n_events)
        fails = code.draw_failure(rng)
        fail_at = rng.uniform(0.05, 0.95) if fails else 1.1
        cpu_done = 0.0
        io_time = 0.0
        try:
            if stream is not None:
                # Interleave: read a chunk (I/O), process it (CPU).  Only
                # read_fraction of the input is actually pulled — HEP
                # analyses read a subset of branches, which is why
                # streaming beats staging in Fig 4.
                stream_bytes = payload.input_bytes * wf.read_fraction
                for i in range(_STREAM_CHUNKS):
                    frac_done = i / _STREAM_CHUNKS
                    if fails and frac_done >= fail_at:
                        raise _IntrinsicFailure()
                    t_io = env.now
                    yield from stream.read(
                        stream_bytes / _STREAM_CHUNKS,
                        client_link=worker.machine.nic,
                    )
                    io_time += env.now - t_io
                    t_cpu = env.now
                    yield env.timeout(cpu_total / _STREAM_CHUNKS)
                    cpu_done += env.now - t_cpu
                stream.close()
                self.stream_failures = 0  # a full read: the WAN is fine
            else:
                # Staged input: local read from node disk, then compute.
                if input_bytes > 0:
                    t_io = env.now
                    flow = worker.machine.disk.transfer(input_bytes)
                    try:
                        yield flow
                    except BaseException:
                        flow.cancel()
                        raise
                    io_time += env.now - t_io
                run_for = cpu_total * min(fail_at, 1.0)
                t_cpu = env.now
                yield env.timeout(run_for)
                cpu_done += env.now - t_cpu
                if fails:
                    raise _IntrinsicFailure()
        except XrootdError:
            self._note_stream_failure(env)
            segments[Segment.CPU] = cpu_done
            segments[Segment.IO] = io_time
            report.exit_code = ExitCode.FILE_READ_FAILED
            report.annotations["failed_segment"] = Segment.IO
            return report.exit_code, segments, report
        except _IntrinsicFailure:
            segments[Segment.CPU] = cpu_done
            segments[Segment.IO] = io_time
            report.exit_code = ExitCode.APPLICATION_FAILED
            report.annotations["failed_segment"] = Segment.CPU
            return report.exit_code, segments, report
        segments[Segment.CPU] = cpu_done
        segments[Segment.IO] = io_time
        report.cpu_seconds = cpu_done
        report.io_seconds = io_time
        report.events_read = payload.n_events if not wf.is_simulation else 0
        report.events_written = payload.n_events
        report.input_bytes = payload.input_bytes

        # ---- 5. stage-out -------------------------------------------------
        output_bytes = code.output_bytes(payload.n_events)
        report.output_bytes = output_bytes
        if output_bytes > 0 and self.cfg.verify_outputs:
            # Content digest keyed on the work itself: the same tasklets
            # at the same retry always produce the same bytes, and a
            # re-derived attempt gets a fresh digest.
            key, retry = self._work_identity(task)
            report.output_checksum = compute_checksum(
                wf.label, key, retry, round(output_bytes)
            )
        segs.enter(Segment.STAGE_OUT)
        t0 = env.now
        if wf.output_mode == DataAccess.CHIRP and output_bytes > 0:
            try:
                yield from services.chirp.put(
                    output_bytes, client_link=worker.machine.nic
                )
            except ChirpError:
                segments[Segment.STAGE_OUT] = env.now - t0
                report.exit_code = ExitCode.STAGE_OUT_FAILED
                report.annotations["failed_segment"] = Segment.STAGE_OUT
                return report.exit_code, segments, report
        elif wf.output_mode == DataAccess.WQ:
            # Leave the bytes for Work Queue to move after the wrapper;
            # the digest travels with them so ship() can verify delivery.
            task.wq_output_bytes = output_bytes
            task.wq_output_checksum = report.output_checksum
        segments[Segment.STAGE_OUT] = env.now - t0

        report.exit_code = ExitCode.SUCCESS
        return ExitCode.SUCCESS, segments, report

    def _note_stream_failure(self, env) -> None:
        """Count a consecutive XrootD failure; degrade past threshold."""
        self.stream_failures += 1
        threshold = self.workflow.stream_fallback_threshold
        if (
            threshold is None
            or self.fallback_active
            or self.stream_failures < threshold
        ):
            return
        self.fallback_active = True
        self.fallback_at = env.now
        bus = env.bus
        if bus:
            # Rare event: build the payload lazily, only if wanted.
            bus.publish_lazy(
                Topics.RECOVERY_FALLBACK,
                lambda: dict(
                    workflow=self.workflow.label,
                    failures=self.stream_failures,
                    frm=DataAccess.XROOTD,
                    to=DataAccess.CHIRP,
                ),
            )


class _IntrinsicFailure(Exception):
    """Internal: the application failed for its own reasons."""
