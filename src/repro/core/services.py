"""The bundle of infrastructure services a Lobster run talks to.

Collects the substrate handles (CVMFS repo, squid farm, WAN, XrootD
federation, Chirp server, storage element, optional Hadoop) so they can
be wired once and passed around, and provides a one-call default stack
with paper-scale parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cvmfs import CVMFSRepository, FrontierService, ProxyFarm
from ..desim import Environment
from ..dbs import DBS, DBSClient
from ..hadoop import HDFS, MapReduceEngine
from ..storage import (
    ChirpServer,
    StorageElement,
    WideAreaNetwork,
    XrootdFederation,
)

__all__ = ["Services"]

GBIT = 125_000_000.0


@dataclass
class Services:
    """Handles to every external system one Lobster run uses."""

    env: Environment
    repository: CVMFSRepository
    proxies: ProxyFarm
    wan: WideAreaNetwork
    xrootd: XrootdFederation
    chirp: ChirpServer
    se: StorageElement
    dbs: Optional[DBSClient] = None
    hdfs: Optional[HDFS] = None
    mapreduce: Optional[MapReduceEngine] = None
    #: Conditions-data service; when None the wrapper falls back to a
    #: plain proxy fetch of the configured conditions volume.
    frontier: Optional[FrontierService] = None

    @classmethod
    def default(
        cls,
        env: Environment,
        n_proxies: int = 1,
        wan_bandwidth: float = 10 * GBIT,
        outages=None,
        chirp_connections: int = 32,
        with_hadoop: bool = False,
        dbs: Optional[DBS] = None,
        seed: int = 0,
    ) -> "Services":
        """A standard Notre-Dame-like stack."""
        wan = WideAreaNetwork(env, bandwidth=wan_bandwidth, outages=outages)
        hdfs = HDFS(env, seed=seed) if with_hadoop else None
        proxies = ProxyFarm.deploy(env, n_proxies)
        return cls(
            env=env,
            repository=CVMFSRepository(),
            proxies=proxies,
            wan=wan,
            xrootd=XrootdFederation(env, wan),
            chirp=ChirpServer(env, max_connections=chirp_connections),
            se=StorageElement(),
            dbs=DBSClient(dbs, env=env) if dbs is not None else None,
            hdfs=hdfs,
            mapreduce=MapReduceEngine(env, hdfs) if hdfs is not None else None,
            frontier=FrontierService(env, proxies),
        )
