"""The bundle of infrastructure services a Lobster run talks to.

Collects the substrate handles (CVMFS repo, squid farm, WAN, XrootD
federation, Chirp server, storage element, optional Hadoop) so they can
be wired once and passed around, and provides a one-call default stack
with paper-scale parameters.

``Services.default`` also owns the shared network :class:`~repro.net.Fabric`:
the WAN uplink, squid NICs, Chirp NIC + SE spindles and the Frontier
origin all attach to one campus topology, so CVMFS, Frontier, XrootD,
staging and merge traffic genuinely contend on the links they share.
Pass ``services.fabric`` to ``MachinePool.homogeneous`` and ``Master``
to put the compute side on the same tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..cvmfs import CVMFSRepository, FrontierService, ProxyFarm
from ..desim import Environment
from ..dbs import DBS, DBSClient
from ..hadoop import HDFS, MapReduceEngine
from ..net import Fabric, TopologySpec
from ..storage import (
    ChirpServer,
    StorageElement,
    WideAreaNetwork,
    XrootdFederation,
)

__all__ = ["Services"]

GBIT = 125_000_000.0


@dataclass
class Services:
    """Handles to every external system one Lobster run uses."""

    env: Environment
    repository: CVMFSRepository
    proxies: ProxyFarm
    wan: WideAreaNetwork
    xrootd: XrootdFederation
    chirp: ChirpServer
    se: StorageElement
    dbs: Optional[DBSClient] = None
    hdfs: Optional[HDFS] = None
    mapreduce: Optional[MapReduceEngine] = None
    #: Conditions-data service; when None the wrapper falls back to a
    #: plain proxy fetch of the configured conditions volume.
    frontier: Optional[FrontierService] = None
    #: The shared network fabric every byte producer routes through.
    fabric: Optional[Fabric] = None

    @classmethod
    def default(
        cls,
        env: Environment,
        n_proxies: int = 1,
        wan_bandwidth: float = 10 * GBIT,
        outages=None,
        chirp_connections: int = 32,
        with_hadoop: bool = False,
        dbs: Optional[DBS] = None,
        seed: int = 0,
        topology: Optional[TopologySpec] = None,
    ) -> "Services":
        """A standard Notre-Dame-like stack on one shared fabric."""
        topology = topology if topology is not None else TopologySpec(
            wan_bandwidth=wan_bandwidth
        )
        fabric = Fabric(env)
        # Attach order matters only for the WAN: the ``world`` node must
        # exist before the Frontier origin hangs off it.
        wan = WideAreaNetwork(
            env, bandwidth=topology.wan_bandwidth, outages=outages, fabric=fabric
        )
        hdfs = HDFS(env, seed=seed) if with_hadoop else None
        proxies = ProxyFarm.deploy(env, n_proxies, fabric=fabric)
        return cls(
            env=env,
            repository=CVMFSRepository(),
            proxies=proxies,
            wan=wan,
            xrootd=XrootdFederation(env, wan),
            chirp=ChirpServer(
                env,
                max_connections=chirp_connections,
                fabric=fabric,
                spindle_bandwidth=topology.se_spindle_bandwidth,
            ),
            se=StorageElement(env=env),
            dbs=DBSClient(dbs, env=env) if dbs is not None else None,
            hdfs=hdfs,
            mapreduce=MapReduceEngine(env, hdfs) if hdfs is not None else None,
            frontier=FrontierService(env, proxies, fabric=fabric),
            fabric=fabric,
        )
