"""Publication of merged outputs (paper §4.4).

"While these files could be published as-is, it would require a
significant amount of metadata, which increases the expense of
publication and further handling" — the point of merging is to make the
publication step cheap.  This module performs that step: merged outputs
are registered as a new DBS dataset carrying provenance back to the
parent dataset/workflow, with per-file metadata cost accounted so the
merge-vs-publish trade-off is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..dbs import DBS, Dataset, FileRecord, LumiSection
from ..storage import StoredFile

__all__ = ["PublicationRecord", "Publisher"]


@dataclass(frozen=True)
class PublicationRecord:
    """Outcome of publishing one workflow's outputs."""

    dataset_name: str
    n_files: int
    total_bytes: float
    total_events: int
    #: Metadata entries written (files × per-file records); the cost the
    #: paper's merging exists to reduce.
    metadata_entries: int
    parent: Optional[str] = None


class Publisher:
    """Registers workflow outputs as a new DBS dataset with provenance."""

    #: Metadata records written per published file (catalog entry,
    #: parentage, checksums, location).
    METADATA_PER_FILE = 4

    def __init__(self, dbs: DBS):
        self.dbs = dbs
        self.records: List[PublicationRecord] = []

    def publish(
        self,
        workflow: str,
        files: Sequence[StoredFile],
        events_per_byte: float,
        parent: Optional[str] = None,
        processed_name: str = "lobster-v1",
        tier: str = "USER",
        verify_with=None,
        ledger=None,
        bus=None,
    ) -> PublicationRecord:
        """Register *files* as dataset ``/<workflow>/<processed>/<tier>``.

        *events_per_byte* converts output sizes back to event counts (the
        inverse of the analysis code's output_bytes_per_event).

        Publication is the last integrity hop: with *verify_with* (a
        StorageElement) each file's checksum is re-verified immediately
        before registration, and with *ledger* (a LobsterDB) only
        ledger-committed files are accepted.  Either violation raises —
        corrupt or uncommitted data is never silently published.
        """
        if events_per_byte < 0:
            raise ValueError("events_per_byte must be non-negative")
        ordered = sorted(files, key=lambda f: f.name)
        for f in ordered:
            if ledger is not None:
                state = ledger.ledger_state(f.name)
                if state is not None and state != "committed":
                    raise ValueError(
                        f"refusing to publish {f.name}: ledger state {state!r}"
                    )
            if verify_with is not None and verify_with.exists(f.name):
                # Raises IntegrityError on checksum mismatch.
                verify_with.verify(f.name)
        name = f"/{workflow}/{processed_name}/{tier}"
        records = []
        for i, f in enumerate(ordered):
            n_events = int(round(f.size_bytes * events_per_byte))
            records.append(
                FileRecord(
                    lfn=f"/store/user/{workflow}/published/file{i:06d}.root",
                    size_bytes=int(f.size_bytes),
                    n_events=n_events,
                    # Published user files carry a synthetic lumi each;
                    # fine-grained provenance lives in the parentage
                    # metadata, not re-derived lumi lists.
                    lumis=(LumiSection(1, i + 1),),
                )
            )
        dataset = Dataset(name, records)
        self.dbs.register(dataset)
        record = PublicationRecord(
            dataset_name=name,
            n_files=len(records),
            total_bytes=float(sum(f.size_bytes for f in records)),
            total_events=sum(f.n_events for f in records),
            metadata_entries=len(records) * self.METADATA_PER_FILE,
            parent=parent,
        )
        self.records.append(record)
        if ledger is not None and hasattr(ledger, "checkpoint"):
            # Publication is a recovery point too: a master killed right
            # after registering the dataset must converge on restart.
            ledger.checkpoint("publish.dataset")
        if bus is not None and bus:
            # The terminal event of a workflow's causal story: with
            # tracing on it becomes a span under the run root.
            from ..desim.bus import Topics

            bus.publish(
                Topics.PUBLISH_DATASET,
                workflow=workflow,
                dataset=name,
                files=record.n_files,
                events=record.total_events,
                nbytes=record.total_bytes,
            )
        return record

    def publication_cost(self, n_files: int) -> int:
        """Metadata entries needed to publish *n_files* outputs."""
        return n_files * self.METADATA_PER_FILE

    def merge_savings(self, unmerged_count: int, merged_count: int) -> int:
        """Metadata entries saved by merging before publication."""
        return self.publication_cost(unmerged_count) - self.publication_cost(
            merged_count
        )
