"""The main Lobster process (paper §3).

`LobsterRun` glues everything together: it queries DBS for the dataset
metadata, decomposes the workflow into tasklets, groups tasklets into
tasks sized per §4.1, keeps the Work Queue master's ready buffer topped
up (400 tasks in the paper), consumes results, retries failed tasklets,
interleaves merge tasks, records everything in the SQLite Lobster DB,
and feeds the monitoring subsystem.

Workers are provided externally — usually glide-ins started through
:class:`repro.batch.CondorPool` with the payload factory this class
provides — exactly mirroring the paper's "the user must start workers by
one means or another".
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional


from ..batch.condor import WorkerSlot
from ..cvmfs import CacheMode, ParrotCache
from ..desim import Environment, Interrupt, Topics
from ..monitor import BusCollector, RunMetrics
from ..storage import StoredFile
from ..storage.integrity import IntegrityError
from ..wq import Foreman, Master, Task, TaskResult, Worker
from .config import DataAccess, LobsterConfig, MergeMode, WorkflowConfig
from .jobit_db import LobsterDB
from .adaptive import AdaptiveTaskSizer
from .merge import MergeGroup, MergeManager
from .services import Services
from .unit import TaskPayload, TaskletStore
from .wrapper import Wrapper

__all__ = ["LobsterRun", "WorkflowState"]


class WorkflowState:
    """Everything Lobster tracks for one workflow."""

    def __init__(
        self,
        cfg: LobsterConfig,
        workflow: WorkflowConfig,
        services: Services,
        seed: int,
        db: Optional[LobsterDB] = None,
    ):
        self.config = workflow
        self.tasklets: Optional[TaskletStore] = None  # built at start
        self.merge = MergeManager(cfg, workflow, services, db=db)
        self.wrapper = Wrapper(cfg, workflow, services, seed=seed)
        self.outputs_created = 0
        self.tasks_created = 0
        self.quarantined_outputs = 0
        #: Every output file this workflow produced (feeds chained children).
        self.output_files = []
        self.final_merge_submitted = False
        self.hadoop_proc = None
        #: Optional §8-style feedback controller for the task size.
        self.sizer: Optional[AdaptiveTaskSizer] = (
            AdaptiveTaskSizer(
                initial_size=workflow.tasklets_per_task,
                window=cfg.adaptive_window,
            )
            if cfg.adaptive_task_size
            else None
        )

    @property
    def tasklets_per_task(self) -> int:
        """Current task size: adaptive if enabled, else the configured one."""
        if self.sizer is not None:
            return self.sizer.size
        return self.config.tasklets_per_task

    @property
    def label(self) -> str:
        return self.config.label

    @property
    def processing_complete(self) -> bool:
        return self.tasklets is not None and self.tasklets.complete

    @property
    def merge_done(self) -> bool:
        mode = self.config.merge_mode
        if mode == MergeMode.NONE:
            return True
        if mode == MergeMode.HADOOP:
            if self.merge.unmerged:
                return False  # merge not yet started
            if self.hadoop_proc is not None:
                return not self.hadoop_proc.is_alive
            return True  # nothing ever needed merging
        return self.final_merge_submitted and self.merge.complete

    @property
    def complete(self) -> bool:
        """Processing finished and every merge obligation discharged."""
        return self.processing_complete and self.merge_done


class LobsterRun:
    """One invocation of the main Lobster process."""

    def __init__(
        self,
        env: Environment,
        config: LobsterConfig,
        services: Services,
        master: Optional[Master] = None,
        foremen: Optional[List[Foreman]] = None,
        db: Optional[LobsterDB] = None,
        recover: bool = False,
    ):
        self.env = env
        self.config = config
        self.services = services
        if master is None:
            # A warm restart shares the fabric with the crashed master,
            # whose node/link linger (dead processes don't detach);
            # the replacement head process needs a fresh address.
            name, n = "master", 0
            while services.fabric.has_node(name):
                n += 1
                name = f"master-r{n}"
            master = Master(
                env, name=name, fabric=services.fabric,
                recovery=config.recovery,
            )
        self.master = master
        self.foremen = list(foremen) if foremen else []
        self.db = db or LobsterDB(config.db_path)
        #: Resume from the Lobster DB after a scheduler crash (§3 footnote):
        #: tasklet states are restored instead of regenerated.
        self.recover = recover
        #: Monitoring is bus-driven: the collector subscribes to the
        #: environment's event bus and folds ``task.*`` events into
        #: metrics; this class only *publishes*.
        self.collector = BusCollector(
            env.bus, workflows=[wf.label for wf in config.workflows]
        )
        self.metrics: RunMetrics = self.collector.metrics
        # Merge output names must never collide with ones a previous
        # (crashed) scheduler already committed to this DB — and neither
        # may task ids, which analysis output names embed.
        MergeGroup.seed_ids(self.db.max_merge_group_id() + 1)
        Task.seed_ids(self.db.max_task_id() + 1)
        # Announce every durable DB transition on the bus; the crashtest
        # fuzzer snapshots at these checkpoints.
        self.db.bind_bus(env.bus)
        self.workflows: Dict[str, WorkflowState] = {
            wf.label: WorkflowState(
                config, wf, services, seed=config.seed, db=self.db
            )
            for wf in config.workflows
        }
        #: Duplicate deliveries caught by the output ledger (the master
        #: counts the ones it drops itself in ``tasks_duplicate``).
        self.duplicates_dropped = 0
        self._upstream_rr = count()
        self._workflow_rr = count()
        self._cache_by_machine: Dict[str, ParrotCache] = {}
        self.process = None  #: the control Process once started
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        #: True after a MasterCrash fault killed the control loop; the
        #: DB and storage element survive for a warm restart.
        self.crashed = False

    # -- worker provisioning -----------------------------------------------------
    def worker_payload(self, slot: WorkerSlot):
        """Payload factory for :meth:`repro.batch.CondorPool.submit`."""
        machine = slot.machine
        cache = self._cache_for(machine)
        upstream = self._next_upstream()
        worker = Worker(
            self.env,
            machine,
            upstream,
            cores=self.config.cores_per_worker,
            context={Wrapper.CACHE_KEY: cache},
        )
        return worker.run()

    def _cache_for(self, machine) -> ParrotCache:
        mode = self.config.cache_mode
        if mode is CacheMode.PRIVATE:
            # Per-instance caches: a fresh cache per worker placement.
            return ParrotCache(self.env, machine, self.services.proxies, mode=mode)
        cache = self._cache_by_machine.get(machine.name)
        if cache is None:
            cache = ParrotCache(self.env, machine, self.services.proxies, mode=mode)
            self._cache_by_machine[machine.name] = cache
        return cache

    def _next_upstream(self):
        if not self.foremen:
            return self.master
        return self.foremen[next(self._upstream_rr) % len(self.foremen)]

    # -- run control --------------------------------------------------------------
    def start(self):
        """Start the main control loop; returns its Process."""
        if self.process is not None:
            raise RuntimeError("run already started")
        if self.config.fast_abort_multiplier is not None:
            self.master.enable_fast_abort(self.config.fast_abort_multiplier)
        self.process = self.env.process(self._control(), name="lobster-main")
        return self.process

    def _control(self):
        self.started_at = self.env.now
        try:
            yield from self._build_tasklets()
            self._progress()
            self._fill_buffer()

            # ---- unified loop: every workflow progresses independently
            # through processing → final merges → (hadoop merge) → chained
            # children, so stage-2 workflows start the moment their parent
            # finishes.
            while not all(w.complete for w in self.workflows.values()):
                get = self.master.wait()
                hadoop_procs = [
                    w.hadoop_proc
                    for w in self.workflows.values()
                    if w.hadoop_proc is not None and w.hadoop_proc.is_alive
                ]
                outcome = yield self.env.any_of([get] + hadoop_procs)
                if get in outcome:
                    self._handle_result(outcome[get])
                else:
                    get.cancel()
                self._progress()
                self._fill_buffer()
        except Interrupt:
            # A MasterCrash fault: the scheduler process dies where it
            # stands.  Nothing is flushed or handed over — only the
            # Lobster DB and the storage element survive.  A later
            # LobsterRun(recover=True) on the same DB re-derives the rest.
            self.crashed = True
            self.master.crash()
            self.finished_at = self.env.now
            return self.summary()

        # ---- wind down -------------------------------------------------
        self.master.drain()
        self.finished_at = self.env.now
        return self.summary()

    def _progress(self) -> None:
        """Advance per-workflow state machines (merges, chaining)."""
        for w in self.workflows.values():
            wf = w.config
            # Corrupt outputs spotted by the merge layer since the last
            # pass are re-derived before any completeness check.
            self._drain_quarantine(w)
            # Chained workflows: build tasklets once the parent is done.
            if w.tasklets is None and wf.parent is not None:
                parent = self.workflows[wf.parent]
                if parent.complete:
                    w.tasklets = self._tasklets_from_parent(w, parent)
                    self.db.record_workflow(
                        wf.label, f"parent:{wf.parent}", w.tasklets.total
                    )
                    self.db.record_tasklets(w.tasklets)
            if w.tasklets is None or not w.tasklets.complete:
                continue
            # Processing done: discharge merge obligations.
            if (
                wf.merge_mode in (MergeMode.SEQUENTIAL, MergeMode.INTERLEAVED)
                and not w.final_merge_submitted
            ):
                w.final_merge_submitted = True
                for task in w.merge.make_tasks(1.0, final=True):
                    self.master.submit(self._trace_task(task))
                # Planning screens inputs; anything it rejected must be
                # re-derived, which re-opens the final merge round.
                self._drain_quarantine(w)
            elif (
                wf.merge_mode == MergeMode.HADOOP
                and w.hadoop_proc is None
                and w.merge.unmerged
            ):
                w.hadoop_proc = self.env.process(
                    w.merge.run_hadoop_merge(),
                    name=f"hadoop-merge-{wf.label}",
                )

    def _tasklets_from_parent(
        self, child: WorkflowState, parent: WorkflowState
    ) -> TaskletStore:
        """Decompose the parent's outputs into the child's tasklets."""
        sources = list(parent.merge.merged_files)
        if not sources:
            sources = list(parent.output_files)
        store = TaskletStore(child.label)
        per_event = parent.config.code.output_bytes_per_event
        for f in sources:
            n_events = max(1, int(round(f.size_bytes / per_event))) if per_event > 0 else 1
            chunk = child.config.events_per_tasklet
            remaining = n_events
            while remaining > 0:
                n = min(chunk, remaining)
                store.add(
                    n_events=n,
                    input_bytes=f.size_bytes * n / n_events,
                    lfn=f.name,
                )
                remaining -= n
        return store

    # -- internals ------------------------------------------------------------------
    def _build_tasklets(self):
        for w in self.workflows.values():
            wf = w.config
            if self.recover and self.db.has_tasklets(wf.label):
                # Scheduler crash recovery: reload persisted state.  Any
                # tasklet that was assigned to an in-flight task returns
                # to pending; done/failed tasklets are not re-run.  The
                # ledger reconciliation in _recover_outputs runs before
                # the restored states are persisted so a crash *during*
                # recovery replays the same reconciliation.
                w.tasklets = TaskletStore.restore(
                    wf.label, self.db.load_tasklets(wf.label)
                )
                stats = self._recover_outputs(w)
                self.db.update_tasklets(w.tasklets)
                self.env.bus.publish(
                    Topics.RECOVERY_RESUME,
                    workflow=wf.label,
                    tasklets=w.tasklets.total,
                    done=w.tasklets.done_count,
                    pending=w.tasklets.pending_count,
                    **stats,
                )
                continue
            if wf.parent is not None:
                continue  # built later, from the parent's outputs
            if wf.dataset is not None:
                if self.services.dbs is None:
                    raise RuntimeError(
                        f"workflow {wf.label!r} needs a DBS client in Services"
                    )
                files = yield from self.services.dbs.files_async(wf.dataset)
                from ..dbs import Dataset

                ds = Dataset(wf.dataset, files)
                w.tasklets = TaskletStore.from_dataset(
                    wf.label, ds, lumis_per_tasklet=wf.lumis_per_tasklet
                )
            else:
                w.tasklets = TaskletStore.from_event_count(
                    wf.label, wf.n_events, wf.events_per_tasklet
                )
            self.db.record_workflow(wf.label, wf.dataset, w.tasklets.total)
            self.db.record_tasklets(w.tasklets)

    def _fill_buffer(self) -> None:
        """Top the master's ready queue up to the configured buffer."""
        while self.master.ready_count < self.config.task_buffer:
            task = self._next_task()
            if task is None:
                break
            self.master.submit(self._trace_task(task))

    def _trace_task(self, task: Task) -> Task:
        """Attach the work-unit trace to a task (no-op when untraced).

        The trace id derives from the *work*, not the Task object —
        first tasklet for analysis tasks, the merge output name for
        merge tasks — so a re-packaged retry or a quarantine-reopen
        re-enters the same trace and shows up as a sibling attempt."""
        tr = self.env.spans
        payload = task.payload
        if tr is None or payload is None:
            return task
        if getattr(payload, "tasklets", None):
            first = min(t.tasklet_id for t in payload.tasklets)
            trace_id = f"{payload.workflow}:u{first:06d}"
        elif getattr(payload, "merge_output_name", None):
            trace_id = f"{payload.workflow}:m:{payload.merge_output_name}"
        else:
            trace_id = f"{payload.workflow}:t{task.task_id}"
        root = tr.unit_root(
            trace_id, workflow=payload.workflow, category=task.category
        )
        task.trace = root.ctx
        return task

    def _next_task(self) -> Optional[Task]:
        """Create one analysis task from the best workflow with work.

        Higher-priority workflows go first; within a priority level the
        buffer is shared round-robin so siblings progress together.
        """
        candidates = [
            w
            for w in self.workflows.values()
            if w.tasklets is not None and w.tasklets.pending_count > 0
        ]
        if not candidates:
            return None
        top = max(w.config.priority for w in candidates)
        tier = [w for w in candidates if w.config.priority == top]
        start = next(self._workflow_rr)
        for i in range(len(tier)):
            w = tier[(start + i) % len(tier)]
            wf = w.config
            claimed = w.tasklets.claim(w.tasklets_per_task)
            payload = TaskPayload(workflow=wf.label, tasklets=claimed)
            task = Task(
                executor=w.wrapper,
                payload=payload,
                sandbox_bytes=self.config.sandbox_bytes,
                wq_input_bytes=(
                    payload.input_bytes if wf.data_access == DataAccess.WQ else 0.0
                ),
                category="analysis",
            )
            w.tasks_created += 1
            self.db.record_task_mapping(
                task.task_id, wf.label, [t.tasklet_id for t in claimed]
            )
            return task
        return None  # pragma: no cover - tier is never empty here

    def _output_name(self, result: TaskResult) -> str:
        return (
            f"/store/user/{result.task.payload.workflow}/out/"
            f"task_{result.task.task_id:06d}.root"
        )

    def _handle_result(self, result: TaskResult) -> None:
        payload: TaskPayload = result.task.payload
        w = self.workflows[payload.workflow]
        # Exactly-once gate: an analysis output whose name is already in
        # the ledger was delivered before — this is a late duplicate
        # (e.g. an evicted task's output landing after its retry).  Drop
        # it before it touches any accounting.
        if (
            result.task.category == "analysis"
            and result.succeeded
            and result.report is not None
            and result.report.output_bytes > 0
            and self.db.ledger_state(self._output_name(result)) is not None
        ):
            self.duplicates_dropped += 1
            self.env.bus.publish(
                Topics.TASK_DUPLICATE,
                task_id=result.task.task_id,
                category=result.task.category,
                source="ledger",
                name=self._output_name(result),
                workflow=payload.workflow,
            )
            return
        self.env.bus.publish(
            Topics.TASK_RESULT,
            workflow=payload.workflow,
            task_id=result.task.task_id,
            category=result.task.category,
            exit_code=int(result.exit_code),
            submitted=result.submitted,
            started=result.started,
            finished=result.finished,
            segments=dict(result.segments),
            wq_stage_in=result.wq_stage_in,
            wq_stage_out=result.wq_stage_out,
            lost_time=result.task.lost_time,
            output_bytes=(result.report.output_bytes if result.report else 0.0),
        )
        self.db.record_result(payload.workflow, result, len(payload.tasklets))

        if result.task.category == "merge":
            retry = w.merge.on_result(result)
            if retry is not None:
                self.master.submit(self._trace_task(retry))
            return

        # ---- analysis result -------------------------------------------
        # The commit/quarantine paths persist the tasklet states inside
        # the same ledger transaction (crash between them is otherwise
        # unrecoverable — see LobsterDB.ledger_commit_with_tasklets).
        persisted = False
        if result.succeeded:
            report = result.report
            out = StoredFile(
                name=self._output_name(result),
                size_bytes=report.output_bytes if report else 0.0,
                created=result.finished,
                source=payload.workflow,
                checksum=report.output_checksum if report else "",
            )
            if out.size_bytes > 0:
                # Two-phase commit: pending in the ledger, store, verify
                # the staged bytes, then commit.  A corrupted stage-out
                # (truncated transfer) is rejected here and the tasklets
                # retry like any failed attempt.
                se = self.services.se
                self.db.ledger_begin(
                    out.name,
                    payload.workflow,
                    "analysis",
                    checksum=out.checksum,
                    size_bytes=out.size_bytes,
                    task_id=result.task.task_id,
                    created=result.finished,
                )
                se.store(out)
                try:
                    se.verify(out.name)
                except IntegrityError:
                    se.delete(out.name)
                    self.env.bus.publish(
                        Topics.INTEGRITY_QUARANTINE,
                        name=out.name,
                        workflow=payload.workflow,
                        kind="analysis",
                        stage="stage-out",
                        task_id=result.task.task_id,
                    )
                    w.quarantined_outputs += 1
                    w.tasklets.mark_failed_attempt(
                        payload.tasklets, w.config.max_retries
                    )
                    self.db.ledger_quarantine_with_tasklets(
                        out.name, payload.tasklets
                    )
                    persisted = True
                else:
                    w.tasklets.mark_done(payload.tasklets)
                    self.db.ledger_commit_with_tasklets(
                        out.name, self.env.now, payload.tasklets
                    )
                    persisted = True
                    self.env.bus.publish(
                        Topics.INTEGRITY_COMMIT,
                        name=out.name,
                        workflow=payload.workflow,
                        kind="analysis",
                        checksum=out.checksum,
                        nbytes=out.size_bytes,
                        task_id=result.task.task_id,
                    )
                    w.merge.add_output(out)
                    w.output_files.append(out)
                    w.outputs_created += 1
            else:
                w.tasklets.mark_done(payload.tasklets)
        else:
            w.tasklets.mark_failed_attempt(
                payload.tasklets, w.config.max_retries
            )
        if not persisted:
            self.db.update_tasklets(payload.tasklets)

        if w.sizer is not None:
            w.sizer.observe(result)

        # ---- interleaved merging -------------------------------------
        if w.config.merge_mode == MergeMode.INTERLEAVED and w.tasklets is not None:
            for task in w.merge.make_tasks(
                w.tasklets.processed_fraction, final=False
            ):
                self.master.submit(self._trace_task(task))

    def _drain_quarantine(self, w: WorkflowState) -> None:
        """Re-derive outputs the merge layer found corrupt.

        The corrupt file is removed from the storage element and ledger,
        and the tasklets of the task that produced it return to PENDING —
        the same path task.exhausted re-packaging uses — so the work runs
        again and a clean output eventually re-enters the merge pool.
        """
        files = w.merge.take_quarantined()
        if not files:
            return
        bus = self.env.bus
        se = self.services.se
        for f in files:
            task_id = self.db.ledger_task_id(f.name)
            bus.publish(
                Topics.INTEGRITY_QUARANTINE,
                name=f.name,
                workflow=w.label,
                kind="analysis",
                stage="merge",
                task_id=task_id,
            )
            if se.exists(f.name):
                se.delete(f.name)
            w.output_files = [o for o in w.output_files if o.name != f.name]
            w.quarantined_outputs += 1
            reopened = []
            if task_id is not None and w.tasklets is not None:
                reopened = w.tasklets.reopen(self.db.tasklets_for_task(task_id))
            # One transaction: the output leaves the committed set and its
            # tasklets reopen together, or neither happens.
            self.db.ledger_quarantine_with_tasklets(f.name, reopened)
        # The final merge round must re-fire once re-derived outputs land.
        w.final_merge_submitted = False

    def _recover_outputs(self, w: WorkflowState) -> Dict[str, int]:
        """Rebuild output state from the ledger after a scheduler crash.

        Pending rows are half-written orphans of the dead scheduler and
        are swept (their work is simply re-planned); committed analysis
        outputs re-enter the merge pool; committed merged outputs are
        final.  On top of that, three reconciliation passes make recovery
        idempotent from *any* checkpoint — including a crash during a
        previous recovery:

        * tasklets whose output is already committed/merged are settled
          DONE even if the crash beat the tasklet update to disk;
        * DONE tasklets whose only output was quarantined are reopened so
          their events are re-derived rather than silently lost;
        * storage-element files a committed merge already consumed are
          garbage-collected (the child delete raced the crash).

        Returns the audit counters published on ``recovery.resume``.
        """
        bus = self.env.bus
        se = self.services.se
        wf = w.config
        stats = {
            "orphans_swept": 0,
            "outputs_recovered": 0,
            "merged_recovered": 0,
            "settled": 0,
            "reopened": 0,
            "children_gcd": 0,
        }
        for name in self.db.ledger_sweep_orphans(wf.label):
            if se.exists(name):
                se.delete(name)
            bus.publish(Topics.INTEGRITY_ORPHAN, name=name, workflow=wf.label)
            stats["orphans_swept"] += 1
        # ---- ledger ↔ tasklet reconciliation ---------------------------
        satisfied: set = set()
        for state in ("committed", "merged"):
            for _n, _c, _s, _cr, tid in self.db.ledger_outputs(
                wf.label, "analysis", state
            ):
                if tid is not None:
                    satisfied.update(self.db.tasklets_for_task(tid))
        stats["settled"] = len(w.tasklets.settle_done(satisfied))
        quarantined_ids: set = set()
        for _n, _c, _s, _cr, tid in self.db.ledger_outputs(
            wf.label, "analysis", "quarantined"
        ):
            if tid is not None:
                quarantined_ids.update(self.db.tasklets_for_task(tid))
        stats["reopened"] = len(w.tasklets.reopen(quarantined_ids - satisfied))
        # ---- re-pool committed outputs ---------------------------------
        for name, checksum, size, created, _tid in self.db.ledger_outputs(
            wf.label, "analysis", "committed"
        ):
            if se.exists(name):
                f = se.stat(name)
            else:
                f = StoredFile(name, size, created, wf.label, checksum)
                se.store(f)
            w.merge.add_output(f)
            w.output_files.append(f)
            w.outputs_created += 1
            stats["outputs_recovered"] += 1
        for name, checksum, size, created, _tid in self.db.ledger_outputs(
            wf.label, "merge", "committed"
        ):
            if se.exists(name):
                merged = se.stat(name)
            else:
                merged = StoredFile(name, size, created, wf.label, checksum)
                se.store(merged)
            w.merge.merged_files.append(merged)
            stats["merged_recovered"] += 1
            for child in self.db.merge_children_of(name):
                if se.exists(child):
                    se.delete(child)
                    stats["children_gcd"] += 1
        return stats

    # -- publication ---------------------------------------------------------------
    def publish_workflow(self, label: str, publisher, events_per_byte=None):
        """Verify and publish a workflow's final outputs exactly once.

        Merged files (or raw outputs when merging is off) are checked
        against the commit ledger and checksum-verified against the
        storage element immediately before registration — a corrupt
        file raises rather than being silently published.
        """
        w = self.workflows[label]
        files = list(w.merge.merged_files) or list(w.output_files)
        if events_per_byte is None:
            per_event = w.config.code.output_bytes_per_event
            events_per_byte = (1.0 / per_event) if per_event > 0 else 0.0
        return publisher.publish(
            label,
            files,
            events_per_byte,
            parent=w.config.dataset,
            verify_with=self.services.se,
            ledger=self.db,
            bus=self.env.bus,
        )

    # -- crash consistency -----------------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Structural crash-consistency checks over the DB + SE.

        Empty list means clean; see :meth:`LobsterDB.check_invariants`.
        Tests call this at shutdown, the crashtest fuzzer at every
        snapshot.
        """
        return self.db.check_invariants(se=self.services.se)

    # -- reporting -----------------------------------------------------------------
    def report(self, bin_width: float = 1800.0) -> str:
        """The full §5-style text report for this run."""
        from ..monitor import render_report

        return render_report(self, bin_width=bin_width)

    def export(self, directory: str, bin_width: float = 1800.0) -> dict:
        """Dump the run's task records and timelines as CSVs."""
        from ..monitor import export_run

        return export_run(self.metrics, directory, bin_width=bin_width)

    def summary(self) -> dict:
        """Headline numbers for the finished (or current) run."""
        out = {
            "started": self.started_at,
            "finished": self.finished_at,
            "workflows": {},
            "tasks_recorded": self.metrics.n_tasks,
            "tasks_succeeded": self.metrics.n_succeeded(),
            "tasks_failed": self.metrics.n_failed(),
            "tasks_requeued": self.master.tasks_requeued,
            "overall_efficiency": self.metrics.overall_efficiency(),
            "duplicates_dropped": (
                self.duplicates_dropped + self.master.tasks_duplicate
            ),
            "crashed": self.crashed,
        }
        for label, w in self.workflows.items():
            out["workflows"][label] = {
                "tasklets": w.tasklets.total if w.tasklets else 0,
                "tasklets_done": w.tasklets.done_count if w.tasklets else 0,
                "tasklets_failed": w.tasklets.failed_count if w.tasklets else 0,
                "outputs": w.outputs_created,
                "merged_files": len(w.merge.merged_files),
                "merge_tasks": w.merge.merge_tasks_created,
                "outputs_quarantined": w.quarantined_outputs,
            }
        return out
