"""Tasklet bookkeeping (paper §4.1).

A *tasklet* is the smallest self-contained unit of the workflow: for
data workflows a group of lumisections of one file; for simulation a
group of events to generate.  The complete tasklet list is created at
the start of the workflow; *tasks* are groups of tasklets created
dynamically as workers become available.  The :class:`TaskletStore`
tracks every tasklet's state through the run and is mirrored into the
SQLite Lobster DB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..dbs import Dataset, LumiSection

__all__ = ["Tasklet", "TaskletState", "TaskletStore", "TaskPayload"]


class TaskletState:
    PENDING = "pending"
    ASSIGNED = "assigned"
    DONE = "done"
    FAILED = "failed"  #: permanently failed (retries exhausted)

    TERMINAL = (DONE, FAILED)


@dataclass
class Tasklet:
    """One atomic unit of work."""

    tasklet_id: int
    workflow: str
    n_events: int
    input_bytes: float
    #: Input file (None for simulation tasklets).
    lfn: Optional[str] = None
    lumis: Tuple[LumiSection, ...] = ()
    state: str = TaskletState.PENDING
    attempts: int = 0

    def __post_init__(self) -> None:
        if self.n_events < 0 or self.input_bytes < 0:
            raise ValueError("n_events and input_bytes must be non-negative")


@dataclass
class TaskPayload:
    """What Lobster attaches to a WQ task: the tasklets it processes."""

    workflow: str
    tasklets: List[Tasklet]
    category: str = "analysis"
    #: For merge tasks: the input files being merged.
    merge_inputs: List = field(default_factory=list)
    merge_output_name: Optional[str] = None

    @property
    def n_events(self) -> int:
        return sum(t.n_events for t in self.tasklets)

    @property
    def input_bytes(self) -> float:
        return sum(t.input_bytes for t in self.tasklets)

    @property
    def lfns(self) -> List[str]:
        return sorted({t.lfn for t in self.tasklets if t.lfn is not None})


class TaskletStore:
    """All tasklets of one workflow, with state transitions."""

    def __init__(self, workflow: str):
        self.workflow = workflow
        self._tasklets: List[Tasklet] = []
        self._pending: List[int] = []  # indices, FIFO

    # -- construction -------------------------------------------------------
    @classmethod
    def from_dataset(
        cls, workflow: str, dataset: Dataset, lumis_per_tasklet: int = 1
    ) -> "TaskletStore":
        """Decompose a dataset into tasklets of *lumis_per_tasklet* lumis."""
        store = cls(workflow)
        for f in dataset:
            per_lumi_events = f.n_events / len(f.lumis)
            per_lumi_bytes = f.size_bytes / len(f.lumis)
            for i in range(0, len(f.lumis), lumis_per_tasklet):
                chunk = tuple(f.lumis[i : i + lumis_per_tasklet])
                store.add(
                    n_events=int(round(per_lumi_events * len(chunk))),
                    input_bytes=per_lumi_bytes * len(chunk),
                    lfn=f.lfn,
                    lumis=chunk,
                )
        return store

    @classmethod
    def from_event_count(
        cls, workflow: str, n_events: int, events_per_tasklet: int
    ) -> "TaskletStore":
        """Decompose a simulation request into event-range tasklets."""
        if n_events <= 0 or events_per_tasklet <= 0:
            raise ValueError("event counts must be positive")
        store = cls(workflow)
        remaining = n_events
        while remaining > 0:
            n = min(events_per_tasklet, remaining)
            store.add(n_events=n, input_bytes=0.0)
            remaining -= n
        return store

    @classmethod
    def restore(cls, workflow: str, rows) -> "TaskletStore":
        """Rebuild a store from Lobster-DB rows after a scheduler crash.

        Tasklets that were ASSIGNED when the scheduler died have lost
        their tasks (Work Queue state is not durable) and return to
        PENDING; DONE and FAILED are terminal and kept.
        """
        store = cls(workflow)
        for tasklet_id, lfn, n_events, input_bytes, state, attempts in rows:
            t = Tasklet(
                tasklet_id=tasklet_id,
                workflow=workflow,
                n_events=n_events,
                input_bytes=input_bytes,
                lfn=lfn,
                state=state,
                attempts=attempts,
            )
            if t.state == TaskletState.ASSIGNED:
                t.state = TaskletState.PENDING
            store._tasklets.append(t)
            if t.state == TaskletState.PENDING:
                store._pending.append(len(store._tasklets) - 1)
        return store

    def add(self, n_events: int, input_bytes: float, lfn=None, lumis=()) -> Tasklet:
        t = Tasklet(
            tasklet_id=len(self._tasklets) + 1,
            workflow=self.workflow,
            n_events=n_events,
            input_bytes=input_bytes,
            lfn=lfn,
            lumis=tuple(lumis),
        )
        self._tasklets.append(t)
        self._pending.append(len(self._tasklets) - 1)
        return t

    # -- state transitions --------------------------------------------------------
    def claim(self, n: int) -> List[Tasklet]:
        """Take up to *n* pending tasklets and mark them assigned."""
        claimed = []
        while self._pending and len(claimed) < n:
            idx = self._pending.pop(0)
            t = self._tasklets[idx]
            t.state = TaskletState.ASSIGNED
            claimed.append(t)
        return claimed

    def mark_done(self, tasklets: Sequence[Tasklet]) -> None:
        for t in tasklets:
            if t.state == TaskletState.DONE:
                continue
            t.state = TaskletState.DONE

    def mark_failed_attempt(self, tasklets: Sequence[Tasklet], max_retries: int) -> List[Tasklet]:
        """Record a failed attempt; re-pend retryable tasklets.

        Returns the tasklets that failed permanently.
        """
        permanent = []
        for t in tasklets:
            t.attempts += 1
            if t.attempts >= max_retries:
                t.state = TaskletState.FAILED
                permanent.append(t)
            else:
                t.state = TaskletState.PENDING
                self._pending.append(t.tasklet_id - 1)
        return permanent

    def settle_done(self, tasklet_ids: Sequence[int]) -> List[Tasklet]:
        """Mark PENDING tasklets whose output already committed as DONE.

        Recovery reconciliation: if the ledger holds a committed or
        merged output derived from these tasklets, re-running them would
        mint a colliding output name and the duplicate gate would starve
        the campaign.  Returns the tasklets settled (for persisting).
        """
        ids = set(tasklet_ids)
        settled = []
        for t in self._tasklets:
            if t.tasklet_id in ids and t.state == TaskletState.PENDING:
                t.state = TaskletState.DONE
                settled.append(t)
        if settled:
            gone = {t.tasklet_id - 1 for t in settled}
            self._pending = [i for i in self._pending if i not in gone]
        return settled

    def reopen(self, tasklet_ids: Sequence[int]) -> List[Tasklet]:
        """Return DONE tasklets to PENDING for re-derivation.

        Used when a committed output is later found corrupt (quarantine):
        the work must run again.  The attempt count advances so the
        re-derived task draws fresh fortunes.  Returns the reopened
        tasklets (for persisting the state flip).
        """
        ids = set(tasklet_ids)
        reopened = []
        for idx, t in enumerate(self._tasklets):
            if t.tasklet_id in ids and t.state == TaskletState.DONE:
                t.state = TaskletState.PENDING
                t.attempts += 1
                self._pending.append(idx)
                reopened.append(t)
        return reopened

    # -- queries -------------------------------------------------------------------
    @property
    def total(self) -> int:
        return len(self._tasklets)

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def count(self, state: str) -> int:
        return sum(1 for t in self._tasklets if t.state == state)

    @property
    def done_count(self) -> int:
        return self.count(TaskletState.DONE)

    @property
    def failed_count(self) -> int:
        return self.count(TaskletState.FAILED)

    @property
    def complete(self) -> bool:
        """All tasklets in a terminal state."""
        return all(t.state in TaskletState.TERMINAL for t in self._tasklets)

    @property
    def processed_fraction(self) -> float:
        if not self._tasklets:
            return 1.0
        done = sum(1 for t in self._tasklets if t.state in TaskletState.TERMINAL)
        return done / len(self._tasklets)

    def __iter__(self):
        return iter(self._tasklets)

    def __len__(self) -> int:
        return len(self._tasklets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TaskletStore {self.workflow} total={self.total} "
            f"pending={self.pending_count} done={self.done_count}>"
        )
