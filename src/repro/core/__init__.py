"""``repro.core`` — Lobster itself: the paper's primary contribution.

Workload decomposition (tasklets → tasks, §4.1), the instrumented task
wrapper (§3, §5), output merging strategies (§4.4), the SQLite Lobster
DB, and the main run loop that drives Work Queue over a non-dedicated
pool.
"""

from .adaptive import AdaptiveTaskSizer, SizerDecision
from .config import DataAccess, LobsterConfig, MergeMode, WorkflowConfig
from .jobit_db import LobsterDB
from .lobster import LobsterRun, WorkflowState
from .merge import MergeGroup, MergeManager, merge_executor, plan_groups
from .publish import PublicationRecord, Publisher
from .services import Services
from .tasksize import (
    EfficiencyResult,
    TaskSizeConfig,
    TaskSizeSimulator,
    optimal_task_size,
)
from .unit import TaskPayload, Tasklet, TaskletState, TaskletStore
from .wrapper import Segment, Wrapper

__all__ = [
    "AdaptiveTaskSizer",
    "SizerDecision",
    "LobsterConfig",
    "WorkflowConfig",
    "DataAccess",
    "MergeMode",
    "LobsterDB",
    "LobsterRun",
    "WorkflowState",
    "Services",
    "Wrapper",
    "Segment",
    "MergeManager",
    "MergeGroup",
    "merge_executor",
    "plan_groups",
    "Publisher",
    "PublicationRecord",
    "Tasklet",
    "TaskletState",
    "TaskletStore",
    "TaskPayload",
    "TaskSizeConfig",
    "TaskSizeSimulator",
    "EfficiencyResult",
    "optimal_task_size",
]
