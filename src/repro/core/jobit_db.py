"""The Lobster DB: persistent SQLite bookkeeping (paper §3, §5).

The main Lobster process records the mapping from tasklets to tasks and
every task's per-segment performance record in a local SQLite database.
The DB makes two things cheap: recovery after a scheduler crash (the
footnote in §3 — state is recovered from disk), and the histograms and
timelines the monitoring section (§5) relies on for troubleshooting.
"""

from __future__ import annotations

import sqlite3
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..wq.task import TaskResult
from .unit import Tasklet

__all__ = ["LobsterDB"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS workflows (
    label       TEXT PRIMARY KEY,
    dataset     TEXT,
    n_tasklets  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS tasklets (
    tasklet_id  INTEGER NOT NULL,
    workflow    TEXT NOT NULL,
    lfn         TEXT,
    n_events    INTEGER NOT NULL,
    input_bytes REAL NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (workflow, tasklet_id)
);
CREATE TABLE IF NOT EXISTS tasks (
    task_id     INTEGER PRIMARY KEY,
    workflow    TEXT NOT NULL,
    category    TEXT NOT NULL,
    n_tasklets  INTEGER NOT NULL,
    exit_code   INTEGER,
    worker      TEXT,
    submitted   REAL,
    started     REAL,
    finished    REAL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    lost_time   REAL NOT NULL DEFAULT 0.0,
    wq_stage_in REAL NOT NULL DEFAULT 0.0,
    wq_stage_out REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS segments (
    task_id     INTEGER NOT NULL,
    segment     TEXT NOT NULL,
    seconds     REAL NOT NULL,
    PRIMARY KEY (task_id, segment)
);
CREATE TABLE IF NOT EXISTS task_tasklets (
    task_id     INTEGER NOT NULL,
    workflow    TEXT NOT NULL,
    tasklet_id  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS output_ledger (
    name        TEXT PRIMARY KEY,
    workflow    TEXT NOT NULL,
    kind        TEXT NOT NULL,
    task_id     INTEGER,
    checksum    TEXT NOT NULL DEFAULT '',
    size_bytes  REAL NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    created     REAL,
    committed   REAL
);
CREATE TABLE IF NOT EXISTS merge_groups (
    group_id    INTEGER PRIMARY KEY,
    workflow    TEXT NOT NULL,
    output_name TEXT NOT NULL,
    n_inputs    INTEGER NOT NULL,
    nbytes      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS merge_children (
    output_name TEXT NOT NULL,
    child_name  TEXT NOT NULL,
    PRIMARY KEY (output_name, child_name)
);
CREATE INDEX IF NOT EXISTS idx_tasks_workflow ON tasks (workflow);
CREATE INDEX IF NOT EXISTS idx_segments_name ON segments (segment);
CREATE INDEX IF NOT EXISTS idx_ledger_workflow ON output_ledger (workflow, state);
"""


class LobsterDB:
    """SQLite-backed run state and performance records."""

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self._conn = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "LobsterDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- workflow / tasklet bookkeeping ---------------------------------------
    def record_workflow(self, label: str, dataset: Optional[str], n_tasklets: int) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO workflows (label, dataset, n_tasklets) VALUES (?,?,?)",
            (label, dataset, n_tasklets),
        )
        self._conn.commit()

    def record_tasklets(self, tasklets: Iterable[Tasklet]) -> None:
        rows = [
            (
                t.tasklet_id,
                t.workflow,
                t.lfn,
                t.n_events,
                t.input_bytes,
                t.state,
                t.attempts,
            )
            for t in tasklets
        ]
        self._conn.executemany(
            "INSERT OR REPLACE INTO tasklets "
            "(tasklet_id, workflow, lfn, n_events, input_bytes, state, attempts) "
            "VALUES (?,?,?,?,?,?,?)",
            rows,
        )
        self._conn.commit()

    def load_tasklets(self, workflow: str) -> List[Tuple]:
        """Rows for crash recovery: (id, lfn, n_events, input_bytes, state, attempts)."""
        cur = self._conn.execute(
            "SELECT tasklet_id, lfn, n_events, input_bytes, state, attempts "
            "FROM tasklets WHERE workflow=? ORDER BY tasklet_id",
            (workflow,),
        )
        return cur.fetchall()

    def has_tasklets(self, workflow: str) -> bool:
        cur = self._conn.execute(
            "SELECT 1 FROM tasklets WHERE workflow=? LIMIT 1", (workflow,)
        )
        return cur.fetchone() is not None

    def update_tasklets(self, tasklets: Iterable[Tasklet]) -> None:
        rows = [
            (t.state, t.attempts, t.workflow, t.tasklet_id) for t in tasklets
        ]
        self._conn.executemany(
            "UPDATE tasklets SET state=?, attempts=? WHERE workflow=? AND tasklet_id=?",
            rows,
        )
        self._conn.commit()

    # -- task records ------------------------------------------------------------
    def record_task_mapping(
        self, task_id: int, workflow: str, tasklet_ids: Sequence[int]
    ) -> None:
        self._conn.executemany(
            "INSERT INTO task_tasklets (task_id, workflow, tasklet_id) VALUES (?,?,?)",
            [(task_id, workflow, tid) for tid in tasklet_ids],
        )
        self._conn.commit()

    def record_result(self, workflow: str, result: TaskResult, n_tasklets: int) -> None:
        t = result.task
        self._conn.execute(
            "INSERT OR REPLACE INTO tasks (task_id, workflow, category, n_tasklets, "
            "exit_code, worker, submitted, started, finished, attempts, lost_time, "
            "wq_stage_in, wq_stage_out) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                t.task_id,
                workflow,
                t.category,
                n_tasklets,
                int(result.exit_code),
                result.worker_id,
                result.submitted,
                result.started,
                result.finished,
                t.attempts,
                t.lost_time,
                result.wq_stage_in,
                result.wq_stage_out,
            ),
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO segments (task_id, segment, seconds) VALUES (?,?,?)",
            [(t.task_id, seg, sec) for seg, sec in result.segments.items()],
        )
        self._conn.commit()

    def tasklets_for_task(self, task_id: int) -> List[int]:
        """Tasklet ids a task processed (for quarantine re-derivation)."""
        cur = self._conn.execute(
            "SELECT tasklet_id FROM task_tasklets WHERE task_id=? ORDER BY tasklet_id",
            (task_id,),
        )
        return [int(r[0]) for r in cur.fetchall()]

    # -- output commit ledger (exactly-once accounting) ---------------------------
    # State machine: pending -> committed -> merged, with quarantined as
    # the detour for outputs whose checksum failed verification.  A
    # quarantined name may be re-opened (merge retries reuse the group's
    # output name); pending/committed/merged names are unique forever,
    # which is what makes late/duplicate deliveries detectable.

    def ledger_begin(
        self,
        name: str,
        workflow: str,
        kind: str,
        checksum: str = "",
        size_bytes: float = 0.0,
        task_id: Optional[int] = None,
        created: Optional[float] = None,
    ) -> bool:
        """Phase one: record an output as pending.

        Returns False (writing nothing) when the name is already in the
        ledger in a live state — the caller is holding a duplicate
        delivery and must drop it.  A quarantined row is re-opened.
        """
        cur = self._conn.execute(
            "SELECT state FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        if row is not None and row[0] != "quarantined":
            return False
        self._conn.execute(
            "INSERT OR REPLACE INTO output_ledger "
            "(name, workflow, kind, task_id, checksum, size_bytes, state, created, committed) "
            "VALUES (?,?,?,?,?,?,'pending',?,NULL)",
            (name, workflow, kind, task_id, checksum, size_bytes, created),
        )
        self._conn.commit()
        return True

    def ledger_commit(self, name: str, t: Optional[float] = None) -> None:
        """Phase two: the output verified clean; mark it committed."""
        self._conn.execute(
            "UPDATE output_ledger SET state='committed', committed=? "
            "WHERE name=? AND state='pending'",
            (t, name),
        )
        self._conn.commit()

    def ledger_quarantine(self, name: str) -> None:
        self._conn.execute(
            "UPDATE output_ledger SET state='quarantined' WHERE name=?", (name,)
        )
        self._conn.commit()

    def ledger_mark_merged(
        self, child_names: Sequence[str], output_name: str
    ) -> None:
        """Children were consumed by a committed merged output."""
        self._conn.executemany(
            "UPDATE output_ledger SET state='merged' WHERE name=?",
            [(n,) for n in child_names],
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO merge_children (output_name, child_name) VALUES (?,?)",
            [(output_name, n) for n in child_names],
        )
        self._conn.commit()

    def ledger_state(self, name: str) -> Optional[str]:
        cur = self._conn.execute(
            "SELECT state FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        return row[0] if row is not None else None

    def ledger_task_id(self, name: str) -> Optional[int]:
        cur = self._conn.execute(
            "SELECT task_id FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        return int(row[0]) if row is not None and row[0] is not None else None

    def ledger_counts(self, workflow: Optional[str] = None) -> Dict[str, int]:
        if workflow is None:
            cur = self._conn.execute(
                "SELECT state, COUNT(*) FROM output_ledger GROUP BY state"
            )
        else:
            cur = self._conn.execute(
                "SELECT state, COUNT(*) FROM output_ledger WHERE workflow=? GROUP BY state",
                (workflow,),
            )
        return {k: int(v) for k, v in cur.fetchall()}

    def ledger_outputs(
        self, workflow: str, kind: str, state: str = "committed"
    ) -> List[Tuple[str, str, float, float, Optional[int]]]:
        """(name, checksum, size_bytes, created, task_id) rows for recovery."""
        cur = self._conn.execute(
            "SELECT name, checksum, size_bytes, created, task_id FROM output_ledger "
            "WHERE workflow=? AND kind=? AND state=? ORDER BY name",
            (workflow, kind, state),
        )
        return [
            (r[0], r[1], float(r[2]), float(r[3] or 0.0), r[4])
            for r in cur.fetchall()
        ]

    def ledger_sweep_orphans(self, workflow: str) -> List[str]:
        """Drop pending rows left by a crash; return the orphaned names."""
        cur = self._conn.execute(
            "SELECT name FROM output_ledger WHERE workflow=? AND state='pending' "
            "ORDER BY name",
            (workflow,),
        )
        names = [r[0] for r in cur.fetchall()]
        self._conn.executemany(
            "DELETE FROM output_ledger WHERE name=?", [(n,) for n in names]
        )
        self._conn.commit()
        return names

    # -- merge group persistence (restart-safe output names) ----------------------
    def record_merge_group(
        self,
        group_id: int,
        workflow: str,
        output_name: str,
        n_inputs: int,
        nbytes: float,
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO merge_groups "
            "(group_id, workflow, output_name, n_inputs, nbytes) VALUES (?,?,?,?,?)",
            (group_id, workflow, output_name, n_inputs, nbytes),
        )
        self._conn.commit()

    def max_merge_group_id(self) -> int:
        cur = self._conn.execute("SELECT COALESCE(MAX(group_id), 0) FROM merge_groups")
        return int(cur.fetchone()[0])

    def merge_children_of(self, output_name: str) -> List[str]:
        cur = self._conn.execute(
            "SELECT child_name FROM merge_children WHERE output_name=? ORDER BY child_name",
            (output_name,),
        )
        return [r[0] for r in cur.fetchall()]

    # -- queries (the monitoring drill-down of §5) --------------------------------
    def segment_totals(self) -> Dict[str, float]:
        """Total seconds spent per wrapper segment across all tasks."""
        cur = self._conn.execute(
            "SELECT segment, SUM(seconds) FROM segments GROUP BY segment"
        )
        return {row[0]: row[1] for row in cur.fetchall()}

    def segment_histogram(
        self, segment: str, bin_width: float
    ) -> List[Tuple[float, int]]:
        """Histogram of one segment's durations: [(bin_start, count)]."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        cur = self._conn.execute(
            "SELECT CAST(seconds/? AS INTEGER)*?, COUNT(*) FROM segments "
            "WHERE segment=? GROUP BY 1 ORDER BY 1",
            (bin_width, bin_width, segment),
        )
        return [(float(b), int(c)) for b, c in cur.fetchall()]

    def exit_code_counts(self) -> Dict[int, int]:
        cur = self._conn.execute(
            "SELECT exit_code, COUNT(*) FROM tasks GROUP BY exit_code"
        )
        return {int(k): int(v) for k, v in cur.fetchall() if k is not None}

    def task_count(self, workflow: Optional[str] = None) -> int:
        if workflow is None:
            cur = self._conn.execute("SELECT COUNT(*) FROM tasks")
        else:
            cur = self._conn.execute(
                "SELECT COUNT(*) FROM tasks WHERE workflow=?", (workflow,)
            )
        return int(cur.fetchone()[0])

    def completions_timeline(
        self, bin_width: float, category: str = "analysis"
    ) -> List[Tuple[float, int, int]]:
        """[(bin_start, completed, failed)] per time bin."""
        cur = self._conn.execute(
            "SELECT CAST(finished/? AS INTEGER)*?, "
            "SUM(CASE WHEN exit_code=0 THEN 1 ELSE 0 END), "
            "SUM(CASE WHEN exit_code!=0 THEN 1 ELSE 0 END) "
            "FROM tasks WHERE category=? AND finished IS NOT NULL "
            "GROUP BY 1 ORDER BY 1",
            (bin_width, bin_width, category),
        )
        return [(float(b), int(ok), int(bad)) for b, ok, bad in cur.fetchall()]

    def lost_time_total(self) -> float:
        cur = self._conn.execute("SELECT COALESCE(SUM(lost_time), 0) FROM tasks")
        return float(cur.fetchone()[0])

    def tasklet_state_counts(self, workflow: str) -> Dict[str, int]:
        cur = self._conn.execute(
            "SELECT state, COUNT(*) FROM tasklets WHERE workflow=? GROUP BY state",
            (workflow,),
        )
        return {k: int(v) for k, v in cur.fetchall()}
