"""The Lobster DB: persistent SQLite bookkeeping (paper §3, §5).

The main Lobster process records the mapping from tasklets to tasks and
every task's per-segment performance record in a local SQLite database.
The DB makes two things cheap: recovery after a scheduler crash (the
footnote in §3 — state is recovered from disk), and the histograms and
timelines the monitoring section (§5) relies on for troubleshooting.

Crash consistency contract: durable campaign state only changes inside
this module's transactions, and every transaction announces itself on
the ``db.checkpoint`` bus topic (a monotonically increasing ``seq`` plus
the operation name).  The ``repro.crashtest`` fuzzer snapshots the DB at
each checkpoint, so the checkpoint stream *is* the enumeration of every
state a ``kill -9`` of the master could leave behind.  Transitions that
must be indivisible for recovery to converge (output commit + tasklet
completion, quarantine + tasklet reopen, merged-output commit + child
retirement) are exposed as single-transaction methods below.
"""

from __future__ import annotations

import sqlite3
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..wq.task import TaskResult
from .unit import Tasklet

__all__ = ["LobsterDB"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS workflows (
    label       TEXT PRIMARY KEY,
    dataset     TEXT,
    n_tasklets  INTEGER NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS tasklets (
    tasklet_id  INTEGER NOT NULL,
    workflow    TEXT NOT NULL,
    lfn         TEXT,
    n_events    INTEGER NOT NULL,
    input_bytes REAL NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (workflow, tasklet_id)
);
CREATE TABLE IF NOT EXISTS tasks (
    task_id     INTEGER PRIMARY KEY,
    workflow    TEXT NOT NULL,
    category    TEXT NOT NULL,
    n_tasklets  INTEGER NOT NULL,
    exit_code   INTEGER,
    worker      TEXT,
    submitted   REAL,
    started     REAL,
    finished    REAL,
    attempts    INTEGER NOT NULL DEFAULT 0,
    lost_time   REAL NOT NULL DEFAULT 0.0,
    wq_stage_in REAL NOT NULL DEFAULT 0.0,
    wq_stage_out REAL NOT NULL DEFAULT 0.0
);
CREATE TABLE IF NOT EXISTS segments (
    task_id     INTEGER NOT NULL,
    segment     TEXT NOT NULL,
    seconds     REAL NOT NULL,
    PRIMARY KEY (task_id, segment)
);
CREATE TABLE IF NOT EXISTS task_tasklets (
    task_id     INTEGER NOT NULL,
    workflow    TEXT NOT NULL,
    tasklet_id  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS output_ledger (
    name        TEXT PRIMARY KEY,
    workflow    TEXT NOT NULL,
    kind        TEXT NOT NULL,
    task_id     INTEGER,
    checksum    TEXT NOT NULL DEFAULT '',
    size_bytes  REAL NOT NULL DEFAULT 0,
    state       TEXT NOT NULL,
    created     REAL,
    committed   REAL
);
CREATE TABLE IF NOT EXISTS merge_groups (
    group_id    INTEGER PRIMARY KEY,
    workflow    TEXT NOT NULL,
    output_name TEXT NOT NULL,
    n_inputs    INTEGER NOT NULL,
    nbytes      REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS merge_children (
    output_name TEXT NOT NULL,
    child_name  TEXT NOT NULL,
    PRIMARY KEY (output_name, child_name)
);
CREATE INDEX IF NOT EXISTS idx_tasks_workflow ON tasks (workflow);
CREATE INDEX IF NOT EXISTS idx_segments_name ON segments (segment);
CREATE INDEX IF NOT EXISTS idx_ledger_workflow ON output_ledger (workflow, state);
"""


class LobsterDB:
    """SQLite-backed run state and performance records."""

    def __init__(self, path: str = ":memory:", script: Optional[str] = None):
        self.path = path
        self._conn = sqlite3.connect(path)
        if script:
            # Rehydrate from a dump() snapshot; _SCHEMA below is
            # IF NOT EXISTS throughout, so replaying it is a no-op.
            self._conn.executescript(script)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()
        #: Monotonic count of durable transitions — the crash-point index.
        self.checkpoint_seq = 0
        self._checkpoint_port = None
        self._checkpoint_listeners: List[Callable[[int, str], None]] = []

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "LobsterDB":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- checkpoint stream (crash-point enumeration) ------------------------------
    def bind_bus(self, bus) -> None:
        """Announce each durable transition on the ``db.checkpoint`` topic."""
        from ..desim.bus import Topics

        self._checkpoint_port = bus.port(Topics.DB_CHECKPOINT)

    def add_checkpoint_listener(self, fn: Callable[[int, str], None]) -> None:
        """Call ``fn(seq, op)`` synchronously after each transaction."""
        self._checkpoint_listeners.append(fn)

    def checkpoint(self, op: str) -> int:
        """Record one durable transition; returns its sequence number."""
        self.checkpoint_seq += 1
        port = self._checkpoint_port
        if port is not None and port.on:
            port.emit(seq=self.checkpoint_seq, op=op)
        for fn in self._checkpoint_listeners:
            fn(self.checkpoint_seq, op)
        return self.checkpoint_seq

    def _commit(self, op: str) -> None:
        self._conn.commit()
        self.checkpoint(op)

    # -- snapshot / restore --------------------------------------------------------
    def dump(self) -> str:
        """Serialise every table as SQL (the crashtest snapshot format)."""
        return "\n".join(self._conn.iterdump())

    @classmethod
    def from_dump(cls, script: str) -> "LobsterDB":
        """A fresh in-memory DB rehydrated from a :meth:`dump` snapshot."""
        return cls(script=script)

    # -- workflow / tasklet bookkeeping ---------------------------------------
    def record_workflow(self, label: str, dataset: Optional[str], n_tasklets: int) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO workflows (label, dataset, n_tasklets) VALUES (?,?,?)",
            (label, dataset, n_tasklets),
        )
        self._commit("workflow.record")

    def record_tasklets(self, tasklets: Iterable[Tasklet]) -> None:
        rows = [
            (
                t.tasklet_id,
                t.workflow,
                t.lfn,
                t.n_events,
                t.input_bytes,
                t.state,
                t.attempts,
            )
            for t in tasklets
        ]
        self._conn.executemany(
            "INSERT OR REPLACE INTO tasklets "
            "(tasklet_id, workflow, lfn, n_events, input_bytes, state, attempts) "
            "VALUES (?,?,?,?,?,?,?)",
            rows,
        )
        self._commit("tasklet.allocate")

    def load_tasklets(self, workflow: str) -> List[Tuple]:
        """Rows for crash recovery: (id, lfn, n_events, input_bytes, state, attempts)."""
        cur = self._conn.execute(
            "SELECT tasklet_id, lfn, n_events, input_bytes, state, attempts "
            "FROM tasklets WHERE workflow=? ORDER BY tasklet_id",
            (workflow,),
        )
        return cur.fetchall()

    def has_tasklets(self, workflow: str) -> bool:
        cur = self._conn.execute(
            "SELECT 1 FROM tasklets WHERE workflow=? LIMIT 1", (workflow,)
        )
        return cur.fetchone() is not None

    def update_tasklets(self, tasklets: Iterable[Tasklet]) -> None:
        rows = [
            (t.state, t.attempts, t.workflow, t.tasklet_id) for t in tasklets
        ]
        self._conn.executemany(
            "UPDATE tasklets SET state=?, attempts=? WHERE workflow=? AND tasklet_id=?",
            rows,
        )
        self._commit("tasklet.update")

    # -- task records ------------------------------------------------------------
    def record_task_mapping(
        self, task_id: int, workflow: str, tasklet_ids: Sequence[int]
    ) -> None:
        self._conn.executemany(
            "INSERT INTO task_tasklets (task_id, workflow, tasklet_id) VALUES (?,?,?)",
            [(task_id, workflow, tid) for tid in tasklet_ids],
        )
        self._commit("task.map")

    def record_result(self, workflow: str, result: TaskResult, n_tasklets: int) -> None:
        t = result.task
        self._conn.execute(
            "INSERT OR REPLACE INTO tasks (task_id, workflow, category, n_tasklets, "
            "exit_code, worker, submitted, started, finished, attempts, lost_time, "
            "wq_stage_in, wq_stage_out) VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
            (
                t.task_id,
                workflow,
                t.category,
                n_tasklets,
                int(result.exit_code),
                result.worker_id,
                result.submitted,
                result.started,
                result.finished,
                t.attempts,
                t.lost_time,
                result.wq_stage_in,
                result.wq_stage_out,
            ),
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO segments (task_id, segment, seconds) VALUES (?,?,?)",
            [(t.task_id, seg, sec) for seg, sec in result.segments.items()],
        )
        self._commit("task.result")

    def tasklets_for_task(self, task_id: int) -> List[int]:
        """Tasklet ids a task processed (for quarantine re-derivation)."""
        cur = self._conn.execute(
            "SELECT tasklet_id FROM task_tasklets WHERE task_id=? ORDER BY tasklet_id",
            (task_id,),
        )
        return [int(r[0]) for r in cur.fetchall()]

    # -- output commit ledger (exactly-once accounting) ---------------------------
    # State machine: pending -> committed -> merged, with quarantined as
    # the detour for outputs whose checksum failed verification.  A
    # quarantined name may be re-opened (merge retries reuse the group's
    # output name); pending/committed/merged names are unique forever,
    # which is what makes late/duplicate deliveries detectable.

    def ledger_begin(
        self,
        name: str,
        workflow: str,
        kind: str,
        checksum: str = "",
        size_bytes: float = 0.0,
        task_id: Optional[int] = None,
        created: Optional[float] = None,
    ) -> bool:
        """Phase one: record an output as pending.

        Returns False (writing nothing) when the name is already in the
        ledger in a live state — the caller is holding a duplicate
        delivery and must drop it.  A quarantined row is re-opened.
        """
        cur = self._conn.execute(
            "SELECT state FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        if row is not None and row[0] != "quarantined":
            return False
        self._conn.execute(
            "INSERT OR REPLACE INTO output_ledger "
            "(name, workflow, kind, task_id, checksum, size_bytes, state, created, committed) "
            "VALUES (?,?,?,?,?,?,'pending',?,NULL)",
            (name, workflow, kind, task_id, checksum, size_bytes, created),
        )
        self._commit("ledger.begin")
        return True

    def ledger_commit(self, name: str, t: Optional[float] = None) -> None:
        """Phase two: the output verified clean; mark it committed."""
        self._conn.execute(
            "UPDATE output_ledger SET state='committed', committed=? "
            "WHERE name=? AND state='pending'",
            (t, name),
        )
        self._commit("ledger.commit")

    def ledger_quarantine(self, name: str) -> None:
        self._conn.execute(
            "UPDATE output_ledger SET state='quarantined' WHERE name=?", (name,)
        )
        self._commit("ledger.quarantine")

    def ledger_mark_merged(
        self, child_names: Sequence[str], output_name: str
    ) -> None:
        """Children were consumed by a committed merged output."""
        self._conn.executemany(
            "UPDATE output_ledger SET state='merged' WHERE name=?",
            [(n,) for n in child_names],
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO merge_children (output_name, child_name) VALUES (?,?)",
            [(output_name, n) for n in child_names],
        )
        self._commit("ledger.mark-merged")

    # -- indivisible transitions (crash-consistency critical) ---------------------
    # A crash between "the output is committed" and "its tasklets are
    # done" (or the quarantine/reopen and merged/retire counterparts)
    # leaves a state no recovery pass can distinguish from legitimate
    # progress, so those pairs share one transaction.  The exhaustive
    # crashtest fuzzer pinned each of these: see tests/test_crash_recovery.py.

    def ledger_commit_with_tasklets(
        self, name: str, t: Optional[float], tasklets: Iterable[Tasklet]
    ) -> None:
        """Commit an analysis output and persist its tasklets as one transition.

        Without atomicity a crash after the ledger commit but before the
        tasklet update restores those tasklets as pending, re-derives
        them, and the re-derived output collides with the committed name.
        """
        self._conn.execute(
            "UPDATE output_ledger SET state='committed', committed=? "
            "WHERE name=? AND state='pending'",
            (t, name),
        )
        self._conn.executemany(
            "UPDATE tasklets SET state=?, attempts=? WHERE workflow=? AND tasklet_id=?",
            [(tk.state, tk.attempts, tk.workflow, tk.tasklet_id) for tk in tasklets],
        )
        self._commit("ledger.commit")

    def ledger_quarantine_with_tasklets(
        self, name: str, tasklets: Iterable[Tasklet]
    ) -> None:
        """Quarantine an output and persist its reopened tasklets atomically.

        The inverse hazard of :meth:`ledger_commit_with_tasklets`: a crash
        between quarantine and reopen leaves tasklets 'done' with their
        only output quarantined — events silently lost on restart.
        """
        self._conn.execute(
            "UPDATE output_ledger SET state='quarantined' WHERE name=?", (name,)
        )
        self._conn.executemany(
            "UPDATE tasklets SET state=?, attempts=? WHERE workflow=? AND tasklet_id=?",
            [(tk.state, tk.attempts, tk.workflow, tk.tasklet_id) for tk in tasklets],
        )
        self._commit("ledger.quarantine")

    def ledger_commit_merged(
        self, name: str, t: Optional[float], child_names: Sequence[str]
    ) -> None:
        """Commit a merged output and retire its children in one transition.

        A crash between the merged commit and ``ledger_mark_merged`` left
        the children 'committed', so recovery re-pooled them into a second
        merge — the same events published twice.
        """
        self._conn.execute(
            "UPDATE output_ledger SET state='committed', committed=? "
            "WHERE name=? AND state='pending'",
            (t, name),
        )
        self._conn.executemany(
            "UPDATE output_ledger SET state='merged' WHERE name=?",
            [(n,) for n in child_names],
        )
        self._conn.executemany(
            "INSERT OR REPLACE INTO merge_children (output_name, child_name) VALUES (?,?)",
            [(name, n) for n in child_names],
        )
        self._commit("ledger.commit-merged")

    def ledger_state(self, name: str) -> Optional[str]:
        cur = self._conn.execute(
            "SELECT state FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        return row[0] if row is not None else None

    def ledger_task_id(self, name: str) -> Optional[int]:
        cur = self._conn.execute(
            "SELECT task_id FROM output_ledger WHERE name=?", (name,)
        )
        row = cur.fetchone()
        return int(row[0]) if row is not None and row[0] is not None else None

    def ledger_counts(self, workflow: Optional[str] = None) -> Dict[str, int]:
        if workflow is None:
            cur = self._conn.execute(
                "SELECT state, COUNT(*) FROM output_ledger GROUP BY state"
            )
        else:
            cur = self._conn.execute(
                "SELECT state, COUNT(*) FROM output_ledger WHERE workflow=? GROUP BY state",
                (workflow,),
            )
        return {k: int(v) for k, v in cur.fetchall()}

    def ledger_outputs(
        self, workflow: str, kind: str, state: str = "committed"
    ) -> List[Tuple[str, str, float, float, Optional[int]]]:
        """(name, checksum, size_bytes, created, task_id) rows for recovery."""
        cur = self._conn.execute(
            "SELECT name, checksum, size_bytes, created, task_id FROM output_ledger "
            "WHERE workflow=? AND kind=? AND state=? ORDER BY name",
            (workflow, kind, state),
        )
        return [
            (r[0], r[1], float(r[2]), float(r[3] or 0.0), r[4])
            for r in cur.fetchall()
        ]

    def ledger_sweep_orphans(self, workflow: Optional[str] = None) -> List[str]:
        """Drop pending rows left by a crash; return the orphaned names.

        With *workflow* None every workflow is swept — the campaign-wide
        pass a restarted master runs so pending rows of workflows whose
        tasklets were never persisted (crash during chaining) don't leak.
        """
        if workflow is None:
            cur = self._conn.execute(
                "SELECT name FROM output_ledger WHERE state='pending' ORDER BY name"
            )
        else:
            cur = self._conn.execute(
                "SELECT name FROM output_ledger WHERE workflow=? AND state='pending' "
                "ORDER BY name",
                (workflow,),
            )
        names = [r[0] for r in cur.fetchall()]
        self._conn.executemany(
            "DELETE FROM output_ledger WHERE name=?", [(n,) for n in names]
        )
        self._commit("ledger.sweep")
        return names

    # -- merge group persistence (restart-safe output names) ----------------------
    def record_merge_group(
        self,
        group_id: int,
        workflow: str,
        output_name: str,
        n_inputs: int,
        nbytes: float,
    ) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO merge_groups "
            "(group_id, workflow, output_name, n_inputs, nbytes) VALUES (?,?,?,?,?)",
            (group_id, workflow, output_name, n_inputs, nbytes),
        )
        self._commit("merge.group")

    def max_merge_group_id(self) -> int:
        cur = self._conn.execute("SELECT COALESCE(MAX(group_id), 0) FROM merge_groups")
        return int(cur.fetchone()[0])

    def max_task_id(self) -> int:
        """Highest task id any table has seen (for restart-safe id seeding).

        Output names embed the task id, so a restarted master whose task
        counter restarts at 1 would mint names that collide with committed
        ledger rows — the duplicate gate then silently drops the fresh
        work.  ``task_tasklets`` is written at dispatch and ``tasks`` only
        at result time, so take the max over every table carrying an id.
        """
        cur = self._conn.execute(
            "SELECT MAX(m) FROM ("
            "SELECT COALESCE(MAX(task_id), 0) AS m FROM tasks "
            "UNION ALL SELECT COALESCE(MAX(task_id), 0) FROM task_tasklets "
            "UNION ALL SELECT COALESCE(MAX(task_id), 0) FROM output_ledger)"
        )
        return int(cur.fetchone()[0])

    def merge_children_of(self, output_name: str) -> List[str]:
        cur = self._conn.execute(
            "SELECT child_name FROM merge_children WHERE output_name=? ORDER BY child_name",
            (output_name,),
        )
        return [r[0] for r in cur.fetchall()]

    # -- crash-consistency invariants ---------------------------------------------
    def check_invariants(self, se=None) -> List[str]:
        """Structural invariants that must hold at *every* checkpoint.

        Returns human-readable violation strings (empty list = clean).
        The crashtest fuzzer evaluates these on every snapshot, so each
        one doubles as a regression tripwire for the atomicity fixes
        above.  *se* is optional: a StorageElement (or a set of file
        names) enables the storage-side checks.

        1. Ledger states are drawn from the known state machine.
        2. A 'merged' row was retired by a recorded merge (merge_children).
        3. Every merge parent is itself a committed ledger row.
        4. Every recorded merge child is in state 'merged'.
        5. No tasklet is still open while the output derived from it is
           committed — the "open and owned by a live task" hazard.
        6. (with *se*) committed outputs exist in storage; retired merge
           children of committed parents do not.
        """
        problems: List[str] = []
        known = ("pending", "committed", "quarantined", "merged")
        cur = self._conn.execute(
            "SELECT name, state FROM output_ledger WHERE state NOT IN (?,?,?,?)",
            known,
        )
        for name, state in cur.fetchall():
            problems.append(f"ledger row {name} in unknown state {state!r}")
        cur = self._conn.execute(
            "SELECT name FROM output_ledger WHERE state='merged' AND name NOT IN "
            "(SELECT child_name FROM merge_children)"
        )
        for (name,) in cur.fetchall():
            problems.append(f"merged row {name} has no merge_children record")
        cur = self._conn.execute(
            "SELECT DISTINCT mc.output_name, l.state FROM merge_children mc "
            "LEFT JOIN output_ledger l ON l.name = mc.output_name "
            "WHERE l.state IS NULL OR l.state != 'committed'"
        )
        for name, state in cur.fetchall():
            problems.append(
                f"merge parent {name} not committed (state={state!r})"
            )
        cur = self._conn.execute(
            "SELECT mc.child_name, l.state FROM merge_children mc "
            "LEFT JOIN output_ledger l ON l.name = mc.child_name "
            "WHERE l.state IS NULL OR l.state != 'merged'"
        )
        for name, state in cur.fetchall():
            problems.append(f"merge child {name} not retired (state={state!r})")
        cur = self._conn.execute(
            "SELECT l.name, tt.tasklet_id, t.state FROM output_ledger l "
            "JOIN task_tasklets tt ON tt.task_id = l.task_id "
            "JOIN tasklets t ON t.workflow = tt.workflow AND t.tasklet_id = tt.tasklet_id "
            "WHERE l.kind='analysis' AND l.state IN ('committed','merged') "
            "AND l.task_id IS NOT NULL AND t.state NOT IN ('done','failed')"
        )
        for name, tid, state in cur.fetchall():
            problems.append(
                f"output {name} committed but tasklet {tid} still {state!r}"
            )
        if se is not None:
            exists = se.exists if hasattr(se, "exists") else (lambda n: n in se)
            cur = self._conn.execute(
                "SELECT name FROM output_ledger WHERE state='committed'"
            )
            for (name,) in cur.fetchall():
                if not exists(name):
                    problems.append(f"committed output {name} missing from SE")
            cur = self._conn.execute(
                "SELECT mc.child_name FROM merge_children mc "
                "JOIN output_ledger l ON l.name = mc.output_name "
                "WHERE l.state='committed'"
            )
            for (name,) in cur.fetchall():
                if exists(name):
                    problems.append(
                        f"retired merge child {name} still present in SE"
                    )
        return problems

    # -- queries (the monitoring drill-down of §5) --------------------------------
    def segment_totals(self) -> Dict[str, float]:
        """Total seconds spent per wrapper segment across all tasks."""
        cur = self._conn.execute(
            "SELECT segment, SUM(seconds) FROM segments GROUP BY segment"
        )
        return {row[0]: row[1] for row in cur.fetchall()}

    def segment_histogram(
        self, segment: str, bin_width: float
    ) -> List[Tuple[float, int]]:
        """Histogram of one segment's durations: [(bin_start, count)]."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        cur = self._conn.execute(
            "SELECT CAST(seconds/? AS INTEGER)*?, COUNT(*) FROM segments "
            "WHERE segment=? GROUP BY 1 ORDER BY 1",
            (bin_width, bin_width, segment),
        )
        return [(float(b), int(c)) for b, c in cur.fetchall()]

    def exit_code_counts(self) -> Dict[int, int]:
        cur = self._conn.execute(
            "SELECT exit_code, COUNT(*) FROM tasks GROUP BY exit_code"
        )
        return {int(k): int(v) for k, v in cur.fetchall() if k is not None}

    def task_count(self, workflow: Optional[str] = None) -> int:
        if workflow is None:
            cur = self._conn.execute("SELECT COUNT(*) FROM tasks")
        else:
            cur = self._conn.execute(
                "SELECT COUNT(*) FROM tasks WHERE workflow=?", (workflow,)
            )
        return int(cur.fetchone()[0])

    def completions_timeline(
        self, bin_width: float, category: str = "analysis"
    ) -> List[Tuple[float, int, int]]:
        """[(bin_start, completed, failed)] per time bin."""
        cur = self._conn.execute(
            "SELECT CAST(finished/? AS INTEGER)*?, "
            "SUM(CASE WHEN exit_code=0 THEN 1 ELSE 0 END), "
            "SUM(CASE WHEN exit_code!=0 THEN 1 ELSE 0 END) "
            "FROM tasks WHERE category=? AND finished IS NOT NULL "
            "GROUP BY 1 ORDER BY 1",
            (bin_width, bin_width, category),
        )
        return [(float(b), int(ok), int(bad)) for b, ok, bad in cur.fetchall()]

    def lost_time_total(self) -> float:
        cur = self._conn.execute("SELECT COALESCE(SUM(lost_time), 0) FROM tasks")
        return float(cur.fetchone()[0])

    def workflow_labels(self) -> List[str]:
        """Labels of every workflow this campaign has recorded."""
        cur = self._conn.execute("SELECT label FROM workflows ORDER BY label")
        return [r[0] for r in cur.fetchall()]

    def tasklet_state_counts(self, workflow: str) -> Dict[str, int]:
        cur = self._conn.execute(
            "SELECT state, COUNT(*) FROM tasklets WHERE workflow=? GROUP BY state",
            (workflow,),
        )
        return {k: int(v) for k, v in cur.fetchall()}
