"""Output merging (paper §4.4, Fig 7).

Lobster's eviction-tuned task sizes produce many small output files
(10–100 MB) that must be merged into publication-sized ones (3–4 GB).
Three strategies are implemented, exactly as the paper describes:

* **sequential** — after all analysis tasks finish, group the outputs
  and run merge tasks through Work Queue like ordinary tasks;
* **hadoop** — after processing, run the merge entirely inside the
  Hadoop storage cluster as a Map-Reduce job (map groups file names,
  reducers pull and concatenate data-locally);
* **interleaved** — once a workflow is ≥ 10 % processed, create merge
  tasks as soon as enough finished outputs accumulate to fill one
  target-size file; merge tasks run alongside analysis tasks.  This is
  Lobster's default: least resource-efficient but fastest to finish.

Integrity: merging is the hop where silent corruption becomes
irreversible (children are deleted), so the manager only consumes
ledger-committed inputs whose checksums verify, quarantines corrupt
ones for the control loop to re-derive, and commits the merged output
two-phase — children are deleted only *after* the merged file itself
stored, verified and committed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..analysis import ExitCode, FrameworkReport
from ..desim import Topics
from ..hadoop import MapReduceJob, TaskCost
from ..net import TrafficClass
from ..storage import ChirpError, StoredFile, XrootdError, compute_checksum
from ..storage.integrity import IntegrityError
from ..wq import Task
from .config import LobsterConfig, MergeMode, WorkflowConfig
from .services import Services
from .unit import TaskPayload
from .wrapper import Segment

__all__ = ["MergeGroup", "plan_groups", "MergeManager", "merge_executor"]

#: CPU cost of concatenating output data (seconds per byte).
MERGE_CPU_PER_BYTE = 2e-9


class MergeGroup:
    """A set of small outputs destined for one merged file."""

    # A plain integer instead of itertools.count so a recovered run can
    # seed it past the ids already recorded in the Lobster DB — a fresh
    # process restarting with a persistent DB must not reuse
    # ``merged_00001.root`` and overwrite committed outputs.
    _next_id = 1

    @classmethod
    def _take_id(cls) -> int:
        gid = cls._next_id
        cls._next_id += 1
        return gid

    @classmethod
    def seed_ids(cls, start: int) -> None:
        """Ensure future group ids start at or above *start*."""
        cls._next_id = max(cls._next_id, int(start))

    def __init__(self, inputs: List[StoredFile], workflow: str):
        if not inputs:
            raise ValueError("a merge group needs at least one input")
        self.group_id = MergeGroup._take_id()
        self.inputs = list(inputs)
        self.workflow = workflow
        self.output_name = f"/store/user/{workflow}/merged/merged_{self.group_id:05d}.root"
        self.attempts = 0

    @property
    def total_bytes(self) -> float:
        return sum(f.size_bytes for f in self.inputs)

    @property
    def checksum(self) -> str:
        """Digest of the concatenation, derived from the child digests."""
        return compute_checksum("merge", *(f.checksum for f in self.inputs))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MergeGroup {self.group_id} files={len(self.inputs)} bytes={self.total_bytes:.0f}>"


def plan_groups(
    files: List[StoredFile],
    target_bytes: float,
    workflow: str,
    allow_partial: bool = True,
) -> Tuple[List[MergeGroup], List[StoredFile]]:
    """Greedy grouping of *files* into ~*target_bytes* merge groups.

    Returns (groups, leftovers).  With *allow_partial* the trailing
    under-sized group is also emitted; otherwise its files are returned
    as leftovers (the interleaved planner waits for more outputs).
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    groups: List[MergeGroup] = []
    bucket: List[StoredFile] = []
    size = 0.0
    for f in sorted(files, key=lambda f: f.name):
        bucket.append(f)
        size += f.size_bytes
        if size >= target_bytes:
            groups.append(MergeGroup(bucket, workflow))
            bucket, size = [], 0.0
    if bucket:
        if allow_partial:
            groups.append(MergeGroup(bucket, workflow))
            bucket = []
    return groups, bucket


def merge_executor(workflow: WorkflowConfig, services: Services):
    """Build the WQ executor for merge tasks.

    Merge inputs are transferred via XrootD (paper: "transferring data
    via XrootD (input files only)"), concatenated, and the merged file
    staged out via Chirp.  Before any byte is read each input's checksum
    is re-verified against the storage element — a corrupt child fails
    the task with the offending names annotated, so the manager can
    quarantine them instead of blindly retrying.
    """

    def executor(worker, task):
        env = worker.env
        payload: TaskPayload = task.payload
        group: MergeGroup = payload.merge_inputs[0]
        segments: Dict[str, float] = {}
        report = FrameworkReport()
        total = group.total_bytes

        # ---- input: verify, then pull the small files over XrootD ----
        t0 = env.now
        se = services.se
        corrupt: List[str] = []
        for f in group.inputs:
            if not se.exists(f.name):
                continue
            try:
                se.verify(f.name)
            except IntegrityError:
                corrupt.append(f.name)
        if corrupt:
            segments[Segment.STAGE_IN] = env.now - t0
            report.exit_code = ExitCode.FILE_READ_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_IN
            report.annotations["corrupt_inputs"] = ",".join(corrupt)
            return report.exit_code, segments, report
        try:
            stream = yield from services.xrootd.open(group.inputs[0].name)
            yield from stream.read(
                total, client_link=worker.machine.nic, cls=TrafficClass.MERGE
            )
            stream.close()
        except XrootdError:
            segments[Segment.STAGE_IN] = env.now - t0
            report.exit_code = ExitCode.FILE_READ_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_IN
            return report.exit_code, segments, report
        segments[Segment.STAGE_IN] = env.now - t0

        # ---- concatenate --------------------------------------------
        t0 = env.now
        yield env.timeout(total * MERGE_CPU_PER_BYTE)
        segments[Segment.CPU] = env.now - t0

        # ---- stage the merged file out via Chirp ---------------------
        t0 = env.now
        try:
            yield from services.chirp.put(
                total, client_link=worker.machine.nic, cls=TrafficClass.MERGE
            )
        except ChirpError:
            segments[Segment.STAGE_OUT] = env.now - t0
            report.exit_code = ExitCode.STAGE_OUT_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_OUT
            return report.exit_code, segments, report
        segments[Segment.STAGE_OUT] = env.now - t0

        report.exit_code = ExitCode.SUCCESS
        report.output_bytes = total
        report.output_checksum = group.checksum
        return ExitCode.SUCCESS, segments, report

    return executor


class MergeManager:
    """Tracks unmerged outputs and creates merge work per strategy."""

    def __init__(
        self,
        cfg: LobsterConfig,
        workflow: WorkflowConfig,
        services: Services,
        db=None,
    ):
        self.cfg = cfg
        self.workflow = workflow
        self.services = services
        self.db = db
        self.mode = workflow.merge_mode
        self._executor = merge_executor(workflow, services)
        #: Finished analysis outputs not yet claimed by a merge group.
        self.unmerged: List[StoredFile] = []
        #: Groups currently being merged (group_id -> group).
        self.in_flight: Dict[int, MergeGroup] = {}
        self.merged_files: List[StoredFile] = []
        self.abandoned_groups: List[MergeGroup] = []
        self.merge_tasks_created = 0
        #: Corrupt inputs awaiting re-derivation; the control loop
        #: drains this via take_quarantined().
        self.quarantined: List[StoredFile] = []

    # -- event hooks called by LobsterRun ------------------------------------
    def add_output(self, f: StoredFile) -> None:
        if self.mode != MergeMode.NONE:
            self.unmerged.append(f)

    def take_quarantined(self) -> List[StoredFile]:
        """Hand corrupt inputs to the control loop for re-derivation."""
        out, self.quarantined = self.quarantined, []
        return out

    def _screen_inputs(self) -> None:
        """Keep only committed-and-verified outputs in the merge pool.

        Merge must never consume a corrupt or uncommitted child: the
        merged output would inherit the damage and the children get
        deleted.  Anything failing the screen moves to quarantine.
        """
        if not self.unmerged:
            return
        se = self.services.se
        clean: List[StoredFile] = []
        for f in self.unmerged:
            if self.db is not None:
                state = self.db.ledger_state(f.name)
                if state is not None and state != "committed":
                    self.quarantined.append(f)
                    continue
            try:
                if se.exists(f.name):
                    se.verify(f.name)
                clean.append(f)
            except IntegrityError:
                self.quarantined.append(f)
        self.unmerged = clean

    def make_tasks(self, processed_fraction: float, final: bool) -> List[Task]:
        """Create merge tasks per the strategy.  Idempotent per output."""
        if self.mode in (MergeMode.NONE, MergeMode.HADOOP):
            return []
        if self.mode == MergeMode.SEQUENTIAL and not final:
            return []
        if (
            self.mode == MergeMode.INTERLEAVED
            and not final
            and processed_fraction < self.workflow.merge_threshold
        ):
            return []

        self._screen_inputs()
        groups, leftovers = plan_groups(
            self.unmerged,
            self.workflow.merge_target_bytes,
            self.workflow.label,
            allow_partial=final,
        )
        self.unmerged = leftovers
        return [self._task_for(g) for g in groups]

    def _task_for(self, group: MergeGroup) -> Task:
        self.in_flight[group.group_id] = group
        self.merge_tasks_created += 1
        if self.db is not None:
            self.db.record_merge_group(
                group.group_id,
                self.workflow.label,
                group.output_name,
                len(group.inputs),
                group.total_bytes,
            )
        bus = self.services.env.bus
        if bus:
            bus.publish(
                Topics.MERGE_SUBMIT,
                group=group.group_id,
                workflow=self.workflow.label,
                files=len(group.inputs),
                nbytes=group.total_bytes,
                attempt=group.attempts,
            )
        payload = TaskPayload(
            workflow=self.workflow.label,
            tasklets=[],
            category="merge",
            merge_inputs=[group],
            merge_output_name=group.output_name,
        )
        return Task(
            executor=self._executor,
            payload=payload,
            sandbox_bytes=self.cfg.sandbox_bytes,
            category="merge",
        )

    def on_result(self, result) -> Optional[Task]:
        """Handle a merge task result; may return a retry task."""
        group: MergeGroup = result.task.payload.merge_inputs[0]
        env = self.services.env
        bus = env.bus
        if group.group_id not in self.in_flight:
            # A duplicate/late merge result: the group was already
            # resolved.  Storing again would overwrite the committed
            # merged file, so drop it.
            if bus:
                bus.publish(
                    Topics.TASK_DUPLICATE,
                    task_id=result.task.task_id,
                    category="merge",
                    source="merge",
                    group=group.group_id,
                    workflow=self.workflow.label,
                )
            return None
        del self.in_flight[group.group_id]
        if bus:
            bus.publish(
                Topics.MERGE_DONE if result.succeeded else Topics.MERGE_RETRY,
                group=group.group_id,
                workflow=self.workflow.label,
                ok=result.succeeded,
                nbytes=group.total_bytes,
                attempt=group.attempts,
            )
        if result.succeeded:
            if self._commit_merged(group, result.finished, task_id=result.task.task_id):
                return None
            # The merged file itself arrived corrupt (e.g. truncated
            # stage-out): children are untouched, retry the merge.
            return self._retry(group)

        # Failure: pull any corrupt children out for re-derivation and
        # return the survivors to the pool — retrying a group with a
        # known-bad input can never succeed.
        report = getattr(result, "report", None)
        corrupt = set()
        if report is not None:
            names = report.annotations.get("corrupt_inputs", "")
            corrupt = {n for n in names.split(",") if n}
        if corrupt:
            self.quarantined.extend(f for f in group.inputs if f.name in corrupt)
            self.unmerged.extend(f for f in group.inputs if f.name not in corrupt)
            return None
        return self._retry(group)

    def _retry(self, group: MergeGroup) -> Optional[Task]:
        group.attempts += 1
        if group.attempts >= self.workflow.max_retries:
            self.abandoned_groups.append(group)
            return None
        return self._task_for(group)

    def _commit_merged(
        self, group: MergeGroup, finished: float, task_id: Optional[int] = None
    ) -> bool:
        """Two-phase commit of one merged output.

        Store → verify → delete the children → commit the merged output
        *and* retire the children in one ledger transaction.  Committing
        before retiring used to leave a window where a crash re-pooled
        already-merged children into a second merge (double-published
        events); the crashtest fuzzer pins that ordering now.  Returns
        False (rolling the store back) when verification fails, leaving
        children intact.
        """
        se = self.services.se
        merged = StoredFile(
            name=group.output_name,
            size_bytes=group.total_bytes,
            created=finished,
            source=self.workflow.label,
            checksum=group.checksum if self.cfg.verify_outputs else "",
        )
        if self.db is not None:
            self.db.ledger_begin(
                merged.name,
                self.workflow.label,
                "merge",
                checksum=merged.checksum,
                size_bytes=merged.size_bytes,
                created=merged.created,
            )
        if se.exists(merged.name):
            # Leftover from a crashed attempt; replace it.
            se.delete(merged.name)
        se.store(merged)
        try:
            se.verify(merged.name)
        except IntegrityError:
            se.delete(merged.name)
            if self.db is not None:
                self.db.ledger_quarantine(merged.name)
            return False
        children = [f.name for f in group.inputs]
        for name in children:
            if se.exists(name):
                se.delete(name)
        if self.db is not None:
            self.db.ledger_commit_merged(merged.name, finished, children)
        bus = self.services.env.bus
        if bus:
            bus.publish(
                Topics.INTEGRITY_COMMIT,
                name=merged.name,
                workflow=self.workflow.label,
                kind="merge",
                checksum=merged.checksum,
                nbytes=merged.size_bytes,
                task_id=task_id,
            )
        self.merged_files.append(merged)
        return True

    @property
    def complete(self) -> bool:
        if self.mode == MergeMode.NONE:
            return True
        return not self.in_flight and not self.unmerged

    # -- the Hadoop path ------------------------------------------------------------
    def run_hadoop_merge(self):
        """DES process: merge everything via Map-Reduce (paper §4.4).

        The map phase groups the small-file names; each reducer pulls one
        group's data to its node, merges, and writes back into HDFS.
        """
        if self.services.mapreduce is None:
            raise RuntimeError("hadoop merge requires Services.mapreduce")
        self._screen_inputs()
        groups, leftovers = plan_groups(
            self.unmerged, self.workflow.merge_target_bytes, self.workflow.label
        )
        self.unmerged = list(leftovers)
        by_id = {g.group_id: g for g in groups}
        records = [(g.group_id, f) for g in groups for f in g.inputs]

        job = MapReduceJob(
            name=f"merge-{self.workflow.label}",
            records=records,
            map_fn=lambda record: [(record[0], record[1])],
            map_cost=lambda record: TaskCost(cpu_seconds=0.01),
            reduce_fn=lambda key, values: by_id[key].output_name,
            reduce_cost=lambda key, values: TaskCost(
                cpu_seconds=by_id[key].total_bytes * MERGE_CPU_PER_BYTE,
                read_bytes=by_id[key].total_bytes,
                write_bytes=by_id[key].total_bytes,
            ),
            reduce_output=lambda key: by_id[key].output_name,
        )
        results = yield from self.services.mapreduce.run(job)
        now = self.services.env.now
        for gid, _name in sorted(results.items()):
            self._commit_merged(by_id[gid], now)
        return results
