"""Output merging (paper §4.4, Fig 7).

Lobster's eviction-tuned task sizes produce many small output files
(10–100 MB) that must be merged into publication-sized ones (3–4 GB).
Three strategies are implemented, exactly as the paper describes:

* **sequential** — after all analysis tasks finish, group the outputs
  and run merge tasks through Work Queue like ordinary tasks;
* **hadoop** — after processing, run the merge entirely inside the
  Hadoop storage cluster as a Map-Reduce job (map groups file names,
  reducers pull and concatenate data-locally);
* **interleaved** — once a workflow is ≥ 10 % processed, create merge
  tasks as soon as enough finished outputs accumulate to fill one
  target-size file; merge tasks run alongside analysis tasks.  This is
  Lobster's default: least resource-efficient but fastest to finish.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, List, Optional, Tuple

from ..analysis import ExitCode, FrameworkReport
from ..desim import Topics
from ..hadoop import MapReduceJob, TaskCost
from ..net import TrafficClass
from ..storage import ChirpError, StoredFile, XrootdError
from ..wq import Task
from .config import LobsterConfig, MergeMode, WorkflowConfig
from .services import Services
from .unit import TaskPayload
from .wrapper import Segment

__all__ = ["MergeGroup", "plan_groups", "MergeManager", "merge_executor"]

#: CPU cost of concatenating output data (seconds per byte).
MERGE_CPU_PER_BYTE = 2e-9


class MergeGroup:
    """A set of small outputs destined for one merged file."""

    _ids = count(1)

    def __init__(self, inputs: List[StoredFile], workflow: str):
        if not inputs:
            raise ValueError("a merge group needs at least one input")
        self.group_id = next(MergeGroup._ids)
        self.inputs = list(inputs)
        self.workflow = workflow
        self.output_name = f"/store/user/{workflow}/merged/merged_{self.group_id:05d}.root"
        self.attempts = 0

    @property
    def total_bytes(self) -> float:
        return sum(f.size_bytes for f in self.inputs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MergeGroup {self.group_id} files={len(self.inputs)} bytes={self.total_bytes:.0f}>"


def plan_groups(
    files: List[StoredFile],
    target_bytes: float,
    workflow: str,
    allow_partial: bool = True,
) -> Tuple[List[MergeGroup], List[StoredFile]]:
    """Greedy grouping of *files* into ~*target_bytes* merge groups.

    Returns (groups, leftovers).  With *allow_partial* the trailing
    under-sized group is also emitted; otherwise its files are returned
    as leftovers (the interleaved planner waits for more outputs).
    """
    if target_bytes <= 0:
        raise ValueError("target_bytes must be positive")
    groups: List[MergeGroup] = []
    bucket: List[StoredFile] = []
    size = 0.0
    for f in sorted(files, key=lambda f: f.name):
        bucket.append(f)
        size += f.size_bytes
        if size >= target_bytes:
            groups.append(MergeGroup(bucket, workflow))
            bucket, size = [], 0.0
    if bucket:
        if allow_partial:
            groups.append(MergeGroup(bucket, workflow))
            bucket = []
    return groups, bucket


def merge_executor(workflow: WorkflowConfig, services: Services):
    """Build the WQ executor for merge tasks.

    Merge inputs are transferred via XrootD (paper: "transferring data
    via XrootD (input files only)"), concatenated, and the merged file
    staged out via Chirp.
    """

    def executor(worker, task):
        env = worker.env
        payload: TaskPayload = task.payload
        group: MergeGroup = payload.merge_inputs[0]
        segments: Dict[str, float] = {}
        report = FrameworkReport()
        total = group.total_bytes

        # ---- input: pull the small files over XrootD ----------------
        t0 = env.now
        try:
            stream = yield from services.xrootd.open(group.inputs[0].name)
            yield from stream.read(
                total, client_link=worker.machine.nic, cls=TrafficClass.MERGE
            )
            stream.close()
        except XrootdError:
            segments[Segment.STAGE_IN] = env.now - t0
            report.exit_code = ExitCode.FILE_READ_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_IN
            return report.exit_code, segments, report
        segments[Segment.STAGE_IN] = env.now - t0

        # ---- concatenate --------------------------------------------
        t0 = env.now
        yield env.timeout(total * MERGE_CPU_PER_BYTE)
        segments[Segment.CPU] = env.now - t0

        # ---- stage the merged file out via Chirp ---------------------
        t0 = env.now
        try:
            yield from services.chirp.put(
                total, client_link=worker.machine.nic, cls=TrafficClass.MERGE
            )
        except ChirpError:
            segments[Segment.STAGE_OUT] = env.now - t0
            report.exit_code = ExitCode.STAGE_OUT_FAILED
            report.annotations["failed_segment"] = Segment.STAGE_OUT
            return report.exit_code, segments, report
        segments[Segment.STAGE_OUT] = env.now - t0

        report.exit_code = ExitCode.SUCCESS
        report.output_bytes = total
        return ExitCode.SUCCESS, segments, report

    return executor


class MergeManager:
    """Tracks unmerged outputs and creates merge work per strategy."""

    def __init__(
        self,
        cfg: LobsterConfig,
        workflow: WorkflowConfig,
        services: Services,
    ):
        self.cfg = cfg
        self.workflow = workflow
        self.services = services
        self.mode = workflow.merge_mode
        self._executor = merge_executor(workflow, services)
        #: Finished analysis outputs not yet claimed by a merge group.
        self.unmerged: List[StoredFile] = []
        #: Groups currently being merged (group_id -> group).
        self.in_flight: Dict[int, MergeGroup] = {}
        self.merged_files: List[StoredFile] = []
        self.abandoned_groups: List[MergeGroup] = []
        self.merge_tasks_created = 0

    # -- event hooks called by LobsterRun ------------------------------------
    def add_output(self, f: StoredFile) -> None:
        if self.mode != MergeMode.NONE:
            self.unmerged.append(f)

    def make_tasks(self, processed_fraction: float, final: bool) -> List[Task]:
        """Create merge tasks per the strategy.  Idempotent per output."""
        if self.mode in (MergeMode.NONE, MergeMode.HADOOP):
            return []
        if self.mode == MergeMode.SEQUENTIAL and not final:
            return []
        if (
            self.mode == MergeMode.INTERLEAVED
            and not final
            and processed_fraction < self.workflow.merge_threshold
        ):
            return []

        groups, leftovers = plan_groups(
            self.unmerged,
            self.workflow.merge_target_bytes,
            self.workflow.label,
            allow_partial=final,
        )
        self.unmerged = leftovers
        return [self._task_for(g) for g in groups]

    def _task_for(self, group: MergeGroup) -> Task:
        self.in_flight[group.group_id] = group
        self.merge_tasks_created += 1
        bus = self.services.env.bus
        if bus:
            bus.publish(
                Topics.MERGE_SUBMIT,
                group=group.group_id,
                workflow=self.workflow.label,
                files=len(group.inputs),
                nbytes=group.total_bytes,
                attempt=group.attempts,
            )
        payload = TaskPayload(
            workflow=self.workflow.label,
            tasklets=[],
            category="merge",
            merge_inputs=[group],
            merge_output_name=group.output_name,
        )
        return Task(
            executor=self._executor,
            payload=payload,
            sandbox_bytes=self.cfg.sandbox_bytes,
            category="merge",
        )

    def on_result(self, result) -> Optional[Task]:
        """Handle a merge task result; may return a retry task."""
        group: MergeGroup = result.task.payload.merge_inputs[0]
        self.in_flight.pop(group.group_id, None)
        bus = self.services.env.bus
        if bus:
            bus.publish(
                Topics.MERGE_DONE if result.succeeded else Topics.MERGE_RETRY,
                group=group.group_id,
                workflow=self.workflow.label,
                ok=result.succeeded,
                nbytes=group.total_bytes,
                attempt=group.attempts,
            )
        if result.succeeded:
            merged = StoredFile(
                name=group.output_name,
                size_bytes=group.total_bytes,
                created=result.finished,
                source=self.workflow.label,
            )
            self.merged_files.append(merged)
            se = self.services.se
            for f in group.inputs:
                if se.exists(f.name):
                    se.delete(f.name)
            se.store(merged)
            return None
        group.attempts += 1
        if group.attempts >= self.workflow.max_retries:
            self.abandoned_groups.append(group)
            return None
        return self._task_for(group)

    @property
    def complete(self) -> bool:
        if self.mode == MergeMode.NONE:
            return True
        return not self.in_flight and not self.unmerged

    # -- the Hadoop path ------------------------------------------------------------
    def run_hadoop_merge(self):
        """DES process: merge everything via Map-Reduce (paper §4.4).

        The map phase groups the small-file names; each reducer pulls one
        group's data to its node, merges, and writes back into HDFS.
        """
        if self.services.mapreduce is None:
            raise RuntimeError("hadoop merge requires Services.mapreduce")
        groups, leftovers = plan_groups(
            self.unmerged, self.workflow.merge_target_bytes, self.workflow.label
        )
        self.unmerged = list(leftovers)
        by_id = {g.group_id: g for g in groups}
        records = [(g.group_id, f) for g in groups for f in g.inputs]

        job = MapReduceJob(
            name=f"merge-{self.workflow.label}",
            records=records,
            map_fn=lambda record: [(record[0], record[1])],
            map_cost=lambda record: TaskCost(cpu_seconds=0.01),
            reduce_fn=lambda key, values: by_id[key].output_name,
            reduce_cost=lambda key, values: TaskCost(
                cpu_seconds=by_id[key].total_bytes * MERGE_CPU_PER_BYTE,
                read_bytes=by_id[key].total_bytes,
                write_bytes=by_id[key].total_bytes,
            ),
            reduce_output=lambda key: by_id[key].output_name,
        )
        results = yield from self.services.mapreduce.run(job)
        now = self.services.env.now
        se = self.services.se
        for gid, name in results.items():
            g = by_id[gid]
            merged = StoredFile(
                name=name, size_bytes=g.total_bytes, created=now, source=self.workflow.label
            )
            self.merged_files.append(merged)
            for f in g.inputs:
                if se.exists(f.name):
                    se.delete(f.name)
            se.store(merged)
        return results
