"""Dynamic task-size adaptation (paper §8, future work).

The paper closes by proposing "automatic performance optimization
through dynamic adjustment of task size in the face of changing eviction
rates and resource performance", to remove the human from the loop when
opportunistic conditions shift.  This module implements that controller.

The controller watches a sliding window of recent task results and moves
the workflow's ``tasklets_per_task`` between bounds:

* **shrink** when eviction losses dominate — lost runtime fraction above
  a threshold means tasks outlive the typical worker (the paper's §5
  "high values of lost runtime suggest that the target task size is too
  high");
* **grow** when per-task overhead dominates — if the non-CPU fraction of
  successful tasks exceeds a threshold while losses are low, tasks are
  too small to amortise their fixed costs (the left side of Fig 3).

Decisions are multiplicative with hysteresis (a cooldown of at least one
window between changes) so the controller cannot oscillate on noise.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..wq.task import TaskResult

__all__ = ["AdaptiveTaskSizer", "SizerDecision"]


@dataclass(frozen=True)
class SizerDecision:
    """One adaptation step, kept for post-run analysis."""

    time: float
    old_size: int
    new_size: int
    reason: str
    lost_fraction: float
    overhead_fraction: float


class AdaptiveTaskSizer:
    """Feedback controller for the tasklets-per-task knob."""

    def __init__(
        self,
        initial_size: int,
        min_size: int = 1,
        max_size: int = 60,
        window: int = 50,
        lost_threshold: float = 0.15,
        overhead_threshold: float = 0.35,
        shrink_factor: float = 0.5,
        grow_factor: float = 1.5,
    ):
        if not min_size <= initial_size <= max_size:
            raise ValueError("need min_size <= initial_size <= max_size")
        if window <= 0:
            raise ValueError("window must be positive")
        if not 0 < shrink_factor < 1:
            raise ValueError("shrink_factor must lie in (0, 1)")
        if grow_factor <= 1:
            raise ValueError("grow_factor must exceed 1")
        self.size = initial_size
        self.min_size = min_size
        self.max_size = max_size
        self.window = window
        self.lost_threshold = lost_threshold
        self.overhead_threshold = overhead_threshold
        self.shrink_factor = shrink_factor
        self.grow_factor = grow_factor
        self._results: Deque[Tuple[float, float, float]] = deque(maxlen=window)
        #: results seen since the last decision (hysteresis).
        self._since_decision = 0
        self.decisions: List[SizerDecision] = []

    # -- observation ---------------------------------------------------------
    def observe(self, result: TaskResult) -> Optional[SizerDecision]:
        """Feed one analysis-task result; maybe returns a size change."""
        cpu = result.segments.get("cpu", 0.0)
        wall = max(0.0, result.finished - result.started)
        lost = result.task.lost_time
        self._results.append((cpu, wall, lost))
        self._since_decision += 1
        if (
            len(self._results) < self.window
            or self._since_decision < self.window
        ):
            return None
        return self._decide(result.finished)

    # -- metrics over the window -----------------------------------------------
    def lost_fraction(self) -> float:
        total = sum(w + l for _, w, l in self._results)
        if total <= 0:
            return 0.0
        return sum(l for _, _, l in self._results) / total

    def overhead_fraction(self) -> float:
        """Non-CPU fraction of successful wall time in the window."""
        wall = sum(w for _, w, _ in self._results)
        if wall <= 0:
            return 0.0
        cpu = sum(c for c, _, _ in self._results)
        return max(0.0, 1.0 - cpu / wall)

    # -- decision -----------------------------------------------------------------
    def _decide(self, now: float) -> Optional[SizerDecision]:
        lost = self.lost_fraction()
        overhead = self.overhead_fraction()
        old = self.size
        reason = None
        if lost > self.lost_threshold and self.size > self.min_size:
            self.size = max(self.min_size, int(self.size * self.shrink_factor))
            reason = "shrink:lost-runtime"
        elif (
            overhead > self.overhead_threshold
            and lost < self.lost_threshold / 2
            and self.size < self.max_size
        ):
            self.size = min(self.max_size, max(self.size + 1, int(self.size * self.grow_factor)))
            reason = "grow:overhead"
        if reason is None or self.size == old:
            self.size = old
            return None
        self._since_decision = 0
        decision = SizerDecision(
            time=now,
            old_size=old,
            new_size=self.size,
            reason=reason,
            lost_fraction=lost,
            overhead_fraction=overhead,
        )
        self.decisions.append(decision)
        return decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<AdaptiveTaskSizer size={self.size} decisions={len(self.decisions)}>"
