"""User-facing Lobster configuration.

A Lobster run is described by a :class:`LobsterConfig`: one or more
workflows (each an analysis code applied to a dataset or an event
count), task decomposition parameters, data-access and merging choices,
and knobs for the Work Queue layer.  This mirrors the configuration file
the real Lobster's main process reads (paper §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..analysis import AnalysisCode
from ..cvmfs.parrot import CacheMode
from ..net import TopologySpec
from ..wq.recovery import RecoveryPolicy

__all__ = [
    "WorkflowConfig",
    "LobsterConfig",
    "DataAccess",
    "MergeMode",
    "TopologySpec",
]

MB = 1_000_000.0
GB = 1_000_000_000.0


class DataAccess:
    """How a task obtains its input data (paper §4.2)."""

    XROOTD = "xrootd"  #: stream over the WAN (the primary mode)
    CHIRP = "chirp"  #: stage via the Chirp server
    WQ = "wq"  #: stage via Work Queue's own transfer path

    ALL = (XROOTD, CHIRP, WQ)


class MergeMode:
    """Output merging strategy (paper §4.4)."""

    NONE = "none"
    SEQUENTIAL = "sequential"
    HADOOP = "hadoop"
    INTERLEAVED = "interleaved"  #: Lobster's current default

    ALL = (NONE, SEQUENTIAL, HADOOP, INTERLEAVED)


@dataclass
class WorkflowConfig:
    """One workflow: an analysis code over a dataset or an event count."""

    label: str
    code: AnalysisCode
    #: DBS dataset name (data workflows) — exclusive with the others.
    dataset: Optional[str] = None
    #: Total events to generate (simulation workflows).
    n_events: Optional[int] = None
    #: Label of another workflow whose outputs this one consumes (the
    #: multi-stage analyses of §2: skim → ntuple → fit).
    parent: Optional[str] = None
    #: Tasklet granularity: lumis per tasklet for data, events per
    #: tasklet for simulation.
    lumis_per_tasklet: int = 1
    events_per_tasklet: int = 500
    #: Task size: tasklets grouped into one task (tunable at runtime,
    #: §4.1 — ~1 hour of work is the sweet spot).
    tasklets_per_task: int = 6
    data_access: str = DataAccess.XROOTD
    output_mode: str = DataAccess.CHIRP  #: chirp or wq
    merge_mode: str = MergeMode.INTERLEAVED
    #: Target merged file size (paper: 3–4 GB from 10–100 MB pieces).
    merge_target_bytes: float = 3.5 * GB
    #: Interleaved merging starts once this fraction is processed.
    merge_threshold: float = 0.10
    #: Give up on a tasklet after this many failed attempts.
    max_retries: int = 10
    #: Fraction of streamed input actually read by the analysis
    #: (HEP jobs read a subset of branches; staging must copy it all).
    read_fraction: float = 0.4
    #: Task-creation priority: higher-priority workflows fill the master
    #: buffer first; equal priorities share it round-robin.
    priority: int = 0
    #: Fall back from XrootD streaming to Chirp staging after this many
    #: consecutive stream failures (None = never degrade).
    stream_fallback_threshold: Optional[int] = None

    def __post_init__(self) -> None:
        sources = sum(
            x is not None for x in (self.dataset, self.n_events, self.parent)
        )
        if sources != 1:
            raise ValueError(
                f"workflow {self.label!r}: exactly one of "
                "dataset/n_events/parent required"
            )
        if self.parent == self.label:
            raise ValueError(f"workflow {self.label!r} cannot be its own parent")
        if self.data_access not in DataAccess.ALL:
            raise ValueError(f"unknown data_access {self.data_access!r}")
        if self.output_mode not in (DataAccess.CHIRP, DataAccess.WQ):
            raise ValueError(f"output_mode must be chirp or wq")
        if self.merge_mode not in MergeMode.ALL:
            raise ValueError(f"unknown merge_mode {self.merge_mode!r}")
        if self.tasklets_per_task <= 0:
            raise ValueError("tasklets_per_task must be positive")
        if self.lumis_per_tasklet <= 0 or self.events_per_tasklet <= 0:
            raise ValueError("tasklet granularity must be positive")
        if not 0 < self.merge_threshold <= 1:
            raise ValueError("merge_threshold must lie in (0, 1]")
        if self.merge_target_bytes <= 0:
            raise ValueError("merge_target_bytes must be positive")
        if not 0 < self.read_fraction <= 1:
            raise ValueError("read_fraction must lie in (0, 1]")
        if self.n_events is not None and self.n_events <= 0:
            raise ValueError("n_events must be positive")
        if (
            self.stream_fallback_threshold is not None
            and self.stream_fallback_threshold <= 0
        ):
            raise ValueError("stream_fallback_threshold must be positive")

    @property
    def is_simulation(self) -> bool:
        return self.n_events is not None

    @property
    def is_chained(self) -> bool:
        return self.parent is not None


@dataclass
class LobsterConfig:
    """Top-level configuration of a Lobster run."""

    workflows: List[WorkflowConfig]
    #: Ready-task buffer kept at the master (paper §4.1: 400).
    task_buffer: int = 400
    #: Size of the task sandbox (wrapper + user config) shipped per worker.
    sandbox_bytes: float = 50 * MB
    #: Cores managed by each worker, sharing one cache (paper: 8).
    cores_per_worker: int = 8
    cache_mode: CacheMode = CacheMode.ALIEN
    #: SQLite path for the Lobster DB (':memory:' for simulations).
    db_path: str = ":memory:"
    #: Validate-machine wrapper pre-check duration.
    validate_seconds: float = 2.0
    #: Probability the pre-check rejects a machine (bad node).
    bad_machine_rate: float = 0.001
    #: Work Queue fast-abort: re-queue analysis tasks running longer
    #: than this multiple of the mean successful runtime (None = off).
    fast_abort_multiplier: Optional[float] = None
    #: Enable the §8 adaptive task-size controller on every workflow.
    adaptive_task_size: bool = False
    #: Sliding window (task results) the controller decides over.
    adaptive_window: int = 50
    #: Active failure recovery at the master (retry budgets, backoff,
    #: host blacklisting); None = the master's gentle defaults.
    recovery: Optional[RecoveryPolicy] = None
    #: Checksum every task output at creation and verify it at each
    #: consuming hop (stage-out, merge stage-in, commit, publish).
    verify_outputs: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.workflows:
            raise ValueError("at least one workflow required")
        labels = [w.label for w in self.workflows]
        if len(set(labels)) != len(labels):
            raise ValueError("workflow labels must be unique")
        seen = set()
        for w in self.workflows:
            if w.parent is not None and w.parent not in seen:
                raise ValueError(
                    f"workflow {w.label!r}: parent {w.parent!r} must be "
                    "defined earlier in the workflow list"
                )
            seen.add(w.label)
        if self.task_buffer <= 0:
            raise ValueError("task_buffer must be positive")
        if self.cores_per_worker <= 0:
            raise ValueError("cores_per_worker must be positive")
        if not 0 <= self.bad_machine_rate < 1:
            raise ValueError("bad_machine_rate must lie in [0, 1)")
        if self.adaptive_window <= 0:
            raise ValueError("adaptive_window must be positive")
        if self.fast_abort_multiplier is not None and self.fast_abort_multiplier <= 1:
            raise ValueError("fast_abort_multiplier must exceed 1")
