"""Time-series and event-log primitives for run monitoring.

Everything the paper's monitoring section plots is one of two shapes:
a sampled value over time (workers connected, tasks running, queue
depth) or a stream of timestamped events (task completions, failures by
exit code).  These classes collect both and reduce them to time bins.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["TimeSeries", "EventLog"]


class TimeSeries:
    """An append-only series of (time, value) samples."""

    def __init__(self, name: str = "", samples: Optional[Sequence[Tuple[float, float]]] = None):
        self.name = name
        self._t: List[float] = []
        self._v: List[float] = []
        for t, v in samples or []:
            self.append(t, v)

    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError("samples must be appended in time order")
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v)

    def at(self, t: float) -> float:
        """Step interpolation: the last sample at or before *t* (0 before)."""
        i = bisect_right(self._t, t)
        return self._v[i - 1] if i > 0 else 0.0

    def binned(
        self, bin_width: float, agg: str = "mean", t_end: Optional[float] = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reduce to bins of *bin_width*: returns (bin_starts, values).

        *agg* is one of ``mean`` (time-weighted, step-interpolated),
        ``max``, or ``last``.  Empty series yield empty arrays.
        """
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        if not self._t:
            return np.array([]), np.array([])
        end = t_end if t_end is not None else self._t[-1]
        starts = np.arange(0.0, max(end, bin_width), bin_width)
        out = np.zeros_like(starts)
        for i, b in enumerate(starts):
            b_end = b + bin_width
            if agg == "last":
                out[i] = self.at(b_end - 1e-12)
            elif agg == "max":
                lo = bisect_right(self._t, b)
                hi = bisect_right(self._t, b_end)
                vals = self._v[lo:hi]
                boundary = self.at(b)
                out[i] = max([boundary] + vals) if vals else boundary
            elif agg == "mean":
                out[i] = self._time_weighted_mean(b, b_end)
            else:
                raise ValueError(f"unknown agg {agg!r}")
        return starts, out

    def _time_weighted_mean(self, a: float, b: float) -> float:
        """∫value dt / (b - a) with step interpolation."""
        if b <= a:
            return 0.0
        # Find sample points within (a, b).
        lo = bisect_right(self._t, a)
        hi = bisect_right(self._t, b)
        total = 0.0
        t_prev = a
        v_prev = self.at(a)
        for i in range(lo, hi):
            total += v_prev * (self._t[i] - t_prev)
            t_prev = self._t[i]
            v_prev = self._v[i]
        total += v_prev * (b - t_prev)
        return total / (b - a)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeries {self.name!r} n={len(self)}>"


class EventLog:
    """Timestamped categorical events (completions, failures, ...)."""

    def __init__(self, name: str = ""):
        self.name = name
        self._t: List[float] = []
        self._cat: List[str] = []

    def record(self, t: float, category: str = "") -> None:
        self._t.append(t)
        self._cat.append(category)

    def __len__(self) -> int:
        return len(self._t)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t)

    def categories(self) -> List[str]:
        return sorted(set(self._cat))

    def counts(
        self,
        bin_width: float,
        category: Optional[str] = None,
        t_end: Optional[float] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Events per bin: (bin_starts, counts), optionally one category."""
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        ts = [
            t for t, c in zip(self._t, self._cat) if category is None or c == category
        ]
        if not ts and t_end is None:
            return np.array([]), np.array([])
        end = t_end if t_end is not None else max(ts)
        edges = np.arange(0.0, max(end, bin_width) + bin_width, bin_width)
        counts, _ = np.histogram(ts, bins=edges)
        return edges[:-1], counts

    def rate(self, bin_width: float, **kwargs) -> Tuple[np.ndarray, np.ndarray]:
        """Events per second, binned."""
        starts, counts = self.counts(bin_width, **kwargs)
        return starts, counts / bin_width
