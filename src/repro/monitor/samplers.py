"""Periodic samplers: turn live infrastructure state into time series.

The §5 dashboards need more than task records: WAN saturation, proxy
load, Chirp queue depth over time.  A :class:`LinkSampler` polls any set
of :class:`~repro.desim.FairShareLink` objects (and anything else with a
numeric probe) on a fixed cadence and accumulates
:class:`~repro.monitor.TimeSeries` suitable for `binned()` reduction or
CSV export.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..desim import Environment, FairShareLink, Interrupt
from .metrics import TimeSeries

__all__ = ["LinkSampler", "sample_links"]


class LinkSampler:
    """Samples arbitrary probes on a fixed simulated-time cadence."""

    def __init__(self, env: Environment, interval: float = 60.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.interval = interval
        self._probes: Dict[str, Callable[[], float]] = {}
        self.series: Dict[str, TimeSeries] = {}
        self._proc = None

    # -- wiring ------------------------------------------------------------
    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        if name in self._probes:
            raise ValueError(f"probe {name!r} already registered")
        self._probes[name] = probe
        self.series[name] = TimeSeries(name)

    def add_link(self, name: str, link: FairShareLink) -> None:
        """Track a link's concurrent flows and cumulative bytes."""
        self.add_probe(f"{name}.flows", lambda: float(link.active_flows))
        self.add_probe(f"{name}.bytes", lambda: float(link.bytes_moved))

    def add_throughput(self, name: str, link: FairShareLink) -> None:
        """Track a link's instantaneous throughput (bytes/s, windowed)."""
        state = {"last_bytes": link.bytes_moved, "last_t": self.env.now}

        def probe() -> float:
            now = self.env.now
            dt = now - state["last_t"]
            moved = link.bytes_moved - state["last_bytes"]
            state["last_bytes"] = link.bytes_moved
            state["last_t"] = now
            return moved / dt if dt > 0 else 0.0

        self.add_probe(f"{name}.throughput", probe)

    # -- lifecycle ------------------------------------------------------------
    def start(self):
        if self._proc is not None:
            raise RuntimeError("sampler already started")
        self._proc = self.env.process(self._loop(), name="link-sampler")
        return self._proc

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt()

    def _loop(self):
        try:
            while True:
                yield self.env.timeout(self.interval)
                now = self.env.now
                for name, probe in self._probes.items():
                    self.series[name].append(now, float(probe()))
        except Interrupt:
            return


def sample_links(
    env: Environment,
    links: Dict[str, FairShareLink],
    interval: float = 60.0,
    throughput: bool = True,
) -> LinkSampler:
    """Convenience: build, wire and start a sampler over *links*."""
    sampler = LinkSampler(env, interval=interval)
    for name, link in links.items():
        sampler.add_link(name, link)
        if throughput:
            sampler.add_throughput(name, link)
    sampler.start()
    return sampler
