"""Export run data for external plotting and archival.

The paper's monitoring culminated in dashboards; users of this library
will want the same series in their own plotting stack.  This module
dumps a run's timelines, task records, and breakdown to CSV files — no
third-party dependencies, just the csv module — and can round-trip the
task records back for offline analysis.
"""

from __future__ import annotations

import csv
import json
import os
from typing import Dict, List

from ..desim.bus import BusEvent
from .records import RunMetrics, TaskRecord

__all__ = [
    "export_run",
    "load_task_records",
    "JsonlSink",
    "CsvSink",
    "load_events",
    "records_from_events",
]

HOUR = 3600.0


def _write_csv(path: str, header: List[str], rows) -> None:
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def export_run(
    metrics: RunMetrics,
    directory: str,
    bin_width: float = 1800.0,
    prefix: str = "run",
) -> Dict[str, str]:
    """Write the run's views as CSVs under *directory*.

    Produces (and returns paths for):

    * ``<prefix>_tasks.csv``      — one row per task attempt,
    * ``<prefix>_segments.csv``   — long-format per-segment durations,
    * ``<prefix>_timeline.csv``   — binned running/completed/failed/efficiency,
    * ``<prefix>_breakdown.csv``  — the Fig 8 table.
    """
    os.makedirs(directory, exist_ok=True)
    paths: Dict[str, str] = {}

    # ---- tasks ------------------------------------------------------------
    tasks_path = os.path.join(directory, f"{prefix}_tasks.csv")
    _write_csv(
        tasks_path,
        [
            "task_id", "workflow", "category", "exit_code", "submitted",
            "started", "finished", "wq_stage_in", "wq_stage_out",
            "lost_time", "output_bytes",
        ],
        (
            [
                r.task_id, r.workflow, r.category, r.exit_code, r.submitted,
                r.started, r.finished, r.wq_stage_in, r.wq_stage_out,
                r.lost_time, r.output_bytes,
            ]
            for r in metrics.records
        ),
    )
    paths["tasks"] = tasks_path

    # ---- segments (long format) ---------------------------------------------
    seg_path = os.path.join(directory, f"{prefix}_segments.csv")
    _write_csv(
        seg_path,
        ["task_id", "segment", "seconds"],
        (
            [r.task_id, name, seconds]
            for r in metrics.records
            for name, seconds in sorted(r.segments.items())
        ),
    )
    paths["segments"] = seg_path

    # ---- binned timeline ---------------------------------------------------------
    timeline_path = os.path.join(directory, f"{prefix}_timeline.csv")
    if metrics.records:
        end = max(r.finished for r in metrics.records)
        run_t, run_v = metrics.running.binned(bin_width, agg="mean", t_end=end)
        ok_t, ok_c = metrics.completions.counts(bin_width, category="ok", t_end=end)
        _, bad_c = metrics.completions.counts(bin_width, category="failed", t_end=end)
        eff_t, eff = metrics.efficiency_timeline(bin_width)
        n = min(len(x) for x in (run_t, ok_c, bad_c, eff) if len(x)) if len(run_t) else 0
        rows = [
            [run_t[i], run_v[i], ok_c[i], bad_c[i], eff[i]] for i in range(n)
        ]
    else:
        rows = []
    _write_csv(
        timeline_path,
        ["bin_start", "running_mean", "completed", "failed", "efficiency"],
        rows,
    )
    paths["timeline"] = timeline_path

    # ---- breakdown --------------------------------------------------------------
    breakdown_path = os.path.join(directory, f"{prefix}_breakdown.csv")
    b = metrics.runtime_breakdown()
    _write_csv(
        breakdown_path,
        ["phase", "hours", "percent"],
        ([label, hours, pct] for label, hours, pct in b.rows()),
    )
    paths["breakdown"] = breakdown_path
    return paths


class JsonlSink:
    """Bus sink appending one compact JSON object per event to *path*.

    The serialisation is deterministic: keys are emitted in insertion
    order (``t``, ``topic``, then the publisher's field order), with
    compact separators — two identically-seeded runs produce
    byte-identical files.  Attach with ``env.bus.attach(sink)``.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w")
        self.count = 0

    def __call__(self, event: BusEvent) -> None:
        if self._fh.closed:
            return  # stragglers may publish while the run winds down
        self._fh.write(json.dumps(event.as_dict(), separators=(",", ":")))
        self._fh.write("\n")
        self.count += 1

    # Also usable as a sink object with an explicit handler.
    on_event = __call__

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class CsvSink:
    """Bus sink writing ``time,topic,fields`` rows (fields as JSON)."""

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", newline="")
        self._writer = csv.writer(self._fh)
        self._writer.writerow(["t", "topic", "fields"])
        self.count = 0

    def __call__(self, event: BusEvent) -> None:
        if self._fh.closed:
            return  # stragglers may publish while the run winds down
        self._writer.writerow(
            [
                repr(event.time),
                event.topic,
                json.dumps(event.fields, separators=(",", ":")),
            ]
        )
        self.count += 1

    on_event = __call__

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "CsvSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_events(path: str) -> List[dict]:
    """Read a :class:`JsonlSink` file back into event dicts."""
    out: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def records_from_events(events) -> List[TaskRecord]:
    """Extract :class:`TaskRecord` objects from recorded event dicts."""
    return [
        TaskRecord.from_event(ev)
        for ev in events
        if ev.get("topic") == "task.result"
    ]


def load_task_records(path: str) -> List[TaskRecord]:
    """Read a ``*_tasks.csv`` back into :class:`TaskRecord` objects.

    Segment details are not stored in the tasks file; records round-trip
    with empty segment maps (join against the segments CSV if needed).
    """
    out: List[TaskRecord] = []
    with open(path, newline="") as fh:
        for row in csv.DictReader(fh):
            out.append(
                TaskRecord(
                    task_id=int(row["task_id"]),
                    workflow=row["workflow"],
                    category=row["category"],
                    exit_code=int(row["exit_code"]),
                    submitted=float(row["submitted"]),
                    started=float(row["started"]),
                    finished=float(row["finished"]),
                    segments={},
                    wq_stage_in=float(row["wq_stage_in"]),
                    wq_stage_out=float(row["wq_stage_out"]),
                    lost_time=float(row["lost_time"]),
                    output_bytes=float(row["output_bytes"]),
                )
            )
    return out
