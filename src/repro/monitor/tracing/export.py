"""Span exporters: JSONL span files and Chrome trace-event JSON.

Both exporters are deterministic: spans are emitted in a stable order
with stable key order, so two identically seeded runs produce
byte-identical files (the CI tracing gate relies on this).

The Chrome format is the trace-event JSON understood by Perfetto and
``chrome://tracing``: complete events (``ph: "X"``) for timed spans,
instants (``ph: "i"``) for zero-duration marks, and flow events
(``"s"``/``"f"``) for the links between retry attempts.  Processes map
to workflows and threads map to traces, so one work unit's retries,
flows, and segments stack on a single timeline row.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Sequence

from .context import Span

__all__ = ["write_spans_jsonl", "chrome_trace", "write_chrome_trace"]

_USEC = 1_000_000.0


def write_spans_jsonl(spans: Iterable[Span], path) -> int:
    """Write one JSON object per span; returns the number written."""
    n = 0
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.as_dict(), separators=(",", ":")))
            fh.write("\n")
            n += 1
    return n


def _groups(spans: Sequence[Span]):
    """Stable pid/tid assignment: workflows -> pids, traces -> tids."""
    traces = sorted({s.trace_id for s in spans})
    workflows = sorted({t.split(":", 1)[0] for t in traces})
    pid_of = {wf: i + 1 for i, wf in enumerate(workflows)}
    tid_of = {t: i + 1 for i, t in enumerate(traces)}
    return pid_of, tid_of


def chrome_trace(spans: Sequence[Span]) -> Dict[str, Any]:
    """Build the trace-event dict for a finished run's spans."""
    pid_of, tid_of = _groups(spans)
    events: List[Dict[str, Any]] = []
    for wf, pid in sorted(pid_of.items()):
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "name": "process_name",
                "args": {"name": wf},
            }
        )
    for trace_id, tid in sorted(tid_of.items()):
        pid = pid_of[trace_id.split(":", 1)[0]]
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": trace_id},
            }
        )
    by_id = {s.span_id: s for s in spans}
    for span in sorted(spans, key=lambda s: (s.start, s.span_id)):
        pid = pid_of[span.trace_id.split(":", 1)[0]]
        tid = tid_of[span.trace_id]
        args: Dict[str, Any] = {"span": span.span_id, "status": span.status}
        args.update(span.attrs)
        end = span.end if span.end is not None else span.start
        if end > span.start:
            events.append(
                {
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start * _USEC,
                    "dur": (end - span.start) * _USEC,
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "ph": "i",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start * _USEC,
                    "name": span.name,
                    "cat": span.name.split(".", 1)[0],
                    "s": "t",
                    "args": args,
                }
            )
        for link in span.links:
            prev = by_id.get(link)
            if prev is None:
                continue
            start_ts = (prev.end if prev.end is not None else prev.start) * _USEC
            events.append(
                {
                    "ph": "s",
                    "pid": pid_of[prev.trace_id.split(":", 1)[0]],
                    "tid": tid_of[prev.trace_id],
                    "ts": start_ts,
                    "id": link,
                    "name": "retry",
                    "cat": "link",
                }
            )
            events.append(
                {
                    "ph": "f",
                    "pid": pid,
                    "tid": tid,
                    "ts": span.start * _USEC,
                    "id": link,
                    "name": "retry",
                    "cat": "link",
                    "bp": "e",
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path) -> int:
    """Write Perfetto-loadable JSON; returns the event count."""
    doc = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"), sort_keys=True)
        fh.write("\n")
    return len(doc["traceEvents"])
