"""The span tracer: builds causal span trees from a live run.

:class:`SpanTracer` attaches to an :class:`~repro.desim.Environment` as
``env.spans``.  The substrate layers never import this module — they
reach the tracer duck-typed through that attribute (``tr = env.spans;
if tr is not None: ...``), mirroring how they publish to the bus, so the
monitor-independence invariant holds in both directions.

Context propagation rides the DES itself: every
:class:`~repro.desim.Process` carries a ``span_ctx`` inherited from the
process that created it, and :meth:`SpanTracer.start` with
``activate=True`` re-points the running process's context at the new
span.  Anything that happens inside a process frame — a fabric flow, a
Chirp request, a CVMFS fill — can therefore discover its causal parent
without a single signature changing.

Two event streams complete the picture:

* the tracer *publishes* ``span.start`` / ``span.end`` bus events for
  every span it creates, so a JSONL recording of a traced run contains
  the full span stream (``spans_from_events`` rebuilds it offline);
* the tracer *subscribes* to substrate topics that carry trace fields
  (``net.flow``, ``chirp.queue``, ``cache.miss``, ``integrity.*``,
  ``fault.*``, ...) and materialises child spans or annotations from
  them, so layers that only publish still show up in the tree.
"""

from __future__ import annotations

from itertools import count
from typing import Dict, Iterable, List, Optional, Tuple

from ...desim.bus import BusEvent, Topics
from .context import Span, TraceContext

__all__ = ["SpanTracer", "SpanStreamBuilder", "spans_from_events", "ROOT_NAMES"]

#: Span names allowed to have no parent (the roots of span trees).
ROOT_NAMES = ("unit", "run")

#: Keys of a ``span.start`` event dict that are not span attributes.
_CORE_KEYS = frozenset(
    ("t", "topic", "span", "trace", "parent", "name", "start", "links", "status", "end")
)


class SpanTracer:
    """Collects a run's spans; attach one per environment before running."""

    def __init__(self, env, subscribe: bool = True):
        if getattr(env, "spans", None) is not None:
            raise RuntimeError("environment already has a span tracer attached")
        self.env = env
        env.spans = self
        #: Finished spans, in close order (deterministic under a seed).
        self.spans: List[Span] = []
        self._open: Dict[int, Span] = {}
        self._roots: Dict[str, Span] = {}
        #: span_id -> parent_id for every span ever created (orphan check).
        self._parent: Dict[int, Optional[int]] = {}
        #: trace_id -> latest closed attempt span id (retry linking).
        self._last_attempt: Dict[str, int] = {}
        #: task_id -> most recent attempt span (bus-event parenting).
        self._task_attempt: Dict[int, Span] = {}
        #: trace_id -> latest span end time (root extents at finalize).
        self._extent: Dict[str, float] = {}
        self._ids = count(1)
        self.finalized = False
        self._subs = []
        if subscribe:
            bus = env.bus
            # The per-transfer topics (flows, chirp queue, cache misses)
            # are the hot ones: subscribe raw so delivery hands us the
            # record dict without materialising a BusEvent.  The rare
            # control-flow topics stay classic.
            self._subs = [
                bus.subscribe(Topics.NET_FLOW, self._on_flow, raw=True),
                bus.subscribe(Topics.NET_FLOW_FAIL, self._on_flow_fail, raw=True),
                bus.subscribe(Topics.CHIRP_QUEUE, self._on_chirp, raw=True),
                bus.subscribe(Topics.CACHE_MISS, self._on_cache_miss, raw=True),
                bus.subscribe("fault.*", self._on_fault),
                bus.subscribe("integrity.*", self._on_integrity),
                bus.subscribe(Topics.TASK_EXHAUSTED, self._on_exhausted),
                bus.subscribe(Topics.RECOVERY_FALLBACK, self._on_fallback),
                bus.subscribe(Topics.PUBLISH_DATASET, self._on_publish),
            ]

    # -- core span lifecycle ----------------------------------------------
    def current(self) -> Optional[TraceContext]:
        """The ambient trace context of the running process, if any."""
        proc = self.env._active_proc
        return proc.span_ctx if proc is not None else None

    def start(
        self,
        name: str,
        parent=None,
        links: Tuple[int, ...] = (),
        activate: bool = False,
        at: Optional[float] = None,
        **attrs,
    ) -> Span:
        """Open a span.  *parent* is a :class:`TraceContext`, a
        :class:`Span`, or None (ambient context, else a fresh trace)."""
        if isinstance(parent, Span):
            parent = parent.ctx
        if parent is None:
            parent = self.current()
        span_id = next(self._ids)
        if parent is not None:
            trace_id, parent_id = parent.trace_id, parent.span_id
        else:
            trace_id, parent_id = f"anon:{span_id}", None
        now = self.env.now if at is None else at
        span = Span(span_id, trace_id, parent_id, name, now, links=links, attrs=dict(attrs))
        self._open[span_id] = span
        self._parent[span_id] = parent_id
        if activate:
            proc = self.env._active_proc
            if proc is not None:
                proc.span_ctx = span.ctx
        bus = self.env.bus
        if bus:
            fields = dict(
                span=span_id, trace=trace_id, parent=parent_id, name=name
            )
            if at is not None:
                fields["start"] = now
            if links:
                fields["links"] = list(links)
            fields.update(span.attrs)
            bus.publish(Topics.SPAN_START, **fields)
        return span

    def end(self, span: Span, status: str = "ok", at: Optional[float] = None, **attrs) -> None:
        """Close *span* (and any open descendants, deepest first)."""
        if span.end is not None:
            return
        for child in self._open_descendants(span.span_id):
            self._close(child, "aborted", at)
        self._close(span, status, at, attrs)
        proc = self.env._active_proc
        if proc is not None and proc.span_ctx == span.ctx:
            proc.span_ctx = (
                TraceContext(span.trace_id, span.parent_id)
                if span.parent_id is not None
                else None
            )
        if span.name == "attempt":
            self._last_attempt[span.trace_id] = span.span_id

    def _close(self, span: Span, status: str, at: Optional[float], attrs=None) -> None:
        span.end = self.env.now if at is None else at
        span.status = status
        if attrs:
            span.attrs.update(attrs)
        self._open.pop(span.span_id, None)
        self.spans.append(span)
        prev = self._extent.get(span.trace_id)
        if prev is None or span.end > prev:
            self._extent[span.trace_id] = span.end
        bus = self.env.bus
        if bus:
            fields = dict(span=span.span_id, status=status)
            if at is not None:
                fields["end"] = span.end
            # Publish the full final attrs, not just the close-time ones:
            # annotations added while the span was open (worker/host,
            # fault markers, backoff) must survive an offline replay.
            if span.attrs:
                fields.update(span.attrs)
            bus.publish(Topics.SPAN_END, **fields)

    def _open_descendants(self, root_id: int) -> List[Span]:
        """Open spans below *root_id*, deepest first."""
        found = []
        for span in self._open.values():
            depth, pid = 0, span.parent_id
            while pid is not None:
                depth += 1
                if pid == root_id:
                    found.append((depth, span))
                    break
                pid = self._parent.get(pid)
        found.sort(key=lambda d_s: (-d_s[0], -d_s[1].span_id))
        return [s for _, s in found]

    def annotate(self, span: Span, **attrs) -> None:
        span.attrs.update(attrs)

    def instant(self, name: str, parent=None, **attrs) -> Span:
        """A zero-duration span (ledger commits, quarantines, ...)."""
        span = self.start(name, parent=parent, **attrs)
        self.end(span)
        return span

    # -- work-unit plumbing (called duck-typed by the substrate) -----------
    def unit_root(self, trace_id: str, name: str = "unit", **attrs) -> Span:
        """Get or create the root span of a trace.

        Roots stay open across retries and quarantine reopens; they are
        closed by :meth:`finalize` at their last descendant's end."""
        root = self._roots.get(trace_id)
        if root is None:
            span_id = next(self._ids)
            root = Span(span_id, trace_id, None, name, self.env.now, attrs=dict(attrs))
            self._roots[trace_id] = root
            self._open[span_id] = root
            self._parent[span_id] = None
            bus = self.env.bus
            if bus:
                fields = dict(span=span_id, trace=trace_id, parent=None, name=name)
                fields.update(attrs)
                bus.publish(Topics.SPAN_START, **fields)
        return root

    def attempt(self, trace: TraceContext, **attrs) -> Span:
        """Open an attempt span under *trace*, linked to the previous
        attempt of the same trace (retries become linked siblings)."""
        prev = self._last_attempt.get(trace.trace_id)
        links = (prev,) if prev is not None else ()
        span = self.start("attempt", parent=trace, links=links, **attrs)
        task_id = attrs.get("task_id")
        if task_id is not None:
            self._task_attempt[task_id] = span
        return span

    # -- bus-materialised spans -------------------------------------------
    def _ctx_from_fields(self, fields: dict) -> Optional[TraceContext]:
        trace_id = fields.get("trace_id")
        parent = fields.get("parent_span")
        if trace_id is None or parent is None:
            return None
        return TraceContext(trace_id, parent)

    def _task_parent(self, fields: dict) -> Optional[TraceContext]:
        span = self._task_attempt.get(fields.get("task_id"))
        return span.ctx if span is not None else None

    def _run_root(self, workflow: Optional[str]) -> Span:
        return self.unit_root(f"run:{workflow or 'cluster'}", name="run")

    def _on_flow(self, record: dict) -> None:
        # A net.flow record is either one flow or a fabric flush batch
        # carrying a ``flows`` list; both shapes materialise one span
        # per flow, in batch order.
        flows = record.get("flows")
        if flows is None:
            self._flow_span(Topics.NET_FLOW, record["t"], record)
        else:
            t = record["t"]
            for rec in flows:
                self._flow_span(Topics.NET_FLOW, t, rec)

    def _on_flow_fail(self, record: dict) -> None:
        # Flow failures are emitted per flow, never batched.
        self._flow_span(Topics.NET_FLOW_FAIL, record["t"], record)

    def _flow_span(self, topic: str, time: float, f: dict) -> None:
        ctx = self._ctx_from_fields(f)
        if ctx is None:
            return
        failed = topic == Topics.NET_FLOW_FAIL
        span = self.start(
            "net.flow",
            parent=ctx,
            at=f.get("started", time),
            cls=f.get("cls"),
            nbytes=f.get("nbytes"),
            src=f.get("src"),
            dst=f.get("dst"),
        )
        self.end(span, status="failed" if failed else "ok", at=time)

    def _on_chirp(self, record: dict) -> None:
        ctx = self._ctx_from_fields(record)
        if ctx is None:
            return
        self.instant(
            "chirp.queue",
            parent=ctx,
            server=record.get("server"),
            depth=record.get("depth"),
        )

    def _on_cache_miss(self, record: dict) -> None:
        ctx = self._ctx_from_fields(record)
        if ctx is None:
            return
        t = record["t"]
        elapsed = float(record.get("elapsed", 0.0))
        span = self.start(
            "cvmfs.fill",
            parent=ctx,
            at=t - elapsed,
            cache=record.get("cache"),
            waited=record.get("waited"),
        )
        self.end(span, at=t)

    def _on_fault(self, event: BusEvent) -> None:
        if event.topic != Topics.FAULT_INJECT:
            return
        kind = event.fields.get("kind")
        for span in self._open.values():
            if span.name == "attempt":
                span.attrs.setdefault("faults", []).append(kind)

    def _on_integrity(self, event: BusEvent) -> None:
        parent = self._task_parent(event.fields) or self._run_root(
            event.fields.get("workflow")
        ).ctx
        self.instant(
            event.topic,
            parent=parent,
            name_=event.fields.get("name"),
            kind=event.fields.get("kind"),
        )

    def _on_exhausted(self, event: BusEvent) -> None:
        parent = self._task_parent(event.fields)
        if parent is None:
            return
        self.instant(
            "task.exhausted",
            parent=parent,
            attempts=event.fields.get("attempts"),
            reason=event.fields.get("reason"),
        )

    def _on_fallback(self, event: BusEvent) -> None:
        self.instant(
            "recovery.fallback",
            parent=self._run_root(event.fields.get("workflow")).ctx,
            frm=event.fields.get("frm"),
            to=event.fields.get("to"),
        )

    def _on_publish(self, event: BusEvent) -> None:
        self.instant(
            "publish.dataset",
            parent=self._run_root(event.fields.get("workflow")).ctx,
            files=event.fields.get("files"),
            events=event.fields.get("events"),
        )

    # -- wind-down ---------------------------------------------------------
    def finalize(self) -> List[Span]:
        """Close everything still open and return the orphan spans.

        Non-root spans still open (a run stopped mid-flight) close with
        status ``unfinished``; roots close at their last descendant's
        end.  Safe to call more than once."""
        if not self.finalized:
            stragglers = [
                s for s in self._open.values() if s.name not in ROOT_NAMES
            ]
            # Deepest first so parents close after their children.
            for span in sorted(
                stragglers, key=lambda s: (-self._depth(s), -s.span_id)
            ):
                if span.end is None:
                    self._close(span, "unfinished", None)
            for root in self._roots.values():
                if root.end is None:
                    at = max(self._extent.get(root.trace_id, root.start), root.start)
                    self._close(root, "ok", at)
            self.finalized = True
        return self.orphans()

    def _depth(self, span: Span) -> int:
        depth, pid = 0, span.parent_id
        while pid is not None:
            depth += 1
            pid = self._parent.get(pid)
        return depth

    def orphans(self) -> List[Span]:
        """Spans with no parent that are not roots, or a dangling parent."""
        known = self._parent.keys()
        out = []
        for span in self.spans + list(self._open.values()):
            if span.parent_id is None:
                if span.name not in ROOT_NAMES:
                    out.append(span)
            elif span.parent_id not in known:
                out.append(span)
        return out

    def finished(self, name: Optional[str] = None) -> List[Span]:
        """Closed spans, optionally filtered by name."""
        if name is None:
            return list(self.spans)
        return [s for s in self.spans if s.name == name]

    def close(self) -> None:
        """Detach from the bus and the environment."""
        for sub in self._subs:
            sub.cancel()
        self._subs = []
        if getattr(self.env, "spans", None) is self:
            self.env.spans = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SpanTracer spans={len(self.spans)} open={len(self._open)} "
            f"traces={len(self._roots)}>"
        )


class SpanStreamBuilder:
    """Incremental span materialisation from a recorded event stream.

    Feed it ``BusEvent.as_dict()``-shaped mappings one at a time (a
    JSONL line, a live sink callback); it keeps only the spans still
    open plus the finished list — never a raw-event buffer — so memory
    is proportional to spans, not kernel events.  Non-span topics are
    ignored, so the full event stream can be piped through unfiltered.
    """

    __slots__ = ("_open", "done")

    def __init__(self) -> None:
        self._open: Dict[int, Span] = {}
        #: Finished spans in close order (matches the live tracer).
        self.done: List[Span] = []

    def feed(self, ev: dict) -> None:
        """Consume one recorded event dict."""
        topic = ev.get("topic")
        if topic == Topics.SPAN_START:
            attrs = {k: v for k, v in ev.items() if k not in _CORE_KEYS}
            span = Span(
                ev["span"],
                ev["trace"],
                ev.get("parent"),
                ev["name"],
                float(ev.get("start", ev.get("t", 0.0))),
                links=tuple(ev.get("links", ())),
                attrs=attrs,
            )
            self._open[span.span_id] = span
        elif topic == Topics.SPAN_END:
            span = self._open.pop(ev.get("span"), None)
            if span is None:
                return
            span.end = float(ev.get("end", ev.get("t", 0.0)))
            span.status = ev.get("status", "ok")
            span.attrs.update(
                {k: v for k, v in ev.items() if k not in _CORE_KEYS}
            )
            self.done.append(span)

    @property
    def open_count(self) -> int:
        return len(self._open)

    def result(self) -> List[Span]:
        """The span list so far: finished spans, then any never closed
        (a recording cut mid-run), ordered by span id."""
        return self.done + sorted(self._open.values(), key=lambda s: s.span_id)


def spans_from_events(events: Iterable[dict]) -> List[Span]:
    """Rebuild the span list from recorded event dicts.

    *events* is an iterable of ``BusEvent.as_dict()``-shaped mappings
    (e.g. from a :class:`~repro.monitor.export.JsonlSink` recording of a
    traced run).  Only ``span.start`` / ``span.end`` events are needed:
    the tracer publishes those for every span it creates, so the
    offline reconstruction matches the live ``tracer.spans`` exactly —
    same spans, same ids, same order.  Streaming callers should use
    :class:`SpanStreamBuilder` directly and avoid buffering the raw
    events at all."""
    builder = SpanStreamBuilder()
    for ev in events:
        builder.feed(ev)
    return builder.result()
