"""Trace contexts and spans: the vocabulary of causal tracing.

A *trace* is one unit of work end to end — in Lobster terms, the set of
tasklets packed into a task, followed through every retry, eviction,
fallback, and quarantine-reopen until its output is committed.  A *span*
is one timed operation inside a trace (an attempt, a wrapper segment, a
network flow, a ledger commit), linked to its parent span so the whole
run reconstructs as a forest of span trees.

The identifiers are deliberately simple: the trace id is a stable string
derived from the work itself (``"<workflow>:u<first tasklet>"``), so a
re-packaged retry of the same tasklets re-enters the same trace; span
ids are small integers from a per-tracer counter, so two identically
seeded runs emit identical ids.
"""

from __future__ import annotations

from typing import Any, Dict, NamedTuple, Optional, Tuple

__all__ = ["TraceContext", "Span"]


class TraceContext(NamedTuple):
    """What is carried across layer boundaries: (which work, which span)."""

    trace_id: str
    span_id: int


class Span:
    """One timed operation within a trace.

    ``end is None`` while the operation is in flight; :class:`SpanTracer`
    fills it in (and the final ``status``) when the span closes.
    """

    __slots__ = (
        "span_id",
        "trace_id",
        "parent_id",
        "name",
        "start",
        "end",
        "status",
        "attrs",
        "links",
    )

    def __init__(
        self,
        span_id: int,
        trace_id: str,
        parent_id: Optional[int],
        name: str,
        start: float,
        end: Optional[float] = None,
        status: str = "open",
        attrs: Optional[Dict[str, Any]] = None,
        links: Tuple[int, ...] = (),
    ):
        self.span_id = span_id
        self.trace_id = trace_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end = end
        self.status = status
        self.attrs: Dict[str, Any] = attrs if attrs is not None else {}
        #: Span ids of causally linked siblings (a retry links to the
        #: attempt it replaces).
        self.links: Tuple[int, ...] = tuple(links)

    @property
    def ctx(self) -> TraceContext:
        return TraceContext(self.trace_id, self.span_id)

    @property
    def is_open(self) -> bool:
        return self.end is None

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def as_dict(self) -> Dict[str, Any]:
        """Flat JSONL-friendly view with stable key order."""
        out: Dict[str, Any] = {
            "span": self.span_id,
            "trace": self.trace_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
        }
        if self.links:
            out["links"] = list(self.links)
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        when = f"{self.start:.1f}"
        if self.end is not None:
            when += f"-{self.end:.1f}"
        return f"<Span {self.span_id} {self.name!r} [{self.trace_id}] {when} {self.status}>"
