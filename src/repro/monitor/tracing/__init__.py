"""Causal tracing: span trees, critical paths, evidence-backed answers.

Public surface of the tracing subsystem (DESIGN.md §10):

* :class:`TraceContext` / :class:`Span` — the vocabulary.
* :class:`SpanTracer` — attach to an environment before running; every
  task attempt then yields a span tree rooted at its work unit.
* :func:`spans_from_events` — rebuild spans offline from a JSONL
  recording of a traced run.
* :func:`critical_path` and friends — the "why was this slow" table.
* :func:`write_spans_jsonl` / :func:`write_chrome_trace` —
  deterministic span exports (Perfetto-loadable).
"""

from .context import Span, TraceContext
from .critical_path import (
    PathSlice,
    attribute,
    attribute_hosts,
    critical_path,
    format_breakdown,
    work_coverage,
)
from .export import chrome_trace, write_chrome_trace, write_spans_jsonl
from .tracer import ROOT_NAMES, SpanStreamBuilder, SpanTracer, spans_from_events

__all__ = [
    "TraceContext",
    "Span",
    "SpanTracer",
    "SpanStreamBuilder",
    "spans_from_events",
    "ROOT_NAMES",
    "PathSlice",
    "critical_path",
    "attribute",
    "attribute_hosts",
    "work_coverage",
    "format_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]
