"""Critical-path analysis over a finished run's span forest.

The question this module answers is the operator's "why was this run
slow?" from the paper's §5 — but answered from causal spans instead of
aggregate counters.  The *critical path* is a single non-overlapping
chain of spans that accounts for the whole makespan: at any instant it
names the deepest operation in flight that the finish time was waiting
on.

The algorithm is a backward time sweep:

1. Start the cursor at the latest span end.
2. Among spans active at the cursor (``start < cur <= end``), pick the
   one that started *latest* — children start after their parents, so
   this prefers the deepest (most specific) work.
3. Emit a slice for it down to the latest end of any *deeper* span
   nested inside (where that deeper span takes over), else down to its
   own start, and jump the cursor there.
4. If nothing is active, emit an ``idle`` slice back to the previous
   span end.

Root spans (``unit`` / ``run``) and zero-duration instants are excluded:
roots cover everything by construction and would flatten the answer to
"the run took as long as the run".  The emitted slices tile the
makespan exactly, so coverage is 100% including idle; the interesting
number is the *work* coverage (1 − idle fraction).
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from .context import Span
from .tracer import ROOT_NAMES

__all__ = [
    "PathSlice",
    "critical_path",
    "attribute",
    "attribute_hosts",
    "work_coverage",
    "format_breakdown",
]


class PathSlice(NamedTuple):
    """One slice of the critical path: [start, end) attributed to a span."""

    start: float
    end: float
    label: str
    span: Optional[Span]  #: None for idle slices

    @property
    def duration(self) -> float:
        return self.end - self.start


def _label(span: Span) -> str:
    """Aggregation label: flows split by traffic class, rest by name."""
    if span.name == "net.flow" and span.attrs.get("cls"):
        return f"net.flow:{span.attrs['cls']}"
    return span.name


def critical_path(spans: Sequence[Span]) -> Tuple[List[PathSlice], float]:
    """Return ``(slices, makespan)`` for a finished run's spans.

    Slices are emitted in chronological order and tile
    ``[min start, max end]`` exactly — gaps become ``idle`` slices."""
    work = [
        s
        for s in spans
        if s.end is not None and s.end > s.start and s.name not in ROOT_NAMES
    ]
    if not work:
        return [], 0.0
    lo = min(s.start for s in work)
    hi = max(s.end for s in work)
    # Sweep candidates ordered by start; ties broken by span id so two
    # same-seed runs walk an identical path.
    work.sort(key=lambda s: (s.start, s.span_id))
    slices: List[PathSlice] = []
    cur = hi
    while cur > lo:
        active = None
        for s in work:
            if s.start >= cur:
                break
            if s.end >= cur and (
                active is None
                or (s.start, s.span_id) > (active.start, active.span_id)
            ):
                active = s
        if active is not None:
            # The slice ends where a deeper span (one that would win the
            # pick) last finished inside it — that span takes over there.
            boundary = active.start
            for s in work:
                if s.start >= cur:
                    break
                if (
                    boundary < s.end < cur
                    and (s.start, s.span_id) > (active.start, active.span_id)
                ):
                    boundary = s.end
            slices.append(PathSlice(boundary, cur, _label(active), active))
            cur = boundary
        else:
            prev_end = max((s.end for s in work if s.end < cur), default=lo)
            slices.append(PathSlice(prev_end, cur, "idle", None))
            cur = prev_end
    slices.reverse()
    return slices, hi - lo


def attribute(slices: Sequence[PathSlice]) -> List[Tuple[str, float]]:
    """Aggregate slice time by label, largest first (the Fig 8 table)."""
    totals: Dict[str, float] = {}
    for sl in slices:
        totals[sl.label] = totals.get(sl.label, 0.0) + sl.duration
    return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))


def attribute_hosts(slices: Sequence[PathSlice]) -> List[Tuple[str, float]]:
    """Aggregate slice time by the host/worker/server it ran against."""
    totals: Dict[str, float] = {}
    for sl in slices:
        if sl.span is None:
            continue
        host = (
            sl.span.attrs.get("host")
            or sl.span.attrs.get("worker")
            or sl.span.attrs.get("dst")
            or sl.span.attrs.get("server")
        )
        if host:
            totals[str(host)] = totals.get(str(host), 0.0) + sl.duration
    return sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))


def work_coverage(slices: Sequence[PathSlice], makespan: float) -> float:
    """Fraction of the makespan the path attributes to actual work."""
    if makespan <= 0.0:
        return 1.0
    idle = sum(sl.duration for sl in slices if sl.span is None)
    return 1.0 - idle / makespan


def format_breakdown(
    slices: Sequence[PathSlice], makespan: float, top: int = 5
) -> str:
    """Render the "why was this slow" table as aligned text."""
    lines = [f"critical path over makespan {makespan:.1f}s:"]
    rows = attribute(slices)[:top]
    width = max((len(label) for label, _ in rows), default=4)
    for label, seconds in rows:
        share = seconds / makespan if makespan else 0.0
        lines.append(f"  {label:<{width}}  {seconds:>10.1f}s  {share:6.1%}")
    hosts = attribute_hosts(slices)[:3]
    if hosts:
        lines.append("worst contributors by host/link:")
        hwidth = max(len(h) for h, _ in hosts)
        for host, seconds in hosts:
            lines.append(f"  {host:<{hwidth}}  {seconds:>10.1f}s")
    return "\n".join(lines)
