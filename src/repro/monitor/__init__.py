"""``repro.monitor`` — comprehensive run monitoring (paper §5).

Collects per-task segment records and pool/server samples, reduces them
to the paper's tables and timelines (Figs 8–11), and applies the
troubleshooting heuristics the Lobster operators used in production.
"""

from .collector import BusCollector, metrics_from_events
from .context import CMS_2015_RESOURCES, ContextStatement, contextualize
from .dash import render_dashboard, write_dashboard
from .export import (
    CsvSink,
    JsonlSink,
    export_run,
    load_events,
    load_task_records,
    records_from_events,
)
from .metrics import EventLog, TimeSeries
from .records import RunMetrics, RuntimeBreakdown, TaskRecord
from .report import ascii_bar, ascii_timeline, render_report
from .rollup import (
    Rollup,
    RollupCollector,
    SegmentDigest,
    rollup_from_events,
    split_events_by_window,
    verify_parity,
)
from .samplers import LinkSampler, sample_links
from .stats import (
    SegmentStats,
    all_segment_stats,
    histogram_ascii,
    percentile,
    segment_stats,
    summarize,
)
from .tracing import (
    PathSlice,
    Span,
    SpanStreamBuilder,
    SpanTracer,
    TraceContext,
    attribute,
    attribute_hosts,
    chrome_trace,
    critical_path,
    format_breakdown,
    spans_from_events,
    work_coverage,
    write_chrome_trace,
    write_spans_jsonl,
)
from .troubleshoot import Diagnosis, EvidenceSpan, diagnose
from .watch import (
    DEFAULT_DETECTORS,
    DetectorSpec,
    RunWatcher,
    WatchEngine,
    alerts_from_events,
)

__all__ = [
    "TimeSeries",
    "EventLog",
    "TaskRecord",
    "RuntimeBreakdown",
    "RunMetrics",
    "Diagnosis",
    "diagnose",
    "render_report",
    "ascii_bar",
    "ascii_timeline",
    "contextualize",
    "ContextStatement",
    "CMS_2015_RESOURCES",
    "SegmentStats",
    "segment_stats",
    "all_segment_stats",
    "histogram_ascii",
    "percentile",
    "summarize",
    "export_run",
    "load_task_records",
    "BusCollector",
    "metrics_from_events",
    "JsonlSink",
    "CsvSink",
    "load_events",
    "records_from_events",
    "LinkSampler",
    "sample_links",
    "TraceContext",
    "Span",
    "SpanTracer",
    "SpanStreamBuilder",
    "spans_from_events",
    "PathSlice",
    "critical_path",
    "attribute",
    "attribute_hosts",
    "work_coverage",
    "format_breakdown",
    "chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
    "EvidenceSpan",
    "Rollup",
    "RollupCollector",
    "SegmentDigest",
    "rollup_from_events",
    "split_events_by_window",
    "verify_parity",
    "render_dashboard",
    "write_dashboard",
    "DetectorSpec",
    "DEFAULT_DETECTORS",
    "WatchEngine",
    "RunWatcher",
    "alerts_from_events",
]
